test/test_soak.ml: Alcotest Buffer Bytes Char List Printexc Printf String Xvi_core Xvi_util Xvi_workload Xvi_xml Xvi_xpath

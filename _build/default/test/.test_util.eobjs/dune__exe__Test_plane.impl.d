test/test_plane.ml: Alcotest Array List Option Printf Xvi_core Xvi_util Xvi_workload Xvi_xml

test/test_path_index.ml: Alcotest Array List Xvi_core Xvi_workload Xvi_xml

test/test_hash.ml: Alcotest Bytes Char List Printf QCheck2 QCheck_alcotest String Xvi_core

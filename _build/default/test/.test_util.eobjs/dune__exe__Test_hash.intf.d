test/test_hash.mli:

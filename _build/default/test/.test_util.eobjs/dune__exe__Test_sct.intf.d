test/test_sct.mli:

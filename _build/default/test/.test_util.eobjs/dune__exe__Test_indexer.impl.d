test/test_indexer.ml: Alcotest Array Buffer List Option Printf Xvi_core Xvi_util Xvi_xml

test/test_txn.ml: Alcotest Array Buffer Digest List Option Printf Xvi_core Xvi_txn Xvi_util Xvi_workload Xvi_xml

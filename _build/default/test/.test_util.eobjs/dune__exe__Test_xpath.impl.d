test/test_xpath.ml: Alcotest Lazy List Printf Xvi_core Xvi_workload Xvi_xml Xvi_xpath

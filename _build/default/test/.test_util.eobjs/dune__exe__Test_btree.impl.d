test/test_btree.ml: Alcotest Array Float Int List Map Printf Xvi_btree Xvi_util

test/test_util.ml: Alcotest Array Hashtbl List Option String Xvi_util

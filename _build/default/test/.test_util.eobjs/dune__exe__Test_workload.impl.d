test/test_workload.ml: Alcotest Hashtbl List Printf String Xvi_core Xvi_util Xvi_workload Xvi_xml

test/test_snapshot.ml: Alcotest Array Bytes Filename Fun List Printf String Sys Xvi_core Xvi_workload Xvi_xml

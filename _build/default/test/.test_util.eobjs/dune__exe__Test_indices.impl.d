test/test_indices.ml: Alcotest Array List Option Printf String Xvi_core Xvi_util Xvi_workload Xvi_xml Xvi_xpath

test/test_path_index.mli:

test/test_indices.mli:

test/test_sct.ml: Alcotest List Option Printf QCheck2 QCheck_alcotest String Xvi_core

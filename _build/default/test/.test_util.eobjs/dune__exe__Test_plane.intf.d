test/test_plane.mli:

test/test_misc.ml: Alcotest Array Format List Option Printf String Sys Xvi_core Xvi_util Xvi_xml

test/test_xml.ml: Alcotest Array List Option Printf String Xvi_core Xvi_util Xvi_xml

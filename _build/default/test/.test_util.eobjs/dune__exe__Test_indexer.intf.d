test/test_indexer.mli:

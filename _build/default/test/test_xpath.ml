(* XPath subset tests: parser unit cases, print round-trips, evaluation
   against hand-checked documents, and the naive = indexed equivalence
   property over generated data sets. *)

module Xpath = Xvi_xpath.Xpath
module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Db = Xvi_core.Db

let site_doc =
  "<site><people>\
   <person id=\"p1\"><name><first>Arthur</first><family>Dent</family></name>\
   <age><decades>4</decades>2<years/></age><income>1000.50</income></person>\
   <person id=\"p2\"><name><first>Ford</first></name><age>41</age>\
   <income>2000</income></person>\
   <person id=\"p3\"><name><first>Zaphod</first></name><age>200</age></person>\
   </people>\
   <items><item code=\"a\"><price>49.99</price></item>\
   <item code=\"b\"><price>15</price></item>\
   <item code=\"c\"><price>60</price></item></items></site>"

let db = lazy (Db.of_xml_exn site_doc)

let eval_names expr =
  let d = Lazy.force db in
  let store = Db.store d in
  let t = Xpath.parse_exn expr in
  let naive = Xpath.eval store t in
  let indexed = Xpath.eval_indexed d t in
  Alcotest.(check bool)
    (Printf.sprintf "naive = indexed for %s" expr)
    true (naive = indexed);
  List.map
    (fun n ->
      match Store.kind store n with
      | Store.Element -> Store.name store n
      | Store.Attribute -> "@" ^ Store.name store n
      | Store.Text -> "#text:" ^ Store.text store n
      | _ -> "?")
    naive

let check expr expected () =
  Alcotest.(check (list string)) expr expected (eval_names expr)

let test_parse_errors () =
  List.iter
    (fun src ->
      match Xpath.parse src with
      | Ok _ -> Alcotest.failf "expected parse error for %S" src
      | Error _ -> ())
    [ ""; "//"; "//person["; "//person[age = ]"; "//person]"; "//person[@]";
      "//item[price >< 3]" ]

let test_print_roundtrip () =
  List.iter
    (fun src ->
      let t = Xpath.parse_exn src in
      let printed = Xpath.to_string t in
      let t2 = Xpath.parse_exn printed in
      Alcotest.(check string)
        (Printf.sprintf "stable print of %s" src)
        printed (Xpath.to_string t2))
    [
      "//person[.//age = 42]";
      "/site/people/person/@id";
      "//*[fn:data(name) = \"ArthurDent\"]";
      "//item[price >= 40 and price < 60]";
      "//a/b//c[text() = 'x'][d]";
    ]

let test_eval_indexed_uses_indices () =
  let d = Lazy.force db in
  let t = Xpath.parse_exn "//person[.//age = 42]" in
  ignore (Xpath.eval_indexed d t);
  let plan = Xpath.last_plan () in
  Alcotest.(check int) "double index probed" 1 plan.Xpath.used_double_index;
  let t = Xpath.parse_exn "//person[name/first = \"Ford\"]" in
  ignore (Xpath.eval_indexed d t);
  let plan = Xpath.last_plan () in
  Alcotest.(check int) "string index probed" 1 plan.Xpath.used_string_index

(* the paper's motivating queries *)
let test_age_42 = check "//person[.//age = 42]" [ "person" ]
let test_first_arthur = check "//person[name/first/text() = \"Arthur\"]" [ "person" ]
let test_fn_data = check "//*[fn:data(name) = \"ArthurDent\"]" [ "person" ]

let test_ranges =
  check "//item[price >= 40 and price < 60]" [ "item" ] (* only 49.99 *)

let test_attr_axis = check "/site/people/person/@id" [ "@id"; "@id"; "@id" ]
let test_attr_pred = check "//item[@code = \"b\"]/price" [ "price" ]
let test_text_step = check "//person/name/first/text()" [ "#text:Arthur"; "#text:Ford"; "#text:Zaphod" ]
let test_wildcard = check "//person[age > 100]/name/*" [ "first" ]
let test_or = check "//person[age = 41 or age = 200]" [ "person"; "person" ]
let test_neq = check "//item[price != 15]" [ "item"; "item" ]
let test_exists = check "//person[income]" [ "person"; "person" ]
let test_self_cmp = check "//age[. = 41]" [ "age" ]
let test_descendant_middle = check "/site//first" [ "first"; "first"; "first" ]
let test_string_lt = check "//person[name/first < \"Bzz\"]" [ "person" ]

(* fast-path coverage: eligible chains, merged range bounds, and shapes
   that must fall back (predicate on a middle step, top-level or) *)
let test_fastpath_child_chain =
  check "/site/people/person[name/first = \"Zaphod\"]" [ "person" ]

let test_fastpath_two_pred_lists = check "//item[price >= 40][price < 60]" [ "item" ]
let test_fallback_middle_pred = check "//person[age = 200]/name" [ "name" ]

let test_fallback_or =
  check "//person[age > 100 or income = 2000]" [ "person"; "person" ]

let test_fastpath_deep_operand =
  check "//person[.//first = \"Arthur\"]" [ "person" ]

(* no indexable value predicate: the element-name index seeds the
   candidates *)
let test_name_driven_no_pred = check "//price" [ "price"; "price"; "price" ]
let test_name_driven_exists = check "//person[income]" [ "person"; "person" ]
let test_name_driven_chain = check "/site/items/item" [ "item"; "item"; "item" ]

let test_name_index_counter () =
  let d = Lazy.force db in
  let t = Xpath.parse_exn "//person[income]" in
  ignore (Xpath.eval_indexed d t);
  let plan = Xpath.last_plan () in
  Alcotest.(check int) "name index used" 1 plan.Xpath.used_name_index

let test_doc_order () =
  let d = Lazy.force db in
  let store = Db.store d in
  let t = Xpath.parse_exn "//price" in
  let result = Xpath.eval store t in
  let values = List.map (fun n -> Store.string_value store n) result in
  Alcotest.(check (list string)) "document order" [ "49.99"; "15"; "60" ] values

(* equivalence property over generated documents *)
let test_equivalence_on_datasets () =
  let queries =
    [
      "//person[profile/age = 42]";
      "//item[quantity = 2]";
      "//open_auction[initial >= 100 and initial < 150]";
      "//person[name = \"Arthur Dent\"]";
      "//closed_auction[price < 10]";
      "//mail[from = to]"; (* Exists-style comparisons don't parse; skip *)
    ]
  in
  let xml = Xvi_workload.Xmark.generate ~seed:5 ~factor:0.03 () in
  let d = Db.of_xml_exn xml in
  let store = Db.store d in
  List.iter
    (fun q ->
      match Xpath.parse q with
      | Error _ -> () (* some probes intentionally unsupported *)
      | Ok t ->
          let naive = Xpath.eval store t in
          let indexed = Xpath.eval_indexed d t in
          Alcotest.(check bool)
            (Printf.sprintf "equiv %s (%d hits)" q (List.length naive))
            true (naive = indexed))
    queries

let () =
  Alcotest.run "xpath"
    [
      ( "parser",
        [
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "print roundtrip" `Quick test_print_roundtrip;
        ] );
      ( "eval",
        [
          Alcotest.test_case "age 42 (paper)" `Quick test_age_42;
          Alcotest.test_case "first Arthur (paper)" `Quick test_first_arthur;
          Alcotest.test_case "fn:data (paper)" `Quick test_fn_data;
          Alcotest.test_case "numeric ranges" `Quick test_ranges;
          Alcotest.test_case "attribute axis" `Quick test_attr_axis;
          Alcotest.test_case "attribute predicate" `Quick test_attr_pred;
          Alcotest.test_case "text() step" `Quick test_text_step;
          Alcotest.test_case "wildcard" `Quick test_wildcard;
          Alcotest.test_case "or" `Quick test_or;
          Alcotest.test_case "neq" `Quick test_neq;
          Alcotest.test_case "existence" `Quick test_exists;
          Alcotest.test_case "self comparison" `Quick test_self_cmp;
          Alcotest.test_case "descendant step" `Quick test_descendant_middle;
          Alcotest.test_case "string less-than" `Quick test_string_lt;
          Alcotest.test_case "document order" `Quick test_doc_order;
          Alcotest.test_case "plan counters" `Quick test_eval_indexed_uses_indices;
          Alcotest.test_case "fast path: child chain" `Quick test_fastpath_child_chain;
          Alcotest.test_case "fast path: merged bounds" `Quick test_fastpath_two_pred_lists;
          Alcotest.test_case "fallback: middle predicate" `Quick test_fallback_middle_pred;
          Alcotest.test_case "fallback: or" `Quick test_fallback_or;
          Alcotest.test_case "fast path: deep operand" `Quick test_fastpath_deep_operand;
          Alcotest.test_case "name-driven: no predicate" `Quick test_name_driven_no_pred;
          Alcotest.test_case "name-driven: exists" `Quick test_name_driven_exists;
          Alcotest.test_case "name-driven: child chain" `Quick test_name_driven_chain;
          Alcotest.test_case "name index counter" `Quick test_name_index_counter;
        ] );
      ( "equivalence",
        [ Alcotest.test_case "on XMark data" `Quick test_equivalence_on_datasets ] );
    ]

(* Tests for the type machines: DFA construction, the derived transition
   monoid / state combination table (paper Section 4), and the typed-key
   parsers. Acceptance is cross-checked against independent reference
   recognisers, and the SCT law against direct FSM runs. *)

module Dfa = Xvi_core.Dfa
module Sct = Xvi_core.Sct
module LT = Xvi_core.Lexical_types

let double = LT.double ()
let integer = LT.integer ()
let boolean = LT.boolean ()
let datetime = LT.datetime ()

(* --- reference recognisers (hand-rolled, no FSM machinery) --- *)

let ref_double s =
  let s = String.trim s in
  let n = String.length s in
  let i = ref 0 in
  let digits () =
    let start = !i in
    while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
      incr i
    done;
    !i > start
  in
  if n = 0 then false
  else begin
    if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
    let mantissa =
      if digits () then begin
        if !i < n && s.[!i] = '.' then begin
          incr i;
          ignore (digits ())
        end;
        true
      end
      else if !i < n && s.[!i] = '.' then begin
        incr i;
        digits ()
      end
      else false
    in
    mantissa
    && (if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
          incr i;
          if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
          digits ()
        end
        else true)
    && !i = n
    (* inner whitespace was already excluded by trim + this check *)
  end

let accepting spec s =
  Sct.is_accepting spec.LT.sct (Sct.of_string spec.LT.sct s)

let viable spec s = Sct.is_viable spec.LT.sct (Sct.of_string spec.LT.sct s)

let test_double_examples () =
  let yes =
    [ "42"; "42.0"; " +4.2E1"; "78.230"; "-0.5"; ".5"; "5."; "1e9"; "1E+9";
      "  7  "; "+.25"; "-1.5E-3" ]
  in
  let no =
    [ ""; "."; "E"; "e-"; "42 text"; "4 2"; "--1"; "1.2.3"; "1e"; "1e+";
      "abc"; "NaN"; "INF"; "0x1A"; "1,000"; "42text" ]
  in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "accept %S" s) true (accepting double s))
    yes;
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "reject %S" s) false (accepting double s))
    no

let test_double_potential () =
  (* paper: "." and "E+93 " are potential; "42 text" is not *)
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "viable %S" s) true (viable double s))
    [ "."; "E+93 "; "e-"; "-"; "+"; ""; "42"; " +3" ];
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "not viable %S" s) false (viable double s))
    [ "42 text"; "x"; "1.2.3"; "4 2"; ". ." ]

let test_paper_weight_example () =
  (* "78" + "." + "230" combine to the complete double 78.230 *)
  let sct = double.LT.sct in
  let s78 = Sct.of_string sct "78"
  and sdot = Sct.of_string sct "."
  and s230 = Sct.of_string sct "230" in
  let combined = Sct.compose sct (Sct.compose sct s78 sdot) s230 in
  Alcotest.(check bool) "accepting" true (Sct.is_accepting sct combined);
  Alcotest.(check int) "same as direct" (Sct.of_string sct "78.230") combined

let test_monoid_sizes () =
  (* the paper's hand-normalised double FSM has 60 states; the derived
     monoid is the same order of magnitude and fits a byte *)
  let size = Sct.size double.LT.sct in
  Alcotest.(check bool) "double monoid small" true (size > 10 && size <= 256);
  Alcotest.(check int) "double state bytes" 1 (Sct.state_bytes double.LT.sct);
  Alcotest.(check bool) "integer smaller than double" true
    (Sct.size integer.LT.sct < size);
  Alcotest.(check bool) "datetime monoid bounded" true
    (Sct.size datetime.LT.sct <= 4096)

let test_identity_element () =
  let sct = double.LT.sct in
  Alcotest.(check int) "of_string \"\"" (Sct.identity sct) (Sct.of_string sct "");
  Alcotest.(check bool) "identity viable" true (Sct.is_viable sct (Sct.identity sct));
  Alcotest.(check bool) "identity not accepting" false
    (Sct.is_accepting sct (Sct.identity sct));
  let s42 = Sct.of_string sct "42" in
  Alcotest.(check int) "left unit" s42 (Sct.compose sct (Sct.identity sct) s42);
  Alcotest.(check int) "right unit" s42 (Sct.compose sct s42 (Sct.identity sct))

let test_reject_absorbing () =
  let sct = double.LT.sct in
  let rej = Sct.of_string sct "xyz" in
  Alcotest.(check int) "reject id" (Sct.reject sct) rej;
  let s42 = Sct.of_string sct "42" in
  Alcotest.(check int) "left absorb" (Sct.reject sct) (Sct.compose sct rej s42);
  Alcotest.(check int) "right absorb" (Sct.reject sct) (Sct.compose sct s42 rej)

let test_witnesses () =
  let sct = double.LT.sct in
  (* every element's witness must map back to that element *)
  for id = 1 to Sct.size sct - 1 do
    let w = Sct.witness sct id in
    Alcotest.(check int) (Printf.sprintf "witness of %d (%S)" id w) id
      (Sct.of_string sct w)
  done

let test_dfa_state_view () =
  let sct = double.LT.sct in
  let dfa = Sct.dfa sct in
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "dfa state of %S" s)
        (Dfa.run dfa s)
        (Sct.dfa_state sct (Sct.of_string sct s)))
    [ "42"; "4.2"; "+"; " 1e5 "; "" ]

let test_integer_examples () =
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "accept %S" s) true (accepting integer s))
    [ "0"; "42"; "-7"; "+100"; " 12 " ];
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "reject %S" s) false (accepting integer s))
    [ "1.5"; ""; "-"; "1e3"; "abc"; "1 2" ]

let test_boolean_examples () =
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "accept %S" s) true (accepting boolean s))
    [ "true"; "false"; "1"; "0"; " true " ];
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "reject %S" s) false (accepting boolean s))
    [ "TRUE"; "yes"; "10"; "tru"; ""; "truefalse" ];
  (* mixed-content assembly: "tr" + "ue" is a complete boolean *)
  let sct = boolean.LT.sct in
  Alcotest.(check bool) "tr+ue" true
    (Sct.is_accepting sct
       (Sct.compose sct (Sct.of_string sct "tr") (Sct.of_string sct "ue")))

let test_datetime_examples () =
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "accept %S" s) true (accepting datetime s))
    [
      "1966-09-26T00:00:00";
      "2004-07-15T08:30:00Z";
      "2004-07-15T08:30:00.123Z";
      "2004-07-15T08:30:00+02:00";
      " 2004-07-15T08:30:00-05:30 ";
    ];
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "reject %S" s) false (accepting datetime s))
    [
      "2004-07-15"; "08:30:00"; "2004-07-15 08:30:00"; "2004-7-15T08:30:00";
      "not a date"; "2004-07-15T08:30"; "2004-07-15T08:30:00X";
    ]

let test_datetime_keys_ordered () =
  let parse s =
    match datetime.LT.parse s with
    | Some v -> v
    | None -> Alcotest.failf "unparseable %S" s
  in
  let ordered =
    [
      "1966-09-26T00:00:00Z";
      "1999-12-31T23:59:59Z";
      "2004-07-15T08:30:00+02:00";
      "2004-07-15T08:30:00Z";
      "2004-07-15T10:30:00Z";
      "2004-07-15T08:30:00-05:30";
    ]
  in
  let keys = List.map parse ordered in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "strictly increasing" true (a < b);
        check rest
    | _ -> ()
  in
  check keys;
  (* timezone application: 08:30+02:00 = 06:30Z *)
  Alcotest.(check (float 0.001)) "tz offset"
    (parse "2004-07-15T06:30:00Z")
    (parse "2004-07-15T08:30:00+02:00")

let decimal = LT.decimal ()
let date = LT.date ()
let time = LT.time ()

let test_decimal_examples () =
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "accept %S" s) true (accepting decimal s))
    [ "0"; "42"; "-7.25"; "+100."; ".5"; " 3.14 " ];
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "reject %S" s) false (accepting decimal s))
    [ "1e3"; "1E-2"; ""; "-"; "."; "abc"; "1.2.3" ]

let test_date_examples () =
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "accept %S" s) true (accepting date s))
    [ "1966-09-26"; "2004-07-15Z"; "2004-07-15+02:00"; " 2004-07-15-05:00 " ];
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "reject %S" s) false (accepting date s))
    [ "2004-7-15"; "2004-07-15T00:00:00"; "20040715"; "2004-07"; "x" ];
  (* keys ordered; tz applied *)
  let k s = Option.get (date.LT.parse s) in
  Alcotest.(check bool) "ordered" true (k "1966-09-26" < k "1966-09-27");
  Alcotest.(check bool) "tz shifts start instant" true
    (k "2004-07-15+02:00" < k "2004-07-15Z" && k "2004-07-15Z" < k "2004-07-15-05:00")

let test_time_examples () =
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "accept %S" s) true (accepting time s))
    [ "08:30:00"; "23:59:59.999"; "08:30:00Z"; "08:30:00+02:00"; " 00:00:00 " ];
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "reject %S" s) false (accepting time s))
    [ "8:30:00"; "08:30"; "08-30-00"; ""; "08:30:00X" ];
  let k s = Option.get (time.LT.parse s) in
  Alcotest.(check (float 0.001)) "tz" (k "06:30:00Z") (k "08:30:00+02:00");
  Alcotest.(check bool) "frac ordered" true (k "08:30:00.1" < k "08:30:00.2")

let test_all_specs_well_formed () =
  (* every registered machine derives an SCT whose identity is viable
     and whose accepting strings parse *)
  List.iter
    (fun spec ->
      let sct = spec.LT.sct in
      Alcotest.(check bool)
        (spec.LT.type_name ^ " identity viable")
        true
        (Sct.is_viable sct (Sct.identity sct));
      for id = 1 to Sct.size sct - 1 do
        if Sct.is_accepting sct id then begin
          let w = Sct.witness sct id in
          (* must never raise; None is allowed only for calendar types,
             whose DFA checks shape but not component ranges *)
          match spec.LT.parse w with
          | Some _ -> ()
          | None ->
              let calendar =
                List.mem spec.LT.type_name [ "xs:date"; "xs:time"; "xs:dateTime" ]
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s witness %S may only fail semantically"
                   spec.LT.type_name w)
                true calendar
        end
      done)
    (LT.all ())

let test_days_from_civil () =
  Alcotest.(check int) "epoch" 0 (LT.days_from_civil ~year:1970 ~month:1 ~day:1);
  Alcotest.(check int) "next day" 1 (LT.days_from_civil ~year:1970 ~month:1 ~day:2);
  Alcotest.(check int) "2000-03-01" 11017 (LT.days_from_civil ~year:2000 ~month:3 ~day:1);
  Alcotest.(check int) "leap day" 11016 (LT.days_from_civil ~year:2000 ~month:2 ~day:29);
  Alcotest.(check int) "before epoch" (-1) (LT.days_from_civil ~year:1969 ~month:12 ~day:31)

let test_parse_agrees_with_float () =
  List.iter
    (fun s ->
      match double.LT.parse s with
      | Some v ->
          Alcotest.(check (float 1e-9)) (Printf.sprintf "parse %S" s)
            (float_of_string (String.trim s)) v
      | None -> Alcotest.failf "parse of accepted %S failed" s)
    [ "42"; "-1.5E-3"; ".5"; " 78.230 " ]

(* --- QCheck properties --- *)

(* Strings over the double alphabet so acceptance is non-trivially hit *)
let gen_double_ish =
  QCheck2.Gen.(
    string_size ~gen:(oneofl [ '0'; '1'; '9'; '.'; '+'; '-'; 'e'; 'E'; ' '; 'x' ])
      (int_bound 12))

let prop_acceptance_matches_reference =
  QCheck2.Test.make ~name:"double acceptance = reference" ~count:5000
    gen_double_ish (fun s -> accepting double s = ref_double s)

let prop_sct_law =
  QCheck2.Test.make ~name:"SCT law: compose = of_string of concat" ~count:5000
    QCheck2.Gen.(pair gen_double_ish gen_double_ish)
    (fun (u, v) ->
      let sct = double.LT.sct in
      Sct.compose sct (Sct.of_string sct u) (Sct.of_string sct v)
      = Sct.of_string sct (u ^ v))

let prop_sct_law_datetime =
  let gen =
    QCheck2.Gen.(
      string_size ~gen:(oneofl [ '0'; '2'; '9'; '-'; ':'; 'T'; 'Z'; '.'; '+'; ' ' ])
        (int_bound 12))
  in
  QCheck2.Test.make ~name:"SCT law (dateTime)" ~count:3000
    QCheck2.Gen.(pair gen gen)
    (fun (u, v) ->
      let sct = datetime.LT.sct in
      Sct.compose sct (Sct.of_string sct u) (Sct.of_string sct v)
      = Sct.of_string sct (u ^ v))

let prop_accepting_parses =
  QCheck2.Test.make ~name:"accepting implies parseable" ~count:5000
    gen_double_ish (fun s ->
      if accepting double s then double.LT.parse s <> None else true)

let prop_compose_associative =
  QCheck2.Test.make ~name:"SCT compose associative" ~count:3000
    QCheck2.Gen.(triple gen_double_ish gen_double_ish gen_double_ish)
    (fun (a, b, c) ->
      let sct = double.LT.sct in
      let ea = Sct.of_string sct a
      and eb = Sct.of_string sct b
      and ec = Sct.of_string sct c in
      Sct.compose sct (Sct.compose sct ea eb) ec
      = Sct.compose sct ea (Sct.compose sct eb ec))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sct"
    [
      ( "double",
        [
          Alcotest.test_case "examples" `Quick test_double_examples;
          Alcotest.test_case "potential values" `Quick test_double_potential;
          Alcotest.test_case "paper weight example" `Quick test_paper_weight_example;
          Alcotest.test_case "monoid sizes" `Quick test_monoid_sizes;
          Alcotest.test_case "identity" `Quick test_identity_element;
          Alcotest.test_case "reject absorbing" `Quick test_reject_absorbing;
          Alcotest.test_case "witnesses" `Quick test_witnesses;
          Alcotest.test_case "dfa state view" `Quick test_dfa_state_view;
          Alcotest.test_case "parse agrees with float" `Quick test_parse_agrees_with_float;
        ] );
      ( "other types",
        [
          Alcotest.test_case "integer" `Quick test_integer_examples;
          Alcotest.test_case "boolean" `Quick test_boolean_examples;
          Alcotest.test_case "datetime" `Quick test_datetime_examples;
          Alcotest.test_case "datetime keys ordered" `Quick test_datetime_keys_ordered;
          Alcotest.test_case "decimal" `Quick test_decimal_examples;
          Alcotest.test_case "date" `Quick test_date_examples;
          Alcotest.test_case "time" `Quick test_time_examples;
          Alcotest.test_case "all specs well-formed" `Quick test_all_specs_well_formed;
          Alcotest.test_case "days_from_civil" `Quick test_days_from_civil;
        ] );
      ( "properties",
        qcheck
          [
            prop_acceptance_matches_reference;
            prop_sct_law;
            prop_sct_law_datetime;
            prop_accepting_parses;
            prop_compose_associative;
          ] );
    ]

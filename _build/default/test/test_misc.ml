(* Coverage for corners the main suites pass over: the DFA builder's
   error checking, the name pool, timing helpers, serializer output for
   comments/PIs, and hash pretty-printing. *)

module Dfa = Xvi_core.Dfa
module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let test_dfa_builder_errors () =
  let ok_classes = [ ("ab", 0); ("0-9", 1) ] in
  let base ?(n_states = 3) ?(start = 1) ?(sink = 0) ?(finals = [ 2 ])
      ?(classes = ok_classes) ?(transitions = [ (1, "ab", 2) ]) () =
    Dfa.build ~name:"t" ~n_states ~start ~sink ~finals ~classes ~transitions
  in
  ignore (base ());
  expect_invalid "state out of range" (fun () -> base ~finals:[ 9 ] ());
  expect_invalid "final sink" (fun () -> base ~finals:[ 0 ] ());
  expect_invalid "overlapping classes" (fun () ->
      base ~classes:[ ("ab", 0); ("bc", 1) ] ());
  expect_invalid "mislabelled class" (fun () ->
      base ~classes:[ ("ab", 1); ("0-9", 0) ] ());
  expect_invalid "duplicate class" (fun () ->
      base ~classes:[ ("ab", 0); ("ab", 1) ] ());
  expect_invalid "unknown class in transition" (fun () ->
      base ~transitions:[ (1, "zz", 2) ] ());
  expect_invalid "duplicate transition" (fun () ->
      base ~transitions:[ (1, "ab", 2); (1, "ab", 1) ] ());
  expect_invalid "escape from sink" (fun () ->
      base ~transitions:[ (0, "ab", 1) ] ())

let test_dfa_running () =
  let dfa =
    Dfa.build ~name:"ab*" ~n_states:3 ~start:1 ~sink:0 ~finals:[ 2 ]
      ~classes:[ ("a", 0); ("b", 1) ]
      ~transitions:[ (1, "a", 2); (2, "b", 2) ]
  in
  Alcotest.(check bool) "a" true (Dfa.accepts dfa "a");
  Alcotest.(check bool) "abbb" true (Dfa.accepts dfa "abbb");
  Alcotest.(check bool) "b" false (Dfa.accepts dfa "b");
  Alcotest.(check bool) "ax sticks in sink" false (Dfa.accepts dfa "axa");
  Alcotest.(check int) "classes incl other" 3 (Dfa.n_classes dfa);
  Alcotest.(check (option char)) "repr a" (Some 'a') (Dfa.class_repr dfa 0);
  let reach = Dfa.reachable dfa in
  Alcotest.(check bool) "start reachable" true reach.(1);
  let co = Dfa.co_accessible dfa in
  Alcotest.(check bool) "sink not co-accessible" false co.(0)

let test_name_pool () =
  let pool = Xvi_xml.Name_pool.create () in
  let a = Xvi_xml.Name_pool.intern pool "alpha" in
  let b = Xvi_xml.Name_pool.intern pool "beta" in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check int) "idempotent" a (Xvi_xml.Name_pool.intern pool "alpha");
  Alcotest.(check string) "inverse" "beta" (Xvi_xml.Name_pool.name pool b);
  Alcotest.(check (option int)) "find" (Some a) (Xvi_xml.Name_pool.find pool "alpha");
  Alcotest.(check (option int)) "miss" None (Xvi_xml.Name_pool.find pool "gamma");
  Alcotest.(check int) "count" 2 (Xvi_xml.Name_pool.count pool);
  (* growth beyond the initial capacity *)
  for i = 0 to 199 do
    ignore (Xvi_xml.Name_pool.intern pool (Printf.sprintf "n%d" i))
  done;
  Alcotest.(check int) "count after growth" 202 (Xvi_xml.Name_pool.count pool);
  Alcotest.(check string) "old names survive" "alpha"
    (Xvi_xml.Name_pool.name pool a);
  expect_invalid "unknown id" (fun () -> Xvi_xml.Name_pool.name pool 999)

let test_timing () =
  let x, ms = Xvi_util.Timing.time_ms (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (ms >= 0.0);
  let mean = Xvi_util.Timing.repeat_ms ~warmup:2 5 (fun () -> ignore (Sys.opaque_identity 1)) in
  Alcotest.(check bool) "mean sane" true (mean >= 0.0 && mean < 1000.0);
  let med = Xvi_util.Timing.median_ms 5 (fun () -> ignore (Sys.opaque_identity 1)) in
  Alcotest.(check bool) "median sane" true (med >= 0.0 && med < 1000.0)

let test_serializer_misc () =
  let doc =
    "<?xml version=\"1.0\"?><!--top--><root a=\"1\"><?pi data?><!--in-->x<e/></root>"
  in
  let store = Parser.parse_exn doc in
  let out = Xvi_xml.Serializer.document_to_string store in
  List.iter
    (fun fragment ->
      if
        not
          (let n = String.length fragment and h = String.length out in
           let rec go i =
             i + n <= h && (String.sub out i n = fragment || go (i + 1))
           in
           go 0)
      then Alcotest.failf "output %S lacks %S" out fragment)
    [ "<?xml"; "<!--top-->"; "<?pi data?>"; "<!--in-->"; "<e/>"; "a=\"1\"" ];
  (* reparse gives the same store shape *)
  let again = Parser.parse_exn out in
  Alcotest.(check int) "comment kept" (Store.count_of_kind store Store.Comment)
    (Store.count_of_kind again Store.Comment);
  Alcotest.(check int) "pi kept" (Store.count_of_kind store Store.Pi)
    (Store.count_of_kind again Store.Pi)

let test_hash_pp () =
  let h = Xvi_core.Hash.hash "Arthur" in
  let rendered = Format.asprintf "%a" Xvi_core.Hash.pp h in
  Alcotest.(check string) "figure 3 rendering" "365de1d|03" rendered;
  Alcotest.(check int) "compare consistent" 0
    (Xvi_core.Hash.compare h (Xvi_core.Hash.hash "Arthur"))

let test_store_arg_errors () =
  let store = Parser.parse_exn "<a>x</a>" in
  let root = Option.get (Store.first_child store Store.document) in
  let text = (Store.text_nodes store).(0) in
  expect_invalid "append under text" (fun () ->
      Store.append_element store ~parent:text "b");
  expect_invalid "attribute on text" (fun () ->
      Store.append_attribute store ~element:text ~name:"x" ~value:"1");
  expect_invalid "delete document" (fun () ->
      Store.delete_subtree store Store.document);
  expect_invalid "text of element" (fun () -> ignore (Store.text store root));
  expect_invalid "name of text" (fun () -> ignore (Store.name store text));
  expect_invalid "insert before foreign sibling" (fun () ->
      let other = Store.append_element store ~parent:root "c" in
      ignore (Store.insert_element store ~parent:Store.document ~before:other "d"))

let () =
  Alcotest.run "misc"
    [
      ( "dfa",
        [
          Alcotest.test_case "builder errors" `Quick test_dfa_builder_errors;
          Alcotest.test_case "running" `Quick test_dfa_running;
        ] );
      ( "support",
        [
          Alcotest.test_case "name pool" `Quick test_name_pool;
          Alcotest.test_case "timing" `Quick test_timing;
          Alcotest.test_case "serializer misc" `Quick test_serializer_misc;
          Alcotest.test_case "hash pp" `Quick test_hash_pp;
          Alcotest.test_case "store argument errors" `Quick test_store_arg_errors;
        ] );
    ]

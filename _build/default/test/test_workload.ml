(* Workload generator tests: determinism, well-formedness, Table 1 shape
   bands, the engineered Figure 11 collision clusters, and update
   workload properties. *)

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module TG = Xvi_workload.Text_gen
module Prng = Xvi_util.Prng

let test_determinism () =
  let a = Xvi_workload.Xmark.generate ~seed:9 ~factor:0.02 () in
  let b = Xvi_workload.Xmark.generate ~seed:9 ~factor:0.02 () in
  Alcotest.(check bool) "same seed, same doc" true (String.equal a b);
  let c = Xvi_workload.Xmark.generate ~seed:10 ~factor:0.02 () in
  Alcotest.(check bool) "different seed differs" false (String.equal a c)

let generators =
  [
    ("xmark", fun ~factor -> Xvi_workload.Xmark.generate ~seed:3 ~factor ());
    ("epageo", fun ~factor -> Xvi_workload.Datasets.epageo ~seed:3 ~factor ());
    ("dblp", fun ~factor -> Xvi_workload.Datasets.dblp ~seed:3 ~factor ());
    ("psd", fun ~factor -> Xvi_workload.Datasets.psd ~seed:3 ~factor ());
    ("wiki", fun ~factor -> Xvi_workload.Datasets.wiki ~seed:3 ~factor ());
  ]

let test_well_formed () =
  List.iter
    (fun (name, gen) ->
      match Parser.parse (gen ~factor:0.02) with
      | Ok store ->
          Alcotest.(check bool)
            (Printf.sprintf "%s non-trivial" name)
            true
            (Store.live_count store > 100)
      | Error e ->
          Alcotest.failf "%s ill-formed: %s" name (Parser.error_to_string e))
    generators

let test_size_scales () =
  List.iter
    (fun (name, gen) ->
      let small = String.length (gen ~factor:0.01) in
      let large = String.length (gen ~factor:0.04) in
      Alcotest.(check bool)
        (Printf.sprintf "%s scales (%d -> %d)" name small large)
        true
        (float_of_int large > 2.5 *. float_of_int small))
    generators

(* Table 1 shape bands: text-node share and double density, per data set. *)
let shape name gen ~factor =
  let store = Parser.parse_exn (gen ~factor) in
  let ti = Xvi_core.Typed_index.create (Xvi_core.Lexical_types.double ()) store in
  let st = Xvi_core.Typed_index.stats ti store in
  let total = Store.live_count store - 1 in
  let texts = Store.count_of_kind store Store.Text in
  ignore name;
  ( 100 * texts / total,
    100 * st.Xvi_core.Typed_index.complete_text_nodes / total,
    st.Xvi_core.Typed_index.complete_non_leaves )

let check_band name lo hi v =
  if v < lo || v > hi then
    Alcotest.failf "%s: %d outside [%d, %d]" name v lo hi

let test_table1_bands () =
  let t, d, nl =
    shape "xmark" (fun ~factor -> Xvi_workload.Xmark.generate ~seed:4 ~factor ())
      ~factor:0.05
  in
  check_band "xmark text%" 45 70 t;
  check_band "xmark dbl%" 4 12 d;
  Alcotest.(check int) "xmark non-leaf doubles" 0 nl;
  let t, d, nl =
    shape "wiki" (fun ~factor -> Xvi_workload.Datasets.wiki ~seed:4 ~factor ())
      ~factor:0.01
  in
  check_band "wiki text%" 40 65 t;
  check_band "wiki dbl%" 0 1 d;
  Alcotest.(check int) "wiki non-leaf doubles" 0 nl;
  let _, d, nl =
    shape "dblp" (fun ~factor -> Xvi_workload.Datasets.dblp ~seed:4 ~factor ())
      ~factor:0.02
  in
  check_band "dblp dbl%" 6 14 d;
  Alcotest.(check bool) "dblp has a few non-leaf doubles" true (nl >= 1);
  let _, d, nl =
    shape "psd" (fun ~factor -> Xvi_workload.Datasets.psd ~seed:4 ~factor ())
      ~factor:0.02
  in
  check_band "psd dbl%" 2 8 d;
  Alcotest.(check bool) "psd has non-leaf doubles" true (nl >= 5)

let test_suite_composition () =
  let suite = Xvi_workload.Datasets.suite ~scale:0.002 () in
  Alcotest.(check int) "eight entries" 8 (List.length suite);
  Alcotest.(check (list string)) "paper order"
    [ "XMark1"; "XMark2"; "XMark4"; "XMark8"; "EPAGeo"; "DBLP"; "PSD"; "Wiki" ]
    (List.map (fun e -> e.Xvi_workload.Datasets.name) suite);
  (* XMark sizes roughly double along the series *)
  let sizes =
    List.filter_map
      (fun e ->
        if String.length e.Xvi_workload.Datasets.name >= 5 then
          Some (String.length e.Xvi_workload.Datasets.xml)
        else None)
      suite
  in
  match sizes with
  | x1 :: x2 :: _ ->
      Alcotest.(check bool) "XMark2 about twice XMark1" true
        (float_of_int x2 > 1.5 *. float_of_int x1)
  | _ -> Alcotest.fail "missing sizes"

let test_colliding_urls () =
  let tg = TG.create (Prng.create 6) in
  let urls = TG.colliding_urls tg 9 in
  Alcotest.(check int) "nine urls" 9 (List.length urls);
  Alcotest.(check int) "all distinct" 9
    (List.length (List.sort_uniq compare urls));
  let h = Xvi_core.Hash.hash (List.hd urls) in
  List.iter
    (fun u ->
      Alcotest.(check bool) "all collide" true
        (Xvi_core.Hash.equal h (Xvi_core.Hash.hash u)))
    urls;
  List.iter
    (fun u ->
      Alcotest.(check bool) "looks like a url" true
        (String.length u > 30 && String.sub u 0 11 = "http://www."))
    urls

let test_wiki_contains_collisions () =
  let xml = Xvi_workload.Datasets.wiki ~seed:5 ~factor:0.01 () in
  let store = Parser.parse_exn xml in
  let by_hash = Hashtbl.create 1024 in
  Store.iter_pre store (fun n ->
      if Store.kind store n = Store.Text then begin
        let s = Store.text store n in
        let h = Xvi_core.Hash.to_int (Xvi_core.Hash.hash s) in
        let set =
          match Hashtbl.find_opt by_hash h with
          | Some set -> set
          | None ->
              let set = Hashtbl.create 4 in
              Hashtbl.add by_hash h set;
              set
        in
        Hashtbl.replace set s ()
      end);
  let max_cluster =
    Hashtbl.fold (fun _ set acc -> max acc (Hashtbl.length set)) by_hash 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "collision clusters present (max %d)" max_cluster)
    true (max_cluster >= 4)

let test_update_workload () =
  let xml = Xvi_workload.Xmark.generate ~seed:8 ~factor:0.02 () in
  let store = Parser.parse_exn xml in
  let updates =
    Xvi_workload.Update_workload.random_text_updates ~seed:1 store ~count:200
  in
  Alcotest.(check int) "count honoured" 200 (List.length updates);
  let nodes = List.map fst updates in
  Alcotest.(check int) "distinct victims" 200
    (List.length (List.sort_uniq compare nodes));
  List.iter
    (fun (n, v) ->
      Alcotest.(check bool) "victims are text nodes" true
        (Store.kind store n = Store.Text);
      Alcotest.(check bool) "fresh value nonempty" true (String.length v > 0))
    updates;
  (* clamped when count exceeds available texts *)
  let small = Parser.parse_exn "<a><b>x</b><c>y</c></a>" in
  let u = Xvi_workload.Update_workload.random_text_updates ~seed:1 small ~count:50 in
  Alcotest.(check int) "clamped" 2 (List.length u);
  (* deterministic *)
  let u1 = Xvi_workload.Update_workload.random_text_updates ~seed:2 store ~count:10 in
  let u2 = Xvi_workload.Update_workload.random_text_updates ~seed:2 store ~count:10 in
  Alcotest.(check bool) "deterministic" true (u1 = u2)

let test_text_gen_values () =
  let tg = TG.create (Prng.create 1) in
  (* money parses as a double *)
  let spec = Xvi_core.Lexical_types.double () in
  for _ = 1 to 50 do
    let m = TG.money tg () in
    Alcotest.(check bool) (Printf.sprintf "money %s" m) true (spec.Xvi_core.Lexical_types.parse m <> None)
  done;
  (* iso datetimes accepted by the dateTime machine *)
  let dt = Xvi_core.Lexical_types.datetime () in
  for _ = 1 to 50 do
    let s = TG.datetime_iso tg in
    let sct = dt.Xvi_core.Lexical_types.sct in
    Alcotest.(check bool) (Printf.sprintf "datetime %s" s) true
      (Xvi_core.Sct.is_accepting sct (Xvi_core.Sct.of_string sct s))
  done;
  (* slash dates are NOT doubles *)
  for _ = 1 to 20 do
    let d = TG.date_slash tg in
    let sct = spec.Xvi_core.Lexical_types.sct in
    Alcotest.(check bool) (Printf.sprintf "slash date %s rejected" d) true
      (not (Xvi_core.Sct.is_viable sct (Xvi_core.Sct.of_string sct d)))
  done;
  (* amino sequences have the right alphabet and length *)
  let seq = TG.amino_sequence tg 200 in
  Alcotest.(check int) "length" 200 (String.length seq);
  String.iter
    (fun c -> Alcotest.(check bool) "amino letter" true (String.contains "ACDEFGHIKLMNPQRSTVWY" c))
    seq

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "well-formed" `Quick test_well_formed;
          Alcotest.test_case "size scales" `Quick test_size_scales;
          Alcotest.test_case "Table 1 bands" `Slow test_table1_bands;
          Alcotest.test_case "suite composition" `Quick test_suite_composition;
        ] );
      ( "collisions",
        [
          Alcotest.test_case "engineered urls" `Quick test_colliding_urls;
          Alcotest.test_case "wiki clusters" `Quick test_wiki_contains_collisions;
        ] );
      ( "updates",
        [
          Alcotest.test_case "random text updates" `Quick test_update_workload;
          Alcotest.test_case "text_gen values" `Quick test_text_gen_values;
        ] );
    ]

(* Tests for the DB2-style path-specific baseline index: pattern
   parsing, selection semantics, maintenance, and the coverage contrast
   with the paper's generic indices. *)

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module PI = Xvi_core.Path_index
module TI = Xvi_core.Typed_index
module LT = Xvi_core.Lexical_types

let site_doc =
  "<site><people>\
   <person id=\"1\"><age>42</age><income>1000</income></person>\
   <person id=\"2\"><details><age>41</age></details></person>\
   </people>\
   <animals><animal><age>7</age></animal></animals></site>"

let ok_or_fail what = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" what e

let test_pattern_errors () =
  let store = Parser.parse_exn "<a/>" in
  List.iter
    (fun pattern ->
      match PI.create ~pattern (LT.double ()) store with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "pattern %S should be rejected" pattern)
    [ ""; "//"; "//person/"; "//@id/person"; "//per son"; "//person//" ]

let test_selection () =
  let store = Parser.parse_exn site_doc in
  (* descendant step: both nested ages under person, not the animal's *)
  let pi = PI.create_exn ~pattern:"//person//age" (LT.double ()) store in
  ok_or_fail "validate" (PI.validate pi store);
  Alcotest.(check int) "two person ages" 2 (PI.entry_count pi);
  Alcotest.(check int) "42 found" 1 (List.length (PI.range ~lo:42.0 ~hi:42.0 pi));
  Alcotest.(check int) "7 not covered" 0 (List.length (PI.range ~lo:7.0 ~hi:7.0 pi));
  (* child step: only the direct age *)
  let direct = PI.create_exn ~pattern:"//person/age" (LT.double ()) store in
  Alcotest.(check int) "one direct age" 1 (PI.entry_count direct);
  (* rooted pattern *)
  let rooted = PI.create_exn ~pattern:"/site/animals/animal/age" (LT.double ()) store in
  Alcotest.(check int) "animal age" 1 (PI.entry_count rooted);
  (* attribute pattern *)
  let attr = PI.create_exn ~pattern:"//person/@id" (LT.integer ()) store in
  Alcotest.(check int) "ids indexed" 2 (PI.entry_count attr);
  Alcotest.(check int) "id = 2" 1 (List.length (PI.range ~lo:2.0 ~hi:2.0 attr))

let test_type_specificity () =
  (* the paper's point (ii): a double path index cannot answer string
     lookups — non-castable values are simply absent *)
  let store =
    Parser.parse_exn "<r><x>42</x><x>not a number</x><x>13</x></r>"
  in
  let pi = PI.create_exn ~pattern:"//x" (LT.double ()) store in
  Alcotest.(check int) "only castable nodes" 2 (PI.entry_count pi)

let test_maintenance () =
  let store = Parser.parse_exn site_doc in
  let pi = PI.create_exn ~pattern:"//person//age" (LT.double ()) store in
  let texts = Store.text_nodes store in
  (* "42" -> "43" *)
  Store.set_text store texts.(0) "43";
  PI.update_texts pi store [ texts.(0) ];
  ok_or_fail "validate after update" (PI.validate pi store);
  Alcotest.(check int) "43 present" 1 (List.length (PI.range ~lo:43.0 ~hi:43.0 pi));
  Alcotest.(check int) "42 gone" 0 (List.length (PI.range ~lo:42.0 ~hi:42.0 pi));
  (* make it non-numeric: drops out *)
  Store.set_text store texts.(0) "unknown";
  PI.update_texts pi store [ texts.(0) ];
  ok_or_fail "validate after breakage" (PI.validate pi store);
  Alcotest.(check int) "one left" 1 (PI.entry_count pi)

let test_delete_insert () =
  let store = Parser.parse_exn site_doc in
  let pi = PI.create_exn ~pattern:"//person//age" (LT.double ()) store in
  (* delete person 2's details subtree *)
  let details =
    let acc = ref [] in
    Store.iter_pre store (fun n ->
        if Store.kind store n = Store.Element && Store.name store n = "details"
        then acc := n :: !acc);
    List.hd !acc
  in
  let removed = ref [] in
  Store.iter_pre ~root:details store (fun m -> removed := m :: !removed);
  Store.delete_subtree store details;
  PI.on_delete pi store ~removed:!removed;
  ok_or_fail "validate after delete" (PI.validate pi store);
  Alcotest.(check int) "one age left" 1 (PI.entry_count pi);
  (* insert a new matching subtree *)
  let person1 =
    List.hd
      (List.filter
         (fun n ->
           Store.kind store n = Store.Element && Store.name store n = "person")
         (let acc = ref [] in
          Store.iter_pre store (fun n -> acc := n :: !acc);
          List.rev !acc))
  in
  (match Parser.parse_fragment store ~parent:person1 "<age>39</age>" with
  | Ok roots -> PI.on_insert pi store ~roots
  | Error e -> Alcotest.failf "fragment: %s" (Parser.error_to_string e));
  ok_or_fail "validate after insert" (PI.validate pi store);
  Alcotest.(check int) "back to two" 2 (PI.entry_count pi)

let test_coverage_contrast () =
  (* the generic index answers every path; the path index only its own *)
  let xml = Xvi_workload.Xmark.generate ~seed:77 ~factor:0.02 () in
  let store = Parser.parse_exn xml in
  let generic = TI.create (LT.double ()) store in
  let pi = PI.create_exn ~pattern:"//open_auction/initial" (LT.double ()) store in
  ok_or_fail "path validate" (PI.validate pi store);
  (* every path-index entry is also in the generic index *)
  List.iter
    (fun n ->
      Alcotest.(check bool) "generic covers path entries" true
        (TI.is_complete generic n))
    (PI.range pi);
  (* but the generic index also knows about prices, which the path
     index cannot see *)
  let st = TI.stats generic store in
  Alcotest.(check bool) "generic strictly larger" true
    (st.TI.complete_nodes > PI.entry_count pi);
  Alcotest.(check bool) "path index non-trivial" true (PI.entry_count pi > 0)

let () =
  Alcotest.run "path_index"
    [
      ( "path-index",
        [
          Alcotest.test_case "pattern errors" `Quick test_pattern_errors;
          Alcotest.test_case "selection" `Quick test_selection;
          Alcotest.test_case "type specificity" `Quick test_type_specificity;
          Alcotest.test_case "maintenance" `Quick test_maintenance;
          Alcotest.test_case "delete/insert" `Quick test_delete_insert;
          Alcotest.test_case "coverage contrast" `Quick test_coverage_contrast;
        ] );
    ]

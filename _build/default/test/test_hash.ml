(* Tests for the paper's hash function H and combination function C
   (Section 3, Figures 2-4), including the worked "Arthur" example of
   Figure 3 and QCheck properties for the algebraic laws. *)

module Hash = Xvi_core.Hash

let int_of_hash h = Hash.to_int h
let hash_eq = Alcotest.testable Hash.pp Hash.equal

(* Figure 3 derivation: XOR-ing the 7-bit codes of A r t h u r at
   offsets 0 5 10 15 20 25 (with wrap-around for the final r) sets
   c-array bits {0,2,3,4,9,10,11,12,14,15,16,18,21,22,24,25} — the bit
   row printed in the paper — and leaves offset 3. *)
let arthur_bits =
  [ 0; 2; 3; 4; 9; 10; 11; 12; 14; 15; 16; 18; 21; 22; 24; 25 ]

let test_figure3_example () =
  let carr = List.fold_left (fun acc b -> acc lor (1 lsl b)) 0 arthur_bits in
  let expected = (carr lsl 5) lor 3 in
  Alcotest.(check int) "H(Arthur)" expected (int_of_hash (Hash.hash "Arthur"))

let test_empty_string () =
  Alcotest.check hash_eq "H(\"\") = empty" Hash.empty (Hash.hash "")

let test_offset_is_length_times5_mod27 () =
  for len = 0 to 120 do
    let s = String.make len 'q' in
    Alcotest.(check int)
      (Printf.sprintf "offset of length %d" len)
      (5 * len mod 27)
      (Hash.offset (Hash.hash s))
  done

let test_seven_bit_masking () =
  (* the paper hashes the 7 least significant bits of each character *)
  let low = String.make 1 (Char.chr 0x41) in
  let high = String.make 1 (Char.chr 0xC1) in
  Alcotest.check hash_eq "bit 7 ignored" (Hash.hash low) (Hash.hash high)

let test_known_combinations () =
  List.iter
    (fun (a, b) ->
      Alcotest.check hash_eq
        (Printf.sprintf "H(%S ^ %S)" a b)
        (Hash.hash (a ^ b))
        (Hash.combine (Hash.hash a) (Hash.hash b)))
    [
      ("Arthur", "Dent");
      ("", "Dent");
      ("Arthur", "");
      ("", "");
      ("a", "bcdefghijklmnopqrstuvwxyz0123456789");
      ("ArthurDent1966-09-26", "4278.230");
      (String.make 100 'x', String.make 53 'y');
    ]

let test_person_example () =
  (* h<name> = C(h<first>, h<family>), and the element hash equals the
     hash of the concatenated string value (paper Section 3). *)
  let h_first = Hash.hash "Arthur" and h_family = Hash.hash "Prefect" in
  Alcotest.check hash_eq "name" (Hash.hash "ArthurPrefect")
    (Hash.combine h_first h_family);
  let h_person =
    Hash.combine
      (Hash.combine h_first h_family)
      (Hash.combine (Hash.hash "1966-09-26")
         (Hash.combine (Hash.hash "42") (Hash.hash "78.230")))
  in
  Alcotest.check hash_eq "person"
    (Hash.hash "ArthurPrefect1966-09-264278.230")
    h_person

let test_inverse () =
  List.iter
    (fun s ->
      let h = Hash.hash s in
      Alcotest.check hash_eq "right inverse" Hash.empty
        (Hash.combine h (Hash.inverse h));
      Alcotest.check hash_eq "left inverse" Hash.empty
        (Hash.combine (Hash.inverse h) h))
    [ ""; "a"; "Arthur"; "some much longer string with spaces" ]

let test_replace () =
  (* parent = prefix . child . suffix; replacing the child's hash without
     re-reading the suffix *)
  let prefix = "AB" and old_child = "42" and suffix = "xyz" in
  let new_child = "99999" in
  let h_parent = Hash.hash (prefix ^ old_child ^ suffix) in
  let updated =
    Hash.replace ~old_child:(Hash.hash old_child)
      ~new_child:(Hash.hash new_child) ~prefix:(Hash.hash prefix) h_parent
  in
  Alcotest.check hash_eq "delta update" (Hash.hash (prefix ^ new_child ^ suffix)) updated

let test_pack_unpack () =
  let h = Hash.hash "roundtrip" in
  Alcotest.check hash_eq "pack/unpack" h
    (Hash.pack ~c_array:(Hash.c_array h) ~offset:(Hash.offset h));
  Alcotest.(check bool) "32-bit range" true
    (int_of_hash h >= 0 && int_of_hash h < 1 lsl 32)

let test_engineered_collisions () =
  (* Characters 27 positions apart share a c-array offset: swapping two
     distinct characters at stride 27 must collide (the Figure 11 URL
     anomaly). *)
  let base = Bytes.of_string (String.init 54 (fun i -> Char.chr (97 + (i * 7 mod 26)))) in
  let swapped = Bytes.copy base in
  let a = Bytes.get swapped 3 and b = Bytes.get swapped 30 in
  Alcotest.(check bool) "chars differ" true (a <> b);
  Bytes.set swapped 3 b;
  Bytes.set swapped 30 a;
  Alcotest.(check bool) "strings differ" true (Bytes.to_string base <> Bytes.to_string swapped);
  Alcotest.check hash_eq "hashes collide"
    (Hash.hash (Bytes.to_string base))
    (Hash.hash (Bytes.to_string swapped))

(* --- QCheck properties --- *)

let gen_string = QCheck2.Gen.(string_size ~gen:printable (int_bound 60))

let prop_homomorphism =
  QCheck2.Test.make ~name:"H(a^b) = C(H a, H b)" ~count:2000
    QCheck2.Gen.(pair gen_string gen_string)
    (fun (a, b) ->
      Hash.equal (Hash.hash (a ^ b)) (Hash.combine (Hash.hash a) (Hash.hash b)))

let prop_associative =
  QCheck2.Test.make ~name:"C associative" ~count:2000
    QCheck2.Gen.(triple gen_string gen_string gen_string)
    (fun (a, b, c) ->
      let ha = Hash.hash a and hb = Hash.hash b and hc = Hash.hash c in
      Hash.equal
        (Hash.combine (Hash.combine ha hb) hc)
        (Hash.combine ha (Hash.combine hb hc)))

let prop_identity =
  QCheck2.Test.make ~name:"empty is the unit" ~count:500 gen_string (fun s ->
      let h = Hash.hash s in
      Hash.equal (Hash.combine h Hash.empty) h
      && Hash.equal (Hash.combine Hash.empty h) h)

let prop_inverse =
  QCheck2.Test.make ~name:"group inverse" ~count:500 gen_string (fun s ->
      let h = Hash.hash s in
      Hash.equal (Hash.combine h (Hash.inverse h)) Hash.empty)

let prop_replace =
  QCheck2.Test.make ~name:"delta replace" ~count:500
    QCheck2.Gen.(quad gen_string gen_string gen_string gen_string)
    (fun (prefix, old_c, suffix, new_c) ->
      let h = Hash.hash (prefix ^ old_c ^ suffix) in
      Hash.equal
        (Hash.replace ~old_child:(Hash.hash old_c) ~new_child:(Hash.hash new_c)
           ~prefix:(Hash.hash prefix) h)
        (Hash.hash (prefix ^ new_c ^ suffix)))

let prop_fold_any_grouping =
  (* combining a list of pieces with any parenthesisation equals hashing
     the concatenation — the induction of Section 3 *)
  QCheck2.Test.make ~name:"any grouping" ~count:500
    QCheck2.Gen.(list_size (int_range 0 8) gen_string)
    (fun pieces ->
      let whole = Hash.hash (String.concat "" pieces) in
      let left =
        List.fold_left
          (fun acc p -> Hash.combine acc (Hash.hash p))
          Hash.empty pieces
      in
      let right =
        List.fold_right
          (fun p acc -> Hash.combine (Hash.hash p) acc)
          pieces Hash.empty
      in
      Hash.equal whole left && Hash.equal whole right)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "hash"
    [
      ( "unit",
        [
          Alcotest.test_case "Figure 3 example" `Quick test_figure3_example;
          Alcotest.test_case "empty string" `Quick test_empty_string;
          Alcotest.test_case "offset arithmetic" `Quick test_offset_is_length_times5_mod27;
          Alcotest.test_case "7-bit masking" `Quick test_seven_bit_masking;
          Alcotest.test_case "known combinations" `Quick test_known_combinations;
          Alcotest.test_case "person example" `Quick test_person_example;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "replace" `Quick test_replace;
          Alcotest.test_case "pack/unpack" `Quick test_pack_unpack;
          Alcotest.test_case "engineered collisions" `Quick test_engineered_collisions;
        ] );
      ( "properties",
        qcheck
          [
            prop_homomorphism;
            prop_associative;
            prop_identity;
            prop_inverse;
            prop_replace;
            prop_fold_any_grouping;
          ] );
    ]

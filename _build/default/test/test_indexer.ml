(* Tests for the creation (Figure 7) and update (Figure 8) skeleton
   algorithms: the single-pass stack-driven creation must agree with the
   obviously-correct recursive definition on arbitrary documents, and
   updates must leave fields identical to a from-scratch rebuild. *)

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Indexer = Xvi_core.Indexer
module Hash = Xvi_core.Hash
module Prng = Xvi_util.Prng

let person_doc =
  "<person><name><first>Arthur</first><family>Dent</family></name>\
   <birthday>1966-09-26</birthday><age><decades>4</decades>2<years/></age>\
   <weight><kilos>78</kilos>.<grams>230</grams></weight></person>"

let fields_agree ops store a b =
  Store.iter_pre store (fun n ->
      if not (ops.Indexer.equal (Indexer.get a n) (Indexer.get b n)) then
        Alcotest.failf "field mismatch at node %d" n)

let test_create_person () =
  let store = Parser.parse_exn person_doc in
  let fields = Indexer.create Indexer.hash_ops store in
  (* every element's field equals the hash of its XDM string value *)
  Store.iter_pre store (fun n ->
      match Store.kind store n with
      | Store.Element | Store.Document | Store.Text | Store.Attribute ->
          Alcotest.(check bool)
            (Printf.sprintf "node %d hash = H(string value)" n)
            true
            (Hash.equal (Indexer.get fields n)
               (Hash.hash (Store.string_value store n)))
      | _ -> ())

let test_create_empty_document () =
  let store = Parser.parse_exn "<a/>" in
  let fields = Indexer.create Indexer.hash_ops store in
  Alcotest.(check bool) "root field is identity" true
    (Hash.equal (Indexer.get fields Store.document) Hash.empty)

let test_create_no_text_subtrees () =
  let store = Parser.parse_exn "<a><b><c/><d/></b><e>x</e></a>" in
  let fields = Indexer.create Indexer.hash_ops store in
  let reference = Indexer.create_reference Indexer.hash_ops store in
  fields_agree Indexer.hash_ops store fields reference

(* Random document builder with plenty of nasty shapes: empty elements,
   mixed content, attribute-only elements, comments, deep chains. *)
let random_doc rng =
  let buf = Buffer.create 512 in
  let texts =
    [| "alpha"; "42"; "3.14"; "."; "E+9"; "-"; "x y"; "0"; "left right" |]
  in
  let rec element depth =
    let name = Printf.sprintf "n%d" (Prng.int rng 6) in
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    if Prng.int rng 4 = 0 then
      Buffer.add_string buf
        (Printf.sprintf " a%d=\"%s\"" (Prng.int rng 3)
           texts.(Prng.int rng (Array.length texts)));
    if Prng.int rng 6 = 0 then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      let children = Prng.int rng (if depth > 5 then 2 else 4) in
      for _ = 1 to children do
        match Prng.int rng 5 with
        | 0 | 1 ->
            Buffer.add_string buf
              (Xvi_xml.Serializer.escape_text texts.(Prng.int rng (Array.length texts)));
            (* avoid adjacent text nodes merging ambiguity by a comment *)
            Buffer.add_string buf "<!--sep-->"
        | _ -> element (depth + 1)
      done;
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_char buf '>'
    end
  in
  element 0;
  Buffer.contents buf

let test_create_matches_reference_random () =
  for seed = 1 to 80 do
    let rng = Prng.create seed in
    let store = Parser.parse_exn ~strip_ws:false (random_doc rng) in
    let fast = Indexer.create Indexer.hash_ops store in
    let reference = Indexer.create_reference Indexer.hash_ops store in
    fields_agree Indexer.hash_ops store fast reference;
    (* same for the double SCT ops *)
    let ops = Indexer.sct_ops (Xvi_core.Lexical_types.double ()).Xvi_core.Lexical_types.sct in
    let fast = Indexer.create ops store in
    let reference = Indexer.create_reference ops store in
    fields_agree ops store fast reference
  done

let test_create_multi_matches_individual () =
  (* one shared pass (paper Section 5) computes the same fields as
     separate passes, for machines of different field types *)
  for seed = 1 to 30 do
    let rng = Prng.create (500 + seed) in
    let store = Parser.parse_exn ~strip_ws:false (random_doc rng) in
    let spec = Xvi_core.Lexical_types.double () in
    let sct_ops = Indexer.sct_ops spec.Xvi_core.Lexical_types.sct in
    let hash_fields = Indexer.empty_fields Indexer.hash_ops store in
    let state_fields = Indexer.empty_fields sct_ops store in
    Indexer.create_multi store
      [ Indexer.Packed (Indexer.hash_ops, hash_fields);
        Indexer.Packed (sct_ops, state_fields) ];
    fields_agree Indexer.hash_ops store hash_fields
      (Indexer.create Indexer.hash_ops store);
    fields_agree sct_ops store state_fields (Indexer.create sct_ops store)
  done

let test_update_equals_rebuild () =
  for seed = 1 to 40 do
    let rng = Prng.create (1000 + seed) in
    let store = Parser.parse_exn ~strip_ws:false (random_doc rng) in
    let fields = Indexer.create Indexer.hash_ops store in
    let texts = Store.text_nodes store in
    if Array.length texts > 0 then begin
      (* update a random subset of text nodes *)
      let k = 1 + Prng.int rng (Array.length texts) in
      let picks = Prng.sample_distinct rng k (Array.length texts) in
      let victims = Array.to_list (Array.map (fun i -> texts.(i)) picks) in
      List.iter
        (fun n -> Store.set_text store n (Printf.sprintf "new%d" (Prng.int rng 100)))
        victims;
      let result = Indexer.update Indexer.hash_ops store fields ~texts:victims () in
      let rebuilt = Indexer.create_reference Indexer.hash_ops store in
      fields_agree Indexer.hash_ops store fields rebuilt;
      (* change records must be deepest-first and accurate *)
      let rec check_desc = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "deepest first" true
              (a.Indexer.level >= b.Indexer.level);
            check_desc rest
        | _ -> ()
      in
      check_desc result.Indexer.changes;
      List.iter
        (fun c ->
          Alcotest.(check bool) "new field recorded" true
            (Hash.equal c.Indexer.new_field (Indexer.get fields c.Indexer.node)))
        result.Indexer.changes
    end
  done

let test_update_attribute_no_propagation () =
  let store = Parser.parse_exn "<a x=\"old\"><b>t</b></a>" in
  let fields = Indexer.create Indexer.hash_ops store in
  let a = Option.get (Store.first_child store Store.document) in
  let attr = List.hd (Store.attributes store a) in
  let root_before = Indexer.get fields a in
  Store.set_text store attr "new";
  let result = Indexer.update Indexer.hash_ops store fields ~texts:[ attr ] () in
  Alcotest.(check int) "only the attribute changed" 1
    (List.length result.Indexer.changes);
  Alcotest.(check bool) "element hash untouched" true
    (Hash.equal root_before (Indexer.get fields a));
  Alcotest.(check bool) "attribute hash correct" true
    (Hash.equal (Hash.hash "new") (Indexer.get fields attr))

let test_update_touched_includes_unchanged_states () =
  (* "78" -> "80" keeps the SCT state; the touched list must still cover
     the node and its ancestors *)
  let store = Parser.parse_exn "<w><k>78</k>.<g>230</g></w>" in
  let spec = Xvi_core.Lexical_types.double () in
  let ops = Indexer.sct_ops spec.Xvi_core.Lexical_types.sct in
  let fields = Indexer.create ops store in
  let texts = Store.text_nodes store in
  Store.set_text store texts.(0) "80";
  let result = Indexer.update ops store fields ~texts:[ texts.(0) ] () in
  Alcotest.(check int) "no state changes" 0 (List.length result.Indexer.changes);
  (* touched: the text, <k>, <w>, document *)
  Alcotest.(check int) "touched count" 4 (List.length result.Indexer.touched);
  let levels = List.map snd result.Indexer.touched in
  Alcotest.(check (list int)) "deepest first" [ 3; 2; 1; 0 ] levels

let test_structural_update () =
  let store = Parser.parse_exn "<a><b>x</b><c>y</c></a>" in
  let fields = Indexer.create Indexer.hash_ops store in
  let a = Option.get (Store.first_child store Store.document) in
  let b = List.hd (Store.children store a) in
  Store.delete_subtree store b;
  let result =
    Indexer.update Indexer.hash_ops store fields ~texts:[] ~structural:[ a ] ()
  in
  ignore result;
  Alcotest.(check bool) "root hash reflects deletion" true
    (Hash.equal (Hash.hash "y") (Indexer.get fields a))

let test_compute_subtree () =
  let store = Parser.parse_exn "<a><b>x</b></a>" in
  let fields = Indexer.create Indexer.hash_ops store in
  let a = Option.get (Store.first_child store Store.document) in
  (match Parser.parse_fragment store ~parent:a "<c>new<d>stuff</d></c>" with
  | Ok [ c ] ->
      Indexer.compute_subtree Indexer.hash_ops store fields c;
      Alcotest.(check bool) "subtree root" true
        (Hash.equal (Hash.hash "newstuff") (Indexer.get fields c));
      let result =
        Indexer.update Indexer.hash_ops store fields ~texts:[] ~structural:[ a ] ()
      in
      ignore result;
      Alcotest.(check bool) "parent recombined" true
        (Hash.equal (Hash.hash "xnewstuff") (Indexer.get fields a))
  | Ok _ -> Alcotest.fail "expected one root"
  | Error e -> Alcotest.failf "fragment: %s" (Xvi_xml.Parser.error_to_string e))

let () =
  Alcotest.run "indexer"
    [
      ( "create",
        [
          Alcotest.test_case "person document" `Quick test_create_person;
          Alcotest.test_case "empty document" `Quick test_create_empty_document;
          Alcotest.test_case "textless subtrees" `Quick test_create_no_text_subtrees;
          Alcotest.test_case "matches reference (random)" `Quick
            test_create_matches_reference_random;
          Alcotest.test_case "shared pass = individual passes" `Quick
            test_create_multi_matches_individual;
        ] );
      ( "update",
        [
          Alcotest.test_case "equals rebuild (random)" `Quick test_update_equals_rebuild;
          Alcotest.test_case "attribute no propagation" `Quick
            test_update_attribute_no_propagation;
          Alcotest.test_case "touched covers state-stable value changes" `Quick
            test_update_touched_includes_unchanged_states;
          Alcotest.test_case "structural" `Quick test_structural_update;
          Alcotest.test_case "compute subtree" `Quick test_compute_subtree;
        ] );
    ]

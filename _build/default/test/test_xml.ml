(* XML substrate tests: parser, store navigation, XDM string values,
   updates, tombstones, pre/size/level snapshots, serialisation
   round-trips (including a property over generated random documents). *)

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Ser = Xvi_xml.Serializer
module Prng = Xvi_util.Prng

let parse = Parser.parse_exn

let person_doc =
  "<person><name><first>Arthur</first><family>Dent</family></name>\
   <birthday>1966-09-26</birthday><age><decades>4</decades>2<years/></age>\
   <weight><kilos>78</kilos>.<grams>230</grams></weight></person>"

let root store =
  match
    List.find_opt
      (fun n -> Store.kind store n = Store.Element)
      (Store.children store Store.document)
  with
  | Some r -> r
  | None -> Alcotest.fail "no root element"

(* --- parser --- *)

let test_parse_basic () =
  let s = parse "<a><b>hi</b><c x=\"1\" y='2'/></a>" in
  let a = root s in
  Alcotest.(check string) "root name" "a" (Store.name s a);
  match Store.children s a with
  | [ b; c ] ->
      Alcotest.(check string) "b" "b" (Store.name s b);
      Alcotest.(check string) "b text" "hi" (Store.string_value s b);
      Alcotest.(check int) "c attrs" 2 (List.length (Store.attributes s c));
      let x = List.hd (Store.attributes s c) in
      Alcotest.(check string) "attr name" "x" (Store.name s x);
      Alcotest.(check string) "attr value" "1" (Store.text s x)
  | l -> Alcotest.failf "expected 2 children, got %d" (List.length l)

let test_parse_entities () =
  let s = parse "<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos; &#65;&#x42;</a>" in
  Alcotest.(check string) "decoded" "<x> & \"y\" 'z' AB"
    (Store.string_value s (root s))

let test_parse_numeric_refs_utf8 () =
  let s = parse "<a>&#955;&#28450;&#128512;</a>" in
  (* λ (2 bytes), 漢 (3 bytes), 😀 (4 bytes) *)
  Alcotest.(check string) "utf8" "\xce\xbb\xe6\xbc\xa2\xf0\x9f\x98\x80"
    (Store.string_value s (root s))

let test_parse_cdata () =
  let s = parse "<a><![CDATA[<raw> & stuff]]></a>" in
  Alcotest.(check string) "cdata" "<raw> & stuff" (Store.string_value s (root s))

let test_parse_comments_pis () =
  let s = parse "<?xml version=\"1.0\"?><!-- top --><a><!-- in --><?proc data?>x</a>" in
  Alcotest.(check string) "string value ignores comments/PIs" "x"
    (Store.string_value s (root s));
  let kinds = List.map (Store.kind s) (Store.children s (root s)) in
  Alcotest.(check int) "children" 3 (List.length kinds);
  Alcotest.(check int) "comment count" 2 (Store.count_of_kind s Store.Comment);
  Alcotest.(check int) "pi count" 1 (Store.count_of_kind s Store.Pi)

let test_parse_doctype () =
  let s = parse "<!DOCTYPE doc [ <!ELEMENT doc (#PCDATA)> ]><doc>ok</doc>" in
  Alcotest.(check string) "after doctype" "ok" (Store.string_value s (root s))

let test_parse_whitespace_strip () =
  let s = parse "<a>\n  <b>x</b>\n  <c>y</c>\n</a>" in
  Alcotest.(check int) "ws text dropped" 2 (Store.count_of_kind s Store.Text);
  let s2 = Parser.parse_exn ~strip_ws:false "<a>\n  <b>x</b>\n</a>" in
  Alcotest.(check int) "ws kept" 3 (Store.count_of_kind s2 Store.Text)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let expect_error src fragment =
  match Parser.parse src with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" src
  | Error e ->
      let msg = Parser.error_to_string e in
      if not (contains ~needle:fragment msg) then
        Alcotest.failf "error %S does not mention %S" msg fragment

let test_parse_errors () =
  expect_error "<a><b></a>" "mismatched";
  expect_error "<a>" "unexpected end";
  expect_error "<a></a><b></b>" "after the root";
  expect_error "<a x=1></a>" "quoted";
  expect_error "<a>&unknown;</a>" "unknown entity";
  expect_error "" "expected root";
  expect_error "<a><b attr=\"x\"</a>" "name"

(* --- store navigation and values --- *)

let test_navigation () =
  let s = parse person_doc in
  let person = root s in
  let kids = Store.children s person in
  Alcotest.(check int) "4 children" 4 (List.length kids);
  let name = List.nth kids 0 and age = List.nth kids 2 in
  Alcotest.(check string) "name" "name" (Store.name s name);
  Alcotest.(check (option int)) "parent" (Some person) (Store.parent s name);
  Alcotest.(check bool) "ancestor" true
    (Store.is_ancestor s ~ancestor:person (List.hd (Store.children s name)));
  Alcotest.(check bool) "not self-ancestor" false
    (Store.is_ancestor s ~ancestor:person person);
  Alcotest.(check int) "level of person" 1 (Store.level s person);
  let first = List.hd (Store.children s name) in
  Alcotest.(check int) "level of first" 4
    (Store.level s (List.hd (Store.children s first)));
  Alcotest.(check (option int)) "prev sibling" (Some name)
    (Store.prev_sibling s (List.nth kids 1));
  Alcotest.(check (option int)) "last child" (Some (List.nth kids 3))
    (Store.last_child s person);
  Alcotest.(check int) "subtree size of age" 5 (Store.subtree_size s age)

let test_string_values () =
  let s = parse person_doc in
  let person = root s in
  Alcotest.(check string) "person" "ArthurDent1966-09-264278.230"
    (Store.string_value s person);
  let weight = List.nth (Store.children s person) 3 in
  Alcotest.(check string) "weight" "78.230" (Store.string_value s weight);
  let age = List.nth (Store.children s person) 2 in
  Alcotest.(check string) "age mixed content" "42" (Store.string_value s age);
  Alcotest.(check string) "document" "ArthurDent1966-09-264278.230"
    (Store.string_value s Store.document)

let test_text_nodes_order () =
  let s = parse person_doc in
  let texts = Store.text_nodes s in
  let values = Array.to_list (Array.map (Store.text s) texts) in
  Alcotest.(check (list string)) "doc order"
    [ "Arthur"; "Dent"; "1966-09-26"; "4"; "2"; "78"; "."; "230" ]
    values

let test_iter_pre_attributes_first () =
  let s = parse "<a x=\"1\"><b y=\"2\">t</b></a>" in
  let order = ref [] in
  Store.iter_pre s (fun n -> order := n :: !order);
  let kinds = List.rev_map (Store.kind s) !order in
  Alcotest.(check bool) "doc first" true (List.hd kinds = Store.Document);
  (* a, @x, b, @y, text *)
  Alcotest.(check int) "count" 6 (List.length kinds)

let test_set_text () =
  let s = parse person_doc in
  let texts = Store.text_nodes s in
  Store.set_text s texts.(1) "Prefect";
  Alcotest.(check string) "updated" "ArthurPrefect1966-09-264278.230"
    (Store.string_value s (root s));
  Alcotest.check_raises "element refuses set_text"
    (Invalid_argument "Store.set_text: node 1 has the wrong kind") (fun () ->
      Store.set_text s (root s) "x")

let test_delete_subtree () =
  let s = parse person_doc in
  let person = root s in
  let before = Store.live_count s in
  let age = List.nth (Store.children s person) 2 in
  Store.delete_subtree s age;
  Alcotest.(check int) "live count drops by 5" (before - 5) (Store.live_count s);
  Alcotest.(check int) "3 children left" 3 (List.length (Store.children s person));
  Alcotest.(check string) "string value excludes deleted"
    "ArthurDent1966-09-2678.230"
    (Store.string_value s person);
  Alcotest.(check bool) "tombstoned" false (Store.is_live s age);
  (* node ids of survivors unchanged *)
  Alcotest.(check string) "survivor intact" "weight"
    (Store.name s (List.nth (Store.children s person) 2))

let test_insert () =
  let s = parse "<a><b/><d/></a>" in
  let a = root s in
  let d = List.nth (Store.children s a) 1 in
  let c = Store.insert_element s ~parent:a ~before:d "c" in
  let names = List.map (Store.name s) (Store.children s a) in
  Alcotest.(check (list string)) "order" [ "b"; "c"; "d" ] names;
  let t = Store.insert_text s ~parent:c "mid" in
  Alcotest.(check string) "text" "mid" (Store.text s t);
  Alcotest.(check string) "value" "mid" (Store.string_value s a)

let test_parse_fragment () =
  let s = parse "<a><b/></a>" in
  let a = root s in
  (match Parser.parse_fragment s ~parent:a "<c>x</c><d/>" with
  | Ok roots -> Alcotest.(check int) "two roots" 2 (List.length roots)
  | Error e -> Alcotest.failf "fragment: %s" (Parser.error_to_string e));
  Alcotest.(check (list string)) "children" [ "b"; "c"; "d" ]
    (List.map (Store.name s) (Store.children s a))

let test_pre_size_level () =
  let s = parse "<a x=\"1\"><b><c>t</c></b><d/></a>" in
  let psl = Store.pre_size_level s in
  (* document, a, @x, b, c, text, d *)
  Alcotest.(check int) "entries" 7 (Array.length psl);
  let _, doc_size, doc_level = psl.(0) in
  Alcotest.(check int) "doc size" 6 doc_size;
  Alcotest.(check int) "doc level" 0 doc_level;
  let _, a_size, a_level = psl.(1) in
  Alcotest.(check int) "a size" 5 a_size;
  Alcotest.(check int) "a level" 1 a_level;
  (* sizes are consistent: node at pre p spans the next size entries *)
  let _, b_size, _ = psl.(3) in
  Alcotest.(check int) "b size" 2 b_size

let test_compare_order () =
  let s = parse "<a x=\"1\" y=\"2\"><b>t1</b><c><d/>t2</c></a>" in
  (* collect in document order via iter_pre, then check compare_order
     agrees pairwise *)
  let order = ref [] in
  Store.iter_pre s (fun n -> order := n :: !order);
  let order = Array.of_list (List.rev !order) in
  let n = Array.length order in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let c = Store.compare_order s order.(i) order.(j) in
      let expect = compare i j in
      if (c < 0) <> (expect < 0) || (c = 0) <> (expect = 0) then
        Alcotest.failf "compare_order(%d, %d) = %d, expected sign of %d"
          order.(i) order.(j) c expect
    done
  done

let test_counts_bytes () =
  let s = parse person_doc in
  Alcotest.(check int) "elements" 11 (Store.count_of_kind s Store.Element);
  Alcotest.(check int) "texts" 8 (Store.count_of_kind s Store.Text);
  Alcotest.(check int) "live = range" (Store.node_range s) (Store.live_count s);
  Alcotest.(check bool) "storage positive" true (Store.storage_bytes s > 0);
  Alcotest.(check int) "text bytes"
    (String.length "ArthurDent1966-09-264278.230")
    (Store.text_bytes s)

let test_compact () =
  let s = parse person_doc in
  let person = root s in
  let age = List.nth (Store.children s person) 2 in
  Store.delete_subtree s age;
  ignore (Store.insert_element s ~parent:person "appendix");
  let fresh, map = Store.compact s in
  (* same live content, dense ids *)
  Alcotest.(check int) "live counts" (Store.live_count s) (Store.live_count fresh);
  Alcotest.(check int) "no slack" (Store.node_range fresh) (Store.live_count fresh);
  Alcotest.(check string) "same document"
    (Ser.document_to_string ~decl:false s)
    (Ser.document_to_string ~decl:false fresh);
  (* the mapping relates equal subtrees and drops tombstones *)
  Alcotest.(check (option int)) "deleted unmapped" None (map age);
  Store.iter_pre s (fun n ->
      match map n with
      | None -> Alcotest.failf "live node %d unmapped" n
      | Some n' ->
          Alcotest.(check string)
            (Printf.sprintf "string value of %d preserved" n)
            (Store.string_value s n)
            (Store.string_value fresh n'));
  Alcotest.(check (option int)) "out of range" None (map 99_999)

let test_db_compact () =
  let db = Xvi_core.Db.of_xml_exn person_doc in
  let store = Xvi_core.Db.store db in
  let person =
    Option.get (Store.first_child store Store.document)
  in
  Xvi_core.Db.delete_subtree db (List.nth (Store.children store person) 2);
  let db', map = Xvi_core.Db.compact db in
  (match Xvi_core.Db.validate db' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "compacted validate: %s" e);
  Alcotest.(check int) "lookup still works" 1
    (List.length (Xvi_core.Db.lookup_string db' "ArthurDent"));
  (* mapped node answers the same lookup *)
  let name_old = List.hd (Xvi_core.Db.lookup_string db "ArthurDent") in
  Alcotest.(check (list int)) "mapping consistent"
    [ Option.get (map name_old) ]
    (Xvi_core.Db.lookup_string db' "ArthurDent")

(* --- serialisation round-trip --- *)

let test_roundtrip_exact () =
  List.iter
    (fun doc ->
      let s = parse doc in
      Alcotest.(check string) "roundtrip" doc (Ser.to_string s (root s)))
    [
      person_doc;
      "<a x=\"1\" y=\"2\"><b/>text<c>more</c></a>";
      "<r>&amp;&lt;&gt;</r>";
    ]

let test_escape () =
  Alcotest.(check string) "text" "a&amp;b&lt;c&gt;d" (Ser.escape_text "a&b<c>d");
  Alcotest.(check string) "attr" "a&amp;b&lt;c&quot;d" (Ser.escape_attr "a&b<c\"d")

(* Random document generator (direct store construction), then
   serialise-parse-serialise must be a fixed point. *)
let random_store seed =
  let rng = Prng.create seed in
  let s = Store.create () in
  let words = [| "alpha"; "beta"; "42"; "3.14"; " x "; "a&b"; "<t>"; "" |] in
  let fresh_text () = words.(Prng.int rng (Array.length words)) in
  let rec build parent depth budget =
    if !budget > 0 then begin
      let n_children = Prng.int rng (if depth > 4 then 2 else 4) in
      for _ = 1 to n_children do
        if !budget > 0 then begin
          decr budget;
          match Prng.int rng 10 with
          | 0 | 1 | 2 | 3 ->
              let txt = fresh_text () in
              if txt <> "" then ignore (Store.append_text s ~parent txt)
          | 4 ->
              if Store.kind s parent = Store.Element then
                ignore
                  (Store.append_attribute s ~element:parent
                     ~name:(Printf.sprintf "a%d" (Prng.int rng 5))
                     ~value:(fresh_text ()))
          | 5 -> ignore (Store.append_comment s ~parent "note")
          | _ ->
              let e =
                Store.append_element s ~parent
                  (Printf.sprintf "e%d" (Prng.int rng 8))
              in
              build e (depth + 1) budget
        end
      done
    end
  in
  let root = Store.append_element s ~parent:Store.document "root" in
  let budget = ref (20 + Prng.int rng 150) in
  build root 0 budget;
  s

let test_compare_order_random () =
  for seed = 1 to 20 do
    let s = random_store (900 + seed) in
    let order = ref [] in
    Store.iter_pre s (fun n -> order := n :: !order);
    let order = Array.of_list (List.rev !order) in
    let sorted = Array.copy order in
    (* shuffle then re-sort with compare_order *)
    let rng = Prng.create seed in
    Prng.shuffle rng sorted;
    Array.sort (Store.compare_order s) sorted;
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (sorted = order)
  done

let test_roundtrip_random () =
  for seed = 1 to 50 do
    let s = random_store seed in
    let rendered = Ser.document_to_string ~decl:false s in
    let reparsed = Parser.parse_exn ~strip_ws:false rendered in
    let rendered2 = Ser.document_to_string ~decl:false reparsed in
    Alcotest.(check string) (Printf.sprintf "fixpoint seed %d" seed) rendered rendered2;
    Alcotest.(check string)
      (Printf.sprintf "string value preserved seed %d" seed)
      (Store.string_value s Store.document)
      (Store.string_value reparsed Store.document)
  done

let () =
  Alcotest.run "xml"
    [
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "numeric refs utf8" `Quick test_parse_numeric_refs_utf8;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "comments and PIs" `Quick test_parse_comments_pis;
          Alcotest.test_case "doctype" `Quick test_parse_doctype;
          Alcotest.test_case "whitespace strip" `Quick test_parse_whitespace_strip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "fragment" `Quick test_parse_fragment;
        ] );
      ( "store",
        [
          Alcotest.test_case "navigation" `Quick test_navigation;
          Alcotest.test_case "string values" `Quick test_string_values;
          Alcotest.test_case "text nodes order" `Quick test_text_nodes_order;
          Alcotest.test_case "iter_pre" `Quick test_iter_pre_attributes_first;
          Alcotest.test_case "set_text" `Quick test_set_text;
          Alcotest.test_case "delete subtree" `Quick test_delete_subtree;
          Alcotest.test_case "insert" `Quick test_insert;
          Alcotest.test_case "pre/size/level" `Quick test_pre_size_level;
          Alcotest.test_case "compare_order" `Quick test_compare_order;
          Alcotest.test_case "compare_order random" `Quick test_compare_order_random;
          Alcotest.test_case "counts and bytes" `Quick test_counts_bytes;
          Alcotest.test_case "compact" `Quick test_compact;
          Alcotest.test_case "db compact" `Quick test_db_compact;
        ] );
      ( "serialiser",
        [
          Alcotest.test_case "roundtrip exact" `Quick test_roundtrip_exact;
          Alcotest.test_case "escaping" `Quick test_escape;
          Alcotest.test_case "roundtrip random" `Quick test_roundtrip_random;
        ] );
    ]

examples/catalog_search.mli:

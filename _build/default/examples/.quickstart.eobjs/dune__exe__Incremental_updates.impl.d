examples/incremental_updates.ml: Array List Printf Xvi_core Xvi_txn Xvi_util Xvi_workload Xvi_xml

examples/quickstart.mli:

examples/quickstart.ml: List Printf Xvi_core Xvi_xml Xvi_xpath

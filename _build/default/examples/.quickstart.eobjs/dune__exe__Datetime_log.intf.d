examples/datetime_log.mli:

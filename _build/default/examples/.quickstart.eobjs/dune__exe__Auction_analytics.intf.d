examples/auction_analytics.mli:

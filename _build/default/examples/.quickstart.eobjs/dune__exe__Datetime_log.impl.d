examples/datetime_log.ml: List Option Printf Xvi_core Xvi_util Xvi_workload Xvi_xml

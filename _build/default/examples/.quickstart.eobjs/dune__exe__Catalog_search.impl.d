examples/catalog_search.ml: Filename List Printf Sys Xvi_core Xvi_util Xvi_workload Xvi_xml Xvi_xpath

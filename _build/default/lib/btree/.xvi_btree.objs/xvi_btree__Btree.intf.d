lib/btree/btree.mli:

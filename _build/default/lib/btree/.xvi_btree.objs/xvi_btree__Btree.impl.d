lib/btree/btree.ml: Array Float Int List Printf String

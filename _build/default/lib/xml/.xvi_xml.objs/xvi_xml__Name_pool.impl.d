lib/xml/name_pool.ml: Array Hashtbl Printf String

lib/xml/parser.mli: Store

lib/xml/serializer.mli: Buffer Store

lib/xml/serializer.ml: Buffer List Store String

lib/xml/store.ml: Array Buffer Hashtbl List Name_pool Printf String Xvi_util

lib/xml/pre_plane.ml: Array List Printf Store

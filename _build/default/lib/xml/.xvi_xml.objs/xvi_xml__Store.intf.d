lib/xml/store.mli: Name_pool

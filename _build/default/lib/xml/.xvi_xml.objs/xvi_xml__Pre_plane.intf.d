lib/xml/pre_plane.mli: Store

lib/xml/name_pool.mli:

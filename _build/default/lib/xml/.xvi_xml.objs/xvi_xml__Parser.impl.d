lib/xml/parser.ml: Buffer Char List Printf Store String

(** XML serialisation — the inverse of {!Parser}.

    Used by round-trip tests, the CLI, and the workload generators'
    on-disk output. *)

val escape_text : string -> string
(** Escape [&], [<], [>] for character data. *)

val escape_attr : string -> string
(** Escape ampersand, less-than and double-quote for double-quoted
    attribute values. *)

val to_buffer : Buffer.t -> Store.t -> Store.node -> unit
(** Serialise the subtree rooted at a node. Serialising the document node
    emits all its children (comments and PIs included). *)

val to_string : Store.t -> Store.node -> string

val document_to_string : ?decl:bool -> Store.t -> string
(** Whole document; [decl] (default [true]) prefixes an XML declaration. *)

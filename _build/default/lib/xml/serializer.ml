let escape buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' when not attr -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf ~attr:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf ~attr:true s;
  Buffer.contents buf

let rec emit buf store n =
  match Store.kind store n with
  | Store.Deleted -> ()
  | Store.Document -> List.iter (emit buf store) (Store.children store n)
  | Store.Text -> escape buf ~attr:false (Store.text store n)
  | Store.Comment ->
      Buffer.add_string buf "<!--";
      Buffer.add_string buf (Store.text store n);
      Buffer.add_string buf "-->"
  | Store.Pi ->
      Buffer.add_string buf "<?";
      Buffer.add_string buf (Store.name store n);
      let body = Store.text store n in
      if String.length body > 0 then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf body
      end;
      Buffer.add_string buf "?>"
  | Store.Attribute ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Store.name store n);
      Buffer.add_string buf "=\"";
      escape buf ~attr:true (Store.text store n);
      Buffer.add_char buf '"'
  | Store.Element ->
      Buffer.add_char buf '<';
      Buffer.add_string buf (Store.name store n);
      List.iter (emit buf store) (Store.attributes store n);
      let kids = Store.children store n in
      if kids = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter (emit buf store) kids;
        Buffer.add_string buf "</";
        Buffer.add_string buf (Store.name store n);
        Buffer.add_char buf '>'
      end

let to_buffer buf store n = emit buf store n

let to_string store n =
  let buf = Buffer.create 1024 in
  emit buf store n;
  Buffer.contents buf

let document_to_string ?(decl = true) store =
  let buf = Buffer.create 4096 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  emit buf store Store.document;
  Buffer.add_char buf '\n';
  Buffer.contents buf

lib/txn/txn.ml: Hashtbl List Printf Xvi_core Xvi_xml

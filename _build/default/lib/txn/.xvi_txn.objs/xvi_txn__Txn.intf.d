lib/txn/txn.mli: Xvi_core Xvi_xml

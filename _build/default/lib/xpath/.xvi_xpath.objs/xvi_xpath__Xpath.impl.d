lib/xpath/xpath.ml: Buffer Hashtbl Lazy List Printf String Xvi_core Xvi_xml

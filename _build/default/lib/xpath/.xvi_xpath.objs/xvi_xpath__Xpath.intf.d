lib/xpath/xpath.mli: Xvi_core Xvi_xml

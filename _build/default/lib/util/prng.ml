type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Mask to OCaml's non-negative int range; modulo bias is negligible
     for bounds << 2^62. *)
  let raw = Int64.to_int (int64 t) land max_int in
  raw mod bound

let in_range t lo hi =
  if hi < lo then invalid_arg "Prng.in_range: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let raw = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. (raw /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_weighted t arr =
  let total = Array.fold_left (fun acc (w, _) -> acc + w) 0 arr in
  if total <= 0 then invalid_arg "Prng.choose_weighted: non-positive total";
  let pick = int t total in
  let rec go i acc =
    let w, v = arr.(i) in
    if pick < acc + w then v else go (i + 1) (acc + w)
  in
  go 0 0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_distinct t k n =
  if k > n then invalid_arg "Prng.sample_distinct: k > n";
  if k * 3 >= n then begin
    (* Dense case: shuffle a full permutation prefix. *)
    let arr = Array.init n (fun i -> i) in
    shuffle t arr;
    Array.sub arr 0 k
  end
  else begin
    (* Sparse case: rejection sampling into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let cand = int t n in
      if not (Hashtbl.mem seen cand) then begin
        Hashtbl.add seen cand ();
        out.(!filled) <- cand;
        incr filled
      end
    done;
    out
  end

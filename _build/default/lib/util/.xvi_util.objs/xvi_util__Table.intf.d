lib/util/table.mli:

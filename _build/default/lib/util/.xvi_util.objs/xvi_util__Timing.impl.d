lib/util/timing.ml: Array Unix

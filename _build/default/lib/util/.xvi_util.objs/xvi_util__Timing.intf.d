lib/util/timing.mli:

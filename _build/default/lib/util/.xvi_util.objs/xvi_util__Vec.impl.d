lib/util/vec.ml: Array Printf

lib/util/vec.mli:

lib/util/prng.mli:

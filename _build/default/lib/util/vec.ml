module Int = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 16) () =
    { data = Array.make (max capacity 1) 0; len = 0 }

  let length t = t.len

  let check t i op =
    if i < 0 || i >= t.len then
      invalid_arg (Printf.sprintf "Vec.Int.%s: index %d out of [0,%d)" op i t.len)

  let get t i =
    check t i "get";
    Array.unsafe_get t.data i

  let set t i x =
    check t i "set";
    Array.unsafe_set t.data i x

  let grow t =
    let cap = Array.length t.data in
    let data = Array.make (2 * cap) 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data

  let push t x =
    if t.len = Array.length t.data then grow t;
    Array.unsafe_set t.data t.len x;
    t.len <- t.len + 1

  let pop t =
    if t.len = 0 then invalid_arg "Vec.Int.pop: empty";
    t.len <- t.len - 1;
    Array.unsafe_get t.data t.len

  let clear t = t.len <- 0

  let make n x = { data = Array.make (max n 1) x; len = n }

  let iter f t =
    for i = 0 to t.len - 1 do
      f (Array.unsafe_get t.data i)
    done

  let iteri f t =
    for i = 0 to t.len - 1 do
      f i (Array.unsafe_get t.data i)
    done

  let fold_left f acc t =
    let acc = ref acc in
    for i = 0 to t.len - 1 do
      acc := f !acc (Array.unsafe_get t.data i)
    done;
    !acc

  let to_array t = Array.sub t.data 0 t.len
  let of_array arr = { data = Array.copy arr; len = Array.length arr }
  let memory_bytes t = 8 * Array.length t.data
end

module Poly = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create ?(capacity = 16) ~dummy () =
    { data = Array.make (max capacity 1) dummy; len = 0; dummy }

  let length t = t.len

  let check t i op =
    if i < 0 || i >= t.len then
      invalid_arg (Printf.sprintf "Vec.Poly.%s: index %d out of [0,%d)" op i t.len)

  let get t i =
    check t i "get";
    Array.unsafe_get t.data i

  let set t i x =
    check t i "set";
    Array.unsafe_set t.data i x

  let grow t =
    let cap = Array.length t.data in
    let data = Array.make (2 * cap) t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data

  let push t x =
    if t.len = Array.length t.data then grow t;
    Array.unsafe_set t.data t.len x;
    t.len <- t.len + 1

  let iteri f t =
    for i = 0 to t.len - 1 do
      f i (Array.unsafe_get t.data i)
    done

  let to_array t = Array.sub t.data 0 t.len
end

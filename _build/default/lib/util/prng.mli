(** Deterministic pseudo-random number generator.

    A small, fast, splittable PRNG (SplitMix64 core) used by every workload
    generator in this repository. All experiments are seeded, so data sets
    and update workloads are reproducible across runs and machines. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay [t]'s future. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t]. Used to give each document section its own stream so that adding
    nodes to one section does not perturb another. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_weighted : t -> (int * 'a) array -> 'a
(** [choose_weighted t arr] picks an element with probability proportional
    to its integer weight. Requires a positive total weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_distinct : t -> int -> int -> int array
(** [sample_distinct t k n] is [k] distinct integers drawn uniformly from
    [\[0, n)], in random order. Requires [k <= n]. *)

(** Plain-text table rendering for the experiment harness, so bench output
    reads like the paper's tables. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out [rows] under [header] with column
    widths fitted to the contents. [align] defaults to left for the first
    column and right for the rest. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fmt_bytes : int -> string
(** Human-readable byte count ("12.3 MB"). *)

val fmt_ms : float -> string
(** Milliseconds with a sensible precision. *)

val fmt_pct : float -> string
(** Percentage with one decimal ("7.4%"). *)

val fmt_int : int -> string
(** Thousands-separated integer ("4,690,640"). *)

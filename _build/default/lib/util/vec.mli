(** Growable arrays.

    The columnar XML store is built from parallel growable columns; these
    are the two flavours it needs: a monomorphic int vector (unboxed,
    cache-friendly — the MonetDB BAT analogue) and a polymorphic vector. *)

module Int : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val push : t -> int -> unit

  val pop : t -> int
  (** Remove and return the last element. @raise Invalid_argument if empty. *)

  val clear : t -> unit
  val make : int -> int -> t
  (** [make n x] is a vector of [n] copies of [x]. *)

  val iter : (int -> unit) -> t -> unit
  val iteri : (int -> int -> unit) -> t -> unit
  val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a
  val to_array : t -> int array
  val of_array : int array -> t
  val memory_bytes : t -> int
  (** Heap bytes of the backing store (capacity, not length). *)
end

module Poly : sig
  type 'a t

  val create : ?capacity:int -> dummy:'a -> unit -> 'a t
  (** [dummy] fills unused capacity; it is never returned. *)

  val length : 'a t -> int
  val get : 'a t -> int -> 'a
  val set : 'a t -> int -> 'a -> unit
  val push : 'a t -> 'a -> unit
  val iteri : (int -> 'a -> unit) -> 'a t -> unit
  val to_array : 'a t -> 'a array
end

(** The XML Schema type machines backing the typed range indices.

    Each supported type is described by the DFA of its complete lexical
    representation (leading/trailing whitespace allowed, as XQuery
    casting strips it); {!Sct} derives the factor semantics and the
    state combination table. A [parse] function maps a {e complete}
    lexical form to a float key whose order agrees with the type's value
    order, so one B+tree implementation serves every type — mirroring
    the paper's remark that "an index on xs:double can be used to
    accelerate predicates on all numerical XQuery types".

    The double machine follows the paper's Figure 5: optional sign,
    digits with an optional fraction (a bare trailing or leading dot is
    a valid {e potential} fragment: the paper's ["."] under [<weight>]),
    and an optional exponent. The special values INF/-INF/NaN are not in
    Figure 5 and are likewise omitted here. *)

type spec = {
  type_name : string;  (** e.g. ["xs:double"] *)
  sct : Sct.t;
  parse : string -> float option;
      (** Order-preserving key of a complete lexical form. Returns
          [None] only on values the DFA does not accept. *)
}

val double : unit -> spec
val integer : unit -> spec
val boolean : unit -> spec

val datetime : unit -> spec
(** [xs:dateTime] — [YYYY-MM-DDThh:mm:ss(.s+)?(Z|±hh:mm)?]; the key is
    seconds since the proleptic-Gregorian epoch, timezone applied. *)

val decimal : unit -> spec
(** [xs:decimal] — like double without the exponent part. *)

val date : unit -> spec
(** [xs:date] — [YYYY-MM-DD(Z|±hh:mm)?]; the key is the starting
    instant of the day, per XML Schema's order for dates. *)

val time : unit -> spec
(** [xs:time] — [hh:mm:ss(.s+)?(Z|±hh:mm)?]; the key is seconds from
    midnight, timezone applied. *)

val all : unit -> spec list
(** All seven specs. Memoized, like each individual accessor —
    deriving an SCT is not free. *)

val days_from_civil : year:int -> month:int -> day:int -> int
(** Days since 1970-01-01 in the proleptic Gregorian calendar (Howard
    Hinnant's algorithm). Exposed for tests. *)

lib/core/substring_index.mli: Xvi_xml

lib/core/db.mli: Lexical_types Name_index String_index Substring_index Typed_index Xvi_xml

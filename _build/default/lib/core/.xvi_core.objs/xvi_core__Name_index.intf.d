lib/core/name_index.mli: Xvi_xml

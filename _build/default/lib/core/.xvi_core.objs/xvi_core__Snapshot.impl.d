lib/core/snapshot.ml: Db Digest Fun Lazy Marshal String Sys

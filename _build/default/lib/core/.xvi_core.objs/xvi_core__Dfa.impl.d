lib/core/dfa.ml: Array Char Hashtbl List Printf String

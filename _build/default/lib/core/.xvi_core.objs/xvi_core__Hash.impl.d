lib/core/hash.ml: Char Format Int String

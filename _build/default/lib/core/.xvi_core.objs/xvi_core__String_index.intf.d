lib/core/string_index.mli: Hash Indexer Xvi_xml

lib/core/name_index.ml: Hashtbl List Option Printf String Xvi_util Xvi_xml

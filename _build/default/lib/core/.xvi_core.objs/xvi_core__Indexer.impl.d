lib/core/indexer.ml: Array Bytes Dfa Hash Hashtbl Int List Printf Sct Stack Xvi_util Xvi_xml

lib/core/typed_index.ml: Array Buffer Hashtbl Indexer Lexical_types List Option Printf Sct String Xvi_btree Xvi_xml

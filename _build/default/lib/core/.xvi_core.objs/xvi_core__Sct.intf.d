lib/core/sct.mli: Dfa

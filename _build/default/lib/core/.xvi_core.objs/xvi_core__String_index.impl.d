lib/core/string_index.ml: Array Hash Hashtbl Indexer Int List Printf String Xvi_btree Xvi_util Xvi_xml

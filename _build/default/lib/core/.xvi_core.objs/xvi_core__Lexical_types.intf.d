lib/core/lexical_types.mli: Sct

lib/core/indexer.mli: Hash Sct Xvi_xml

lib/core/dfa.mli:

lib/core/snapshot.mli: Db

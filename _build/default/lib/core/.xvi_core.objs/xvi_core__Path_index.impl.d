lib/core/path_index.ml: Hashtbl Lexical_types List Option Printf Sct String Xvi_btree Xvi_xml

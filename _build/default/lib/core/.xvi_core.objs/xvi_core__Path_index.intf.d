lib/core/path_index.mli: Lexical_types Xvi_xml

lib/core/sct.ml: Array Bytes Char Dfa Hashtbl List Printf Queue String

lib/core/substring_index.ml: Array Buffer Char Hashtbl Int List Printf String Xvi_btree Xvi_util Xvi_xml

lib/core/db.ml: Indexer Lexical_types List Name_index Printf Result String String_index Substring_index Typed_index Xvi_xml

lib/core/typed_index.mli: Indexer Lexical_types Xvi_xml

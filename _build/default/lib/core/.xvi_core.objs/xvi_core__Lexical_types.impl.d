lib/core/lexical_types.ml: Char Dfa Lazy Sct String

lib/core/hash.mli: Format

(** Deterministic finite automata over bytes, with character classes.

    A type machine (paper Section 4) is described by the DFA of the
    type's {e complete} lexical language — e.g. for [xs:double],
    optionally space-padded [-1.5E-3]-style literals. Everything else
    the paper needs (the factor/"potential valid" semantics of Figure 5
    and the state combination table of Figure 6) is {e derived} from
    this DFA by {!Sct.of_dfa}.

    States are dense integers. Transitions are total: unlisted ones go
    to the designated sink (reject) state. *)

type t

val build :
  name:string ->
  n_states:int ->
  start:int ->
  sink:int ->
  finals:int list ->
  classes:(string * int) list ->
  transitions:(int * string * int) list ->
  t
(** [build ~name ~n_states ~start ~sink ~finals ~classes ~transitions]
    constructs a DFA.

    [classes] maps a class name to its member characters: the string
    lists chars verbatim, except that a dash between two chars denotes
    an inclusive range (["0-9"], [" \t\r\n"], ["+-"] — write a literal
    dash first or last, e.g. ["+-" ] is the range from ['+'] to ['-'],
    i.e. the two signs plus [','], so prefer ["-+"]... see [classes]
    conventions in the callers). The [int] is ignored padding for
    readability and must be the class's expected id, checked at build
    time. Characters not in any class form the implicit "other" class,
    which always transitions to the sink.

    [transitions] lists [(from_state, class_name, to_state)]; duplicates
    are rejected.

    @raise Invalid_argument on malformed descriptions (overlapping
    classes, duplicate transitions, out-of-range states, non-sink
    transitions out of the sink). *)

val name : t -> string
val n_states : t -> int
val start : t -> int
val sink : t -> int
val is_final : t -> int -> bool

val n_classes : t -> int
(** Number of declared classes plus one for the implicit "other". *)

val class_of_char : t -> char -> int
(** The "other" class is the last one. *)

val class_repr : t -> int -> char option
(** A representative character of a class; [None] for an empty class
    (possible for "other"). *)

val step : t -> int -> char -> int
(** [step t state c] follows one transition. *)

val run : t -> string -> int
(** Final state after reading the whole string from {!start}; stays in
    the sink once entered. *)

val accepts : t -> string -> bool

val reachable : t -> bool array
(** States reachable from {!start} (including {!start}). *)

val co_accessible : t -> bool array
(** States from which a final state is reachable. *)

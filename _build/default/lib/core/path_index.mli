(** Path-specific typed index — the DBA-configured baseline the paper
    argues against.

    DB2 PureXML's

    {v create index myindex on items(person)
       generate key using xmlpattern "//person//age" as sql double v}

    indexes exactly the nodes reached by one path, cast to one type.
    This module reproduces that model so the benches can quantify the
    paper's introduction: the path index is smaller and cheaper to
    build, but (i) only queries using the listed path are accelerated,
    (ii) a double index is useless for string lookups, and (iii) every
    new path needs DBA action. The generic indices of {!String_index}
    and {!Typed_index} trade a constant factor of space for covering
    every path and every node at once.

    Pattern grammar: name steps joined by [/] (child) or [//]
    (descendant), starting with either; the final step may be an
    attribute ([//person/@id]). Wildcards are deliberately absent —
    that is the point of the baseline. *)

type t

type node = Xvi_xml.Store.node

val create :
  pattern:string -> Lexical_types.spec -> Xvi_xml.Store.t -> (t, string) result
(** [create ~pattern spec store] builds the index over the nodes the
    pattern selects whose string value is a complete lexical value of
    [spec]'s type. [Error] on a malformed pattern. *)

val create_exn :
  pattern:string -> Lexical_types.spec -> Xvi_xml.Store.t -> t

val pattern : t -> string
val type_name : t -> string

val matches_path : t -> Xvi_xml.Store.t -> node -> bool
(** Whether a node is selected by the pattern (regardless of castability). *)

val range : ?lo:float -> ?hi:float -> t -> node list
(** Range lookup over the indexed nodes — answers {e only} queries on
    this pattern and this type. *)

val entry_count : t -> int

(** {1 Maintenance} *)

val update_texts : t -> Xvi_xml.Store.t -> node list -> unit
(** Text/attribute nodes changed; re-extract the values of affected
    pattern-selected nodes. Unlike the paper's indices there is no
    hash/state algebra here: affected ancestors re-read their string
    values, which is exactly the maintenance cost profile DB2-style
    indices pay. *)

val on_delete : t -> Xvi_xml.Store.t -> removed:node list -> unit
val on_insert : t -> Xvi_xml.Store.t -> roots:node list -> unit

(** {1 Accounting and validation} *)

val storage_bytes : t -> int
val validate : t -> Xvi_xml.Store.t -> (unit, string) result

(** Node states and the State Combination Table (paper Section 4,
    Figures 5–6), derived generically from a type's lexical DFA.

    The paper hand-normalises its double FSM "in such a way that these
    paths lead to different copies of the same state" so that a state
    combination table exists. The clean mathematical object behind that
    construction is the {e transition monoid} of the DFA: map every
    string [v] to the function [f_v : state -> state] it induces; then

    - [f_v] determines everything the index needs about [v]: whether [v]
      is a complete lexical value ([f_v start] is final), whether it is a
      {e potential} value — a factor of the language that could become
      complete with left/right context from siblings ([f_v] sends some
      reachable state to a co-accessible one) — or must be rejected;
    - concatenation is function composition: [f_(uv) = f_u ; f_v], so the
      SCT is just the (finite) composition table of the monoid.

    All non-viable functions are collapsed into a single absorbing
    {!reject} element (non-viability cannot be cured by more context, in
    either direction), which is the paper's "absence of a state
    signifies the reject state". The monoid for the paper's double
    machine has the same order of magnitude as the paper's 60 states.

    Elements are dense small integers, so a node state fits the paper's
    one byte and the SCT is a flat array probe — the paper's
    "probing an array vs. invoking a function" creation-time argument. *)

type t

val of_dfa : ?max_elements:int -> Dfa.t -> t
(** Enumerate the transition monoid (breadth-first over generator
    composition, shortest witness first) and tabulate composition.
    [max_elements] (default 4096) bounds the enumeration.
    @raise Failure if the monoid is larger — the type's DFA is then
    unsuitable for SCT-based indexing. *)

val dfa : t -> Dfa.t

val size : t -> int
(** Number of elements, including {!reject}. *)

val identity : t -> int
(** The state of the empty string — the initial "field" of every node in
    the creation algorithm (Figure 7, line 02). *)

val reject : t -> int
(** The absorbing reject element (id 0). *)

val of_string : t -> string -> int
(** The element of a text value; runs all DFA copies in parallel with an
    early exit to {!reject} (the common case on prose text — the paper's
    "majority of all text nodes ... will be rejected immediately"). *)

val compose : t -> int -> int -> int
(** The SCT probe: [compose t (of_string t u) (of_string t v) =
    of_string t (u ^ v)]. O(1). *)

val is_viable : t -> int -> bool
(** [false] exactly for {!reject}. *)

val is_accepting : t -> int -> bool
(** Whether a standalone string with this state is a complete lexical
    value of the type. *)

val dfa_state : t -> int -> int
(** The classic FSM state [δ(start, v)] of an element; the DFA sink for
    {!reject}. Connects the monoid view back to the paper's Figure 5. *)

val witness : t -> int -> string
(** Shortest string inducing this element (["<reject>"] for {!reject}).
    The paper uses such canonical fragments to reconstruct lexical
    representations; see DESIGN.md for why we keep actual fragments. *)

val state_bytes : t -> int
(** Per-node state width: 1 byte when {!size} <= 256 (as in the paper),
    else 2. Used by the storage-accounting experiments. *)

val table_bytes : t -> int
(** Memory of the composition table, for storage accounting. *)

(** An indexed XML database: one document store plus the paper's full
    family of value indices, kept consistent through updates.

    This is the user-facing API of the library — shred a document, get
    self-tuned whole-document value indices (no path or type
    configuration, per the paper's introduction), run equality and
    range lookups, and apply updates with low maintenance cost. *)

type t

type node = Xvi_xml.Store.node

val of_store :
  ?types:Lexical_types.spec list -> ?substring:bool -> Xvi_xml.Store.t -> t
(** Index an existing store. [types] defaults to
    [Lexical_types.[double (); datetime ()]] — the two types the paper
    singles out. The string index is always built; the substring q-gram
    index (the paper's future-work extension) is opt-in via
    [~substring:true]. *)

val of_xml :
  ?types:Lexical_types.spec list ->
  ?substring:bool ->
  string ->
  (t, Xvi_xml.Parser.error) result
(** Shred an XML document and index it. *)

val of_xml_exn : ?types:Lexical_types.spec list -> ?substring:bool -> string -> t

val store : t -> Xvi_xml.Store.t
val string_index : t -> String_index.t

val typed_index : t -> string -> Typed_index.t option
(** By type name, e.g. ["xs:double"]. *)

val typed_indices : t -> Typed_index.t list
val substring_index : t -> Substring_index.t option

val name_index : t -> Name_index.t
(** The structural element-name index; always built. *)

val plane : t -> Xvi_xml.Pre_plane.t
(** The pre/size/level snapshot of the current structure (MonetDB's
    range encoding). Built lazily, cached, and invalidated by
    structural updates; value updates keep it valid. *)

val elements_named : t -> string -> node list
(** Live elements with this tag, via {!Name_index}. *)

(** {1 Lookups} *)

val lookup_string : t -> string -> node list
(** All nodes (element, attribute or text) whose XDM string value equals
    the argument — e.g. the paper's
    [//*\[fn:data(name) = "ArthurDent"\]] support. *)

val lookup_double : ?lo:float -> ?hi:float -> t -> node list
(** Range lookup on the [xs:double] index (inclusive bounds).
    @raise Invalid_argument if the double index was not configured. *)

val lookup_typed : ?lo:float -> ?hi:float -> t -> string -> node list
(** Range lookup on a typed index by type name. *)

val lookup_contains : t -> string -> node list
(** Text/attribute nodes whose value contains the pattern.
    @raise Invalid_argument if the substring index was not built. *)

val lookup_element_contains : t -> string -> node list
(** Elements/document nodes whose XDM string value contains the
    pattern (boundary-spanning matches included).
    @raise Invalid_argument if the substring index was not built. *)

(** {2 Scoped lookups}

    Value-index hits intersected with a subtree through a staircase
    join on the pre/size/level plane — no tree walking, no scan. *)

val lookup_string_within : t -> scope:node -> string -> node list
(** Nodes in the subtree rooted at [scope] (inclusive) whose string
    value equals the argument, in document order. *)

val lookup_double_within :
  ?lo:float -> ?hi:float -> t -> scope:node -> unit -> node list

(** {1 Updates}

    Each operation mutates the store {e and} maintains every index. *)

val update_text : t -> node -> string -> unit
val update_texts : t -> (node * string) list -> unit

val delete_subtree : t -> node -> unit

val insert_xml :
  t -> parent:node -> string -> (node list, Xvi_xml.Parser.error) result
(** Parse an XML fragment and insert it as the last children of
    [parent]. *)

val compact : t -> t * (node -> node option)
(** Vacuum tombstones: a fresh database over a compacted store (dense
    ids in document order), all indices rebuilt, plus the old-to-new id
    mapping. The original database is unchanged. *)

(** {1 Accounting and validation} *)

val index_storage_bytes : t -> int
(** All indices together. *)

val validate : t -> (unit, string) result
(** Every index equals a from-scratch rebuild. *)

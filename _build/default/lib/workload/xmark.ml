module Prng = Xvi_util.Prng

let escape = Xvi_xml.Serializer.escape_text

type ctx = {
  rng : Prng.t;
  tg : Text_gen.t;
  buf : Buffer.t;
  n_items : int;
  n_people : int;
  n_categories : int;
  n_open : int;
  n_closed : int;
}

let tag ctx name body =
  Buffer.add_char ctx.buf '<';
  Buffer.add_string ctx.buf name;
  Buffer.add_char ctx.buf '>';
  body ();
  Buffer.add_string ctx.buf "</";
  Buffer.add_string ctx.buf name;
  Buffer.add_char ctx.buf '>'

let tag_attrs ctx name attrs body =
  Buffer.add_char ctx.buf '<';
  Buffer.add_string ctx.buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char ctx.buf ' ';
      Buffer.add_string ctx.buf k;
      Buffer.add_string ctx.buf "=\"";
      Buffer.add_string ctx.buf (Xvi_xml.Serializer.escape_attr v);
      Buffer.add_char ctx.buf '"')
    attrs;
  Buffer.add_char ctx.buf '>';
  body ();
  Buffer.add_string ctx.buf "</";
  Buffer.add_string ctx.buf name;
  Buffer.add_char ctx.buf '>'

let empty_tag ctx name attrs =
  Buffer.add_char ctx.buf '<';
  Buffer.add_string ctx.buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char ctx.buf ' ';
      Buffer.add_string ctx.buf k;
      Buffer.add_string ctx.buf "=\"";
      Buffer.add_string ctx.buf (Xvi_xml.Serializer.escape_attr v);
      Buffer.add_char ctx.buf '"')
    attrs;
  Buffer.add_string ctx.buf "/>"

let text ctx name s = tag ctx name (fun () -> Buffer.add_string ctx.buf (escape s))

let inline_tags = [| "keyword"; "bold"; "emph" |]

let rich_text ctx =
  (* XMark-style mixed content: text runs interleaved with inline
     keyword/bold/emph elements, so text nodes outnumber elements as in
     the original generator. *)
  tag ctx "text" (fun () ->
      let pieces = Prng.in_range ctx.rng 10 18 in
      for i = 1 to pieces do
        if i > 1 then Buffer.add_char ctx.buf ' ';
        Buffer.add_string ctx.buf
          (escape (Text_gen.words ctx.tg (Prng.in_range ctx.rng 4 14)));
        Buffer.add_char ctx.buf ' ';
        (if Prng.int ctx.rng 100 < 22 then
           text ctx (Prng.choose ctx.rng inline_tags)
             (Text_gen.money ctx.tg ~max:9999.0 ())
         else
           text ctx (Prng.choose ctx.rng inline_tags)
             (Text_gen.words ctx.tg (Prng.in_range ctx.rng 1 3)));
      done;
      Buffer.add_char ctx.buf ' ';
      Buffer.add_string ctx.buf
        (escape (Text_gen.words ctx.tg (Prng.in_range ctx.rng 3 10))))

let description ctx =
  tag ctx "description" (fun () ->
      if Prng.int ctx.rng 2 = 0 then
        tag ctx "parlist" (fun () ->
            for _ = 1 to Prng.in_range ctx.rng 2 5 do
              tag ctx "listitem" (fun () -> rich_text ctx)
            done)
      else rich_text ctx)

let item ctx region i =
  tag_attrs ctx "item" [ ("id", Printf.sprintf "item%s%d" region i) ] (fun () ->
      text ctx "location" (Text_gen.word ctx.tg);
      text ctx "quantity" (Text_gen.int_string ctx.tg 1 5);
      text ctx "name" (Text_gen.words ctx.tg 2);
      text ctx "payment" "Creditcard";
      description ctx;
      text ctx "shipping" "Will ship internationally";
      for _ = 1 to Prng.in_range ctx.rng 1 2 do
        empty_tag ctx "incategory"
          [ ("category", Printf.sprintf "category%d" (Prng.int ctx.rng ctx.n_categories)) ]
      done;
      if Prng.int ctx.rng 4 = 0 then
        tag ctx "mailbox" (fun () ->
            tag ctx "mail" (fun () ->
                text ctx "from" (Text_gen.full_name ctx.tg);
                text ctx "to" (Text_gen.full_name ctx.tg);
                text ctx "date" (Text_gen.date_slash ctx.tg);
                rich_text ctx)))

let person ctx i =
  tag_attrs ctx "person" [ ("id", Printf.sprintf "person%d" i) ] (fun () ->
      text ctx "name" (Text_gen.full_name ctx.tg);
      text ctx "emailaddress" (Text_gen.email ctx.tg);
      if Prng.bool ctx.rng then text ctx "phone" (Text_gen.phone ctx.tg);
      if Prng.int ctx.rng 3 = 0 then
        tag ctx "address" (fun () ->
            text ctx "street"
              (Text_gen.int_string ctx.tg 1 99 ^ " " ^ Text_gen.word ctx.tg ^ " St");
            text ctx "city" (Text_gen.word ctx.tg);
            text ctx "country" "United States";
            text ctx "zipcode" (Text_gen.int_string ctx.tg 10000 99999));
      if Prng.int ctx.rng 2 = 0 then
        text ctx "homepage" (Text_gen.url ctx.tg);
      if Prng.int ctx.rng 2 = 0 then
        text ctx "creditcard"
          (Printf.sprintf "%04d %04d %04d %04d"
             (Prng.int ctx.rng 10000) (Prng.int ctx.rng 10000)
             (Prng.int ctx.rng 10000) (Prng.int ctx.rng 10000));
      if Prng.int ctx.rng 2 = 0 then
        tag_attrs ctx "profile"
          [ ("income", Text_gen.money ctx.tg ~max:99999.0 ()) ]
          (fun () ->
            empty_tag ctx "interest"
              [ ("category", Printf.sprintf "category%d" (Prng.int ctx.rng ctx.n_categories)) ];
            text ctx "education" "Graduate School";
            text ctx "gender" (if Prng.bool ctx.rng then "male" else "female");
            text ctx "business" (if Prng.bool ctx.rng then "Yes" else "No");
            text ctx "age" (Text_gen.int_string ctx.tg 18 80));
      if Prng.int ctx.rng 3 = 0 then
        tag ctx "watches" (fun () ->
            for _ = 1 to Prng.in_range ctx.rng 1 3 do
              empty_tag ctx "watch"
                [ ("open_auction", Printf.sprintf "open_auction%d" (Prng.int ctx.rng ctx.n_open)) ]
            done))

let bidder ctx =
  tag ctx "bidder" (fun () ->
      text ctx "date" (Text_gen.date_slash ctx.tg);
      text ctx "time" (Printf.sprintf "%02d:%02d:%02d"
        (Prng.in_range ctx.rng 0 23) (Prng.in_range ctx.rng 0 59) (Prng.in_range ctx.rng 0 59));
      empty_tag ctx "personref"
        [ ("person", Printf.sprintf "person%d" (Prng.int ctx.rng ctx.n_people)) ];
      text ctx "increase" (Text_gen.money ctx.tg ~max:30.0 ()))

let annotation ctx =
  tag ctx "annotation" (fun () ->
      empty_tag ctx "author"
        [ ("person", Printf.sprintf "person%d" (Prng.int ctx.rng ctx.n_people)) ];
      description ctx;
      text ctx "happiness" (Text_gen.int_string ctx.tg 1 10))

let open_auction ctx i =
  tag_attrs ctx "open_auction" [ ("id", Printf.sprintf "open_auction%d" i) ]
    (fun () ->
      text ctx "initial" (Text_gen.money ctx.tg ~max:300.0 ());
      if Prng.bool ctx.rng then text ctx "reserve" (Text_gen.money ctx.tg ~max:500.0 ());
      for _ = 1 to Prng.in_range ctx.rng 0 4 do
        bidder ctx
      done;
      text ctx "current" (Text_gen.money ctx.tg ~max:800.0 ());
      text ctx "privacy" (if Prng.bool ctx.rng then "Yes" else "No");
      empty_tag ctx "itemref"
        [ ("item", Printf.sprintf "itemafrica%d" (Prng.int ctx.rng (max 1 (ctx.n_items / 6)))) ];
      empty_tag ctx "seller"
        [ ("person", Printf.sprintf "person%d" (Prng.int ctx.rng ctx.n_people)) ];
      annotation ctx;
      text ctx "quantity" (Text_gen.int_string ctx.tg 1 5);
      text ctx "type" (if Prng.bool ctx.rng then "Regular" else "Featured");
      tag ctx "interval" (fun () ->
          text ctx "start" (Text_gen.date_slash ctx.tg);
          text ctx "end" (Text_gen.date_slash ctx.tg)))

let closed_auction ctx =
  tag ctx "closed_auction" (fun () ->
      empty_tag ctx "seller"
        [ ("person", Printf.sprintf "person%d" (Prng.int ctx.rng ctx.n_people)) ];
      empty_tag ctx "buyer"
        [ ("person", Printf.sprintf "person%d" (Prng.int ctx.rng ctx.n_people)) ];
      empty_tag ctx "itemref"
        [ ("item", Printf.sprintf "itemasia%d" (Prng.int ctx.rng (max 1 (ctx.n_items / 6)))) ];
      text ctx "price" (Text_gen.money ctx.tg ~max:800.0 ());
      text ctx "date" (Text_gen.date_slash ctx.tg);
      text ctx "quantity" (Text_gen.int_string ctx.tg 1 5);
      text ctx "type" (if Prng.bool ctx.rng then "Regular" else "Featured");
      annotation ctx)

let category ctx i =
  tag_attrs ctx "category" [ ("id", Printf.sprintf "category%d" i) ] (fun () ->
      text ctx "name" (Text_gen.word ctx.tg);
      description ctx)

let regions = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let generate ~seed ~factor () =
  let rng = Prng.create seed in
  let scale n = max 2 (int_of_float (float_of_int n *. factor)) in
  let ctx =
    {
      rng;
      tg = Text_gen.create (Prng.split rng);
      buf = Buffer.create (1 lsl 20);
      n_items = scale 390;
      n_people = scale 460;
      n_categories = scale 18;
      n_open = scale 217;
      n_closed = scale 175;
    }
  in
  tag ctx "site" (fun () ->
      tag ctx "regions" (fun () ->
          Array.iter
            (fun region ->
              tag ctx region (fun () ->
                  for i = 0 to (ctx.n_items / Array.length regions) - 1 do
                    item ctx region i
                  done))
            regions);
      tag ctx "categories" (fun () ->
          for i = 0 to ctx.n_categories - 1 do
            category ctx i
          done);
      tag ctx "people" (fun () ->
          for i = 0 to ctx.n_people - 1 do
            person ctx i
          done);
      tag ctx "open_auctions" (fun () ->
          for i = 0 to ctx.n_open - 1 do
            open_auction ctx i
          done);
      tag ctx "closed_auctions" (fun () ->
          for _ = 0 to ctx.n_closed - 1 do
            closed_auction ctx
          done));
  Buffer.contents ctx.buf

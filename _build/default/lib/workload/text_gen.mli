(** Deterministic natural-ish text generation for the data-set
    generators: words, sentences, person names, protein-style sequences,
    and the URL families that reproduce the paper's Figure 11 hash
    anomaly. *)

type t

val create : Xvi_util.Prng.t -> t

val word : t -> string
val words : t -> int -> string
(** [words t n] — [n] space-separated words. *)

val sentence : t -> string
(** A capitalised sentence of 6–14 words ending in a period. *)

val paragraph : t -> int -> string
(** [paragraph t n] — [n] sentences. *)

val first_name : t -> string
val last_name : t -> string
val full_name : t -> string

val email : t -> string
val phone : t -> string

val money : t -> ?max:float -> unit -> string
(** A price like ["49.95"]. *)

val int_string : t -> int -> int -> string
val date_slash : t -> string
(** XMark-style ["MM/DD/YYYY"] (not castable to a double). *)

val datetime_iso : t -> string
(** A valid [xs:dateTime] like ["2004-07-15T08:30:00Z"]. *)

val amino_sequence : t -> int -> string
(** PSD-style amino-acid letter run of the given length. *)

val url : t -> string
(** A pseudo wiki/web URL. *)

val colliding_urls : t -> int -> string list
(** [colliding_urls t k] — [k] {e distinct} URLs engineered to collide
    under the paper's hash function: the positions where they differ are
    27 characters apart, so the differing characters land on the same
    c-array offset and XOR to the same contribution (the Figure 11
    "http://www." observation). *)

(** Update workloads for the Figure 10 experiments.

    The paper: "update queries were created by first defining the number
    of text nodes whose values should be updated, and then randomly
    picking the specified number of text nodes". Replacement values keep
    the flavour of the old ones (numeric stays numeric, prose stays
    prose), so the typed indices see realistic state transitions. *)

val random_text_updates :
  seed:int ->
  Xvi_xml.Store.t ->
  count:int ->
  (Xvi_xml.Store.node * string) list
(** [count] distinct live text nodes with fresh values; [count] is
    clamped to the number of text nodes in the store. Deterministic in
    [seed]. *)

val random_victims :
  seed:int -> Xvi_xml.Store.t -> count:int -> Xvi_xml.Store.node array
(** Just the distinct victim text nodes, for callers that generate
    their own values. *)

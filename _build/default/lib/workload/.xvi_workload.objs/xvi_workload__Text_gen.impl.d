lib/workload/text_gen.ml: Buffer Bytes Char List Printf String Xvi_util

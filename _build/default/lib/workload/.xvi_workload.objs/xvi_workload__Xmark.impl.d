lib/workload/xmark.ml: Array Buffer List Printf Text_gen Xvi_util Xvi_xml

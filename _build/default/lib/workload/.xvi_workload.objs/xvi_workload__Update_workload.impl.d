lib/workload/update_workload.ml: Array String Text_gen Xvi_util Xvi_xml

lib/workload/update_workload.mli: Xvi_xml

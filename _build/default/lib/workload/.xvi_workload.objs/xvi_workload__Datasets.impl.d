lib/workload/datasets.ml: Buffer List Printf String Text_gen Xmark Xvi_util Xvi_xml

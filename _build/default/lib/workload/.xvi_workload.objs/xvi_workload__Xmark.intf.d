lib/workload/xmark.mli:

lib/workload/datasets.mli:

lib/workload/text_gen.mli: Xvi_util

(** The paper's eight-document evaluation suite, regenerated.

    The originals (XMark scale 1–8, EPA geospatial data, DBLP, the PIR
    protein sequence database, and a Wikipedia abstract dump) are
    multi-gigabyte downloads; these generators reproduce each document's
    {e shape} — element vocabulary, node-kind mix, double-castable node
    density, and (for Wiki) the URL families behind the paper's
    Figure 11 collision anomaly — at a configurable fraction of the
    paper's sizes. See DESIGN.md, "Substitutions".

    All generators are deterministic in [seed]. *)

type entry = {
  name : string;  (** paper name, e.g. ["XMark1"] *)
  paper_mb : float;  (** the original's size in Table 1 *)
  xml : string;  (** the generated document *)
}

val epageo : seed:int -> factor:float -> unit -> string
(** EPA geospatial: facility sites with latitude/longitude/accuracy
    measurements — numeric-heavy leaves ([factor] × ~4.2 MB). *)

val dblp : seed:int -> factor:float -> unit -> string
(** Bibliography records: articles/inproceedings with authors, titles,
    page ranges, years and volumes; includes a sprinkling of
    mixed-content numeric nodes (the paper's 21 "non-leaf" doubles). *)

val psd : seed:int -> factor:float -> unit -> string
(** Protein sequence entries: references, features and amino-acid
    sequence strings; a larger sprinkling of mixed-content numeric
    nodes (the paper counts 902). *)

val wiki : seed:int -> factor:float -> unit -> string
(** Article abstracts: long prose text nodes, ISO timestamps, sparse
    numerics, and clusters of colliding URLs. *)

val suite : ?seed:int -> scale:float -> unit -> entry list
(** The full eight-entry suite. [scale] is the fraction of the paper's
    document sizes to generate ([scale = 1.0] would regenerate the full
    ~5 GB; the benches default to a laptop-friendly fraction). Entries
    come in the paper's Table 1 order. *)

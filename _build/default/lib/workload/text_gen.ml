module Prng = Xvi_util.Prng

type t = { rng : Prng.t }

let create rng = { rng }

let word_pool =
  [|
    "time"; "year"; "people"; "way"; "day"; "man"; "thing"; "woman"; "life";
    "child"; "world"; "school"; "state"; "family"; "student"; "group";
    "country"; "problem"; "hand"; "part"; "place"; "case"; "week"; "company";
    "system"; "program"; "question"; "work"; "government"; "number"; "night";
    "point"; "home"; "water"; "room"; "mother"; "area"; "money"; "story";
    "fact"; "month"; "lot"; "right"; "study"; "book"; "eye"; "job"; "word";
    "business"; "issue"; "side"; "kind"; "head"; "house"; "service"; "friend";
    "father"; "power"; "hour"; "game"; "line"; "end"; "member"; "law"; "car";
    "city"; "community"; "name"; "president"; "team"; "minute"; "idea"; "kid";
    "body"; "information"; "back"; "parent"; "face"; "others"; "level";
    "office"; "door"; "health"; "person"; "art"; "war"; "history"; "party";
    "result"; "change"; "morning"; "reason"; "research"; "girl"; "guy";
    "moment"; "air"; "teacher"; "force"; "education"; "foot"; "boy"; "age";
    "policy"; "process"; "music"; "market"; "sense"; "nation"; "plan";
    "college"; "interest"; "death"; "experience"; "effect"; "use"; "class";
    "control"; "care"; "field"; "development"; "role"; "effort"; "rate";
    "heart"; "drug"; "show"; "leader"; "light"; "voice"; "wife"; "whole";
    "police"; "mind"; "finally"; "pull"; "return"; "free"; "military";
    "price"; "report"; "less"; "according"; "decision"; "explain"; "son";
    "hope"; "view"; "relationship"; "town"; "road"; "arm"; "difference";
    "value"; "building"; "action"; "model"; "season"; "society"; "tax";
    "director"; "position"; "player"; "record"; "paper"; "space"; "ground";
  |]

let first_names =
  [|
    "Arthur"; "Ford"; "Zaphod"; "Trillian"; "Marvin"; "Fenchurch"; "Random";
    "Tricia"; "Deep"; "Slartibartfast"; "Agrajag"; "Wowbagger"; "Eddie";
    "Benjy"; "Frankie"; "Garkbit"; "Hotblack"; "Lunkwill"; "Fook"; "Majikthise";
    "Vroomfondel"; "Prak"; "Roosta"; "Zarniwoop"; "Gail"; "Lig"; "Max"; "Hig";
    "Anja"; "Pieter"; "Lefteris"; "Peter";
  |]

let last_names =
  [|
    "Dent"; "Prefect"; "Beeblebrox"; "McMillan"; "Android"; "Thought";
    "Desiato"; "Hurtenflurst"; "Jeltz"; "Kwaltz"; "Colluphid"; "Halfrunt";
    "Quordlepleen"; "Stavromula"; "Vogon"; "Magrathea"; "Sidirourgos";
    "Boncz"; "Manegold"; "Rittinger"; "Grust"; "Teubner"; "Keulen"; "Kersten";
  |]

let hosts =
  [| "example"; "auctions"; "research"; "archive"; "wikipedia"; "dblp"; "epa"; "pir" |]

let word t = Prng.choose t.rng word_pool

let words t n =
  let buf = Buffer.create (n * 7) in
  for i = 1 to n do
    if i > 1 then Buffer.add_char buf ' ';
    Buffer.add_string buf (word t)
  done;
  Buffer.contents buf

let sentence t =
  let n = Prng.in_range t.rng 6 14 in
  let body = words t n in
  String.capitalize_ascii body ^ "."

let paragraph t n =
  let buf = Buffer.create (n * 60) in
  for i = 1 to n do
    if i > 1 then Buffer.add_char buf ' ';
    Buffer.add_string buf (sentence t)
  done;
  Buffer.contents buf

let first_name t = Prng.choose t.rng first_names
let last_name t = Prng.choose t.rng last_names
let full_name t = first_name t ^ " " ^ last_name t

let email t =
  Printf.sprintf "mailto:%s.%s@%s.com"
    (String.lowercase_ascii (first_name t))
    (String.lowercase_ascii (last_name t))
    (Prng.choose t.rng hosts)

let phone t =
  Printf.sprintf "+%d (%d) %d"
    (Prng.in_range t.rng 1 99)
    (Prng.in_range t.rng 10 999)
    (Prng.in_range t.rng 1000000 9999999)

let money t ?(max = 1000.0) () =
  let cents = Prng.int t.rng (int_of_float (max *. 100.0)) + 1 in
  Printf.sprintf "%d.%02d" (cents / 100) (cents mod 100)

let int_string t lo hi = string_of_int (Prng.in_range t.rng lo hi)

let date_slash t =
  Printf.sprintf "%02d/%02d/%04d"
    (Prng.in_range t.rng 1 12)
    (Prng.in_range t.rng 1 28)
    (Prng.in_range t.rng 1998 2008)

let datetime_iso t =
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ"
    (Prng.in_range t.rng 2001 2008)
    (Prng.in_range t.rng 1 12)
    (Prng.in_range t.rng 1 28)
    (Prng.in_range t.rng 0 23)
    (Prng.in_range t.rng 0 59)
    (Prng.in_range t.rng 0 59)

let amino_letters = "ACDEFGHIKLMNPQRSTVWY"

let amino_sequence t len =
  String.init len (fun _ -> amino_letters.[Prng.int t.rng (String.length amino_letters)])

let url t =
  Printf.sprintf "http://www.%s.org/%s/%s_%s"
    (Prng.choose t.rng hosts) (word t) (word t) (word t)

(* Distinct strings whose pairwise differences sit exactly 27 characters
   apart: character [i] is XOR-ed at c-array offset [5 * i mod 27], so
   positions congruent mod 27 share an offset, and swapping two distinct
   characters that far apart leaves the hash unchanged. *)
let colliding_urls t k =
  let prefix = "http://www." ^ Prng.choose t.rng hosts ^ ".org/wiki/" in
  let tail_len = 54 in
  let letters = "abcdefghijklmnopqrstuvwxyz" in
  let tail =
    Bytes.init tail_len (fun _ -> letters.[Prng.int t.rng 26])
  in
  (* Ensure every stride-27 pair differs so swaps produce new strings. *)
  for i = 0 to tail_len - 28 do
    if Bytes.get tail i = Bytes.get tail (i + 27) then
      Bytes.set tail (i + 27)
        (let c = Bytes.get tail i in
         if c = 'z' then 'a' else Char.chr (Char.code c + 1))
  done;
  (* Variant [j] swaps the stride-27 pairs selected by [j]'s bits. *)
  let variant j =
    let b = Bytes.copy tail in
    for bit = 0 to 26 do
      if (j lsr bit) land 1 = 1 && bit + 27 < tail_len then begin
        let x = Bytes.get b bit and y = Bytes.get b (bit + 27) in
        Bytes.set b bit y;
        Bytes.set b (bit + 27) x
      end
    done;
    prefix ^ Bytes.to_string b
  in
  List.init k variant

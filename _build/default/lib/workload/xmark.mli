(** XMark-style auction document generator.

    A self-contained stand-in for the XMark benchmark generator (the
    container is sealed; see DESIGN.md): the same document shape —
    [site] with regions/items, categories, people, open and closed
    auctions — with entity counts proportional to the scale factor and
    the node mix tuned to the paper's Table 1 (≈64% text nodes, ≈8% of
    all nodes castable to doubles, no non-leaf doubles).

    [generate ~seed ~factor ()] yields roughly [factor] × 2.8 MB of XML
    (the paper's 112 MB XMark1 scaled by 1/40). Deterministic in
    [seed]. *)

val generate : seed:int -> factor:float -> unit -> string

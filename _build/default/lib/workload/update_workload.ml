module Prng = Xvi_util.Prng
module Store = Xvi_xml.Store

let random_victims ~seed store ~count =
  let rng = Prng.create seed in
  let texts = Store.text_nodes store in
  let n = Array.length texts in
  let count = min count n in
  let picks = Prng.sample_distinct rng count n in
  Array.map (fun i -> texts.(i)) picks

let is_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-') s

let random_text_updates ~seed store ~count =
  let rng = Prng.create (seed + 7919) in
  let tg = Text_gen.create (Prng.split rng) in
  let victims = random_victims ~seed store ~count in
  Array.to_list
    (Array.map
       (fun n ->
         let old = Store.text store n in
         let fresh =
           if is_numeric old then
             if String.contains old '.' then Text_gen.money tg ~max:999.0 ()
             else Text_gen.int_string tg 1 99999
           else Text_gen.words tg (max 1 (min 12 (String.length old / 6)))
         in
         (n, fresh))
       victims)

(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the regenerated data-set suite, plus
   component micro-benchmarks and design ablations.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- table1 fig10 -- selected experiments
     dune exec bench/main.exe -- --scale=0.02 -- larger documents

   Experiment ids: table1, fig9, fig10, fig11, micro, ablation, substr,
   baseline, queries, query, parallel, wal, serve, repl, storage, ingest.
   --scale=F sets the fraction of the paper's document sizes to generate
   (default 0.01, i.e. the 2 GB Wiki becomes ~20 MB); --reps=N the
   repetitions for timed runs (paper: 3 for creation, 20 for updates;
   default here 3); --quick shrinks the query experiment to a CI smoke
   run (small document, one rep). *)

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module SI = Xvi_core.String_index
module TI = Xvi_core.Typed_index
module LT = Xvi_core.Lexical_types
module Indexer = Xvi_core.Indexer
module Hash = Xvi_core.Hash
module Sct = Xvi_core.Sct
module Datasets = Xvi_workload.Datasets
module UW = Xvi_workload.Update_workload
module Table = Xvi_util.Table
module Timing = Xvi_util.Timing
module Prng = Xvi_util.Prng

let scale = ref 0.01
let reps = ref 3

(* --- paper reference numbers (Table 1 and Figure 9) for side-by-side
       printing; times in ms, sizes in MB --- *)

type paper_row = {
  p_total : int;
  p_text_pct : int;
  p_dbl_pct : float;
  p_nonleaf : int;
  p_shred_ms : float;
  p_str_ms : float;
  p_dbl_ms : float;
  p_db_mb : float;
  p_str_mb : float;
  p_dbl_mb : float;
}

let paper : (string * paper_row) list =
  [
    ("XMark1", { p_total = 4_690_640; p_text_pct = 64; p_dbl_pct = 8.0; p_nonleaf = 0;
                 p_shred_ms = 6842.; p_str_ms = 508.; p_dbl_ms = 153.;
                 p_db_mb = 130.1; p_str_mb = 17.8; p_dbl_mb = 3.4 });
    ("XMark2", { p_total = 9_394_467; p_text_pct = 64; p_dbl_pct = 8.0; p_nonleaf = 0;
                 p_shred_ms = 14877.; p_str_ms = 1030.; p_dbl_ms = 326.;
                 p_db_mb = 242.4; p_str_mb = 35.8; p_dbl_mb = 6.6 });
    ("XMark4", { p_total = 18_827_157; p_text_pct = 64; p_dbl_pct = 8.0; p_nonleaf = 0;
                 p_shred_ms = 28079.; p_str_ms = 2104.; p_dbl_ms = 660.;
                 p_db_mb = 450.1; p_str_mb = 71.8; p_dbl_mb = 13.4 });
    ("XMark8", { p_total = 37_642_301; p_text_pct = 64; p_dbl_pct = 8.0; p_nonleaf = 0;
                 p_shred_ms = 55680.; p_str_ms = 4260.; p_dbl_ms = 1345.;
                 p_db_mb = 832.1; p_str_mb = 143.5; p_dbl_mb = 26.7 });
    ("EPAGeo", { p_total = 6_558_707; p_text_pct = 66; p_dbl_pct = 7.0; p_nonleaf = 0;
                 p_shred_ms = 7838.; p_str_ms = 497.; p_dbl_ms = 154.;
                 p_db_mb = 106.5; p_str_mb = 25.0; p_dbl_mb = 4.8 });
    ("DBLP", { p_total = 34_799_707; p_text_pct = 66; p_dbl_pct = 10.0; p_nonleaf = 21;
               p_shred_ms = 51347.; p_str_ms = 2261.; p_dbl_ms = 1088.;
               p_db_mb = 739.5; p_str_mb = 132.7; p_dbl_mb = 35.6 });
    ("PSD", { p_total = 58_445_809; p_text_pct = 63; p_dbl_pct = 4.0; p_nonleaf = 902;
              p_shred_ms = 62510.; p_str_ms = 3088.; p_dbl_ms = 1445.;
              p_db_mb = 944.0; p_str_mb = 222.9; p_dbl_mb = 30.0 });
    ("Wiki", { p_total = 94_672_619; p_text_pct = 56; p_dbl_pct = 0.1; p_nonleaf = 0;
               p_shred_ms = 213875.; p_str_ms = 8968.; p_dbl_ms = 2623.;
               p_db_mb = 2702.2; p_str_mb = 361.1; p_dbl_mb = 1.0 });
  ]

let paper_row name = List.assoc name paper

(* --- shared data: the generated suite and its shredded stores --- *)

let suite = ref []
let stores : (string, Store.t) Hashtbl.t = Hashtbl.create 8

let load_suite () =
  if !suite = [] then begin
    Printf.printf
      "generating the 8-document suite at scale %.3f of the paper's sizes...\n%!"
      !scale;
    let (), ms = Timing.time_ms (fun () -> suite := Datasets.suite ~scale:!scale ()) in
    let total =
      List.fold_left (fun acc e -> acc + String.length e.Datasets.xml) 0 !suite
    in
    Printf.printf "generated %s of XML in %s\n\n%!" (Table.fmt_bytes total)
      (Table.fmt_ms ms)
  end

let store_of entry =
  match Hashtbl.find_opt stores entry.Datasets.name with
  | Some s -> s
  | None ->
      let s = Parser.parse_exn entry.Datasets.xml in
      Hashtbl.add stores entry.Datasets.name s;
      s

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

(* ====================================================== Table 1 ===== *)

let table1 () =
  load_suite ();
  print_endline "== Table 1: statistics about the data sets ==";
  print_endline
    "   (measured on the regenerated suite; 'paper' columns show the original)";
  let rows =
    List.map
      (fun e ->
        let store = store_of e in
        let ti = TI.create (LT.double ()) store in
        let st = TI.stats ti store in
        let total = Store.live_count store - 1 in
        let texts = Store.count_of_kind store Store.Text in
        let p = paper_row e.Datasets.name in
        [
          e.Datasets.name;
          Printf.sprintf "%.1f" (float_of_int (String.length e.Datasets.xml) /. 1e6);
          Table.fmt_int total;
          Table.fmt_int texts;
          Printf.sprintf "%.0f%% (%d%%)" (pct texts total) p.p_text_pct;
          Table.fmt_int st.TI.complete_text_nodes;
          Printf.sprintf "%.1f%% (%.1f%%)" (pct st.TI.complete_text_nodes total) p.p_dbl_pct;
          Printf.sprintf "%d (%d)" st.TI.complete_non_leaves p.p_nonleaf;
        ])
      !suite
  in
  Table.print
    ~header:
      [ "data"; "size MB"; "total nodes"; "text nodes"; "text% (paper)";
        "double values"; "dbl% (paper)"; "non-leaf (paper)" ]
    rows;
  print_newline ()

(* ====================================================== Figure 9 ===== *)

let fig9 () =
  load_suite ();
  print_endline "== Figure 9 (top): shredding time vs index creation time ==";
  print_endline
    "   (paper ratios in parentheses; our shredder is CPU-only and much faster\n\
    \    than MonetDB's disk-bound shredding -- see EXPERIMENTS.md)";
  let time_rows = ref [] and space_rows = ref [] in
  List.iter
    (fun e ->
      let name = e.Datasets.name in
      let p = paper_row name in
      let shred_ms =
        Timing.repeat_ms !reps (fun () -> ignore (Parser.parse_exn e.Datasets.xml : Store.t))
      in
      let store = store_of e in
      let str_ms = Timing.repeat_ms !reps (fun () -> ignore (SI.create store : SI.t)) in
      let dbl_ms =
        Timing.repeat_ms !reps (fun () -> ignore (TI.create (LT.double ()) store : TI.t))
      in
      time_rows :=
        [
          name;
          Table.fmt_ms shred_ms;
          Table.fmt_ms str_ms;
          Printf.sprintf "%.0f%% (%.0f%%)" (100. *. str_ms /. shred_ms)
            (100. *. p.p_str_ms /. p.p_shred_ms);
          Table.fmt_ms dbl_ms;
          Printf.sprintf "%.0f%% (%.0f%%)" (100. *. dbl_ms /. shred_ms)
            (100. *. p.p_dbl_ms /. p.p_shred_ms);
        ]
        :: !time_rows;
      let si = SI.create store in
      let ti = TI.create (LT.double ()) store in
      let db_b = Store.storage_bytes store in
      let si_b = SI.storage_bytes si in
      let ti_b = TI.storage_bytes ti in
      space_rows :=
        [
          name;
          Table.fmt_bytes db_b;
          Table.fmt_bytes si_b;
          Printf.sprintf "%.0f%% (%.0f%%)"
            (100. *. float_of_int si_b /. float_of_int db_b)
            (100. *. p.p_str_mb /. p.p_db_mb);
          Table.fmt_bytes ti_b;
          Printf.sprintf "%.1f%% (%.1f%%)"
            (100. *. float_of_int ti_b /. float_of_int db_b)
            (100. *. p.p_dbl_mb /. p.p_db_mb);
        ]
        :: !space_rows)
    !suite;
  Table.print
    ~header:
      [ "data"; "shred"; "string idx"; "str/shred (paper)"; "double idx";
        "dbl/shred (paper)" ]
    (List.rev !time_rows);
  print_newline ();
  print_endline "== Figure 9 (bottom): index storage vs database storage ==";
  Table.print
    ~header:
      [ "data"; "DB size"; "string idx"; "str/DB (paper)"; "double idx";
        "dbl/DB (paper)" ]
    (List.rev !space_rows);
  print_newline ()

(* ====================================================== Figure 10 ===== *)

let fig10 () =
  load_suite ();
  print_endline "== Figure 10: update time vs number of updated text nodes ==";
  Printf.printf
    "   (index maintenance only, mean of %d runs; paper: < 400 ms at 10^6\n\
    \    updated nodes on 2 GB Wiki, < 50 ms for small updates)\n" !reps;
  let counts = [ 1; 10; 100; 1_000; 10_000; 100_000 ] in
  let header =
    "data" :: "index"
    :: List.map
         (fun c ->
           if c >= 1000 then Printf.sprintf "%dk" (c / 1000) else string_of_int c)
         counts
  in
  let rows = ref [] in
  List.iter
    (fun e ->
      let store = store_of e in
      let si = SI.create store in
      let ti = TI.create (LT.double ()) store in
      let n_texts = Array.length (Store.text_nodes store) in
      let str_cells = ref [] and dbl_cells = ref [] in
      List.iter
        (fun count ->
          if count > n_texts then begin
            str_cells := "-" :: !str_cells;
            dbl_cells := "-" :: !dbl_cells
          end
          else begin
            let str_total = ref 0.0 and dbl_total = ref 0.0 in
            for rep = 1 to !reps do
              let updates =
                UW.random_text_updates ~seed:((rep * 7919) + count) store ~count
              in
              List.iter (fun (n, v) -> Store.set_text store n v) updates;
              let nodes = List.map fst updates in
              let (), ms =
                Timing.time_ms (fun () -> SI.update_texts si store nodes)
              in
              str_total := !str_total +. ms;
              let (), ms =
                Timing.time_ms (fun () -> TI.update_texts ti store nodes)
              in
              dbl_total := !dbl_total +. ms
            done;
            str_cells :=
              Table.fmt_ms (!str_total /. float_of_int !reps) :: !str_cells;
            dbl_cells :=
              Table.fmt_ms (!dbl_total /. float_of_int !reps) :: !dbl_cells
          end)
        counts;
      rows := (e.Datasets.name :: "string" :: List.rev !str_cells) :: !rows;
      rows := ("" :: "double" :: List.rev !dbl_cells) :: !rows)
    !suite;
  Table.print ~header (List.rev !rows);
  print_newline ();
  (* the sweep mutated the cached stores; drop them so any experiment
     running afterwards sees pristine documents *)
  Hashtbl.reset stores

(* ====================================================== Figure 11 ===== *)

let fig11 () =
  load_suite ();
  print_endline "== Figure 11: hash stability ==";
  print_endline
    "   (number of hash values shared by k distinct text-node string values)";
  let histo store =
    let by_hash = Hashtbl.create 65536 in
    Store.iter_pre store (fun n ->
        if Store.kind store n = Store.Text then begin
          let s = Store.text store n in
          let h = Hash.to_int (Hash.hash s) in
          let set =
            match Hashtbl.find_opt by_hash h with
            | Some set -> set
            | None ->
                let set = Hashtbl.create 2 in
                Hashtbl.add by_hash h set;
                set
          in
          Hashtbl.replace set s ()
        end);
    let histogram = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ set ->
        let k = Hashtbl.length set in
        Hashtbl.replace histogram k
          (1 + Option.value ~default:0 (Hashtbl.find_opt histogram k)))
      by_hash;
    histogram
  in
  let histos = List.map (fun e -> (e.Datasets.name, histo (store_of e))) !suite in
  let max_k =
    List.fold_left
      (fun acc (_, h) -> Hashtbl.fold (fun k _ a -> max k a) h acc)
      1 histos
  in
  let header = "k distinct strings" :: List.map fst histos in
  let rows =
    List.init max_k (fun i ->
        let k = i + 1 in
        string_of_int k
        :: List.map
             (fun (_, h) ->
               match Hashtbl.find_opt h k with
               | Some c -> Table.fmt_int c
               | None -> ".")
             histos)
  in
  Table.print ~header rows;
  let rows =
    List.map
      (fun (name, h) ->
        let distinct = Hashtbl.fold (fun k c acc -> acc + (k * c)) h 0 in
        let colliding =
          Hashtbl.fold (fun k c acc -> if k > 1 then acc + (k * c) else acc) h 0
        in
        [
          name; Table.fmt_int distinct; Table.fmt_int colliding;
          Table.fmt_pct (pct colliding distinct);
        ])
      histos
  in
  print_newline ();
  Table.print ~header:[ "data"; "distinct strings"; "colliding"; "rate" ] rows;
  print_newline ()

(* ====================================================== micro ===== *)

let micro () =
  print_endline "== Micro-benchmarks (Bechamel, time per operation) ==";
  (* a large live heap (the generated suite) inflates per-sample GC
     costs; compact first for clean estimates *)
  Gc.compact ();
  let open Bechamel in
  let open Toolkit in
  let s10 = String.init 10 (fun i -> Char.chr (97 + (i mod 26))) in
  let s100 = String.init 100 (fun i -> Char.chr (97 + (i mod 26))) in
  let s1000 = String.init 1000 (fun i -> Char.chr (97 + (i mod 26))) in
  let h1 = Hash.hash s100 and h2 = Hash.hash s1000 in
  let dbl = (LT.double ()).LT.sct in
  let e1 = Sct.of_string dbl "42.5" and e2 = Sct.of_string dbl "E+93" in
  let module BT = Xvi_btree.Btree.Make (Xvi_btree.Btree.Int_key) in
  let tree = BT.create () in
  let () =
    let rng = Prng.create 1 in
    for _ = 1 to 100_000 do
      BT.insert tree (Prng.int rng 10_000_000) 0
    done
  in
  let rng = Prng.create 2 in
  let tests =
    [
      Test.make ~name:"H(10 chars)" (Staged.stage (fun () -> Hash.hash s10));
      Test.make ~name:"H(100 chars)" (Staged.stage (fun () -> Hash.hash s100));
      Test.make ~name:"H(1000 chars)" (Staged.stage (fun () -> Hash.hash s1000));
      Test.make ~name:"C(h1,h2) combine" (Staged.stage (fun () -> Hash.combine h1 h2));
      Test.make ~name:"H(concat) instead of C"
        (Staged.stage (fun () -> Hash.hash (s100 ^ s1000)));
      Test.make ~name:"FSM run '42.5'"
        (Staged.stage (fun () -> Sct.of_string dbl "42.5"));
      Test.make ~name:"FSM run on prose"
        (Staged.stage (fun () -> Sct.of_string dbl "prose text of a sentence"));
      Test.make ~name:"SCT probe" (Staged.stage (fun () -> Sct.compose dbl e1 e2));
      Test.make ~name:"btree lookup (100k keys)"
        (Staged.stage (fun () -> BT.find tree (Prng.int rng 10_000_000)));
      Test.make ~name:"btree insert+remove"
        (Staged.stage (fun () ->
             let k = Prng.int rng 10_000_000 in
             BT.insert tree k 1;
             ignore (BT.remove tree k : bool)));
    ]
  in
  let test = Test.make_grouped ~name:"xvi" tests in
  let cfg =
    Benchmark.cfg ~limit:3000 ~quota:(Time.second 1.0)
      ~sampling:(`Geometric 1.05) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%.1f ns" e
        | _ -> "?"
      in
      rows := [ name; est ] :: !rows)
    results;
  Table.print ~header:[ "operation"; "time/op" ]
    (List.sort (List.compare String.compare) !rows);
  print_newline ()

(* ====================================================== ablation ===== *)

let ablation () =
  load_suite ();
  print_endline
    "== Ablations (design choices; see DESIGN.md 'ablation candidates') ==";
  let e = List.hd !suite (* XMark1 *) in
  let store = store_of e in
  let si = SI.create store in

  (* (a) incremental Figure 8 maintenance vs full rebuild *)
  let count = 1_000 in
  let updates = UW.random_text_updates ~seed:99 store ~count in
  List.iter (fun (n, v) -> Store.set_text store n v) updates;
  let nodes = List.map fst updates in
  let (), inc_ms = Timing.time_ms (fun () -> SI.update_texts si store nodes) in
  let rebuild_ms = Timing.repeat_ms 3 (fun () -> ignore (SI.create store : SI.t)) in
  Table.print ~header:[ "string index maintenance (1000 updates)"; "time" ]
    [
      [ "incremental (Figure 8, C-recombination)"; Table.fmt_ms inc_ms ];
      [ "full rebuild (Figure 7)"; Table.fmt_ms rebuild_ms ];
      [ "speedup"; Printf.sprintf "%.0fx" (rebuild_ms /. inc_ms) ];
    ];
  print_newline ();

  (* (b) per-ancestor recombination: combine children fields vs re-hash
     the reconstructed string value *)
  let fields = Indexer.create Indexer.hash_ops store in
  let victims =
    let rng = Prng.create 4 in
    let acc = ref [] in
    Store.iter_pre store (fun n ->
        if Store.kind store n = Store.Element && Prng.int rng 100 = 0 then
          acc := n :: !acc);
    Array.of_list !acc
  in
  let fold_children n =
    List.fold_left
      (fun acc c -> Hash.combine acc (Indexer.get fields c))
      Hash.empty (Store.children store n)
  in
  let (), fold_ms =
    Timing.time_ms (fun () ->
        Array.iter (fun n -> ignore (fold_children n : Hash.t)) victims)
  in
  let (), rehash_ms =
    Timing.time_ms (fun () ->
        Array.iter
          (fun n -> ignore (Hash.hash (Store.string_value store n) : Hash.t))
          victims)
  in
  Table.print
    ~header:
      [ Printf.sprintf "recombining %d elements" (Array.length victims); "time" ]
    [
      [ "C over children hashes (paper)"; Table.fmt_ms fold_ms ];
      [ "re-hash reconstructed string value"; Table.fmt_ms rehash_ms ];
      [ "speedup"; Printf.sprintf "%.1fx" (rehash_ms /. fold_ms) ];
    ];
  print_newline ();

  (* (c) group-inverse delta update (extension) vs sibling re-fold *)
  let texts = Store.text_nodes store in
  let rng = Prng.create 5 in
  let sample = Prng.sample_distinct rng 2_000 (Array.length texts) in
  let (), refold_ms =
    Timing.time_ms (fun () ->
        Array.iter
          (fun i ->
            let n = texts.(i) in
            match Store.parent store n with
            | Some p -> ignore (fold_children p : Hash.t)
            | None -> ())
          sample)
  in
  let (), delta_ms =
    Timing.time_ms (fun () ->
        Array.iter
          (fun i ->
            let n = texts.(i) in
            match Store.parent store n with
            | Some p ->
                (* prefix = combined fields of the preceding siblings;
                   the suffix is never visited *)
                let prefix = ref Hash.empty in
                let rec scan c =
                  if c <> n then begin
                    prefix := Hash.combine !prefix (Indexer.get fields c);
                    match Store.next_sibling store c with
                    | Some next -> scan next
                    | None -> ()
                  end
                in
                (match Store.first_child store p with
                | Some c -> scan c
                | None -> ());
                ignore
                  (Hash.replace
                     ~old_child:(Indexer.get fields n)
                     ~new_child:(Hash.hash "replacement") ~prefix:!prefix
                     (Indexer.get fields p)
                    : Hash.t)
            | None -> ())
          sample)
  in
  Table.print
    ~header:[ "parent hash after one child update (2000 samples)"; "time" ]
    [
      [ "re-fold all children (paper Figure 8)"; Table.fmt_ms refold_ms ];
      [ "group-inverse delta (extension)"; Table.fmt_ms delta_ms ];
      [ "ratio"; Printf.sprintf "%.2fx" (refold_ms /. delta_ms) ];
    ];
  print_newline ();

  (* the delta's real advantage appears on wide nodes: updating an early
     child of a 10000-child element *)
  let wide = Store.create () in
  let wide_root = Store.append_element wide ~parent:Store.document "wide" in
  for i = 0 to 9_999 do
    let c = Store.append_element wide ~parent:wide_root "e" in
    ignore (Store.append_text wide ~parent:c (string_of_int i) : Store.node)
  done;
  let wfields = Indexer.create Indexer.hash_ops wide in
  let early = List.nth (Store.children wide wide_root) 10 in
  let iters = 1_000 in
  let (), wide_refold_ms =
    Timing.time_ms (fun () ->
        for _ = 1 to iters do
          ignore
            (List.fold_left
               (fun acc c -> Hash.combine acc (Indexer.get wfields c))
               Hash.empty (Store.children wide wide_root)
              : Hash.t)
        done)
  in
  let (), wide_delta_ms =
    Timing.time_ms (fun () ->
        for _ = 1 to iters do
          let prefix = ref Hash.empty in
          let rec scan c =
            if c <> early then begin
              prefix := Hash.combine !prefix (Indexer.get wfields c);
              match Store.next_sibling wide c with
              | Some next -> scan next
              | None -> ()
            end
          in
          (match Store.first_child wide wide_root with
          | Some c -> scan c
          | None -> ());
          ignore
            (Hash.replace
               ~old_child:(Indexer.get wfields early)
               ~new_child:(Hash.hash "x") ~prefix:!prefix
               (Indexer.get wfields wide_root)
              : Hash.t)
        done)
  in
  Table.print
    ~header:
      [ "same, on a 10000-child element (child #10 updated)"; "time/update" ]
    [
      [ "re-fold all children (paper Figure 8)";
        Table.fmt_ms (wide_refold_ms /. float_of_int iters) ];
      [ "group-inverse delta (extension)";
        Table.fmt_ms (wide_delta_ms /. float_of_int iters) ];
      [ "speedup"; Printf.sprintf "%.0fx" (wide_refold_ms /. wide_delta_ms) ];
    ];
  print_newline ();

  (* (d) one shared pass vs one pass per index (paper Section 5) *)
  let specs = [ LT.double (); LT.datetime () ] in
  let (), multi_ms =
    Timing.time_ms (fun () ->
        let packs =
          Indexer.Packed
            (Indexer.hash_ops, Indexer.empty_fields Indexer.hash_ops store)
          :: List.map
               (fun spec ->
                 let ops = Indexer.sct_ops spec.LT.sct in
                 Indexer.Packed (ops, Indexer.empty_fields ops store))
               specs
        in
        Indexer.create_multi store packs)
  in
  let (), separate_ms =
    Timing.time_ms (fun () ->
        ignore (Indexer.create Indexer.hash_ops store : Hash.t Indexer.fields);
        List.iter
          (fun spec ->
            ignore
              (Indexer.create (Indexer.sct_ops spec.LT.sct) store
                : int Indexer.fields))
          specs)
  in
  Table.print
    ~header:[ "field computation for 3 indices (string+double+dateTime)"; "time" ]
    [
      [ "one shared Figure 7 pass (paper Section 5)"; Table.fmt_ms multi_ms ];
      [ "one pass per index"; Table.fmt_ms separate_ms ];
      [ "speedup"; Printf.sprintf "%.2fx" (separate_ms /. multi_ms) ];
    ];
  print_newline ();

  (* (e) typed-index reconstruction modes *)
  let ti_doc, doc_ms =
    Timing.time_ms (fun () -> TI.create (LT.double ()) store)
  in
  let ti_frag, frag_ms =
    Timing.time_ms (fun () -> TI.create ~reconstruct:`Fragment (LT.double ()) store)
  in
  Table.print
    ~header:[ "typed index reconstruction mode"; "create"; "storage" ]
    [
      [ "`Document (re-read store on update)"; Table.fmt_ms doc_ms;
        Table.fmt_bytes (TI.storage_bytes ti_doc) ];
      [ "`Fragment (no document access)"; Table.fmt_ms frag_ms;
        Table.fmt_bytes (TI.storage_bytes ti_frag) ];
    ];
  print_newline ()

(* ====================================================== substr ===== *)

(* Extension experiment: the paper's §7 future work, substring indexing,
   measured in the same style as Figure 9/10 — build cost, storage, and
   query latency vs a full scan. *)
let substr () =
  load_suite ();
  print_endline "== Substring (3-gram) index: the paper's future-work extension ==";
  let e = List.nth !suite 7 (* Wiki: the text-heaviest set *) in
  let store = store_of e in
  let module SubI = Xvi_core.Substring_index in
  let si, build_ms = Timing.time_ms (fun () -> SubI.create store) in
  Printf.printf "built on %s (%s nodes) in %s; %s postings, %s (DB %s)

"
    e.Datasets.name
    (Table.fmt_int (Store.live_count store))
    (Table.fmt_ms build_ms)
    (Table.fmt_int (SubI.entry_count si))
    (Table.fmt_bytes (SubI.storage_bytes si))
    (Table.fmt_bytes (Store.storage_bytes store));
  let scan pattern =
    let acc = ref 0 in
    Store.iter_pre store (fun n ->
        match Store.kind store n with
        | Store.Text | Store.Attribute ->
            let s = Store.text store n in
            let m = String.length pattern and len = String.length s in
            let rec at i j = j = m || (s.[i + j] = pattern.[j] && at i (j + 1)) in
            let rec go i = i + m <= len && (at i 0 || go (i + 1)) in
            if go 0 then incr acc
        | _ -> ());
    !acc
  in
  let rows =
    List.map
      (fun pattern ->
        let hits, idx_ms =
          Timing.time_ms (fun () -> SubI.contains si store pattern)
        in
        let scan_hits, scan_ms = Timing.time_ms (fun () -> scan pattern) in
        assert (List.length hits = scan_hits);
        [
          Printf.sprintf "%S" pattern;
          Table.fmt_int (List.length hits);
          Table.fmt_ms idx_ms;
          Table.fmt_ms scan_ms;
          Printf.sprintf "%.0fx" (scan_ms /. idx_ms);
        ])
      [ "wikipedia"; "hitchhik"; "president"; "qqq"; "according" ]
  in
  Table.print ~header:[ "pattern"; "hits"; "gram index"; "full scan"; "speedup" ] rows;
  print_endline
    "   (gram indexes win on selective patterns; high-frequency patterns\n\
    \    degrade to scan speed because every posting must be verified)";
  print_newline ()

(* ====================================================== baseline ===== *)

(* Extension experiment: the DB2 PureXML-style path-specific index the
   paper's introduction argues against, vs the generic double index. *)
let baseline () =
  load_suite ();
  print_endline
    "== Baseline: DBA-configured path index (DB2 style) vs generic index ==";
  let e = List.nth !suite 2 (* XMark4 *) in
  let store = store_of e in
  let module PI = Xvi_core.Path_index in
  let generic, g_ms =
    Timing.time_ms (fun () -> TI.create (LT.double ()) store)
  in
  let path, p_ms =
    Timing.time_ms (fun () ->
        PI.create_exn ~pattern:"//open_auction/initial" (LT.double ()) store)
  in
  Table.print
    ~header:[ "index"; "create"; "storage"; "entries" ]
    [
      [ "generic xs:double (paper)"; Table.fmt_ms g_ms;
        Table.fmt_bytes (TI.storage_bytes generic);
        Table.fmt_int (TI.entry_count generic) ];
      [ "path //open_auction/initial (DB2 style)"; Table.fmt_ms p_ms;
        Table.fmt_bytes (PI.storage_bytes path);
        Table.fmt_int (PI.entry_count path) ];
    ];
  print_newline ();
  (* the declared path: both answer; any other path: only the generic *)
  let lo = 100.0 and hi = 120.0 in
  let p_hits, p_query =
    Timing.time_ms (fun () -> PI.range ~lo ~hi path)
  in
  let g_hits, g_query =
    Timing.time_ms (fun () ->
        List.filter
          (fun n ->
            Store.kind store n = Store.Element
            && Store.name store n = "initial")
          (TI.range ~lo ~hi generic))
  in
  Table.print
    ~header:[ "query"; "path index"; "generic index" ]
    [
      [ "initial in [100,120]";
        Printf.sprintf "%d hits, %s" (List.length p_hits) (Table.fmt_ms p_query);
        Printf.sprintf "%d hits, %s" (List.length g_hits) (Table.fmt_ms g_query) ];
      [ "price < 5 (undeclared path)";
        "cannot answer (needs DBA action)";
        Printf.sprintf "%d hits"
          (List.length
             (List.filter
                (fun n ->
                  Store.kind store n = Store.Element
                  && Store.name store n = "price")
                (TI.range ~hi:5.0 generic))) ];
      [ {|string lookup "Creditcard"|};
        "cannot answer (wrong type)";
        Printf.sprintf "%d hits"
          (List.length (SI.lookup (SI.create store) store "Creditcard")) ];
    ];
  print_endline
    "   (the paper's trade: the generic indices pay a constant storage factor
    \    to cover every path, every node and both comparison kinds at once)";
  print_newline ()

(* ====================================================== queries ===== *)

(* Extension experiment: end-to-end query acceleration — what the
   paper's indices are for. Naive tree-walking evaluation vs the
   index-driven evaluator, on schema-appropriate queries per data set. *)
let queries () =
  load_suite ();
  print_endline "== Query acceleration (extension): naive vs index-driven XPath ==";
  let module Xpath = Xvi_xpath.Xpath in
  let cases =
    [
      ( "XMark4",
        [
          "//person[profile/age = 42]";
          "//open_auction[initial >= 100 and initial < 110]";
          "//item[quantity = 2]";
          "//person[name = \"Arthur Dent\"]";
          "//closed_auction[price >= 700]";
        ] );
      ( "DBLP",
        [
          "//article[year = 1999]";
          "//article[author = \"Lefteris Sidirourgos\"]";
          "//inproceedings[year >= 2000 and year < 2003]";
        ] );
      ( "Wiki",
        [ "//doc[population > 1000000]"; "//doc[contains(comment, \"health\")]" ] );
    ]
  in
  List.iter
    (fun (name, qs) ->
      let e = List.find (fun e -> e.Datasets.name = name) !suite in
      let store = store_of e in
      let db, build_ms =
        Timing.time_ms (fun () ->
            Xvi_core.Db.of_store
              ~config:
                {
                  Xvi_core.Db.Config.default with
                  Xvi_core.Db.Config.substring = name = "Wiki";
                }
              store)
      in
      Printf.printf "%s (%s nodes; indices built in %s):\n" name
        (Table.fmt_int (Store.live_count store))
        (Table.fmt_ms build_ms);
      let rows =
        List.map
          (fun q ->
            let t = Xpath.parse_exn q in
            let naive, naive_ms = Timing.time_ms (fun () -> Xpath.eval store t) in
            (* warm run: the plane is cached by the Db *)
            ignore (Xpath.eval_indexed db t : Store.node list);
            let fast, fast_ms =
              Timing.time_ms (fun () -> Xpath.eval_indexed db t)
            in
            assert (naive = fast);
            [
              q;
              string_of_int (List.length naive);
              Table.fmt_ms naive_ms;
              Table.fmt_ms fast_ms;
              Printf.sprintf "%.0fx" (naive_ms /. fast_ms);
            ])
          qs
      in
      Table.print ~header:[ "query"; "hits"; "naive"; "indexed"; "speedup" ] rows;
      print_newline ())
    cases

(* ====================================================== query ===== *)

(* The compositional query layer: a conjunctive name + range (+ scope)
   predicate over XMark, answered by the planner's streaming cursor
   merges vs the pre-planner strategy — materialize every conjunct's
   full hit list, intersect through a hashtable, apply the scope by
   parent up-walks, sort. Results are asserted equal; timings and the
   speedup land in BENCH_query.json for trend tracking. *)
let quick = ref false

let query_bench () =
  print_endline "== Query planner: streaming merges vs naive intersection ==";
  let module Db = Xvi_core.Db in
  let module Ir = Db.Ir in
  let module Plane = Xvi_xml.Pre_plane in
  let factor = if !quick then 0.08 else !scale *. 40.0 in
  let reps = if !quick then 1 else !reps in
  let xml = Xvi_workload.Xmark.generate ~seed:42 ~factor () in
  let store = Parser.parse_exn xml in
  let db = Db.of_store store in
  Printf.printf "XMark factor %.2f: %s nodes\n%!" factor
    (Table.fmt_int (Store.live_count store));
  let scope =
    match Db.elements_named db "open_auctions" with
    | s :: _ -> s
    | [] -> failwith "XMark document without <open_auctions>"
  in
  let range = Db.Range.between 100.0 200.0 in
  let conj = Ir.conj [ Ir.named "initial"; Ir.typed_range "xs:double" range ] in
  let scoped = Ir.within ~scope conj in
  let naive_run ~use_scope () =
    (* the pre-planner shape: every conjunct — the scope included — as a
       materialized node list, intersected through hashtables, sorted *)
    let l1 = Db.elements_named db "initial" in
    let l2 = Db.lookup_double db range in
    let scope_set =
      if not use_scope then None
      else begin
        let set = Hashtbl.create 4096 in
        let rec add n =
          Hashtbl.replace set n ();
          List.iter add (Store.attributes store n);
          List.iter add (Store.children store n)
        in
        add scope;
        Some set
      end
    in
    let set = Hashtbl.create (List.length l1) in
    List.iter (fun n -> Hashtbl.replace set n ()) l1;
    let inter = List.filter (Hashtbl.mem set) l2 in
    let restricted =
      match scope_set with
      | None -> inter
      | Some s -> List.filter (Hashtbl.mem s) inter
    in
    Plane.sort_doc_order (Db.plane db) restricted
  in
  print_endline "plan for the scoped conjunction:";
  print_string (Db.explain db scoped);
  print_newline ();
  let rows = ref [] and json_cases = ref [] in
  List.iter
    (fun (label, ir, naive) ->
      let planned_hits = Db.query db ir in
      let naive_hits = naive () in
      assert (planned_hits = naive_hits);
      (* Alternate the two measurement blocks and keep each side's best:
         at tens of microseconds per query, scheduler jitter between two
         sequential blocks otherwise dominates the comparison. *)
      let planned_ms = ref infinity and naive_ms = ref infinity in
      for _ = 1 to 5 do
        let p = Timing.repeat_ms reps (fun () -> ignore (Db.query db ir : Store.node list))
        in
        let n = Timing.repeat_ms reps (fun () -> ignore (naive () : Store.node list)) in
        if p < !planned_ms then planned_ms := p;
        if n < !naive_ms then naive_ms := n
      done;
      let planned_ms = !planned_ms and naive_ms = !naive_ms in
      rows :=
        [
          label;
          Table.fmt_int (List.length planned_hits);
          Table.fmt_ms planned_ms;
          Table.fmt_ms naive_ms;
          Printf.sprintf "%.1fx" (naive_ms /. planned_ms);
        ]
        :: !rows;
      json_cases :=
        Printf.sprintf
          "    { \"query\": %S, \"hits\": %d, \"planned_ms\": %.4f, \
           \"naive_ms\": %.4f, \"speedup\": %.2f }"
          (Ir.to_string ir) (List.length planned_hits) planned_ms naive_ms
          (naive_ms /. planned_ms)
        :: !json_cases)
    [
      ("name + range", conj, naive_run ~use_scope:false);
      ("name + range within scope", scoped, naive_run ~use_scope:true);
    ];
  Table.print
    ~header:[ "query"; "hits"; "planned"; "naive intersect"; "speedup" ]
    (List.rev !rows);
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"query\",\n\
      \  \"xmark_factor\": %.3f,\n\
      \  \"nodes\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"cases\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      factor (Store.live_count store) reps
      (String.concat ",\n" (List.rev !json_cases))
  in
  let oc = open_out "BENCH_query.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_query.json";
  print_newline ()

(* ====================================================== parallel ===== *)

(* Extension experiment: domain-parallel index construction. Builds the
   full Db over an XMark document with 1, 2, 4 and 8 domains, reports
   the wall-clock speedup over the serial build, and checks that the
   parallel field columns are bit-identical to the serial ones (the
   monoid-reduction argument behind Indexer.create_multi). Speedup
   saturates at the host's core count. *)
let parallel () =
  print_endline "== Parallel index construction (jobs = 1/2/4/8) ==";
  Printf.printf "host recommends %d domain(s)\n"
    (Xvi_util.Pool.recommended_jobs ());
  let xml = Xvi_workload.Xmark.generate ~seed:42 ~factor:(!scale *. 40.0) () in
  let store = Parser.parse_exn xml in
  Printf.printf "XMark at scale %.3f: %s nodes\n%!" !scale
    (Table.fmt_int (Store.live_count store));
  let module Db = Xvi_core.Db in
  let build jobs =
    Db.of_store ~config:{ Db.Config.default with Db.Config.jobs } store
  in
  (* every per-node field of every index, digested *)
  let fingerprint db =
    let si = Db.string_index db in
    let buf = Buffer.create 65536 in
    Store.iter_pre store (fun n ->
        Buffer.add_string buf (string_of_int (Hash.to_int (SI.hash_of si n))));
    List.iter
      (fun ti ->
        Store.iter_pre store (fun n ->
            Buffer.add_string buf (string_of_int (TI.state_of ti n))))
      (Db.typed_indices db);
    Digest.string (Buffer.contents buf)
  in
  let serial_fp = ref "" and serial_ms = ref 0.0 in
  let rows =
    List.map
      (fun jobs ->
        let ms =
          Timing.repeat_ms ~warmup:1 !reps (fun () -> ignore (build jobs : Db.t))
        in
        let fp = fingerprint (build jobs) in
        if jobs = 1 then begin
          serial_fp := fp;
          serial_ms := ms
        end;
        [
          string_of_int jobs;
          Table.fmt_ms ms;
          Printf.sprintf "%.2fx" (!serial_ms /. ms);
          (if fp = !serial_fp then "bit-identical" else "MISMATCH");
        ])
      [ 1; 2; 4; 8 ]
  in
  Table.print ~header:[ "jobs"; "build"; "speedup"; "vs serial" ] rows;
  (match Db.validate (build 4) with
  | Ok () -> print_endline "jobs=4 database validates clean against a rebuild"
  | Error e -> Printf.printf "VALIDATION FAILED: %s\n" e);
  print_newline ()

(* ====================================================== wal ===== *)

(* Extension experiment: durable commit throughput under the three WAL
   sync policies. Every commit is one write-ahead-logged transaction;
   Always pays one fsync per commit, Group batches the commits of a
   2 ms window behind a single fsync, Never leaves flushing to the OS
   (the upper bound: pure logging cost). Runs in a directory under the
   current working tree, NOT /tmp — tmpfs grants free fsyncs and would
   fake the result. Each mode's run is crash-recovered and validated
   afterwards; throughputs land in BENCH_wal.json. *)
let wal_bench () =
  print_endline "== WAL group commit: durable commit throughput by sync policy ==";
  let module Db = Xvi_core.Db in
  let module Txn = Xvi_txn.Txn in
  let module Wal = Xvi_wal.Wal in
  let module Durable = Xvi_wal.Durable in
  let factor = if !quick then 0.02 else 0.1 in
  let commits = if !quick then 1000 else 2000 in
  let xml = Xvi_workload.Xmark.generate ~seed:42 ~factor () in
  let base = Filename.concat (Sys.getcwd ()) "_bench_wal.tmp" in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  rm_rf base;
  Unix.mkdir base 0o755;
  let modes =
    [ ("always", Wal.Always); ("group", Wal.Group 0.002); ("never", Wal.Never) ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (name, _) -> rm_rf (Filename.concat base name)) modes;
      rm_rf base)
    (fun () ->
      let results =
        List.map
          (fun (name, mode) ->
            let dir = Filename.concat base name in
            let db =
              match Db.of_xml xml with
              | Ok db -> db
              | Error e -> failwith (Parser.error_to_string e)
            in
            let texts = Store.text_nodes (Db.store db) in
            (* scratch dir: a leftover from an interrupted run is fair
               game to overwrite *)
            let t = Durable.create ~force:true ~sync_mode:mode ~dir db in
            let n = Array.length texts in
            let (), ms =
              Timing.time_ms (fun () ->
                  for i = 1 to commits do
                    match
                      Durable.update_text t
                        texts.(i mod n)
                        (Printf.sprintf "wal bench %d" i)
                    with
                    | Ok () -> ()
                    | Error (c : Txn.conflict) ->
                        failwith ("wal bench commit conflicted: " ^ c.Txn.reason)
                  done;
                  (* the tail of the last group window / Never backlog:
                     durability isn't reached until this fsync, so it
                     belongs inside the timed region *)
                  Durable.sync t)
            in
            let st = Txn.stats (Durable.manager t) in
            let w = (Durable.stats t).Durable.writer in
            Durable.close t;
            (* crash-recover the directory and make sure nothing was lost *)
            let r =
              match Durable.open_ dir with
              | Ok r -> r
              | Error m -> failwith (name ^ ": recovery failed: " ^ m)
            in
            let last =
              Store.text (Db.store (Durable.db r)) texts.(commits mod n)
            in
            if last <> Printf.sprintf "wal bench %d" commits then
              failwith (name ^ ": recovery lost the last committed update");
            (match Db.validate (Durable.db r) with
            | Ok () -> ()
            | Error e -> failwith (name ^ ": recovered db invalid: " ^ e));
            Durable.close r;
            let tps = float_of_int commits /. (ms /. 1000.) in
            (name, mode, ms, tps, st, w))
          modes
      in
      let tps_of name =
        let _, _, _, tps, _, _ =
          List.find (fun (n, _, _, _, _, _) -> n = name) results
        in
        tps
      in
      let speedup = tps_of "group" /. tps_of "always" in
      Table.print
        ~header:
          [ "sync mode"; "commits"; "total"; "commits/s"; "fsyncs"; "batched" ]
        (List.map
           (fun (name, mode, ms, tps, st, (w : Wal.Writer.stats)) ->
             ignore (mode : Wal.sync_mode);
             [
               name;
               string_of_int st.Txn.committed;
               Table.fmt_ms ms;
               Printf.sprintf "%.0f" tps;
               string_of_int w.Wal.Writer.syncs;
               string_of_int st.Txn.wal_deferred;
             ])
           results);
      Printf.printf "group commit speedup over per-commit fsync: %.1fx\n"
        speedup;
      let json =
        Printf.sprintf
          "{\n\
          \  \"experiment\": \"wal\",\n\
          \  \"xmark_factor\": %.3f,\n\
          \  \"commits\": %d,\n\
          \  \"group_vs_always_speedup\": %.2f,\n\
          \  \"modes\": [\n\
           %s\n\
          \  ]\n\
           }\n"
          factor commits speedup
          (String.concat ",\n"
             (List.map
                (fun (name, mode, ms, tps, st, (w : Wal.Writer.stats)) ->
                  Printf.sprintf
                    "    { \"mode\": %S, \"sync\": %S, \"total_ms\": %.3f, \
                     \"commits_per_s\": %.1f, \"fsyncs\": %d, \
                     \"synced_commits\": %d, \"deferred_commits\": %d }"
                    name
                    (Wal.sync_mode_to_string mode)
                    ms tps w.Wal.Writer.syncs st.Txn.wal_synced
                    st.Txn.wal_deferred)
                results))
      in
      let oc = open_out "BENCH_wal.json" in
      output_string oc json;
      close_out oc;
      print_endline "wrote BENCH_wal.json";
      print_newline ())

(* ==================================================== serve ===== *)

(* Serving-layer experiment: read QPS of snapshot-isolated reader
   domains against a live engine, and durable commit throughput of
   concurrent sessions under per-commit fsync vs cross-session group
   commit. Reader scaling is bounded by the machine's core count — the
   JSON records [cores] so a 1-core CI box reporting flat QPS is read
   as what it is, not as a serving-layer defect. The commit half runs
   in a directory under the working tree, NOT /tmp, for the same
   reason as the wal experiment: tmpfs fsyncs are free. Results land
   in BENCH_serve.json. *)
let serve_bench () =
  print_endline
    "== serve: epoch-pinned read QPS and cross-session commit throughput ==";
  let module Db = Xvi_core.Db in
  let module Txn = Xvi_txn.Txn in
  let module Wal = Xvi_wal.Wal in
  let module Engine = Xvi_serve.Engine in
  let module Session = Xvi_serve.Session in
  let cores = Domain.recommended_domain_count () in
  let factor = if !quick then 0.02 else 0.05 in
  let xml = Xvi_workload.Xmark.generate ~seed:42 ~factor () in
  let parse () =
    match Db.of_xml xml with
    | Ok db -> db
    | Error e -> failwith (Parser.error_to_string e)
  in
  let client_counts = [ 1; 2; 4; 8 ] in

  (* --- read QPS: N reader domains, each on its own session --- *)
  let read_duration = if !quick then 0.3 else 1.0 in
  let probe_values db =
    (* a few real text values to look up, spread over the document *)
    let store = Db.store db in
    let texts = Store.text_nodes store in
    let n = Array.length texts in
    Array.init 16 (fun i -> Store.text store texts.(i * (n / 16)))
  in
  let read_rows =
    let db = parse () in
    let probes = probe_values db in
    let engine =
      match Engine.open_ (Engine.Memory db) with
      | Ok e -> e
      | Error e -> failwith (Engine.error_to_string e)
    in
    Fun.protect
      ~finally:(fun () -> Engine.close engine)
      (fun () ->
        List.map
          (fun readers ->
            let deadline = Unix.gettimeofday () +. read_duration in
            let reader () =
              let s = Session.create engine in
              let ops = ref 0 and hits = ref 0 in
              while Unix.gettimeofday () < deadline do
                let v = probes.(!ops mod Array.length probes) in
                hits := !hits + List.length (Session.lookup_string s v);
                incr ops;
                (* a live client repins now and then; keep that cost in *)
                if !ops mod 64 = 0 then ignore (Session.refresh s : Engine.pinned)
              done;
              Session.close s;
              (!ops, !hits)
            in
            let doms = List.init readers (fun _ -> Domain.spawn reader) in
            let ops, hits =
              List.fold_left
                (fun (o, h) d ->
                  let o', h' = Domain.join d in
                  (o + o', h + h'))
                (0, 0) doms
            in
            let qps = float_of_int ops /. read_duration in
            if hits = 0 then failwith "read probes never hit";
            (readers, qps))
          client_counts)
  in
  let qps_of n = snd (List.find (fun (r, _) -> r = n) read_rows) in
  Table.print
    ~header:[ "readers"; "lookups/s"; "scaling" ]
    (List.map
       (fun (readers, qps) ->
         [
           string_of_int readers;
           Printf.sprintf "%.0f" qps;
           Printf.sprintf "%.2fx" (qps /. qps_of 1);
         ])
       read_rows);
  Printf.printf "(%d core%s visible to this run)\n" cores
    (if cores = 1 then "" else "s");

  (* --- commit throughput: N sessions, per-commit fsync vs group --- *)
  let commits = if !quick then 400 else 2000 in
  let base = Filename.concat (Sys.getcwd ()) "_bench_serve.tmp" in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  let run_mode sync_mode ~durable_acks ~clients =
    let dir = Filename.concat base "store" in
    rm_rf dir;
    let engine =
      match Engine.init ~sync_mode ~force:true ~dir (parse ()) with
      | Ok e -> e
      | Error e -> failwith (Engine.error_to_string e)
    in
    let texts = Store.text_nodes (Db.store (Engine.snapshot engine)) in
    let n = Array.length texts in
    let per_client = commits / clients in
    (* client [c] owns the text nodes with index = c mod clients: the
       write sets are disjoint, so no commit ever conflicts *)
    let client c () =
      let s = Session.create engine in
      for i = 0 to per_client - 1 do
        (match Session.begin_ s with
        | Ok () -> ()
        | Error e -> failwith (Engine.error_to_string e));
        let node = texts.(((i * clients) + c) mod n) in
        (match Session.stage s node (Printf.sprintf "serve bench %d.%d" c i) with
        | Ok () -> ()
        | Error e -> failwith (Engine.error_to_string e));
        match Session.commit ~durable:durable_acks s with
        | Ok (_ : Wal.lsn) -> ()
        | Error e -> failwith (Engine.error_to_string e)
      done;
      Session.close s
    in
    let (), ms =
      Timing.time_ms (fun () ->
          let doms =
            List.init clients (fun c -> Domain.spawn (client c))
          in
          List.iter Domain.join doms;
          (* deferred commits are not durable until this closes the
             last group window — it belongs inside the timed region *)
          Engine.sync engine)
    in
    let st = (Engine.stats engine).Engine.txn in
    Engine.close engine;
    (* recover the directory: nothing a client was acked may be lost *)
    (match Engine.open_ (Engine.Dir dir) with
    | Ok r ->
        (match Db.validate (Engine.snapshot r) with
        | Ok () -> ()
        | Error e -> failwith ("recovered db invalid: " ^ e));
        let rc = (Engine.stats r).Engine.commits in
        ignore (rc : int);
        Engine.close r
    | Error e -> failwith (Engine.error_to_string e));
    rm_rf dir;
    let tps = float_of_int (clients * per_client) /. (ms /. 1000.) in
    (tps, st.Txn.wal_deferred)
  in
  rm_rf base;
  Unix.mkdir base 0o755;
  let commit_rows =
    Fun.protect
      ~finally:(fun () ->
        rm_rf (Filename.concat base "store");
        rm_rf base)
      (fun () ->
        List.map
          (fun clients ->
            (* baseline: every commit pays its own fsync for its ack *)
            let always_tps, _ =
              run_mode Wal.Always ~durable_acks:true ~clients
            in
            (* group commit: sessions defer, windows batch the fsyncs *)
            let group_tps, deferred =
              run_mode (Wal.Group 0.002) ~durable_acks:false ~clients
            in
            (clients, always_tps, group_tps, deferred))
          client_counts)
  in
  Table.print
    ~header:[ "sessions"; "always c/s"; "group c/s"; "speedup"; "deferred" ]
    (List.map
       (fun (clients, always_tps, group_tps, deferred) ->
         [
           string_of_int clients;
           Printf.sprintf "%.0f" always_tps;
           Printf.sprintf "%.0f" group_tps;
           Printf.sprintf "%.1fx" (group_tps /. always_tps);
           string_of_int deferred;
         ])
       commit_rows);

  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"serve\",\n\
      \  \"cores\": %d,\n\
      \  \"xmark_factor\": %.3f,\n\
      \  \"read_duration_s\": %.2f,\n\
      \  \"commits\": %d,\n\
      \  \"read\": [\n%s\n  ],\n\
      \  \"commit\": [\n%s\n  ]\n\
       }\n"
      cores factor read_duration commits
      (String.concat ",\n"
         (List.map
            (fun (readers, qps) ->
              Printf.sprintf
                "    { \"readers\": %d, \"lookups_per_s\": %.1f, \
                 \"scaling_vs_1\": %.2f }"
                readers qps (qps /. qps_of 1))
            read_rows))
      (String.concat ",\n"
         (List.map
            (fun (clients, always_tps, group_tps, deferred) ->
              Printf.sprintf
                "    { \"clients\": %d, \"always_per_s\": %.1f, \
                 \"group_per_s\": %.1f, \"group_vs_always\": %.2f, \
                 \"deferred_commits\": %d }"
                clients always_tps group_tps (group_tps /. always_tps)
                deferred)
            commit_rows))
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_serve.json";
  print_newline ()

(* ====================================================== repl ===== *)

(* Replication experiment: what follower count costs the writer and
   buys the readers. Followers are real [Xvi_repl.Follower]s over the
   in-process transport — production pull/validate/append/apply code,
   minus socket latency, so the numbers isolate the replication work
   itself. Lag half: a write storm on the leader while 0/1/2/4
   followers pull concurrently; records write throughput, the worst
   staleness any follower admitted to mid-storm, and how long the
   fleet took to drain after the last commit. Read half: epoch-pinned
   lookup QPS of reader domains spread over the follower replicas vs
   the same domains all on the leader. Reader scaling is bounded by
   core count ([cores] is recorded); follower directories live under
   the working tree, not /tmp, for the usual tmpfs-fsync reason.
   Results land in BENCH_repl.json. *)
let repl_bench () =
  print_endline
    "== repl: replication lag vs write load, follower read scaling ==";
  let module Db = Xvi_core.Db in
  let module Wal = Xvi_wal.Wal in
  let module Engine = Xvi_serve.Engine in
  let module Session = Xvi_serve.Session in
  let module Transport = Xvi_repl.Transport in
  let module Follower = Xvi_repl.Follower in
  let cores = Domain.recommended_domain_count () in
  let factor = if !quick then 0.02 else 0.05 in
  let xml = Xvi_workload.Xmark.generate ~seed:43 ~factor () in
  let parse () =
    match Db.of_xml xml with
    | Ok db -> db
    | Error e -> failwith (Parser.error_to_string e)
  in
  let base = Filename.concat (Sys.getcwd ()) "_bench_repl.tmp" in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  rm_rf base;
  Unix.mkdir base 0o755;
  let follower_counts = [ 0; 1; 2; 4 ] in
  let commits = if !quick then 200 else 1000 in
  let fail_engine e = failwith (Engine.error_to_string e) in
  let with_leader name f =
    let dir = Filename.concat base name in
    rm_rf dir;
    let engine =
      match
        Engine.init ~sync_mode:(Wal.Group 0.002) ~force:true ~dir (parse ())
      with
      | Ok e -> e
      | Error e -> fail_engine e
    in
    Fun.protect
      ~finally:(fun () ->
        Engine.close engine;
        rm_rf dir)
      (fun () -> f engine)
  in
  let spawn_followers leader n =
    List.init n (fun i ->
        let dir = Filename.concat base (Printf.sprintf "f%d" i) in
        rm_rf dir;
        match
          Follower.create ~poll_interval:0.001
            ~transport:(Transport.of_engine leader) ~dir ()
        with
        | Ok f ->
            Follower.start f;
            f
        | Error m -> failwith ("follower: " ^ m))
  in
  let close_followers fs =
    List.iter
      (fun f ->
        let dir = Follower.dir f in
        Follower.close f;
        rm_rf dir)
      fs
  in

  (* --- lag: write storm on the leader, followers pulling live --- *)
  let lag_rows =
    List.map
      (fun followers ->
        with_leader "leader" (fun leader ->
            let fs = spawn_followers leader followers in
            Fun.protect
              ~finally:(fun () -> close_followers fs)
              (fun () ->
                let texts = Store.text_nodes (Db.store (Engine.snapshot leader)) in
                let n = Array.length texts in
                let max_stale = ref 0 in
                let (), ms =
                  Timing.time_ms (fun () ->
                      for i = 0 to commits - 1 do
                        (match
                           Engine.update_texts leader
                             [ (texts.(i mod n), Printf.sprintf "repl bench %d" i) ]
                         with
                        | Ok (_ : Wal.lsn) -> ()
                        | Error e -> fail_engine e);
                        if i mod 16 = 0 then
                          List.iter
                            (fun f ->
                              max_stale := max !max_stale (Follower.staleness f))
                            fs
                      done;
                      Engine.sync leader)
                in
                let tps = float_of_int commits /. (ms /. 1000.) in
                (* drain: how long until every follower serves the tail *)
                let target = (Engine.stats leader).Engine.durable_lsn in
                let (), catchup_ms =
                  Timing.time_ms (fun () ->
                      let deadline = Unix.gettimeofday () +. 30.0 in
                      List.iter
                        (fun f ->
                          while
                            Follower.applied_lsn f < target
                            && Unix.gettimeofday () < deadline
                          do
                            Unix.sleepf 0.0005
                          done)
                        fs)
                in
                List.iter
                  (fun f ->
                    if Follower.applied_lsn f < target then
                      failwith "follower never caught up")
                  fs;
                (followers, tps, !max_stale, catchup_ms))))
      follower_counts
  in
  Table.print
    ~header:[ "followers"; "commits/s"; "max staleness"; "drain ms" ]
    (List.map
       (fun (followers, tps, stale, catchup_ms) ->
         [
           string_of_int followers;
           Printf.sprintf "%.0f" tps;
           string_of_int stale;
           Printf.sprintf "%.1f" catchup_ms;
         ])
       lag_rows);

  (* --- read QPS: reader domains on the replicas vs on the leader --- *)
  let readers = 4 in
  let read_duration = if !quick then 0.3 else 1.0 in
  let read_rows =
    List.map
      (fun followers ->
        with_leader "leader" (fun leader ->
            let fs = spawn_followers leader followers in
            Fun.protect
              ~finally:(fun () -> close_followers fs)
              (fun () ->
                (* the probes must exist on the replicas too: make the
                   state durable, then wait for the fleet to sync *)
                Engine.sync leader;
                let target = (Engine.stats leader).Engine.durable_lsn in
                List.iter
                  (fun f ->
                    while Follower.applied_lsn f < target do
                      Unix.sleepf 0.001
                    done)
                  fs;
                let store = Db.store (Engine.snapshot leader) in
                let texts = Store.text_nodes store in
                let n = Array.length texts in
                let probes =
                  Array.init 16 (fun i -> Store.text store texts.(i * (n / 16)))
                in
                let engines =
                  match fs with
                  | [] -> [| leader |]
                  | fs -> Array.of_list (List.map Follower.engine fs)
                in
                let deadline = Unix.gettimeofday () +. read_duration in
                let reader r () =
                  (* reader [r] pins the replica [r mod followers] *)
                  let s = Session.create engines.(r mod Array.length engines) in
                  let ops = ref 0 and hits = ref 0 in
                  while Unix.gettimeofday () < deadline do
                    let v = probes.(!ops mod Array.length probes) in
                    hits := !hits + List.length (Session.lookup_string s v);
                    incr ops
                  done;
                  Session.close s;
                  (!ops, !hits)
                in
                let doms = List.init readers (fun r -> Domain.spawn (reader r)) in
                let ops, hits =
                  List.fold_left
                    (fun (o, h) d ->
                      let o', h' = Domain.join d in
                      (o + o', h + h'))
                    (0, 0) doms
                in
                if hits = 0 then failwith "read probes never hit";
                (followers, float_of_int ops /. read_duration))))
      follower_counts
  in
  let qps_of n = snd (List.find (fun (f, _) -> f = n) read_rows) in
  Table.print
    ~header:[ "followers"; "lookups/s"; "vs leader-only" ]
    (List.map
       (fun (followers, qps) ->
         [
           string_of_int followers;
           Printf.sprintf "%.0f" qps;
           Printf.sprintf "%.2fx" (qps /. qps_of 0);
         ])
       read_rows);
  Printf.printf "(%d reader domains, %d core%s visible to this run)\n" readers
    cores
    (if cores = 1 then "" else "s");

  rm_rf base;
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"repl\",\n\
      \  \"cores\": %d,\n\
      \  \"xmark_factor\": %.3f,\n\
      \  \"commits\": %d,\n\
      \  \"readers\": %d,\n\
      \  \"read_duration_s\": %.2f,\n\
      \  \"lag\": [\n%s\n  ],\n\
      \  \"read\": [\n%s\n  ]\n\
       }\n"
      cores factor commits readers read_duration
      (String.concat ",\n"
         (List.map
            (fun (followers, tps, stale, catchup_ms) ->
              Printf.sprintf
                "    { \"followers\": %d, \"commits_per_s\": %.1f, \
                 \"max_staleness\": %d, \"drain_ms\": %.1f }"
                followers tps stale catchup_ms)
            lag_rows))
      (String.concat ",\n"
         (List.map
            (fun (followers, qps) ->
              Printf.sprintf
                "    { \"followers\": %d, \"lookups_per_s\": %.1f, \
                 \"vs_leader_only\": %.2f }"
                followers qps (qps /. qps_of 0))
            read_rows))
  in
  let oc = open_out "BENCH_repl.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_repl.json";
  print_newline ()

(* ====================================================== storage ===== *)

(* The off-heap columnar storage experiment: the B+tree key
   representations this PR introduced (order-preserving byte strings for
   typed keys, packed unboxed ints for postings) raced against the
   boxed-tuple trees they replaced, on real XMark data; the GC cost of
   building each; the store's off-heap/GC-heap split; a migration check
   (query answers over a Codec round-trip of the store must be
   identical); and the planner's cursor-vs-native per-element
   calibration that sets the constants in [Xvi_query.Plan]. Results land
   in BENCH_storage.json. *)
let storage_bench () =
  print_endline "== Off-heap columnar storage and byte-ordered keys ==";
  let module Db = Xvi_core.Db in
  let module Enc = Xvi_btree.Encoding in
  let module BT = Xvi_btree.Btree in
  let module FP = BT.Make (BT.Float_pair_key) in
  let module BK = BT.Bytes in
  let module IP = BT.Make (BT.Int_pair_key) in
  let module IK = BT.Make (BT.Int_key) in
  let factor = if !quick then 0.05 else Float.max 1.0 (!scale *. 100.0) in
  let reps = if !quick then 1 else !reps in
  let xml = Xvi_workload.Xmark.generate ~seed:42 ~factor () in
  let store = Parser.parse_exn xml in
  let db = Db.of_store store in
  Printf.printf "XMark factor %.2f: %s nodes\n%!" factor
    (Table.fmt_int (Store.live_count store));

  (* --- the store's storage split --- *)
  let offheap = Store.offheap_bytes store and heap = Store.heap_bytes store in
  Printf.printf "store: %s off-heap columns + %s GC heap (name pool)\n"
    (Table.fmt_bytes offheap) (Table.fmt_bytes heap);

  (* --- typed keys: boxed (float, node) tuples vs 16-byte encoded --- *)
  let doubles =
    let acc = ref [] in
    Store.iter_pre store (fun n ->
        if Store.kind store n = Store.Text then
          match float_of_string_opt (String.trim (Store.text store n)) with
          | Some v when not (Float.is_nan v) -> acc := (v, n) :: !acc
          | _ -> ());
    List.sort
      (fun (a, m) (b, n) ->
        match Float.compare a b with 0 -> Int.compare m n | c -> c)
      !acc
  in
  let dbl_n = List.length doubles in
  (* Words the built structure adds to the live major heap — the set
     every major collection must mark. This, not allocation traffic, is
     the recurring GC cost a resident tree imposes. *)
  let gc_words f =
    Gc.full_major ();
    let s0 = Gc.stat () in
    let r = f () in
    Gc.full_major ();
    let s1 = Gc.stat () in
    (r, float_of_int (s1.Gc.live_words - s0.Gc.live_words))
  in
  (* Trees are grown through the update path — single inserts in a
     shuffled order — as they would be after a life of maintenance, not
     through the bulk loader: bulk loading lays boxed keys out in scan
     order, an accident of allocation that hides the pointer-chasing
     cost real updated trees pay on every descent and every extraction.
     Both representations get the same treatment. *)
  let shuffled l =
    let a = Array.of_list l in
    Prng.shuffle (Prng.create 11) a;
    a
  in
  let dbl_shuffled = shuffled doubles in
  let old_typed, old_typed_words =
    gc_words (fun () ->
        let t = FP.create () in
        Array.iter (fun (v, n) -> FP.insert t (v, n) ()) dbl_shuffled;
        t)
  in
  let new_typed, new_typed_words =
    gc_words (fun () ->
        let t = BK.create () in
        Array.iter (fun (v, n) -> BK.insert t (Enc.float_int_key v n) ()) dbl_shuffled;
        t)
  in
  (* bounded range scans over value windows, extracting the node from
     each hit — the [Typed_index.range] / [lookup_double] pattern *)
  let windows =
    let values = Array.of_list (List.map fst doubles) in
    let m = Array.length values in
    List.init 256 (fun i ->
        let lo = values.((i * 131) mod max 1 m) in
        (lo, lo +. Float.abs lo *. 0.05 +. 1.0))
  in
  let sink = ref 0 in
  let count = ref 0 in
  let old_typed_ms =
    Timing.median_ms (max 5 reps) (fun () ->
        List.iter
          (fun (lo, hi) ->
            FP.iter_range ~lo:(lo, min_int) ~hi:(hi, max_int)
              (fun (_, n) () ->
                sink := !sink + n;
                incr count)
              old_typed)
          windows)
  in
  let old_scanned = !count in
  count := 0;
  let new_typed_ms =
    (* the production pattern ([Typed_index.range]): one [iter_raw]
       callback per leaf run, node decoded inline from the key bytes —
       no per-binding closure dispatch, no value access *)
    Timing.median_ms (max 5 reps) (fun () ->
        List.iter
          (fun (lo, hi) ->
            BK.iter_raw
              ~lo:(Enc.float_int_key lo min_int)
              ~hi:(Enc.float_int_key hi max_int)
              (fun keys off len ->
                for i = off to off + len - 1 do
                  sink := !sink + Enc.decode_int keys.(i) 8
                done;
                count := !count + len)
              new_typed)
          windows)
  in
  assert (old_scanned = !count);

  (* --- postings: boxed (hash, node) tuples vs one packed int --- *)
  let postings =
    let acc = ref [] in
    Store.iter_pre store (fun n ->
        match Store.kind store n with
        | Store.Element | Store.Text | Store.Attribute | Store.Document ->
            acc :=
              (Hash.to_int (Hash.hash (Store.string_value store n)), n) :: !acc
        | _ -> ());
    List.sort
      (fun (a, m) (b, n) ->
        match Int.compare a b with 0 -> Int.compare m n | c -> c)
      !acc
  in
  let post_n = List.length postings in
  let post_shuffled = shuffled postings in
  let old_post, old_post_words =
    gc_words (fun () ->
        let t = IP.create () in
        Array.iter (fun (h, n) -> IP.insert t (h, n) ()) post_shuffled;
        t)
  in
  let new_post, new_post_words =
    gc_words (fun () ->
        let t = IK.create () in
        Array.iter (fun (h, n) -> IK.insert t ((h lsl 30) lor n) ()) post_shuffled;
        t)
  in
  (* per-bucket scans extracting the node — [candidates_of_hash] *)
  let node_mask = 0x3FFF_FFFF in
  let buckets =
    List.filteri (fun i _ -> i mod 97 = 0) (List.map fst postings)
  in
  count := 0;
  let old_post_ms =
    Timing.median_ms (max 5 reps) (fun () ->
        List.iter
          (fun h ->
            IP.iter_range ~lo:(h, 0) ~hi:(h, node_mask)
              (fun (_, n) () ->
                sink := !sink + n;
                incr count)
              old_post)
          buckets)
  in
  let old_post_scanned = !count in
  count := 0;
  let new_post_ms =
    Timing.median_ms (max 5 reps) (fun () ->
        List.iter
          (fun h ->
            IK.iter_range
              ~lo:((h lsl 30) lor 0)
              ~hi:((h lsl 30) lor node_mask)
              (fun k () ->
                sink := !sink + (k land node_mask);
                incr count)
              new_post)
          buckets)
  in
  assert (old_post_scanned = !count);
  ignore (Sys.opaque_identity !sink : int);
  Table.print
    ~header:
      [ "tree"; "entries"; "boxed keys"; "this PR"; "speedup"; "live words" ]
    [
      [
        "typed (float,node) range scans";
        Table.fmt_int dbl_n;
        Table.fmt_ms old_typed_ms;
        Table.fmt_ms new_typed_ms;
        Printf.sprintf "%.2fx" (old_typed_ms /. new_typed_ms);
        Printf.sprintf "%.0f -> %.0f" old_typed_words new_typed_words;
      ];
      [
        "posting (hash,node) bucket scans";
        Table.fmt_int post_n;
        Table.fmt_ms old_post_ms;
        Table.fmt_ms new_post_ms;
        Printf.sprintf "%.2fx" (old_post_ms /. new_post_ms);
        Printf.sprintf "%.0f -> %.0f" old_post_words new_post_words;
      ];
    ];

  (* --- migration check: a Codec round-trip answers identically --- *)
  let blob = Store.Codec.encode store in
  let db2 = Db.of_store (Store.Codec.decode blob) in
  let range = Db.Range.between 100.0 200.0 in
  let probes =
    [
      Db.Ir.named "initial";
      Db.Ir.typed_range "xs:double" range;
      Db.Ir.conj [ Db.Ir.named "initial"; Db.Ir.typed_range "xs:double" range ];
      Db.Ir.string_eq "Creditcard";
    ]
  in
  let migration_ok =
    List.for_all (fun ir -> Db.query db ir = Db.query db2 ir) probes
  in
  if not migration_ok then failwith "codec round-trip changed query answers";
  Printf.printf
    "migration: %d probe queries identical over a %s codec round-trip\n"
    (List.length probes)
    (Table.fmt_bytes (String.length blob));

  (* --- planner calibration: the two [run_list] strategies for an
         all-leaf intersection on the production shape. The streaming
         path pulls every element of every input through the leapfrog
         merge, including the node-order sort a value-ordered leaf
         performs on first pull (see [Typed_index.cursor]); the
         probe-driven path walks only the driving input and probes each
         candidate against the other leaves' membership checks — modeled
         here as a pre-built hashtable, matching the node->value column
         a typed leaf's [check] consults. --- *)
  let n_cal = if !quick then 50_000 else 400_000 in
  let la = List.init n_cal (fun i -> 2 * i) in
  let lb_value_order =
    (* value order: node ids permuted deterministically *)
    let a = Array.init n_cal (fun i -> 3 * i) in
    Prng.shuffle (Prng.create 7) a;
    Array.to_list a
  in
  let total = float_of_int (2 * n_cal) in
  let cursor_ms =
    Timing.repeat_ms (max 3 reps) (fun () ->
        ignore
          (Xvi_query.Cursor.to_list
             (Xvi_query.Cursor.inter
                [
                  Xvi_query.Cursor.of_sorted_list la;
                  Xvi_query.Cursor.of_lazy_list (fun () ->
                      List.sort Int.compare lb_value_order);
                ])
            : Store.node list))
  in
  let check_ms =
    (* the probed column exists before the query runs, so its
       construction is not part of the per-query cost *)
    let h = Hashtbl.create n_cal in
    List.iter (fun n -> Hashtbl.replace h n ()) lb_value_order;
    Timing.repeat_ms (max 3 reps) (fun () ->
        ignore
          (List.sort_uniq Int.compare (List.filter (Hashtbl.mem h) la)
            : int list))
  in
  let cursor_step_ns = cursor_ms *. 1e6 /. total in
  let check_step_ns = check_ms *. 1e6 /. float_of_int n_cal in
  Printf.printf
    "planner calibration: %.1f ns/element through the leapfrog merge (incl. \
     the value-ordered leaf's node-order sort) vs %.1f ns/probe driving the \
     cheapest leaf (constants in lib/query/plan.ml)\n"
    cursor_step_ns check_step_ns;

  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"storage\",\n\
      \  \"xmark_factor\": %.3f,\n\
      \  \"nodes\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"store\": { \"offheap_bytes\": %d, \"gc_heap_bytes\": %d },\n\
      \  \"scans\": [\n\
      \    { \"tree\": \"typed_range\", \"entries\": %d, \"old_ms\": %.4f, \
       \"new_ms\": %.4f, \"speedup\": %.2f, \"live_major_words_old\": %.0f, \
       \"live_major_words_new\": %.0f },\n\
      \    { \"tree\": \"posting_bucket\", \"entries\": %d, \"old_ms\": %.4f, \
       \"new_ms\": %.4f, \"speedup\": %.2f, \"live_major_words_old\": %.0f, \
       \"live_major_words_new\": %.0f }\n\
      \  ],\n\
      \  \"range_scan_speedup\": %.2f,\n\
      \  \"migration_identical\": %b,\n\
      \  \"calibration\": { \"cursor_step_ns\": %.1f, \"check_step_ns\": \
       %.1f }\n\
       }\n"
      factor
      (Store.live_count store)
      reps offheap heap dbl_n old_typed_ms new_typed_ms
      (old_typed_ms /. new_typed_ms)
      old_typed_words new_typed_words post_n old_post_ms new_post_ms
      (old_post_ms /. new_post_ms)
      old_post_words new_post_words
      (old_post_ms /. new_post_ms)
      migration_ok cursor_step_ns check_step_ns
  in
  let oc = open_out "BENCH_storage.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_storage.json";
  print_newline ()

(* Streaming bulk ingest experiment: the whole-document front door
   (read the file, [Parser.parse], [Db.of_store]) against
   [Ingest.load] pulling SAX events straight off the file descriptor,
   on an XMark ×8 document. Three claims are measured: the streamed
   build is marshal-bit-identical to the whole-document build; its
   peak live major heap during the run is a fraction of the whole
   path's (the document string, the parse, and the posting-sort
   transients never exist at once); and throughput — including the
   durable [Durable.bulk_ingest] variant, every batch WAL-committed —
   stays in the same league. Results land in BENCH_ingest.json. *)
let ingest_bench () =
  print_endline "== Streaming bulk ingest ==";
  let module Db = Xvi_core.Db in
  let module Sax = Xvi_xml.Sax in
  let module Ingest = Xvi_ingest.Ingest in
  let module Durable = Xvi_wal.Durable in
  let factor = if !quick then 0.05 else 8.0 in
  let path = Filename.temp_file "xvi_ingest_bench" ".xml" in
  let bytes =
    (* generate to disk and drop the string: both contenders start from
       nothing but the file path *)
    let xml = Xvi_workload.Xmark.generate ~seed:42 ~factor () in
    let oc = open_out_bin path in
    output_string oc xml;
    close_out oc;
    String.length xml
  in
  Printf.printf "XMark factor %.2f: %s on disk\n%!" factor
    (Table.fmt_bytes bytes);
  let config = { Db.Config.default with Db.Config.jobs = 1 } in
  (* Peak live major words, sampled by a GC alarm at the end of every
     major cycle plus once at each phase boundary. [Gc.stat] walks the
     heap, so the alarm inflates both contenders' wall clocks equally;
     throughput is therefore a floor. *)
  let live_now () = (Gc.stat ()).Gc.live_words in
  let peak = ref 0 in
  let in_sample = ref false in
  let sample () =
    if not !in_sample then begin
      in_sample := true;
      let l = live_now () in
      if l > !peak then peak := l;
      in_sample := false
    end
  in
  let measure f =
    Gc.compact ();
    (* force frequent major cycles while measuring so the alarm samples
       densely enough to catch the transient peak *)
    let ctrl = Gc.get () in
    Gc.set { ctrl with Gc.space_overhead = 40 };
    let base = live_now () in
    peak := base;
    let alarm = Gc.create_alarm sample in
    let r, ms = Timing.time_ms f in
    sample ();
    Gc.delete_alarm alarm;
    Gc.set ctrl;
    let final = live_now () in
    (r, ms, base, !peak, final)
  in
  let digest db = Digest.string (Marshal.to_string db [ Marshal.Closures ]) in
  let mb_s ms = float_of_int bytes /. 1e6 /. (ms /. 1e3) in

  (* --- whole-document path --- *)
  let db_w, whole_ms, whole_base, whole_peak, _whole_final =
    measure (fun () ->
        let ic = open_in_bin path in
        let xml =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let store = Parser.parse_exn xml in
        sample () (* document string and shredded store both live *);
        Db.of_store ~config store)
  in
  let whole_digest = digest db_w in
  let nodes = Store.live_count (Db.store db_w) in
  ignore (Sys.opaque_identity db_w : Db.t);

  (* --- streamed path (in-memory) ---
     Driven through [Builder] directly so the two phases separate: the
     staging phase (every event consumed, every batch sorted — rows and
     postings living in off-heap columns) and the final assembly that
     materializes the returned database. "Peak during ingest" is the
     staging phase's peak: the heap the pipeline itself needs. The
     whole-document path has no such split — its peak stands for the
     entire call. *)
  let stream_batches = ref 0 in
  let ( db_s,
        staging_peak,
        staging_offheap ),
      stream_ms,
      stream_base,
      stream_peak,
      _stream_final =
    measure (fun () ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let sax = Sax.make (Sax.of_channel ic) in
            let b = Ingest.Builder.create config in
            let rec drive () =
              match Sax.next sax with
              | Error e ->
                  failwith ("ingest: " ^ Xvi_xml.Parser.error_to_string e)
              | Ok None -> ()
              | Ok (Some (ev, _)) ->
                  Ingest.Builder.feed b ev;
                  if Ingest.Builder.pending_rows b >= Ingest.default_batch_rows
                  then begin
                    Ingest.Builder.flush_batch b;
                    incr stream_batches;
                    sample ()
                  end;
                  drive ()
            in
            drive ();
            Ingest.Builder.flush_batch b;
            sample ();
            let staging_peak = !peak in
            let staging_offheap = Ingest.Builder.staging_bytes b in
            (Ingest.Builder.finish b, staging_peak, staging_offheap)))
  in
  let stream_digest = digest db_s in
  let bit_identical = String.equal whole_digest stream_digest in
  if not bit_identical then
    failwith "streamed ingest diverged from the whole-document build";
  ignore (Sys.opaque_identity db_s : Db.t);

  (* --- streamed path (durable: every batch WAL-committed) --- *)
  let dir = Filename.temp_file "xvi_ingest_bench" ".dir" in
  Sys.remove dir;
  let durable_digest, durable_ms =
    let ic = open_in_bin path in
    let r, ms =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          Timing.time_ms (fun () ->
              Durable.bulk_ingest ~config ~dir (Sax.of_channel ic)))
    in
    match r with
    | Error m -> failwith ("bulk_ingest: " ^ m)
    | Ok d ->
        let dg = digest (Durable.db d) in
        Durable.close d;
        (dg, ms)
  in
  let rec rm_rf p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  rm_rf dir;
  Sys.remove path;
  if not (String.equal whole_digest durable_digest) then
    failwith "durable bulk ingest diverged from the whole-document build";

  (* Peak-above-baseline isolates each run's own live set. The
     headline ratio is the streamed staging phase's peak against the
     whole path's peak: while ingest is consuming the document the heap
     stays O(depth + batch), whereas the whole path cannot return
     without having held document + store + indices at once. Both runs
     end holding the same bit-identical database, so the absolute
     end-to-end peaks (product included) are also reported. *)
  let whole_delta = whole_peak - whole_base in
  let stream_delta = stream_peak - stream_base in
  let staging_delta = staging_peak - stream_base in
  let ratio = float_of_int staging_delta /. float_of_int (max 1 whole_delta) in
  let absolute_ratio =
    float_of_int stream_delta /. float_of_int (max 1 whole_delta)
  in
  Table.print
    ~header:
      [ "path"; "time"; "MB/s"; "peak live words"; "during shred+stage" ]
    [
      [
        "whole document"; Table.fmt_ms whole_ms;
        Printf.sprintf "%.1f" (mb_s whole_ms);
        Table.fmt_int whole_delta;
        Table.fmt_int whole_delta;
      ];
      [
        Printf.sprintf "streamed (%d batches)" (!stream_batches + 1);
        Table.fmt_ms stream_ms;
        Printf.sprintf "%.1f" (mb_s stream_ms);
        Table.fmt_int stream_delta;
        Table.fmt_int staging_delta;
      ];
      [
        "streamed durable"; Table.fmt_ms durable_ms;
        Printf.sprintf "%.1f" (mb_s durable_ms);
        "-"; "-";
      ];
    ];
  Printf.printf
    "bit-identical: %b; peak live heap during ingest is %.3fx the whole \
     path's peak (%s off-heap staging; end-to-end peaks with the finished \
     database included: %.2fx)\n"
    bit_identical ratio
    (Table.fmt_bytes staging_offheap)
    absolute_ratio;
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"ingest\",\n\
      \  \"xmark_factor\": %.3f,\n\
      \  \"bytes\": %d,\n\
      \  \"nodes\": %d,\n\
      \  \"whole\": { \"ms\": %.1f, \"mb_per_s\": %.2f, \
       \"peak_live_words\": %d },\n\
      \  \"streamed\": { \"ms\": %.1f, \"mb_per_s\": %.2f, \
       \"peak_live_words\": %d, \"staging_peak_live_words\": %d, \
       \"staging_offheap_bytes\": %d, \"batches\": %d },\n\
      \  \"durable\": { \"ms\": %.1f, \"mb_per_s\": %.2f },\n\
      \  \"bit_identical\": %b,\n\
      \  \"peak_ratio\": %.4f,\n\
      \  \"absolute_peak_ratio\": %.4f\n\
       }\n"
      factor bytes nodes whole_ms (mb_s whole_ms) whole_delta stream_ms
      (mb_s stream_ms) stream_delta staging_delta staging_offheap
      (!stream_batches + 1)
      durable_ms (mb_s durable_ms) bit_identical ratio absolute_ratio
  in
  let oc = open_out "BENCH_ingest.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_ingest.json";
  print_newline ()

(* ====================================================== main ===== *)

(* [micro] runs first: its OLS estimates are cleanest before the data
   suite occupies the heap. *)
(* fig10 mutates (and then drops) the cached stores, so it runs after
   the read-only experiments. *)
let all_experiments =
  [ ("micro", micro); ("table1", table1); ("fig9", fig9); ("fig11", fig11);
    ("fig10", fig10); ("ablation", ablation); ("substr", substr);
    ("baseline", baseline); ("queries", queries); ("query", query_bench);
    ("parallel", parallel); ("wal", wal_bench); ("serve", serve_bench);
    ("repl", repl_bench); ("storage", storage_bench); ("ingest", ingest_bench) ]

let () =
  let selected = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        if String.length arg > 8 && String.sub arg 0 8 = "--scale=" then
          scale := float_of_string (String.sub arg 8 (String.length arg - 8))
        else if String.length arg > 7 && String.sub arg 0 7 = "--reps=" then
          reps := int_of_string (String.sub arg 7 (String.length arg - 7))
        else if arg = "--quick" then quick := true
        else if List.mem_assoc arg all_experiments then
          selected := arg :: !selected
        else begin
          Printf.eprintf
            "unknown argument %s (expected: table1 fig9 fig10 fig11 micro \
             ablation substr baseline queries query parallel wal serve repl \
             storage ingest, --scale=F, --reps=N, --quick)\n"
            arg;
          exit 2
        end)
    Sys.argv;
  let to_run =
    if !selected = [] then all_experiments
    else List.filter (fun (name, _) -> List.mem name !selected) all_experiments
  in
  Printf.printf
    "xvi experiment harness -- reproduction of Sidirourgos & Boncz,\n\
     \"Generic and updatable XML value indices\" (EDBT 2009)\n\n%!";
  List.iter (fun (_, f) -> f ()) to_run

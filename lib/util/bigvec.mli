(** Chunked, Bigarray-backed off-heap vectors with copy-on-write
    snapshots.

    The columnar node store keeps its columns here so that multi-GB
    documents do not live on the OCaml heap: the GC never scans chunk
    contents, and epoch publication ({!Int.snapshot}) shares chunks
    between the writer and pinned readers instead of deep-copying whole
    columns. A shared chunk is cloned the first time either side writes
    into it — the vector is copy-on-write at chunk granularity.

    Determinism contract (the bit-identity gates digest marshalled
    stores, so marshalling a vector must be a pure function of its
    logical state):

    - the chunk table always holds exactly [max 1 (ceil len / chunk)]
      chunks — no capacity slack, whatever the growth history;
    - fresh chunks are zero-filled, so the bytes past [length] are
      always zero for append-only columns;
    - every {!Int.snapshot} product carries all-shared chunk flags,
      while fresh (or codec-decoded) vectors carry all-owned flags.

    Under that contract two vectors with the same construction history
    marshal to identical bytes. *)

val chunk_log : unit -> int
(** Current log2 of the chunk size in elements (default 15, i.e. 32k
    elements — 256 KiB per int chunk). *)

val with_chunk_log_for_testing : int -> (unit -> 'a) -> 'a
(** Run a thunk with a different chunk size for vectors created inside
    it, so tests can cross chunk boundaries cheaply. The previous value
    is restored on exit. Test-only: mixing vectors of different chunk
    sizes across a codec or digest boundary breaks the determinism
    contract. *)

module Int : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** The [capacity] hint is accepted for drop-in compatibility with
      [Vec.Int] but ignored: the chunk table must stay a pure function
      of [length] (see the determinism contract above). *)

  val length : t -> int

  val get : t -> int -> int
  (** @raise Invalid_argument when out of bounds. *)

  val set : t -> int -> int -> unit
  (** Clones the target chunk first when it is shared with a snapshot. *)

  val push : t -> int -> unit

  val snapshot : t -> t
  (** O(chunks) logical copy: the result shares every chunk with [t] and
      both sides clone on their next write. *)

  val iteri : (int -> int -> unit) -> t -> unit
  val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a
  val to_array : t -> int array
  val of_array : int array -> t

  val memory_bytes : t -> int
  (** Off-heap bytes held by the chunk table (allocated, not just
      used). *)
end

module Byte : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val get : t -> int -> char
  val push : t -> char -> unit

  val append_string : t -> string -> int
  (** Append all bytes of the string; returns the offset of its first
      byte. *)

  val sub_string : t -> int -> int -> string
  (** [sub_string t off len] copies [len] bytes starting at [off] back
      onto the heap. *)

  val snapshot : t -> t
  val memory_bytes : t -> int
end

type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | _ -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let scan row =
    List.iteri (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  scan header;
  List.iter scan rows;
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  emit (List.mapi (fun i _ -> String.make widths.(i) '-') header);
  List.iter emit rows;
  Buffer.contents buf

let print ?align ~header rows =
  (print_string (render ?align ~header rows))
  [@xvi.lint.allow
    "R6: Table.print is the CLI's terminal table renderer; printing to \
     stdout is its contract -- library callers use [render]"]

let fmt_bytes n =
  let f = float_of_int n in
  if f >= 1e9 then Printf.sprintf "%.2f GB" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.1f MB" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1f KB" (f /. 1e3)
  else Printf.sprintf "%d B" n

let fmt_ms ms =
  if ms >= 1000.0 then Printf.sprintf "%.2f s" (ms /. 1000.0)
  else if ms >= 10.0 then Printf.sprintf "%.0f ms" ms
  else if ms >= 1.0 then Printf.sprintf "%.1f ms" ms
  else Printf.sprintf "%.3f ms" ms

let fmt_pct p = Printf.sprintf "%.1f%%" p

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + len / 3 + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

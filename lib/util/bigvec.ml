(* Chunked, Bigarray-backed off-heap vectors.

   Chunks are fixed-size Bigarray.Array1 slabs outside the OCaml heap;
   the heap only holds the (small) chunk table, so the GC cost of a
   column is independent of its length. Snapshots share chunks and mark
   them in a per-vector flag bitmap; the first write into a shared chunk
   clones just that chunk.

   Determinism (see the .mli): the chunk table is always exactly
   [max 1 (ceil len / chunk)] entries, fresh chunks are zero-filled, and
   flags are canonical (all-shared on snapshot products, all-owned on
   fresh vectors), so marshalling is a pure function of logical state. *)

let default_chunk_log = ref 15

let chunk_log () = !default_chunk_log

let with_chunk_log_for_testing log f =
  if log < 4 || log > 22 then invalid_arg "Bigvec.with_chunk_log_for_testing";
  let saved = !default_chunk_log in
  default_chunk_log := log;
  Fun.protect ~finally:(fun () -> default_chunk_log := saved) f

module type ELT = sig
  type elt
  type repr

  val kind : (elt, repr) Bigarray.kind
  val zero : elt
  val bytes_per_elt : int
end

module Make (E : ELT) = struct
  type chunk = (E.elt, E.repr, Bigarray.c_layout) Bigarray.Array1.t

  type t = {
    mutable chunks : chunk array; (* exact-size table, never any slack *)
    mutable len : int;
    mutable shared : Bytes.t; (* one byte per chunk; '\001' = shared *)
    log : int; (* chunk size is [1 lsl log] elements, fixed at creation *)
  }

  let fresh_chunk log =
    let c = Bigarray.Array1.create E.kind Bigarray.c_layout (1 lsl log) in
    (* Array1.create leaves the memory uninitialised; zero it so bytes
       past [len] are deterministic. *)
    Bigarray.Array1.fill c E.zero;
    c

  let create ?capacity:_ () =
    let log = !default_chunk_log in
    { chunks = [| fresh_chunk log |]; len = 0; shared = Bytes.make 1 '\000'; log }

  let length t = t.len

  let get t i =
    if i < 0 || i >= t.len then
      invalid_arg (Printf.sprintf "Bigvec.get: index %d out of [0,%d)" i t.len);
    Bigarray.Array1.unsafe_get t.chunks.(i lsr t.log) (i land ((1 lsl t.log) - 1))

  (* Clone chunk [c] if a snapshot still references it. *)
  let own t c =
    if Bytes.get t.shared c <> '\000' then begin
      let copy = fresh_chunk t.log in
      Bigarray.Array1.blit t.chunks.(c) copy;
      t.chunks.(c) <- copy;
      Bytes.set t.shared c '\000'
    end

  let set t i v =
    if i < 0 || i >= t.len then
      invalid_arg (Printf.sprintf "Bigvec.set: index %d out of [0,%d)" i t.len);
    let c = i lsr t.log in
    own t c;
    Bigarray.Array1.unsafe_set t.chunks.(c) (i land ((1 lsl t.log) - 1)) v

  let push t v =
    let csize = 1 lsl t.log in
    if t.len = Array.length t.chunks * csize then begin
      (* Array.append keeps the table exact-size; tables are tiny
         (len / 2^log entries) so O(chunks) growth is fine. *)
      t.chunks <- Array.append t.chunks [| fresh_chunk t.log |];
      t.shared <- Bytes.cat t.shared (Bytes.make 1 '\000')
    end;
    let i = t.len in
    let c = i lsr t.log in
    own t c;
    Bigarray.Array1.unsafe_set t.chunks.(c) (i land (csize - 1)) v;
    t.len <- i + 1

  let snapshot t =
    let n = Array.length t.chunks in
    Bytes.fill t.shared 0 n '\001';
    { chunks = Array.copy t.chunks; len = t.len; shared = Bytes.make n '\001'; log = t.log }

  let memory_bytes t = Array.length t.chunks * (1 lsl t.log) * E.bytes_per_elt
end

module Int = struct
  include Make (struct
    type elt = int
    type repr = Bigarray.int_elt

    let kind = Bigarray.int
    let zero = 0
    let bytes_per_elt = 8
  end)

  let iteri f t =
    for i = 0 to length t - 1 do
      f i (get t i)
    done

  let fold_left f init t =
    let acc = ref init in
    for i = 0 to length t - 1 do
      acc := f !acc (get t i)
    done;
    !acc

  let to_array t = Array.init (length t) (get t)

  let of_array a =
    let t = create () in
    Array.iter (push t) a;
    t
end

module Byte = struct
  include Make (struct
    type elt = char
    type repr = Bigarray.int8_unsigned_elt

    let kind = Bigarray.char
    let zero = '\000'
    let bytes_per_elt = 1
  end)

  let append_string t s =
    let off = length t in
    String.iter (push t) s;
    off

  let sub_string t off len =
    if off < 0 || len < 0 || off + len > length t then
      invalid_arg
        (Printf.sprintf "Bigvec.Byte.sub_string: [%d,%d) out of [0,%d)" off
           (off + len) (length t));
    String.init len (fun i -> get t (off + i))
end

let now_s () = Unix.gettimeofday ()
let now_ms () = now_s () *. 1000.0

let time_ms f =
  let t0 = now_ms () in
  let result = f () in
  let t1 = now_ms () in
  (result, t1 -. t0)

let repeat_ms ?(warmup = 0) n f =
  for _ = 1 to warmup do
    f ()
  done;
  let t0 = now_ms () in
  for _ = 1 to n do
    f ()
  done;
  let t1 = now_ms () in
  (t1 -. t0) /. float_of_int n

let median_ms n f =
  let samples =
    Array.init n (fun _ ->
        let _, ms = time_ms f in
        ms)
  in
  Array.sort Float.compare samples;
  samples.(n / 2)

type t = {
  parallelism : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  all_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable pending : int; (* submitted, not yet finished *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Execute one task outside the lock, then account for its completion.
   The last finisher wakes the joiner. *)
let exec t task =
  (try task ()
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock t.mutex;
     if t.failure = None then t.failure <- Some (e, bt);
     Mutex.unlock t.mutex);
  Mutex.lock t.mutex;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.all_done;
  Mutex.unlock t.mutex

let worker t =
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.has_work t.mutex
    done;
    match Queue.take_opt t.queue with
    | None ->
        (* stopped with an empty queue *)
        Mutex.unlock t.mutex;
        running := false
    | Some task ->
        Mutex.unlock t.mutex;
        exec t task
  done

let create ~jobs =
  let jobs = max jobs 1 in
  let t =
    {
      parallelism = jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      all_done = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      failure = None;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let parallelism t = t.parallelism

let run t tasks =
  match tasks with
  | [] -> ()
  | _ ->
      Mutex.lock t.mutex;
      if t.stop then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool.run: pool is shut down"
      end;
      t.failure <- None;
      t.pending <- t.pending + List.length tasks;
      List.iter (fun task -> Queue.add task t.queue) tasks;
      Condition.broadcast t.has_work;
      (* the caller is a worker too: drain the queue before joining *)
      let rec drain () =
        match Queue.take_opt t.queue with
        | Some task ->
            Mutex.unlock t.mutex;
            exec t task;
            Mutex.lock t.mutex;
            drain ()
        | None -> ()
      in
      drain ();
      while t.pending > 0 do
        Condition.wait t.all_done t.mutex
      done;
      let failure = t.failure in
      t.failure <- None;
      Mutex.unlock t.mutex;
      (match failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())

let map t f n =
  if n <= 0 then [||]
  else begin
    let slots = Array.make n None in
    run t (List.init n (fun i () -> slots.(i) <- Some (f i)));
    Array.map
      (function Some v -> v | None -> assert false (* run raised *))
      slots
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let recommended_jobs () = Domain.recommended_domain_count ()

let slices n k =
  let k = max k 1 in
  let base = n / k and extra = n mod k in
  let lo = ref 0 in
  Array.init k (fun i ->
      let len = base + if i < extra then 1 else 0 in
      let pair = (!lo, !lo + len) in
      lo := !lo + len;
      pair)

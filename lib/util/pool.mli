(** A fixed-size pool of OCaml 5 domains with a shared work queue and a
    deterministic join.

    The index-construction engine chunks a document into per-domain work
    items; each item writes only into its own slot, so although the
    {e execution} order is nondeterministic, the {e result} (an array
    indexed by work-item id) is deterministic — the property the
    bit-identical-to-serial guarantee of parallel index builds rests on.

    A pool of parallelism [j] owns [j - 1] worker domains; the caller of
    {!run}/{!map} is the [j]-th worker, so [jobs = 1] degenerates to
    fully inline serial execution with no domain ever spawned.

    {!run} and {!map} are {b not reentrant}: never submit work to a pool
    from inside one of its own tasks, and never share one pool between
    concurrently-running callers. Create a pool per construction site
    (spawning a domain costs microseconds, not milliseconds). *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max jobs 1 - 1] worker domains that block on
    the pool's queue. *)

val parallelism : t -> int
(** The [jobs] the pool was created with (callers included), >= 1. *)

val run : t -> (unit -> unit) list -> unit
(** Submit the tasks and block until {e all} of them have finished; the
    calling domain works through the queue alongside the workers. If any
    task raised, the first exception observed is re-raised here (after
    all tasks have still run to completion or failure). *)

val map : t -> (int -> 'a) -> int -> 'a array
(** [map pool f n] computes [[| f 0; ...; f (n-1) |]] with the tasks
    distributed over the pool; slot [i] always holds [f i] (the
    deterministic join). *)

val shutdown : t -> unit
(** Stop the workers and join their domains. Idempotent. Tasks still
    queued are completed first. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run the callback, then {!shutdown} (also on exceptions). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [-j 0] means in the
    CLI. *)

val slices : int -> int -> (int * int) array
(** [slices n k] splits the interval [\[0, n)] into exactly [max k 1]
    contiguous [(lo, hi)] half-open chunks of near-equal size, in
    ascending order; trailing chunks are empty when [n < k]. *)

(** Wall-clock measurement helpers for the experiment harness. *)

val now_s : unit -> float
(** Wall-clock seconds since the epoch — the clock every rate
    computation and group-commit window in this codebase reads, exposed
    so callers (the serve engine's flush pacing, the bench QPS loops)
    agree with it. *)

val time_ms : (unit -> 'a) -> 'a * float
(** [time_ms f] runs [f ()] and returns its result with the elapsed wall
    time in milliseconds. *)

val repeat_ms : ?warmup:int -> int -> (unit -> unit) -> float
(** [repeat_ms ~warmup n f] runs [f] [warmup] times unmeasured, then [n]
    times measured, and returns the mean elapsed milliseconds per run. *)

val median_ms : int -> (unit -> unit) -> float
(** [median_ms n f] is the median of [n] measured runs, in milliseconds. *)

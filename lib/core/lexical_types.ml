type spec = {
  type_name : string;
  sct : Sct.t;
  parse : string -> float option;
}

let strip s = String.trim s

(* --- xs:double (paper Figure 5) ---

   ws . sign? . ( D+ (dot D.star)? | dot D+ ) . ( [eE] sign? D+ )? . ws
   (ws parts repeated zero or more times)

   1 start/ws --sign--> 2 --D--> 3 (int digits, final)
   3 --.--> 5 (fraction, final; "78." is complete)
   1,2 --.--> 4 (bare dot: potential only) --D--> 5
   3,5 --[eE]--> 6 --sign--> 7 --D--> 8 (exp digits, final)
   3,5,8 --ws--> 9 (trailing ws, final) *)
let double_dfa () =
  Dfa.build ~name:"xs:double" ~n_states:10 ~start:1 ~sink:0
    ~finals:[ 3; 5; 8; 9 ]
    ~classes:[ (" \t\r\n", 0); ("+-", 1); ("0-9", 2); (".", 3); ("eE", 4) ]
    ~transitions:
      [
        (1, " \t\r\n", 1);
        (1, "+-", 2);
        (1, "0-9", 3);
        (1, ".", 4);
        (2, "0-9", 3);
        (2, ".", 4);
        (3, "0-9", 3);
        (3, ".", 5);
        (3, "eE", 6);
        (3, " \t\r\n", 9);
        (4, "0-9", 5);
        (5, "0-9", 5);
        (5, "eE", 6);
        (5, " \t\r\n", 9);
        (6, "+-", 7);
        (6, "0-9", 8);
        (7, "0-9", 8);
        (8, "0-9", 8);
        (8, " \t\r\n", 9);
        (9, " \t\r\n", 9);
      ]

(* Only ever called on DFA-accepted lexical forms, so the laxer corners
   of [float_of_string] (hex, inf, nan, underscores) are unreachable.
   Overflowing literals like "1E999" cast to infinity, which is a
   perfectly good (and correctly ordered) index key. *)
let parse_double s = float_of_string_opt (strip s)

(* --- xs:integer --- ws* sign? D+ ws* *)
let integer_dfa () =
  Dfa.build ~name:"xs:integer" ~n_states:5 ~start:1 ~sink:0 ~finals:[ 3; 4 ]
    ~classes:[ (" \t\r\n", 0); ("+-", 1); ("0-9", 2) ]
    ~transitions:
      [
        (1, " \t\r\n", 1);
        (1, "+-", 2);
        (1, "0-9", 3);
        (2, "0-9", 3);
        (3, "0-9", 3);
        (3, " \t\r\n", 4);
        (4, " \t\r\n", 4);
      ]

(* The key is a float: exact to 2^53; huge literals saturate toward
   infinity while remaining order-consistent for index purposes. *)
let parse_integer s = float_of_string_opt (strip s)

(* --- xs:boolean --- ws* (true | false | 1 | 0) ws* *)
let boolean_dfa () =
  Dfa.build ~name:"xs:boolean" ~n_states:12 ~start:1 ~sink:0 ~finals:[ 5; 6 ]
    ~classes:
      [
        (" \t\r\n", 0);
        ("t", 1);
        ("r", 2);
        ("u", 3);
        ("e", 4);
        ("f", 5);
        ("a", 6);
        ("l", 7);
        ("s", 8);
        ("01", 9);
      ]
    ~transitions:
      [
        (1, " \t\r\n", 1);
        (1, "t", 2);
        (2, "r", 3);
        (3, "u", 4);
        (4, "e", 5);
        (1, "f", 7);
        (7, "a", 8);
        (8, "l", 9);
        (9, "s", 10);
        (10, "e", 5);
        (1, "01", 5);
        (5, " \t\r\n", 6);
        (6, " \t\r\n", 6);
      ]

let parse_boolean s =
  match strip s with
  | "true" | "1" -> Some 1.0
  | "false" | "0" -> Some 0.0
  | _ -> None

(* --- xs:dateTime --- ws* D4-D2-D2 T D2:D2:D2 (.D+)? (Z | ±D2:D2)? ws* *)
let datetime_dfa () =
  Dfa.build ~name:"xs:dateTime" ~n_states:30 ~start:1 ~sink:0
    ~finals:[ 20; 22; 28; 29 ]
    ~classes:
      [
        (" \t\r\n", 0);
        ("0-9", 1);
        ("-", 2);
        (":", 3);
        ("T", 4);
        ("Z", 5);
        (".", 6);
        ("+", 7);
      ]
    ~transitions:
      [
        (1, " \t\r\n", 1);
        (1, "0-9", 2);
        (2, "0-9", 3);
        (3, "0-9", 4);
        (4, "0-9", 5);
        (5, "-", 6);
        (6, "0-9", 7);
        (7, "0-9", 8);
        (8, "-", 9);
        (9, "0-9", 10);
        (10, "0-9", 11);
        (11, "T", 12);
        (12, "0-9", 13);
        (13, "0-9", 14);
        (14, ":", 15);
        (15, "0-9", 16);
        (16, "0-9", 17);
        (17, ":", 18);
        (18, "0-9", 19);
        (19, "0-9", 20);
        (20, ".", 21);
        (21, "0-9", 22);
        (22, "0-9", 22);
        (20, "Z", 28);
        (22, "Z", 28);
        (20, "-", 23);
        (20, "+", 23);
        (22, "-", 23);
        (22, "+", 23);
        (23, "0-9", 24);
        (24, "0-9", 25);
        (25, ":", 26);
        (26, "0-9", 27);
        (27, "0-9", 28);
        (28, " \t\r\n", 29);
        (20, " \t\r\n", 29);
        (22, " \t\r\n", 29);
        (29, " \t\r\n", 29);
      ]

(* Howard Hinnant's days_from_civil: days since 1970-01-01, proleptic
   Gregorian. *)
let days_from_civil ~year ~month ~day =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (month + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let parse_datetime s =
  let s = strip s in
  (* Shape is guaranteed by the DFA; parse positionally. *)
  let len = String.length s in
  let digits at n =
    let v = ref 0 in
    for i = at to at + n - 1 do
      v := (!v * 10) + (Char.code s.[i] - Char.code '0')
    done;
    !v
  in
  if len < 19 then None
  else
    try
      let year = digits 0 4
      and month = digits 5 2
      and day = digits 8 2
      and hour = digits 11 2
      and minute = digits 14 2
      and second = digits 17 2 in
      if month < 1 || month > 12 || day < 1 || day > 31 then None
      else begin
        let pos = ref 19 in
        let frac = ref 0.0 in
        if !pos < len && s.[!pos] = '.' then begin
          incr pos;
          let start = !pos in
          while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
            incr pos
          done;
          (* the grammar is [(.s+)?]: a dot with no digits is not a
             complete lexical form *)
          if !pos = start then raise Exit;
          frac := float_of_string ("0." ^ String.sub s start (!pos - start))
        end;
        let tz_seconds =
          if !pos < len && s.[!pos] = 'Z' then begin
            incr pos;
            0
          end
          else if !pos < len && (s.[!pos] = '+' || s.[!pos] = '-') then begin
            let sign = if s.[!pos] = '-' then -1 else 1 in
            let h = digits (!pos + 1) 2 and m = digits (!pos + 4) 2 in
            pos := !pos + 6;
            sign * ((h * 3600) + (m * 60))
          end
          else 0
        in
        if !pos <> len then None
        else
          let days = days_from_civil ~year ~month ~day in
          let secs =
            (float_of_int days *. 86400.0)
            +. float_of_int ((hour * 3600) + (minute * 60) + second)
            +. !frac
            -. float_of_int tz_seconds
          in
          Some secs
      end
    with Exit | Failure _ | Invalid_argument _ ->
      (* Exit: dot with no fraction digits; Failure: float_of_string on
         a malformed fraction; Invalid_argument: positional reads past
         the end of a short timezone.  Anything else must propagate. *)
      None

(* --- xs:decimal --- like double but without an exponent part *)
let decimal_dfa () =
  Dfa.build ~name:"xs:decimal" ~n_states:7 ~start:1 ~sink:0 ~finals:[ 3; 5; 6 ]
    ~classes:[ (" \t\r\n", 0); ("+-", 1); ("0-9", 2); (".", 3) ]
    ~transitions:
      [
        (1, " \t\r\n", 1);
        (1, "+-", 2);
        (1, "0-9", 3);
        (1, ".", 4);
        (2, "0-9", 3);
        (2, ".", 4);
        (3, "0-9", 3);
        (3, ".", 5);
        (3, " \t\r\n", 6);
        (4, "0-9", 5);
        (5, "0-9", 5);
        (5, " \t\r\n", 6);
        (6, " \t\r\n", 6);
      ]

let parse_decimal s = float_of_string_opt (strip s)

(* --- xs:date --- ws* D4-D2-D2 (Z | +-D2:D2)? ws*; key = days since
   epoch shifted by the timezone as XML Schema's starting-instant
   order prescribes *)
let date_dfa () =
  Dfa.build ~name:"xs:date" ~n_states:19 ~start:1 ~sink:0 ~finals:[ 11; 17; 18 ]
    ~classes:
      [ (" \t\r\n", 0); ("0-9", 1); ("-", 2); (":", 3); ("Z", 4); ("+", 5) ]
    ~transitions:
      [
        (1, " \t\r\n", 1);
        (1, "0-9", 2);
        (2, "0-9", 3);
        (3, "0-9", 4);
        (4, "0-9", 5);
        (5, "-", 6);
        (6, "0-9", 7);
        (7, "0-9", 8);
        (8, "-", 9);
        (9, "0-9", 10);
        (10, "0-9", 11);
        (11, "Z", 17);
        (11, "-", 12);
        (11, "+", 12);
        (12, "0-9", 13);
        (13, "0-9", 14);
        (14, ":", 15);
        (15, "0-9", 16);
        (16, "0-9", 17);
        (17, " \t\r\n", 18);
        (11, " \t\r\n", 18);
        (18, " \t\r\n", 18);
      ]

let parse_tz s pos len =
  (* optional Z or +-hh:mm at [pos]; returns (seconds, end position) *)
  if pos < len && s.[pos] = 'Z' then (0, pos + 1)
  else if pos < len && (s.[pos] = '+' || s.[pos] = '-') then begin
    let sign = if s.[pos] = '-' then -1 else 1 in
    let d i = Char.code s.[i] - Char.code '0' in
    let h = (10 * d (pos + 1)) + d (pos + 2)
    and m = (10 * d (pos + 4)) + d (pos + 5) in
    (sign * ((h * 3600) + (m * 60)), pos + 6)
  end
  else (0, pos)

let parse_date s =
  let s = strip s in
  let len = String.length s in
  if len < 10 then None
  else
    try
      let d i = Char.code s.[i] - Char.code '0' in
      let year = (1000 * d 0) + (100 * d 1) + (10 * d 2) + d 3 in
      let month = (10 * d 5) + d 6 in
      let day = (10 * d 8) + d 9 in
      if month < 1 || month > 12 || day < 1 || day > 31 then None
      else begin
        let tz, pos = parse_tz s 10 len in
        if pos <> len then None
        else
          Some
            ((float_of_int (days_from_civil ~year ~month ~day) *. 86400.0)
            -. float_of_int tz)
      end
    with Invalid_argument _ ->
      (* positional digit reads past the end of a short timezone *)
      None

(* --- xs:time --- ws* D2:D2:D2 (.D+)? (Z | +-D2:D2)? ws* *)
let time_dfa () =
  Dfa.build ~name:"xs:time" ~n_states:19 ~start:1 ~sink:0 ~finals:[ 8; 10; 16; 18 ]
    ~classes:
      [ (" \t\r\n", 0); ("0-9", 1); (":", 2); (".", 3); ("Z", 4); ("+-", 5) ]
    ~transitions:
      [
        (1, " \t\r\n", 1);
        (1, "0-9", 2);
        (2, "0-9", 3);
        (3, ":", 4);
        (4, "0-9", 5);
        (5, "0-9", 6);
        (6, ":", 7);
        (7, "0-9", 17);
        (17, "0-9", 8);
        (8, ".", 9);
        (9, "0-9", 10);
        (10, "0-9", 10);
        (8, "Z", 16);
        (10, "Z", 16);
        (8, "+-", 11);
        (10, "+-", 11);
        (11, "0-9", 12);
        (12, "0-9", 13);
        (13, ":", 14);
        (14, "0-9", 15);
        (15, "0-9", 16);
        (16, " \t\r\n", 18);
        (8, " \t\r\n", 18);
        (10, " \t\r\n", 18);
        (18, " \t\r\n", 18);
      ]

let parse_time s =
  let s = strip s in
  let len = String.length s in
  if len < 8 then None
  else
    try
      let d i = Char.code s.[i] - Char.code '0' in
      let hour = (10 * d 0) + d 1
      and minute = (10 * d 3) + d 4
      and second = (10 * d 6) + d 7 in
      if hour > 24 || minute > 59 || second > 60 then None
      else begin
        let pos = ref 8 in
        let frac = ref 0.0 in
        if !pos < len && s.[!pos] = '.' then begin
          incr pos;
          let start = !pos in
          while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
            incr pos
          done;
          if !pos = start then raise Exit;
          frac := float_of_string ("0." ^ String.sub s start (!pos - start))
        end;
        let tz, pos = parse_tz s !pos len in
        if pos <> len then None
        else
          Some
            (float_of_int ((hour * 3600) + (minute * 60) + second - tz)
            +. !frac)
      end
    with Exit | Failure _ | Invalid_argument _ ->
      (* same escape hatches as [parse_datetime]: incomplete fraction,
         malformed float, or a positional read past the end *)
      None

let make name dfa parse =
  lazy { type_name = name; sct = Sct.of_dfa (dfa ()); parse }

let double_spec = make "xs:double" double_dfa parse_double
let integer_spec = make "xs:integer" integer_dfa parse_integer
let boolean_spec = make "xs:boolean" boolean_dfa parse_boolean
let datetime_spec = make "xs:dateTime" datetime_dfa parse_datetime
let decimal_spec = make "xs:decimal" decimal_dfa parse_decimal
let date_spec = make "xs:date" date_dfa parse_date
let time_spec = make "xs:time" time_dfa parse_time

let double () = Lazy.force double_spec
let integer () = Lazy.force integer_spec
let boolean () = Lazy.force boolean_spec
let datetime () = Lazy.force datetime_spec
let decimal () = Lazy.force decimal_spec
let date () = Lazy.force date_spec
let time () = Lazy.force time_spec

let all () =
  [ double (); integer (); boolean (); datetime (); decimal (); date (); time () ]

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Pool = Xvi_util.Pool

type node = Store.node

module Config = struct
  type t = {
    types : Lexical_types.spec list;
    substring : bool;
    jobs : int;
  }

  let default =
    {
      types = Lexical_types.[ double (); datetime () ];
      substring = false;
      jobs = 1;
    }
end

module Range = struct
  type t = { lo : float option; hi : float option }

  let between lo hi = { lo = Some lo; hi = Some hi }
  let at_least lo = { lo = Some lo; hi = None }
  let at_most hi = { lo = None; hi = Some hi }
  let any = { lo = None; hi = None }
  let lo t = t.lo
  let hi t = t.hi
end

type t = {
  store : Store.t;
  config : Config.t;
  strings : String_index.t;
  typed : Typed_index.t list;
  substring : Substring_index.t option;
  names : Name_index.t;
  mutable plane : Xvi_xml.Pre_plane.t option;
}

let build ~config ?pool store =
  (* one Figure 7 pass computes the fields of every index (paper §5:
     "creating ... multiple defined indices can be done simultaneously
     with only one pass") *)
  let hash_fields = Indexer.empty_fields Indexer.hash_ops store in
  let typed_fields =
    List.map
      (fun spec ->
        (spec, Indexer.empty_fields (Indexer.sct_ops spec.Lexical_types.sct) store))
      config.Config.types
  in
  Indexer.create_multi ?pool store
    (Indexer.Packed (Indexer.hash_ops, hash_fields)
    :: List.map
         (fun (spec, fields) ->
           Indexer.Packed (Indexer.sct_ops spec.Lexical_types.sct, fields))
         typed_fields);
  {
    store;
    config;
    strings = String_index.of_fields ?pool store hash_fields;
    typed =
      List.map
        (fun (spec, fields) -> Typed_index.of_fields ?pool spec store fields)
        typed_fields;
    substring =
      (if config.Config.substring then Some (Substring_index.create store)
       else None);
    names = Name_index.create store;
    plane = None;
  }

let of_store ?(config = Config.default) store =
  if config.Config.jobs > 1 then
    Pool.with_pool ~jobs:config.Config.jobs (fun pool ->
        build ~config ~pool store)
  else build ~config store

let of_xml ?config src =
  Result.map (fun store -> of_store ?config store) (Parser.parse src)

let of_xml_exn ?config src = of_store ?config (Parser.parse_exn src)
let store t = t.store
let config t = t.config
let string_index t = t.strings

let typed_index t name =
  List.find_opt (fun ti -> String.equal (Typed_index.type_name ti) name) t.typed

let typed_indices t = t.typed
let substring_index t = t.substring
let name_index t = t.names

let plane t =
  match t.plane with
  | Some p -> p
  | None ->
      let p = Xvi_xml.Pre_plane.build t.store in
      t.plane <- Some p;
      p

let invalidate_plane t = t.plane <- None
let elements_named t name = Name_index.nodes t.names t.store name
let lookup_string t s = String_index.lookup t.strings t.store s

let substring_exn t =
  match t.substring with
  | Some si -> si
  | None ->
      invalid_arg "Db: the substring index was not built (Config.substring)"

let lookup_contains t pattern =
  Substring_index.contains (substring_exn t) t.store pattern

let lookup_element_contains t pattern =
  Substring_index.element_contains (substring_exn t) t.store pattern

let typed_exn t name =
  match typed_index t name with
  | Some ti -> ti
  | None -> invalid_arg (Printf.sprintf "Db: no %s index configured" name)

(* A NaN bound satisfies no inclusive comparison, so it matches nothing —
   checked here because the B+tree's key order deliberately sorts NaN
   last, which would turn [at_most nan] into "everything". *)
let nan_bound range =
  let is_nan = function Some v -> Float.is_nan v | None -> false in
  is_nan (Range.lo range) || is_nan (Range.hi range)

let lookup_typed t name range =
  if nan_bound range then []
  else
    Typed_index.range ?lo:(Range.lo range) ?hi:(Range.hi range)
      (typed_exn t name)

let lookup_double t range = lookup_typed t "xs:double" range

let within t ~scope hits =
  let p = plane t in
  let descendants = Xvi_xml.Pre_plane.join_descendant p ~context:[ scope ] hits in
  if List.mem scope hits then
    Xvi_xml.Pre_plane.sort_doc_order p (scope :: descendants)
  else descendants

let lookup_string_within t ~scope s = within t ~scope (lookup_string t s)

let lookup_double_within t ~scope range =
  within t ~scope (lookup_double t range)

let update_texts t updates =
  (* the substring index needs the old values to drop their grams *)
  let with_old =
    match t.substring with
    | None -> []
    | Some _ -> List.map (fun (n, _) -> (n, Store.text t.store n)) updates
  in
  List.iter (fun (n, txt) -> Store.set_text t.store n txt) updates;
  let nodes = List.map fst updates in
  String_index.update_texts t.strings t.store nodes;
  List.iter (fun ti -> Typed_index.update_texts ti t.store nodes) t.typed;
  match t.substring with
  | None -> ()
  | Some si -> Substring_index.update_texts si t.store with_old

let update_text t n txt = update_texts t [ (n, txt) ]

let delete_subtree t n =
  let parent =
    match Store.parent t.store n with
    | Some p -> p
    | None -> invalid_arg "Db.delete_subtree: node has no parent"
  in
  let removed = ref [] in
  let removed_values = ref [] in
  (* Only the indexable kinds reach the value indices: comments and PIs
     carry no postings, and their never-assigned field reads as the
     (viable) identity — counting them as removed viable nodes would
     corrupt the typed indices' viability accounting. *)
  Store.iter_pre ~root:n t.store (fun m ->
      match Store.kind t.store m with
      | Store.Element -> removed := m :: !removed
      | Store.Text | Store.Attribute ->
          removed := m :: !removed;
          removed_values := (m, Store.text t.store m) :: !removed_values
      | _ -> ());
  Store.delete_subtree t.store n;
  let removed = !removed in
  String_index.on_delete t.strings t.store ~parent ~removed;
  List.iter
    (fun ti -> Typed_index.on_delete ti t.store ~parent ~removed)
    t.typed;
  (match t.substring with
  | None -> ()
  | Some si -> Substring_index.on_delete si ~removed:!removed_values);
  invalidate_plane t

let insert_xml t ~parent src =
  match Parser.parse_fragment t.store ~parent src with
  | Error _ as e -> e
  | Ok roots ->
      String_index.on_insert t.strings t.store ~roots;
      List.iter (fun ti -> Typed_index.on_insert ti t.store ~roots) t.typed;
      (match t.substring with
      | None -> ()
      | Some si -> Substring_index.on_insert si t.store ~roots);
      Name_index.on_insert t.names t.store ~roots;
      invalidate_plane t;
      Ok roots

let compact t =
  let store', mapping = Store.compact t.store in
  (of_store ~config:t.config store', mapping)

let index_storage_bytes t =
  String_index.storage_bytes t.strings
  + List.fold_left (fun acc ti -> acc + Typed_index.storage_bytes ti) 0 t.typed
  + (match t.substring with
    | None -> 0
    | Some si -> Substring_index.storage_bytes si)

let validate t =
  let results =
    String_index.validate t.strings t.store
    :: Name_index.validate t.names t.store
    :: (match t.substring with
       | None -> []
       | Some si -> [ Substring_index.validate si t.store ])
    @ List.map (fun ti -> Typed_index.validate ti t.store) t.typed
  in
  let errors =
    List.filter_map (function Ok () -> None | Error e -> Some e) results
  in
  match errors with [] -> Ok () | es -> Error (String.concat "; " es)

module Legacy = struct
  let make_config ?types ?(substring = false) () =
    {
      Config.default with
      Config.types =
        (match types with Some ts -> ts | None -> Config.default.Config.types);
      substring;
    }

  let of_store ?types ?substring s =
    of_store ~config:(make_config ?types ?substring ()) s

  let of_xml ?types ?substring src =
    of_xml ~config:(make_config ?types ?substring ()) src

  let of_xml_exn ?types ?substring src =
    of_xml_exn ~config:(make_config ?types ?substring ()) src

  let lookup_typed ?lo ?hi t name = lookup_typed t name { Range.lo; hi }

  let lookup_double ?lo ?hi t = lookup_typed ?lo ?hi t "xs:double"

  let lookup_double_within ?lo ?hi t ~scope () =
    within t ~scope (lookup_double ?lo ?hi t)
end

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Pool = Xvi_util.Pool

type node = Store.node

module Config = struct
  type t = {
    types : Lexical_types.spec list;
    substring : bool;
    jobs : int;
  }

  let default =
    {
      types = Lexical_types.[ double (); datetime () ];
      substring = false;
      jobs = 1;
    }
end

module Range = Xvi_query.Range
module Ir = Xvi_query.Ir
module Plan = Xvi_query.Plan

type t = {
  store : Store.t;
  config : Config.t;
  strings : String_index.t;
  typed : Typed_index.t list;
  substring : Substring_index.t option;
  names : Name_index.t;
  mutable plane : Xvi_xml.Pre_plane.t option;
}

let build ~config ?pool store =
  (* one Figure 7 pass computes the fields of every index (paper §5:
     "creating ... multiple defined indices can be done simultaneously
     with only one pass") *)
  let hash_fields = Indexer.empty_fields Indexer.hash_ops store in
  let typed_fields =
    List.map
      (fun spec ->
        (spec, Indexer.empty_fields (Indexer.sct_ops spec.Lexical_types.sct) store))
      config.Config.types
  in
  Indexer.create_multi ?pool store
    (Indexer.Packed (Indexer.hash_ops, hash_fields)
    :: List.map
         (fun (spec, fields) ->
           Indexer.Packed (Indexer.sct_ops spec.Lexical_types.sct, fields))
         typed_fields);
  {
    store;
    config;
    strings = String_index.of_fields ?pool store hash_fields;
    typed =
      List.map
        (fun (spec, fields) -> Typed_index.of_fields ?pool spec store fields)
        typed_fields;
    substring =
      (if config.Config.substring then Some (Substring_index.create store)
       else None);
    names = Name_index.create store;
    plane = None;
  }

let of_store ?(config = Config.default) store =
  if config.Config.jobs > 1 then
    Pool.with_pool ~jobs:config.Config.jobs (fun pool ->
        build ~config ~pool store)
  else build ~config store

(* Streaming-ingest assembly: [Xvi_ingest] builds the store, the hash
   postings and the typed trees itself (batch by batch); this puts the
   same record together that [build] would, constructing only the
   store-derived parts (names, optional substring index) here. *)
let assemble ~config ~store ~strings ~typed =
  {
    store;
    config;
    strings;
    typed;
    substring =
      (if config.Config.substring then Some (Substring_index.create store)
       else None);
    names = Name_index.create store;
    plane = None;
  }

let of_xml ?config src =
  Result.map (fun store -> of_store ?config store) (Parser.parse src)

let of_xml_exn ?config src = of_store ?config (Parser.parse_exn src)

(* The database splits into the off-heap columnar store and its
   GC-heap "shell" (configuration plus the indexes). The split is what
   both replication paths ride on: [copy] snapshots the store
   copy-on-write and round-trips only the shell through [Marshal], and
   [Snapshot] serialises the store through its raw columnar codec with
   the shell marshalled alongside. *)
type shell = {
  sh_config : Config.t;
  sh_strings : String_index.t;
  sh_typed : Typed_index.t list;
  sh_substring : Substring_index.t option;
  sh_names : Name_index.t;
}

let deconstruct t =
  ( t.store,
    {
      sh_config = t.config;
      sh_strings = t.strings;
      sh_typed = t.typed;
      sh_substring = t.substring;
      sh_names = t.names;
    } )

let reconstruct store shell =
  {
    store;
    config = shell.sh_config;
    strings = shell.sh_strings;
    typed = shell.sh_typed;
    substring = shell.sh_substring;
    names = shell.sh_names;
    plane = None;
  }

(* A deep, fully independent replica. The store is an O(chunks)
   copy-on-write snapshot — epoch publication no longer deep-copies the
   columns — while the shell still round-trips through [Marshal] with
   [Closures] (the typed specs carry parse closures), the exact byte
   path [Snapshot] trusts for persistence. *)
let copy t =
  let store = Store.snapshot t.store in
  let _, shell = deconstruct t in
  let shell =
    (Marshal.from_string (Marshal.to_string shell [ Marshal.Closures ]) 0
      : shell)
  in
  reconstruct store shell

let store t = t.store
let config t = t.config
let string_index t = t.strings

let typed_index t name =
  List.find_opt (fun ti -> String.equal (Typed_index.type_name ti) name) t.typed

let typed_indices t = t.typed
let substring_index t = t.substring
let name_index t = t.names

let plane t =
  match t.plane with
  | Some p -> p
  | None ->
      let p = Xvi_xml.Pre_plane.build t.store in
      t.plane <- Some p;
      p

let invalidate_plane t = t.plane <- None

(* --- Query layer wiring ---

   Everything below routes through lib/query: [access] hands the planner
   one streaming access path per index-served leaf, [verify] is the
   ground truth for residual conjuncts and scan fallbacks, and each
   public lookup is an IR compile + plan. *)

let has_value_kind store n =
  match Store.kind store n with
  | Store.Element | Store.Text | Store.Attribute | Store.Document -> true
  | Store.Comment | Store.Pi | Store.Deleted -> false

let spec_named name =
  List.find_opt
    (fun s -> String.equal s.Lexical_types.type_name name)
    (Lexical_types.all ())

(* Typed key of one node under a type name: the configured index's
   column when present, otherwise DFA acceptance + parse — acceptance
   first, because [parse] assumes a vetted lexical shape. *)
let typed_value t name n =
  match typed_index t name with
  | Some ti -> Typed_index.value_of ti n
  | None -> (
      match spec_named name with
      | None -> invalid_arg (Printf.sprintf "Db: unknown type %s" name)
      | Some spec ->
          let sv = Store.string_value t.store n in
          if Dfa.accepts (Sct.dfa spec.Lexical_types.sct) sv then
            spec.Lexical_types.parse sv
          else None)

let rec holds t ir n =
  let store = t.store in
  match ir with
  | Ir.All -> true
  | Ir.String_eq s -> String.equal (Store.string_value store n) s
  | Ir.Typed_range (name, r) -> (
      match typed_value t name n with
      | Some v -> Range.mem r v
      | None -> false)
  | Ir.Contains pat -> (
      match Store.kind store n with
      | Store.Text | Store.Attribute ->
          Substring_index.string_contains ~pattern:pat (Store.text store n)
      | _ -> false)
  | Ir.Element_contains pat -> (
      match Store.kind store n with
      | Store.Element | Store.Document ->
          Substring_index.string_contains ~pattern:pat
            (Store.string_value store n)
      | _ -> false)
  | Ir.Named name ->
      Store.kind store n = Store.Element
      && String.equal (Store.name store n) name
  | Ir.Within (scope, p) ->
      Xvi_xml.Pre_plane.in_subtree (plane t) ~scope n && holds t p n
  | Ir.And ps -> List.for_all (fun p -> holds t p n) ps
  | Ir.Or ps -> List.exists (fun p -> holds t p n) ps
  | Ir.Not p -> not (holds t p n)

let verify t ir n = has_value_kind t.store n && holds t ir n

let access t ir =
  match ir with
  | Ir.String_eq s ->
      Some
        {
          Plan.label = Printf.sprintf "string-index %S" s;
          estimate = String_index.estimate t.strings s;
          cursor = (fun () -> String_index.cursor t.strings t.store s);
          native = (fun () -> String_index.lookup t.strings t.store s);
          check = verify t ir;
        }
  | Ir.Typed_range (name, r) -> (
      match typed_index t name with
      | None -> None
      | Some ti ->
          let lo = Range.lo r and hi = Range.hi r in
          Some
            {
              Plan.label =
                Printf.sprintf "typed-index %s %s" name (Range.to_string r);
              estimate = Typed_index.estimate_range ?lo ?hi ti;
              cursor = (fun () -> Typed_index.cursor ?lo ?hi ti);
              native = (fun () -> Typed_index.range ?lo ?hi ti);
              (* probe the index's node->value column directly: one
                 hashtable lookup per candidate, no kind test or IR
                 dispatch on the hot intersection path *)
              check =
                (fun n ->
                  match Typed_index.value_of ti n with
                  | Some v -> Range.mem r v
                  | None -> false);
            })
  | Ir.Contains pat -> (
      match t.substring with
      | None -> None
      | Some si ->
          Some
            {
              Plan.label = Printf.sprintf "substring-index contains %S" pat;
              estimate = Substring_index.estimate si pat;
              cursor = (fun () -> Substring_index.cursor si t.store pat);
              native = (fun () -> Substring_index.contains si t.store pat);
              check = verify t ir;
            })
  | Ir.Element_contains pat -> (
      match t.substring with
      | None -> None
      | Some si ->
          Some
            {
              Plan.label =
                Printf.sprintf "substring-index element-contains %S" pat;
              estimate = Substring_index.element_estimate si pat;
              cursor = (fun () -> Substring_index.element_cursor si t.store pat);
              native =
                (fun () -> Substring_index.element_contains si t.store pat);
              check = verify t ir;
            })
  | Ir.Named name ->
      (* resolve the name to its interned id once, so [check] compares
         two ints instead of re-interning per candidate *)
      let name_id = Xvi_xml.Name_pool.find (Store.names t.store) name in
      Some
        {
          Plan.label = Printf.sprintf "name-index <%s>" name;
          estimate = Name_index.count t.names t.store name;
          cursor = (fun () -> Name_index.cursor t.names t.store name);
          native = (fun () -> Name_index.nodes t.names t.store name);
          check =
            (fun n ->
              match name_id with
              | None -> false
              | Some id ->
                  Store.kind t.store n = Store.Element
                  && Store.name_id t.store n = id);
        }
  | _ -> None

let provider t =
  {
    Plan.universe = (fun () -> Store.live_count t.store);
    node_range = (fun () -> Store.node_range t.store);
    plane = (fun () -> plane t);
    access = access t;
    verify = verify t;
  }

(* An unknown type name is a caller bug, not an empty result; surface it
   at compile time rather than from deep inside a scan. *)
let known_type t name = typed_index t name <> None || spec_named name <> None

let rec first_unknown_type t ir =
  match ir with
  | Ir.Typed_range (name, _) -> if known_type t name then None else Some name
  | Ir.Within (_, p) | Ir.Not p -> first_unknown_type t p
  | Ir.And ps | Ir.Or ps ->
      List.fold_left
        (fun acc p ->
          match acc with Some _ -> acc | None -> first_unknown_type t p)
        None ps
  | _ -> None

let check_types t ir =
  match first_unknown_type t ir with
  | None -> ()
  | Some name -> invalid_arg (Printf.sprintf "Db: unknown type %s" name)

let compile t ir =
  check_types t ir;
  Plan.plan (provider t) ir

let explain t ir = Plan.explain (compile t ir)
let estimate t ir = Plan.estimate (compile t ir)
let query_seq t ir = Plan.run_seq (compile t ir)
let query_ids t ir = Plan.run_list (compile t ir)

let query t ir =
  Xvi_xml.Pre_plane.sort_doc_order (plane t) (query_ids t ir)

(* --- Lookups: one-line IR compiles ---

   Single-leaf plans return the index's native answer order, which keeps
   each signature bit-identical to the pre-planner implementation. *)

let elements_named t name = Plan.run_list (compile t (Ir.named name))
let lookup_string t s = Plan.run_list (compile t (Ir.string_eq s))
let lookup_contains t pattern = Plan.run_list (compile t (Ir.contains pattern))

let lookup_element_contains t pattern =
  Plan.run_list (compile t (Ir.element_contains pattern))

let lookup_typed t name range =
  let ir = Ir.typed_range name range in
  match typed_index t name with
  | Some _ -> Plan.run_list (compile t ir)
  | None ->
      (* scan fallback — decorate with typed keys to keep the value-order
         contract the index would have delivered *)
      let keyed =
        List.filter_map
          (fun n -> Option.map (fun v -> (v, n)) (typed_value t name n))
          (Plan.run_list (compile t ir))
      in
      List.map snd
        (List.sort
           (fun (v1, n1) (v2, n2) ->
             match Float.compare v1 v2 with 0 -> Int.compare n1 n2 | c -> c)
           keyed)

let lookup_double t range = lookup_typed t "xs:double" range

(* --- Result-typed reads ---

   The only way any read above can escape with an exception is an
   unknown type name reaching [check_types]; these variants surface that
   as a value instead, so boundaries that must not raise (the serve
   engine, the wire protocol) get a total read API. *)

type read_error = [ `Unknown_type of string ]

let read_error_to_string (`Unknown_type name : read_error) =
  Printf.sprintf "unknown type %s" name

let query_r t ir =
  match first_unknown_type t ir with
  | Some name -> Error (`Unknown_type name)
  | None -> Ok (query t ir)

let lookup_typed_r t name range =
  if known_type t name then Ok (lookup_typed t name range)
  else Error (`Unknown_type name)

let lookup_string_within t ~scope s =
  query t (Ir.within ~scope (Ir.string_eq s))

let lookup_double_within t ~scope range =
  query t (Ir.within ~scope (Ir.typed_range "xs:double" range))

let update_texts t updates =
  (* the substring index needs the old values to drop their grams *)
  let with_old =
    match t.substring with
    | None -> []
    | Some _ -> List.map (fun (n, _) -> (n, Store.text t.store n)) updates
  in
  List.iter (fun (n, txt) -> Store.set_text t.store n txt) updates;
  let nodes = List.map fst updates in
  String_index.update_texts t.strings t.store nodes;
  List.iter (fun ti -> Typed_index.update_texts ti t.store nodes) t.typed;
  match t.substring with
  | None -> ()
  | Some si -> Substring_index.update_texts si t.store with_old

let update_text t n txt = update_texts t [ (n, txt) ]

let delete_subtree t n =
  let parent =
    match Store.parent t.store n with
    | Some p -> p
    | None -> invalid_arg "Db.delete_subtree: node has no parent"
  in
  let removed = ref [] in
  let removed_values = ref [] in
  (* Only the indexable kinds reach the value indices: comments and PIs
     carry no postings, and their never-assigned field reads as the
     (viable) identity — counting them as removed viable nodes would
     corrupt the typed indices' viability accounting. *)
  Store.iter_pre ~root:n t.store (fun m ->
      match Store.kind t.store m with
      | Store.Element -> removed := m :: !removed
      | Store.Text | Store.Attribute ->
          removed := m :: !removed;
          removed_values := (m, Store.text t.store m) :: !removed_values
      | _ -> ());
  Store.delete_subtree t.store n;
  let removed = !removed in
  String_index.on_delete t.strings t.store ~parent ~removed;
  List.iter
    (fun ti -> Typed_index.on_delete ti t.store ~parent ~removed)
    t.typed;
  (match t.substring with
  | None -> ()
  | Some si -> Substring_index.on_delete si ~removed:!removed_values);
  invalidate_plane t

let insert_xml t ~parent src =
  match Parser.parse_fragment t.store ~parent src with
  | Error _ as e -> e
  | Ok roots ->
      String_index.on_insert t.strings t.store ~roots;
      List.iter (fun ti -> Typed_index.on_insert ti t.store ~roots) t.typed;
      (match t.substring with
      | None -> ()
      | Some si -> Substring_index.on_insert si t.store ~roots);
      Name_index.on_insert t.names t.store ~roots;
      invalidate_plane t;
      Ok roots

let compact t =
  let store', mapping = Store.compact t.store in
  (of_store ~config:t.config store', mapping)

let index_storage_bytes t =
  String_index.storage_bytes t.strings
  + List.fold_left (fun acc ti -> acc + Typed_index.storage_bytes ti) 0 t.typed
  + (match t.substring with
    | None -> 0
    | Some si -> Substring_index.storage_bytes si)

let validate t =
  let results =
    String_index.validate t.strings t.store
    :: Name_index.validate t.names t.store
    :: (match t.substring with
       | None -> []
       | Some si -> [ Substring_index.validate si t.store ])
    @ List.map (fun ti -> Typed_index.validate ti t.store) t.typed
  in
  let errors =
    List.filter_map (function Ok () -> None | Error e -> Some e) results
  in
  match errors with [] -> Ok () | es -> Error (String.concat "; " es)

(** Element-name index.

    Not one of the paper's value indices, but the structural companion
    its host system provides: MonetDB/XQuery resolves a name test from
    its tag column without touching the tree. The query layer uses it to
    seed [//person[...]]-style context selection, so value predicates
    (answered by the paper's indices) never force a document scan.

    Deletion is handled lazily: tombstoned nodes are filtered out at
    lookup time, so subtree deletion costs the index nothing. *)

type t

type node = Xvi_xml.Store.node

val create : Xvi_xml.Store.t -> t

val nodes : t -> Xvi_xml.Store.t -> string -> node list
(** Live elements carrying this tag name, in node-id order. An unknown
    name yields []. *)

val count : t -> Xvi_xml.Store.t -> string -> int
(** [List.length (nodes ...)] without building the list. *)

val cursor : t -> Xvi_xml.Store.t -> string -> unit -> node option
(** Lazy cursor over the live elements of this tag, ascending node
    order (the bucket is push-ordered by construction), tombstones
    skipped on pull. Do not insert under this name while the cursor is
    live. *)

val on_insert : t -> Xvi_xml.Store.t -> roots:node list -> unit
(** Register the elements of freshly inserted subtrees. *)

val storage_bytes : t -> int

val validate : t -> Xvi_xml.Store.t -> (unit, string) result
(** Lookup results equal a document scan, for every name in the pool. *)

let magic = "XVI-SNAPSHOT-1\n"

(* A fingerprint of the running binary: closure marshalling embeds code
   pointers, so a snapshot is only valid for the exact executable that
   wrote it. Digesting the executable file captures that precisely. *)
let fingerprint =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with Sys_error _ -> "unknown")

type error = Not_a_snapshot | Binary_mismatch | Io_error of string

let error_to_string = function
  | Not_a_snapshot -> "not an xvi snapshot"
  | Binary_mismatch ->
      "snapshot was written by a different build of this binary"
  | Io_error msg -> msg

let save db path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_string oc (Lazy.force fingerprint);
      output_char oc '\n';
      Marshal.to_channel oc db [ Marshal.Closures ]);
  Sys.rename tmp path

let load ?config path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let buf = really_input_string ic (String.length magic) in
        if not (String.equal buf magic) then Error Not_a_snapshot
        else begin
          let fp = input_line ic in
          if not (String.equal fp (Lazy.force fingerprint)) then
            Error Binary_mismatch
          else
            let db = (Marshal.from_channel ic : Db.t) in
            match config with
            | None -> Ok db
            | Some config ->
                (* Re-index the loaded store under the new configuration
                   (different types, substring index, or a parallel
                   rebuild). *)
                Ok (Db.of_store ~config (Db.store db))
        end)
  with
  | Sys_error msg -> Error (Io_error msg)
  | End_of_file -> Error Not_a_snapshot

let load_exn ?config path =
  match load ?config path with
  | Ok db -> db
  | Error e -> failwith ("Snapshot.load: " ^ error_to_string e)

let is_snapshot path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = String.length magic in
        in_channel_length ic >= n && String.equal (really_input_string ic n) magic)
  with Sys_error _ -> false

let magic = "XVI-SNAPSHOT-4\n"

(* A fingerprint of the running binary: closure marshalling embeds code
   pointers, so a snapshot is only valid for the exact executable that
   wrote it. Digesting the executable file captures that precisely. *)
let fingerprint =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with Sys_error _ -> "unknown")

type error =
  | Not_a_snapshot
  | Binary_mismatch
  | Corrupted of string
  | Io_error of string

let error_to_string = function
  | Not_a_snapshot -> "not an xvi snapshot"
  | Binary_mismatch ->
      "snapshot was written by a different build of this binary"
  | Corrupted what -> "corrupt snapshot: " ^ what
  | Io_error msg -> msg

(* Format (all header fields end in '\n'):

     magic                 "XVI-SNAPSHOT-4\n"
     fingerprint           hex digest of the executable
     payload length        decimal byte count
     payload digest        hex MD5 of the payload bytes
     payload               Marshal output of [(lsn, store blob, shell)]

   The explicit length makes truncation detectable without touching
   [Marshal]; the digest makes any byte flip in the payload detectable.
   [Marshal.from_string] is only ever called on bytes whose digest
   matched, so its undefined behaviour on corrupt input is unreachable
   through this API.

   v3 over v2: the payload carries the LSN, so the WAL position the
   snapshot covers travels under the same digest as the data — a flipped
   LSN is as detectable as a flipped index byte.

   v4 over v3: the database is persisted as its two halves — the
   off-heap columnar store through [Store.Codec] (raw fixed-width column
   blobs; Bigarray contents would otherwise round-trip through Marshal's
   slower custom serialiser) and the GC-heap shell (indexes,
   configuration) marshalled with closures as before. Decoding the blob
   rebuilds canonical fresh columns, so a recovered database marshals
   bit-identically to a replayed oracle — the property every fault sweep
   digests. *)

(* fsync a directory so a rename inside it survives power loss; needs a
   read-only descriptor on the directory itself. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ ->
      (* some filesystems refuse to open directories; the rename is then
         only as durable as the platform allows *)
      ()

let save ?(lsn = 0) db path =
  let store, shell = Db.deconstruct db in
  let payload =
    Marshal.to_string
      (lsn, Xvi_xml.Store.Codec.encode store, shell)
      [ Marshal.Closures ]
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_string oc (Lazy.force fingerprint);
      output_char oc '\n';
      output_string oc (string_of_int (String.length payload));
      output_char oc '\n';
      output_string oc (Digest.to_hex (Digest.string payload));
      output_char oc '\n';
      output_string oc payload;
      (* the atomic-rename guarantee needs the bytes on the platter
         before the rename is: flush the channel, then fsync the file *)
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path;
  (* ... and the rename itself recorded in the directory *)
  fsync_dir (Filename.dirname path)

let load_with_lsn ?config path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let buf = really_input_string ic (String.length magic) in
        if not (String.equal buf magic) then Error Not_a_snapshot
        else begin
          let fp = input_line ic in
          if not (String.equal fp (Lazy.force fingerprint)) then
            Error Binary_mismatch
          else
            match int_of_string_opt (input_line ic) with
            | None -> Error (Corrupted "unreadable payload length")
            | Some len when len < 0 ->
                Error (Corrupted "unreadable payload length")
            | Some len ->
                let digest = input_line ic in
                (* Strict framing: the payload must be exactly the rest
                   of the file, so truncation and trailing garbage are
                   both rejected before any byte is read. *)
                if in_channel_length ic - pos_in ic <> len then
                  Error (Corrupted "payload length mismatch")
                else
                  let payload = really_input_string ic len in
                  if
                    not
                      (String.equal digest
                         (Digest.to_hex (Digest.string payload)))
                  then Error (Corrupted "payload digest mismatch")
                  else
                    let lsn, blob, shell =
                      (Marshal.from_string payload 0 : int * string * Db.shell)
                    in
                    let db =
                      Db.reconstruct (Xvi_xml.Store.Codec.decode blob) shell
                    in
                    (match config with
                    | None -> Ok (db, lsn)
                    | Some config ->
                        (* Re-index the loaded store under the new
                           configuration (different types, substring
                           index, or a parallel rebuild). *)
                        Ok (Db.of_store ~config (Db.store db), lsn))
        end)
  with
  | Sys_error msg -> Error (Io_error msg)
  | End_of_file -> Error Not_a_snapshot
  | Failure msg ->
      (* [Marshal.from_string] on a payload that collides with its
         digest, or [input_line] overflow — never let it escape the
         result type. *)
      Error (Corrupted msg)

let load ?config path = Result.map fst (load_with_lsn ?config path)

let load_exn ?config path =
  match load ?config path with
  | Ok db -> db
  | Error e -> failwith ("Snapshot.load: " ^ error_to_string e)

let is_snapshot path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = String.length magic in
        in_channel_length ic >= n && String.equal (really_input_string ic n) magic)
  with Sys_error _ -> false

let magic = "XVI-SNAPSHOT-2\n"

(* A fingerprint of the running binary: closure marshalling embeds code
   pointers, so a snapshot is only valid for the exact executable that
   wrote it. Digesting the executable file captures that precisely. *)
let fingerprint =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with Sys_error _ -> "unknown")

type error =
  | Not_a_snapshot
  | Binary_mismatch
  | Corrupted of string
  | Io_error of string

let error_to_string = function
  | Not_a_snapshot -> "not an xvi snapshot"
  | Binary_mismatch ->
      "snapshot was written by a different build of this binary"
  | Corrupted what -> "corrupt snapshot: " ^ what
  | Io_error msg -> msg

(* Format (all header fields end in '\n'):

     magic                 "XVI-SNAPSHOT-2\n"
     fingerprint           hex digest of the executable
     payload length        decimal byte count
     payload digest        hex MD5 of the payload bytes
     payload               Marshal output (closures)

   The explicit length makes truncation detectable without touching
   [Marshal]; the digest makes any byte flip in the payload detectable.
   [Marshal.from_string] is only ever called on bytes whose digest
   matched, so its undefined behaviour on corrupt input is unreachable
   through this API. *)

let save db path =
  let payload = Marshal.to_string db [ Marshal.Closures ] in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_string oc (Lazy.force fingerprint);
      output_char oc '\n';
      output_string oc (string_of_int (String.length payload));
      output_char oc '\n';
      output_string oc (Digest.to_hex (Digest.string payload));
      output_char oc '\n';
      output_string oc payload);
  Sys.rename tmp path

let load ?config path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let buf = really_input_string ic (String.length magic) in
        if not (String.equal buf magic) then Error Not_a_snapshot
        else begin
          let fp = input_line ic in
          if not (String.equal fp (Lazy.force fingerprint)) then
            Error Binary_mismatch
          else
            match int_of_string_opt (input_line ic) with
            | None -> Error (Corrupted "unreadable payload length")
            | Some len when len < 0 ->
                Error (Corrupted "unreadable payload length")
            | Some len ->
                let digest = input_line ic in
                (* Strict framing: the payload must be exactly the rest
                   of the file, so truncation and trailing garbage are
                   both rejected before any byte is read. *)
                if in_channel_length ic - pos_in ic <> len then
                  Error (Corrupted "payload length mismatch")
                else
                  let payload = really_input_string ic len in
                  if
                    not
                      (String.equal digest
                         (Digest.to_hex (Digest.string payload)))
                  then Error (Corrupted "payload digest mismatch")
                  else
                    let db = (Marshal.from_string payload 0 : Db.t) in
                    (match config with
                    | None -> Ok db
                    | Some config ->
                        (* Re-index the loaded store under the new
                           configuration (different types, substring
                           index, or a parallel rebuild). *)
                        Ok (Db.of_store ~config (Db.store db)))
        end)
  with
  | Sys_error msg -> Error (Io_error msg)
  | End_of_file -> Error Not_a_snapshot
  | Failure msg ->
      (* [Marshal.from_string] on a payload that collides with its
         digest, or [input_line] overflow — never let it escape the
         result type. *)
      Error (Corrupted msg)

let load_exn ?config path =
  match load ?config path with
  | Ok db -> db
  | Error e -> failwith ("Snapshot.load: " ^ error_to_string e)

let is_snapshot path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = String.length magic in
        in_channel_length ic >= n && String.equal (really_input_string ic n) magic)
  with Sys_error _ -> false

module Store = Xvi_xml.Store
module Vec = Xvi_util.Vec

type 'f ops = {
  field_name : string;
  of_text : string -> 'f;
  combine : 'f -> 'f -> 'f;
  identity : 'f;
  equal : 'f -> 'f -> bool;
}

let hash_ops =
  {
    field_name = "hash";
    of_text = Hash.hash;
    combine = Hash.combine;
    identity = Hash.empty;
    equal = Hash.equal;
  }

let sct_ops sct =
  {
    field_name = "state:" ^ Dfa.name (Sct.dfa sct);
    of_text = Sct.of_string sct;
    combine = Sct.compose sct;
    identity = Sct.identity sct;
    equal = Int.equal;
  }

type 'f fields = { vec : 'f Vec.Poly.t; default : 'f }

let make_fields ops capacity =
  {
    vec = Vec.Poly.create ~capacity:(max capacity 16) ~dummy:ops.identity ();
    default = ops.identity;
  }

let get f n = if n < Vec.Poly.length f.vec then Vec.Poly.get f.vec n else f.default

let set f n v =
  while Vec.Poly.length f.vec <= n do
    Vec.Poly.push f.vec f.default
  done;
  Vec.Poly.set f.vec n v

let alloc_fields ops ~capacity = make_fields ops capacity

let fold_all fn f init =
  let acc = ref init in
  Vec.Poly.iteri (fun n v -> acc := fn n v !acc) f.vec;
  !acc

(* Combine the fields of [n]'s live children in document order, walking
   sibling links directly (no list allocation — this is the inner loop
   of update maintenance). *)
let fold_children ops store fields n =
  let rec go acc c =
    match c with
    | None -> acc
    | Some c -> go (ops.combine acc (get fields c)) (Store.next_sibling store c)
  in
  go ops.identity (Store.first_child store n)

(* Fields of attribute nodes are independent of the child recursion; both
   the creation pass and the reference computation share this. *)
let compute_attributes ops store fields n =
  List.iter
    (fun a -> set fields a (ops.of_text (Store.text store a)))
    (Store.attributes store n)

(* --- Figure 7: creation ---

   The traversal is independent of the field machine, so it is written
   once against two callbacks: [on_text node text] when the context
   reaches a text node (also used for attributes, whose fields do not
   participate in the recursion), and [on_combine ~parent ~child] when
   the walk departs a node rightward or upward.

   [drive_texts] walks an arbitrary {e contiguous slice} [lo, hi) of the
   document-order context sequence. Run over the whole sequence it is
   exactly Figure 7; run over a chunk it accumulates, for every node,
   precisely the combination (in document order) of the chunk's text
   contributions below that node — the partial fields the parallel
   builder merges with the associative [combine]. *)

let drive_texts store ctx lo hi ~on_text ~on_combine =
  if lo < hi then begin
    (* Ancestor-or-self chain of the current context text node, kept as
       a mark bitmap (plus the marked list for O(depth) clearing);
       refreshed whenever the context advances. *)
    let marks = Bytes.make (Store.node_range store) '\000' in
    let marked = ref [] in
    let load_ancestors target =
      List.iter (fun n -> Bytes.unsafe_set marks n '\000') !marked;
      marked := [];
      let rec up n =
        Bytes.unsafe_set marks n '\001';
        marked := n :: !marked;
        match Store.parent store n with Some p -> up p | None -> ()
      in
      up target
    in
    let in_chain n = Bytes.unsafe_get marks n = '\001' in
    let len = hi in
    let stack = Stack.create () in
    let cur = ref Store.document in
    let i = ref lo in
    load_ancestors ctx.(lo);
    while !i < len do
      let target = ctx.(!i) in
      if target = !cur then begin
        (* line 06-08: a context text node — apply H / the FSM *)
        on_text !cur (Store.text store !cur);
        incr i;
        if !i < len then load_ancestors ctx.(!i)
      end
      else if in_chain !cur then begin
        (* line 09-11: the target lies below — descend, stacking [cur] *)
        Stack.push !cur stack;
        match Store.first_child store !cur with
        | Some c -> cur := c
        | None -> assert false (* [target] is a strict descendant *)
      end
      else begin
        match Store.parent store !cur with
        | Some father when in_chain father ->
            (* line 12-15: target is within a following sibling's subtree —
               fold [cur] into its father and move right *)
            on_combine ~parent:father ~child:!cur;
            (match Store.next_sibling store !cur with
            | Some s -> cur := s
            | None -> assert false (* a following sibling must exist *))
        | _ ->
            (* line 16-19: done below this ancestor — pop and fold upward *)
            let p = Stack.pop stack in
            on_combine ~parent:p ~child:!cur;
            cur := p
      end
    done;
    (* line 20-24: drain the stack of open ancestors *)
    while not (Stack.is_empty stack) do
      let p = Stack.pop stack in
      on_combine ~parent:p ~child:!cur;
      cur := p
    done
  end

(* Attributes, in the same conceptual pass: their fields are independent
   of the child recursion, so a flat column scan over any node-id slice
   does — which also makes the scan trivially partitionable. *)
let drive_attributes store lo hi ~on_text =
  for n = lo to hi - 1 do
    if Store.kind store n = Store.Attribute then on_text n (Store.text store n)
  done

let drive_create store ~on_text ~on_combine =
  let ctx = Store.text_nodes store in
  drive_texts store ctx 0 (Array.length ctx) ~on_text ~on_combine;
  drive_attributes store 0 (Store.node_range store) ~on_text

let create ops store =
  let fields = make_fields ops (Store.node_range store) in
  drive_create store
    ~on_text:(fun n txt -> set fields n (ops.of_text txt))
    ~on_combine:(fun ~parent ~child ->
      set fields parent (ops.combine (get fields parent) (get fields child)));
  fields

type packed = Packed : 'f ops * 'f fields -> packed

let empty_fields ops store = make_fields ops (Store.node_range store)

let create_multi_serial store packs =
  let on_texts =
    List.map
      (fun (Packed (ops, fields)) ->
        fun n txt -> set fields n (ops.of_text txt))
      packs
  in
  let on_combines =
    List.map
      (fun (Packed (ops, fields)) ->
        fun ~parent ~child ->
          set fields parent (ops.combine (get fields parent) (get fields child)))
      packs
  in
  drive_create store
    ~on_text:(fun n txt -> List.iter (fun f -> f n txt) on_texts)
    ~on_combine:(fun ~parent ~child ->
      List.iter (fun f -> f ~parent ~child) on_combines)

(* --- Parallel creation ---

   Every per-node field is a monoid reduction over the document-order
   text sequence: field(n) = combine of [of_text] over the context text
   nodes below [n], in order. So the context sequence can be cut into
   [jobs] contiguous chunks, each chunk driven through the Figure 7
   walk independently (accumulating chunk-local partial fields), and
   the partials merged per node with the associative [combine] in chunk
   order. Associativity makes the merged fields {e bit-identical} to
   the serial pass — [combine] on hashes is exact 27-bit arithmetic and
   on SCT states an exact table lookup, so no floating or rounding
   slack exists anywhere.

   Attribute fields do not participate in the recursion; their flat
   column scan is partitioned by node-id slices, and the identity-unit
   law turns their merge into plain adoption of the one non-identity
   partial. *)

type chunked = Chunked : { ops : 'f ops; target : 'f fields; locals : 'f fields array } -> chunked

let create_multi_parallel pool store packs =
  let jobs = Xvi_util.Pool.parallelism pool in
  let range = Store.node_range store in
  let ctx = Store.text_nodes store in
  let text_slices = Xvi_util.Pool.slices (Array.length ctx) jobs in
  let node_slices = Xvi_util.Pool.slices range jobs in
  let machines =
    List.map
      (fun (Packed (ops, target)) ->
        Chunked
          {
            ops;
            target;
            locals = Array.init jobs (fun _ -> make_fields ops range);
          })
      packs
  in
  (* Phase 1: per-chunk partial fields, all machines sharing each walk. *)
  ignore
    (Xvi_util.Pool.map pool
       (fun k ->
         let tlo, thi = text_slices.(k) in
         let alo, ahi = node_slices.(k) in
         let on_texts =
           List.map
             (fun (Chunked m) ->
               let loc = m.locals.(k) and ops = m.ops in
               (* pre-size once so per-event [set] never pays the
                  grow-by-push loop *)
               if range > 0 then set loc (range - 1) ops.identity;
               fun n txt -> set loc n (ops.of_text txt))
             machines
         in
         let on_combines =
           List.map
             (fun (Chunked m) ->
               let loc = m.locals.(k) and ops = m.ops in
               fun ~parent ~child ->
                 set loc parent (ops.combine (get loc parent) (get loc child)))
             machines
         in
         let on_text n txt = List.iter (fun f -> f n txt) on_texts in
         let on_combine ~parent ~child =
           List.iter (fun f -> f ~parent ~child) on_combines
         in
         drive_texts store ctx tlo thi ~on_text ~on_combine;
         drive_attributes store alo ahi ~on_text)
       jobs
      : unit array);
  (* Phase 2: merge partials into the target fields, in chunk order —
     itself partitioned by node-id slices (each slice writes disjoint
     indices of the pre-sized target vectors). *)
  List.iter
    (fun (Chunked m) -> if range > 0 then set m.target (range - 1) m.ops.identity)
    machines;
  ignore
    (Xvi_util.Pool.map pool
       (fun k ->
         let lo, hi = node_slices.(k) in
         List.iter
           (fun (Chunked m) ->
             let ops = m.ops and locals = m.locals and target = m.target in
             for n = lo to hi - 1 do
               let acc = ref (get locals.(0) n) in
               for c = 1 to jobs - 1 do
                 acc := ops.combine !acc (get locals.(c) n)
               done;
               set target n !acc
             done)
           machines)
       jobs
      : unit array)

let create_multi ?pool store packs =
  match pool with
  | Some pool when Xvi_util.Pool.parallelism pool > 1 ->
      create_multi_parallel pool store packs
  | _ -> create_multi_serial store packs

(* --- Reference computation (tests) --- *)

let create_reference (type f) (ops : f ops) store =
  let fields = make_fields ops (Store.node_range store) in
  let rec go n =
    match Store.kind store n with
    | Store.Text ->
        let f = ops.of_text (Store.text store n) in
        set fields n f;
        f
    | Store.Comment | Store.Pi | Store.Deleted | Store.Attribute ->
        ops.identity
    | Store.Element | Store.Document ->
        compute_attributes ops store fields n;
        let f =
          List.fold_left
            (fun acc c -> ops.combine acc (go c))
            ops.identity (Store.children store n)
        in
        set fields n f;
        f
  in
  ignore (go Store.document : f);
  fields

(* --- Figure 8: updates --- *)

type 'f change = {
  node : Store.node;
  old_field : 'f;
  new_field : 'f;
  level : int;
}

type 'f update_result = {
  changes : 'f change list;
  touched : (Store.node * int) list;
}

let update ops store fields ~texts ?(structural = []) () =
  let changes = ref [] in
  let assign n v =
    let old = get fields n in
    if not (ops.equal old v) then begin
      set fields n v;
      changes := { node = n; old_field = old; new_field = v; level = Store.level store n } :: !changes
    end
  in
  (* 1. Recompute the updated leaves themselves. *)
  List.iter
    (fun n ->
      match Store.kind store n with
      | Store.Text | Store.Attribute -> assign n (ops.of_text (Store.text store n))
      | _ ->
          invalid_arg
            (Printf.sprintf "Indexer.update: node %d is not a text or attribute"
               n))
    texts;
  (* 2. Collect dirty ancestors. Attribute values do not contribute to
     their element's string value, so attribute updates stop there. *)
  let dirty = Hashtbl.create 64 in
  let rec mark_ancestors n =
    match Store.parent store n with
    | None -> ()
    | Some p ->
        if not (Hashtbl.mem dirty p) then begin
          Hashtbl.replace dirty p ();
          mark_ancestors p
        end
  in
  List.iter
    (fun n -> if Store.kind store n = Store.Text then mark_ancestors n)
    texts;
  List.iter
    (fun n ->
      if not (Hashtbl.mem dirty n) then begin
        Hashtbl.replace dirty n ();
        mark_ancestors n
      end)
    structural;
  (* 3. Recombine dirty nodes bottom-up from their immediate children —
     the paper's "visiting only the siblings and reading their hash
     values" (Figure 8, lines 14-16 / 19-21). *)
  let by_depth =
    List.sort
      (fun (_, la) (_, lb) -> Int.compare lb la)
      (Hashtbl.fold (fun n () acc -> (n, Store.level store n) :: acc) dirty [])
  in
  List.iter (fun (n, _) -> assign n (fold_children ops store fields n)) by_depth;
  let touched =
    List.sort
      (fun (_, la) (_, lb) -> Int.compare lb la)
      (List.rev_append
         (List.map (fun n -> (n, Store.level store n)) texts)
         by_depth)
  in
  {
    changes = List.sort (fun a b -> Int.compare b.level a.level) !changes;
    touched;
  }

let compute_subtree (type f) (ops : f ops) store fields root =
  let rec go n =
    match Store.kind store n with
    | Store.Text ->
        let f = ops.of_text (Store.text store n) in
        set fields n f;
        f
    | Store.Comment | Store.Pi | Store.Deleted | Store.Attribute ->
        ops.identity
    | Store.Element | Store.Document ->
        compute_attributes ops store fields n;
        let f =
          List.fold_left
            (fun acc c -> ops.combine acc (go c))
            ops.identity (Store.children store n)
        in
        set fields n f;
        f
  in
  ignore (go root : f)

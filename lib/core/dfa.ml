type t = {
  name : string;
  n_states : int;
  start : int;
  sink : int;
  finals : bool array;
  n_classes : int; (* declared classes + 1 for "other" *)
  class_table : int array; (* 256 entries *)
  class_reprs : char option array;
  trans : int array; (* state * n_classes + class -> state *)
}

(* Expand a class description: "a-z" style ranges; a dash at the start or
   end (or one not bracketed by an ascending pair) is literal. *)
let expand_chars desc =
  let n = String.length desc in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if
      !i + 2 < n
      && desc.[!i + 1] = '-'
      && Char.code desc.[!i] < Char.code desc.[!i + 2]
    then begin
      for c = Char.code desc.[!i] to Char.code desc.[!i + 2] do
        out := Char.chr c :: !out
      done;
      i := !i + 3
    end
    else begin
      out := desc.[!i] :: !out;
      incr i
    end
  done;
  List.rev !out

let build ~name ~n_states ~start ~sink ~finals ~classes ~transitions =
  let bad fmt = Printf.ksprintf (fun s -> invalid_arg ("Dfa.build: " ^ s)) fmt in
  let check_state s = if s < 0 || s >= n_states then bad "state %d out of range" s in
  check_state start;
  check_state sink;
  List.iter check_state finals;
  if List.mem sink finals then bad "sink cannot be final";
  let n_declared = List.length classes in
  let n_classes = n_declared + 1 in
  let other = n_declared in
  let class_table = Array.make 256 other in
  let class_reprs = Array.make n_classes None in
  let class_ids = Hashtbl.create 16 in
  List.iteri
    (fun id (cname, expected_id) ->
      if expected_id <> id then
        bad "class %s listed at position %d but labelled %d" cname id expected_id;
      if Hashtbl.mem class_ids cname then bad "duplicate class %s" cname;
      Hashtbl.add class_ids cname id)
    classes;
  List.iteri
    (fun id (cname, _) ->
      let chars = expand_chars cname in
      List.iter
        (fun c ->
          let code = Char.code c in
          if class_table.(code) <> other then
            bad "character %C belongs to two classes" c;
          class_table.(code) <- id;
          if class_reprs.(id) = None then class_reprs.(id) <- Some c)
        chars)
    classes;
  (* A representative for "other": the first byte not claimed. *)
  (try
     for code = 0 to 255 do
       if class_table.(code) = other then begin
         class_reprs.(other) <- Some (Char.chr code);
         raise Exit
       end
     done
   with Exit -> ());
  let finals_arr = Array.make n_states false in
  List.iter (fun s -> finals_arr.(s) <- true) finals;
  let trans = Array.make (n_states * n_classes) sink in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (src, cname, dst) ->
      check_state src;
      check_state dst;
      if src = sink && dst <> sink then bad "transition out of the sink";
      let cls =
        match Hashtbl.find_opt class_ids cname with
        | Some id -> id
        | None -> bad "unknown class %s in transition" cname
      in
      if Hashtbl.mem seen (src, cls) then
        bad "duplicate transition from %d on %s" src cname;
      Hashtbl.add seen (src, cls) ();
      trans.((src * n_classes) + cls) <- dst)
    transitions;
  {
    name;
    n_states;
    start;
    sink;
    finals = finals_arr;
    n_classes;
    class_table;
    class_reprs;
    trans;
  }

let name t = t.name
let n_states t = t.n_states
let start t = t.start
let sink t = t.sink
let is_final t s = t.finals.(s)
let n_classes t = t.n_classes
let class_of_char t c = t.class_table.(Char.code c)
let class_repr t cls = t.class_reprs.(cls)

let step t state c =
  t.trans.((state * t.n_classes) + t.class_table.(Char.code c))

let run t s =
  let state = ref t.start in
  let i = ref 0 in
  let n = String.length s in
  while !i < n && !state <> t.sink do
    state := step t !state s.[!i];
    incr i
  done;
  !state

let accepts t s = t.finals.(run t s)

let reachable t =
  let seen = Array.make t.n_states false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      for cls = 0 to t.n_classes - 1 do
        go t.trans.((s * t.n_classes) + cls)
      done
    end
  in
  go t.start;
  seen

let co_accessible t =
  (* Backward closure from the finals over the transition relation. *)
  let can = Array.copy t.finals in
  let changed = ref true in
  while !changed do
    changed := false;
    for s = 0 to t.n_states - 1 do
      if not can.(s) then
        for cls = 0 to t.n_classes - 1 do
          if can.(t.trans.((s * t.n_classes) + cls)) && not can.(s) then begin
            can.(s) <- true;
            changed := true
          end
        done
    done
  done;
  can

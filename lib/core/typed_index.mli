(** The typed range-lookup index (paper Section 4).

    For a given type machine (see {!Lexical_types}), every node whose
    string value is a {e viable} fragment of the type's lexical language
    carries a one/two-byte SCT state; nodes whose value is a {e complete}
    lexical form additionally appear in a B+tree on [(typed value,
    node id)], which serves range and equality lookups with no false
    positives. Rejected nodes — the vast majority, in typical data —
    store nothing.

    Lexical reconstruction: when an update makes an intermediate node's
    combined value complete, its typed key must be recovered. Mode
    [`Document] (default) re-reads the node's string value from the
    store; mode [`Fragment] keeps the lexical fragment of every viable
    node in the index, so the document is never touched (the paper's
    stated goal, at the price of replicating the — short — viable
    fragments). DESIGN.md explains why the paper's [value ++ state]
    reconstruction is unsound in corner cases; the ablation bench
    compares the two modes. *)

type t

type node = Xvi_xml.Store.node

type reconstruct = [ `Document | `Fragment ]

val create :
  ?reconstruct:reconstruct ->
  ?pool:Xvi_util.Pool.t ->
  Lexical_types.spec ->
  Xvi_xml.Store.t ->
  t

val of_fields :
  ?reconstruct:reconstruct ->
  ?pool:Xvi_util.Pool.t ->
  Lexical_types.spec ->
  Xvi_xml.Store.t ->
  int Indexer.fields ->
  t
(** Build from SCT states already computed — how {!Db} shares one
    document pass across all its indices (paper §5).

    With [?pool] of parallelism [> 1] in [`Document] mode, value
    collection (viability counting, lexical re-reads, float parsing)
    runs per-domain over node-id slices; the sort and B+tree bulk load
    stay single-threaded. [`Fragment] mode always collects serially —
    it fills the shared fragment table during the pass. *)

val of_streamed :
  Lexical_types.spec ->
  int Indexer.fields ->
  viable_count:int ->
  complete:(node * float) array ->
  t
(** Streaming-ingest assembly ([`Document] mode): the ingest builder
    already counted viable nodes and parsed the complete values while
    shredding. [complete] must be ascending by node id with each value
    the successful [spec.parse] of that node's string value; the result
    is marshal-identical to the serial {!of_fields} pass over the same
    document. *)

val spec : t -> Lexical_types.spec
val type_name : t -> string

val state_of : t -> node -> int
(** The SCT state of a node; {!Sct.reject} for rejected ones. *)

val is_viable : t -> node -> bool
val is_complete : t -> node -> bool

val value_of : t -> node -> float option
(** The typed key of a node whose value is complete. *)

(** {1 Lookups} *)

val range : ?lo:float -> ?hi:float -> t -> node list
(** Nodes with a complete typed value in [\[lo, hi\]] (inclusive,
    missing bound = unbounded), ordered by value. Exact — no
    verification pass is needed. *)

val equals : t -> float -> node list

(** {1 Streaming access (query planner)} *)

val cursor : ?lo:float -> ?hi:float -> t -> unit -> node option
(** Posting cursor over the range in ascending {e node} order (the merge
    order of the query executor; the tree's native order is by value, so
    the range is materialized and sorted on the first pull). Do not
    update the index while a cursor is live. *)

val estimate_range : ?lo:float -> ?hi:float -> t -> int
(** Exact binding count in the range via the B+tree leaf chain — the
    planner's cardinality estimate. *)

(** {1 Maintenance} *)

val update_texts : t -> Xvi_xml.Store.t -> node list -> unit
val on_delete : t -> Xvi_xml.Store.t -> parent:node -> removed:node list -> unit
val on_insert : t -> Xvi_xml.Store.t -> roots:node list -> unit

(** {1 Statistics, accounting, validation} *)

type stats = {
  viable_nodes : int;  (** nodes carrying a state *)
  complete_nodes : int;  (** nodes in the value B+tree *)
  complete_text_nodes : int;
      (** the paper's Table 1 "Double Values" column: text nodes with a
          (potential) valid lexical value — counted here as complete *)
  complete_non_leaves : int;
      (** the paper's Table 1 "non-leaf" column: elements with element
          children whose concatenated string value is a complete typed
          value (the empty string is viable, so viability alone would
          count every element with only empty children) *)
}

val stats : t -> Xvi_xml.Store.t -> stats

val entry_count : t -> int
(** Bindings in the value B+tree. *)

val storage_bytes : t -> int
(** State bytes for viable nodes + value B+tree (+ fragments in
    [`Fragment] mode), as Figure 9 accounts it. *)

val validate : t -> Xvi_xml.Store.t -> (unit, string) result
(** Test hook: states and B+tree contents equal a from-scratch
    recomputation. *)

module Store = Xvi_xml.Store
module BT = Xvi_btree.Btree.Make (Xvi_btree.Btree.Int_key)

type node = Store.node

let q = 3

(* A posting packs (24-bit gram, 30-bit node) into one unboxed int;
   packed order equals (gram, node) lexicographic order. *)
let node_mask = 0x3FFF_FFFF
let pack_key g n = (g lsl 30) lor n

type t = {
  postings : unit BT.t; (* packed (3-gram, node) *)
  mutable entries : int;
}

let indexable store n =
  match Store.kind store n with
  | Store.Text | Store.Attribute -> true
  | _ -> false

(* 3 bytes pack into a collision-free 24-bit key *)
let pack s i =
  (Char.code s.[i] lsl 16) lor (Char.code s.[i + 1] lsl 8) lor Char.code s.[i + 2]

let distinct_grams s =
  let n = String.length s in
  if n < q then []
  else begin
    let seen = Hashtbl.create (n - q + 1) in
    for i = 0 to n - q do
      Hashtbl.replace seen (pack s i) ()
    done;
    Hashtbl.fold (fun g () acc -> g :: acc) seen []
  end

let add_node t store n =
  List.iter
    (fun g ->
      (* a batch may name the same node twice; the second pass re-adds
         grams that are already present, which must not inflate the
         entry counter *)
      if not (BT.mem t.postings (pack_key g n)) then begin
        BT.insert t.postings (pack_key g n) ();
        t.entries <- t.entries + 1
      end)
    (distinct_grams (Store.text store n))

let remove_node_value t n old_value =
  List.iter
    (fun g ->
      if BT.remove t.postings (pack_key g n) then t.entries <- t.entries - 1)
    (distinct_grams old_value)

let create store =
  (* Bulk-load path: a (24-bit gram, 30-bit node) pair packs into one
     unboxed int, so collection and sorting run on an int vector — the
     posting count is an order of magnitude above the other indices'
     (every node contributes one posting per distinct gram), which makes
     this the difference between seconds and minutes on text-heavy
     documents. *)
  let packed = Xvi_util.Vec.Int.create ~capacity:4096 () in
  Store.iter_pre store (fun n ->
      if indexable store n then begin
        (* push every positional gram; duplicates within a node collapse
           after the global sort, which beats a per-node hash set *)
        let s = Store.text store n in
        for i = 0 to String.length s - q do
          Xvi_util.Vec.Int.push packed ((pack s i lsl 30) lor n)
        done
      end);
  let keys = Xvi_util.Vec.Int.to_array packed in
  Array.sort Int.compare keys;
  let distinct = ref 0 in
  Array.iteri
    (fun i k -> if i = 0 || keys.(i - 1) <> k then incr distinct)
    keys;
  let arr = Array.make !distinct (0, ()) in
  let j = ref 0 in
  Array.iteri
    (fun i k ->
      if i = 0 || keys.(i - 1) <> k then begin
        arr.(!j) <- (k, ());
        incr j
      end)
    keys;
  { postings = BT.of_sorted_array arr; entries = !distinct }

let posting_list t g =
  let acc = ref [] in
  BT.iter_range ~lo:(pack_key g 0) ~hi:(pack_key g node_mask)
    (fun k () -> acc := (k land node_mask) :: !acc)
    t.postings;
  List.rev !acc

(* naive substring check; patterns are short *)
let string_contains ~pattern s =
  let m = String.length pattern and n = String.length s in
  if m = 0 then true
  else begin
    let rec at i j = j = m || (s.[i + j] = pattern.[j] && at i (j + 1)) in
    let rec go i = i + m <= n && (at i 0 || go (i + 1)) in
    go 0
  end

let scan_all store pattern =
  let acc = ref [] in
  Store.iter_pre store (fun n ->
      if indexable store n && string_contains ~pattern (Store.text store n) then
        acc := n :: !acc);
  List.sort Int.compare !acc

let contains t store pattern =
  let m = String.length pattern in
  if m < q then scan_all store pattern
  else begin
    (* posting lists of the pattern's grams, rarest first; intersect *)
    let grams =
      List.sort_uniq Int.compare (List.init (m - q + 1) (fun i -> pack pattern i))
    in
    let lists = List.map (posting_list t) grams in
    let lists =
      List.sort (fun a b -> Int.compare (List.length a) (List.length b)) lists
    in
    match lists with
    | [] -> []
    | smallest :: rest ->
        let sets =
          List.map
            (fun l ->
              let h = Hashtbl.create (max 16 (List.length l)) in
              List.iter (fun n -> Hashtbl.replace h n ()) l;
              h)
            rest
        in
        let candidates =
          List.filter
            (fun n -> List.for_all (fun h -> Hashtbl.mem h n) sets)
            smallest
        in
        List.sort Int.compare
          (List.filter
             (fun n -> string_contains ~pattern (Store.text store n))
             candidates)
  end

let element_contains t store pattern =
  if String.length pattern = 0 then begin
    (* Every string value contains the empty pattern, including the ""
       of childless elements — which have no text-node seed below. *)
    let acc = ref [] in
    Store.iter_pre store (fun n ->
        match Store.kind store n with
        | Store.Element | Store.Document -> acc := n :: !acc
        | _ -> ());
    List.sort Int.compare !acc
  end
  else begin
  let result = Hashtbl.create 64 in
  (* 1. within-node matches lift to every ancestor. Attribute matches do
     not seed: an attribute's value is no part of its element's XDM
     string value. *)
  let seeds =
    List.filter
      (fun n -> Store.kind store n = Store.Text)
      (contains t store pattern)
  in
  List.iter
    (fun n ->
      let rec up c =
        match Store.parent store c with
        | Some p ->
            if not (Hashtbl.mem result p) then begin
              Hashtbl.replace result p ();
              up p
            end
        | None -> ()
      in
      up n)
    seeds;
  (* 2. boundary-spanning matches: slide a carry of the last m-1
     concatenated characters (with a parallel per-character owner map)
     across the document's text sequence; any pattern occurrence that
     starts inside the carry spans at least one text-node junction, and
     the elements containing it are exactly the common ancestors of its
     first and last contributing nodes *)
  let m = String.length pattern in
  if m >= 2 then begin
    let mark_common_ancestors first last =
      let rec ancestors acc c =
        match Store.parent store c with
        | Some p -> ancestors (p :: acc) p
        | None -> acc
      in
      let a2 = ancestors [] last in
      List.iter
        (fun a -> if List.mem a a2 then Hashtbl.replace result a ())
        (ancestors [] first)
    in
    (* A spanning match starts inside the (m-1)-char carry and extends at
       most m-1 characters into the next text, so only a small window —
       never the full text — is materialised per junction. *)
    let carry = ref "" and owners = ref [||] in
    Array.iter
      (fun tn ->
        let tv = Store.text store tn in
        let clen = String.length !carry in
        if clen > 0 then begin
          let head = min (String.length tv) (m - 1) in
          let s = !carry ^ String.sub tv 0 head in
          let rec at i j = j = m || (s.[i + j] = pattern.[j] && at i (j + 1)) in
          for p = 0 to min (clen - 1) (String.length s - m) do
            if p + m > clen && at p 0 then
              mark_common_ancestors !owners.(p) tn
          done
        end;
        (* slide: the new carry is the last m-1 chars of carry ^ tv *)
        let tvlen = String.length tv in
        if tvlen >= m - 1 then begin
          carry := String.sub tv (tvlen - (m - 1)) (m - 1);
          owners := Array.make (m - 1) tn
        end
        else begin
          let keep = min (m - 1) (clen + tvlen) in
          let from_carry = keep - tvlen in
          let b = Buffer.create keep in
          Buffer.add_string b (String.sub !carry (clen - from_carry) from_carry);
          Buffer.add_string b tv;
          let new_owners = Array.make keep tn in
          Array.blit !owners (clen - from_carry) new_owners 0 from_carry;
          carry := Buffer.contents b;
          owners := new_owners
        end)
      (Store.text_nodes store)
  end;
  List.sort Int.compare (Hashtbl.fold (fun n () acc -> n :: acc) result [])
  end

let pattern_grams pattern =
  let m = String.length pattern in
  if m < q then []
  else List.sort_uniq Int.compare (List.init (m - q + 1) (fun i -> pack pattern i))

let gram_count t g =
  BT.count_range ~lo:(pack_key g 0) ~hi:(pack_key g node_mask) t.postings

let estimate t pattern =
  match pattern_grams pattern with
  | [] ->
      (* short patterns scan every indexed node; the entry count is the
         only cheap upper bound the gram tree offers *)
      t.entries
  | grams -> List.fold_left (fun acc g -> min acc (gram_count t g)) max_int grams

let element_estimate t pattern =
  (* each text-node seed lifts to its ancestor chain; scale the seed
     estimate by a nominal depth rather than walking anything *)
  let nominal_depth = 4 in
  estimate t pattern * nominal_depth

let lazy_list_cursor force =
  let state = ref None in
  let rec pull () =
    match !state with
    | Some [] -> None
    | Some (n :: tl) ->
        state := Some tl;
        Some n
    | None ->
        state := Some (force ());
        pull ()
  in
  pull

let cursor t store pattern =
  lazy_list_cursor (fun () -> contains t store pattern)

let element_cursor t store pattern =
  lazy_list_cursor (fun () -> element_contains t store pattern)

let update_texts t store updates =
  List.iter
    (fun (n, old_value) ->
      remove_node_value t n old_value;
      if indexable store n then add_node t store n)
    updates

let on_delete t ~removed =
  List.iter (fun (n, old_value) -> remove_node_value t n old_value) removed

let on_insert t store ~roots =
  List.iter
    (fun root ->
      Store.iter_pre ~root store (fun n ->
          if indexable store n then add_node t store n))
    roots

let entry_count t = t.entries

let storage_bytes t = BT.memory_bytes ~value_bytes:0 t.postings

let validate t store =
  let expected = Hashtbl.create 1024 in
  Store.iter_pre store (fun n ->
      if indexable store n then
        List.iter
          (fun g -> Hashtbl.replace expected (pack_key g n) ())
          (distinct_grams (Store.text store n)));
  let problems = ref [] in
  let count = ref 0 in
  BT.iter
    (fun key () ->
      incr count;
      if not (Hashtbl.mem expected key) then
        problems :=
          Printf.sprintf "stale posting (%d, %d)" (key lsr 30)
            (key land node_mask)
          :: !problems)
    t.postings;
  if !count <> Hashtbl.length expected then
    problems :=
      Printf.sprintf "posting count %d <> expected %d" !count
        (Hashtbl.length expected)
      :: !problems;
  if !count <> t.entries then
    problems :=
      Printf.sprintf "entry counter %d <> tree %d" t.entries !count :: !problems;
  (match BT.check_invariants t.postings with
  | Ok () -> ()
  | Error e -> problems := ("btree: " ^ e) :: !problems);
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

type t = {
  dfa : Dfa.t;
  domain : int array; (* reachable DFA states *)
  didx_start : int; (* index of the DFA start state in [domain] *)
  co : bool array; (* co-accessibility per domain index *)
  gens : int array array; (* class -> domain idx -> domain idx *)
  size : int; (* elements incl. reject *)
  identity : int;
  by_key : (bytes, int) Hashtbl.t; (* function encoding -> element id *)
  funcs : int array array; (* element id (>=1) -> function; funcs.(0) unused *)
  compose_tbl : int array; (* size * size, flattened *)
  accepting : bool array;
  dfa_state : int array;
  witness : string array;
}

let reject_id = 0

let encode fn =
  let b = Bytes.create (Array.length fn) in
  Array.iteri (fun i v -> Bytes.set b i (Char.chr v)) fn;
  b

let of_dfa ?(max_elements = 4096) dfa =
  let n = Dfa.n_states dfa in
  let reach = Dfa.reachable dfa in
  let co_states = Dfa.co_accessible dfa in
  let domain =
    Array.of_list
      (List.filter (fun s -> reach.(s)) (List.init n (fun i -> i)))
  in
  let dn = Array.length domain in
  if dn > 255 then failwith "Sct.of_dfa: more than 255 reachable DFA states";
  let didx = Array.make n (-1) in
  Array.iteri (fun i s -> didx.(s) <- i) domain;
  let didx_start = didx.(Dfa.start dfa) in
  let co = Array.map (fun s -> co_states.(s)) domain in
  let n_classes = Dfa.n_classes dfa in
  let gens =
    Array.init n_classes (fun cls ->
        Array.map
          (fun s ->
            let repr = Dfa.class_repr dfa cls in
            match repr with
            | Some c -> didx.(Dfa.step dfa s c)
            | None -> didx.(Dfa.sink dfa))
          domain)
  in
  let viable fn = Array.exists (fun v -> co.(v)) fn in
  let by_key = Hashtbl.create 256 in
  let funcs = ref [] (* reversed; ids from 1 *) in
  let witnesses = ref [ "<reject>" ] (* id 0 *) in
  let count = ref 1 (* reject *) in
  let queue = Queue.create () in
  let idfn = Array.init dn (fun i -> i) in
  if not (viable idfn) then
    failwith (Printf.sprintf "Sct.of_dfa: %s accepts nothing" (Dfa.name dfa));
  let add fn wit =
    let key = encode fn in
    match Hashtbl.find_opt by_key key with
    | Some id -> id
    | None ->
        if not (viable fn) then begin
          Hashtbl.add by_key key reject_id;
          reject_id
        end
        else begin
          let id = !count in
          incr count;
          if !count > max_elements then
            failwith
              (Printf.sprintf
                 "Sct.of_dfa: transition monoid of %s exceeds %d elements"
                 (Dfa.name dfa) max_elements);
          Hashtbl.add by_key key id;
          funcs := fn :: !funcs;
          witnesses := wit :: !witnesses;
          Queue.push (id, fn, wit) queue;
          id
        end
  in
  let identity = add idfn "" in
  while not (Queue.is_empty queue) do
    let _, fn, wit = Queue.pop queue in
    for cls = 0 to n_classes - 1 do
      match Dfa.class_repr dfa cls with
      | None -> ()
      | Some c ->
          let fn' = Array.map (fun v -> gens.(cls).(v)) fn in
          ignore (add fn' (wit ^ String.make 1 c) : int)
    done
  done;
  let size = !count in
  let funcs_arr = Array.make size [||] in
  List.iteri (fun i fn -> funcs_arr.(size - 1 - i) <- fn) !funcs;
  (* !funcs is reversed: element 1 is last in the list *)
  let witness = Array.make size "" in
  List.iteri (fun i w -> witness.(size - 1 - i) <- w) !witnesses;
  let lookup fn =
    if not (viable fn) then reject_id
    else
      match Hashtbl.find_opt by_key (encode fn) with
      | Some id -> id
      | None -> assert false (* closure is complete *)
  in
  let compose_tbl = Array.make (size * size) reject_id in
  for i = 1 to size - 1 do
    for j = 1 to size - 1 do
      let fi = funcs_arr.(i) and fj = funcs_arr.(j) in
      (* (f_i ; f_j)(p) = f_j (f_i p) *)
      let fn = Array.map (fun v -> fj.(v)) fi in
      compose_tbl.((i * size) + j) <- lookup fn
    done
  done;
  let accepting = Array.make size false in
  let dfa_state = Array.make size (Dfa.sink dfa) in
  for i = 1 to size - 1 do
    let s = domain.(funcs_arr.(i).(didx_start)) in
    dfa_state.(i) <- s;
    accepting.(i) <- Dfa.is_final dfa s
  done;
  {
    dfa;
    domain;
    didx_start;
    co;
    gens;
    size;
    identity;
    by_key;
    funcs = funcs_arr;
    compose_tbl;
    accepting;
    dfa_state;
    witness;
  }

let dfa t = t.dfa
let size t = t.size
let identity t = t.identity
let reject _ = reject_id

let of_string t s =
  let dn = Array.length t.domain in
  let cur = Array.init dn (fun i -> i) in
  let len = String.length s in
  let i = ref 0 in
  let alive = ref true in
  while !alive && !i < len do
    let cls = Dfa.class_of_char t.dfa s.[!i] in
    let gen = t.gens.(cls) in
    let any = ref false in
    for j = 0 to dn - 1 do
      let v = gen.(cur.(j)) in
      cur.(j) <- v;
      if t.co.(v) then any := true
    done;
    if not !any then alive := false;
    incr i
  done;
  if not !alive then reject_id
  else
    match Hashtbl.find_opt t.by_key (encode cur) with
    | Some id -> id
    | None -> assert false

let compose t i j = t.compose_tbl.((i * t.size) + j)
let is_viable _ id = id <> reject_id
let is_accepting t id = t.accepting.(id)
let dfa_state t id = t.dfa_state.(id)
let witness t id = t.witness.(id)
let state_bytes t = if t.size <= 256 then 1 else 2
let table_bytes t = 8 * t.size * t.size

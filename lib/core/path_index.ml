module Store = Xvi_xml.Store
module BT = Xvi_btree.Btree.Make (Xvi_btree.Btree.Float_pair_key)

type node = Store.node

type axis = Child | Descendant

type step = { axis : axis; name : string; attribute : bool }

type t = {
  pattern : string;
  steps : step list; (* outermost first *)
  spec : Lexical_types.spec;
  values : unit BT.t;
  by_node : (node, float) Hashtbl.t;
}

(* --- pattern parsing: ("//" | "/") name, repeated; last may be @name --- *)

let parse_pattern src =
  let n = String.length src in
  let rec steps pos acc =
    if pos >= n then Ok (List.rev acc)
    else begin
      let axis, pos =
        if pos + 1 < n && src.[pos] = '/' && src.[pos + 1] = '/' then
          (Descendant, pos + 2)
        else if src.[pos] = '/' then (Child, pos + 1)
        else (Descendant, pos) (* a bare leading name acts like "//" *)
      in
      if pos >= n then Error "pattern ends with a separator"
      else begin
        let attribute = src.[pos] = '@' in
        let pos = if attribute then pos + 1 else pos in
        let start = pos in
        let pos = ref pos in
        while
          !pos < n
          &&
          match src.[!pos] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
          | _ -> false
        do
          incr pos
        done;
        if !pos = start then
          Error (Printf.sprintf "expected a name at offset %d" start)
        else begin
          let name = String.sub src start (!pos - start) in
          let step = { axis; name; attribute } in
          if attribute && !pos <> n then
            Error "an attribute step must be last"
          else steps !pos (step :: acc)
        end
      end
    end
  in
  match steps 0 [] with
  | Ok [] -> Error "empty pattern"
  | other -> other

(* does [n]'s ancestor path match [steps] (reversed: innermost first)? *)
let rec match_rev store n rev_steps =
  match rev_steps with
  | [] -> n = Store.document
  | step :: rest -> (
      let name_ok =
        if step.attribute then
          Store.kind store n = Store.Attribute
          && String.equal (Store.name store n) step.name
        else
          Store.kind store n = Store.Element
          && String.equal (Store.name store n) step.name
      in
      name_ok
      &&
      match step.axis with
      | Child -> (
          match Store.parent store n with
          | Some p -> match_rev store p rest
          | None -> false)
      | Descendant ->
          let rec anc p =
            match_rev store p rest
            || match Store.parent store p with Some pp -> anc pp | None -> false
          in
          (match Store.parent store n with Some p -> anc p | None -> false))

let matches_path t store n = match_rev store n (List.rev t.steps)

let extract t store n =
  let sv = Store.string_value store n in
  let sct = t.spec.Lexical_types.sct in
  if Sct.is_accepting sct (Sct.of_string sct sv) then
    t.spec.Lexical_types.parse sv
  else None

let set_value t n = function
  | Some v ->
      (match Hashtbl.find_opt t.by_node n with
      | Some old -> ignore (BT.remove t.values (old, n) : bool)
      | None -> ());
      Hashtbl.replace t.by_node n v;
      BT.insert t.values (v, n) ()
  | None -> (
      match Hashtbl.find_opt t.by_node n with
      | Some old ->
          Hashtbl.remove t.by_node n;
          ignore (BT.remove t.values (old, n) : bool)
      | None -> ())

let create ~pattern spec store =
  match parse_pattern pattern with
  | Error _ as e -> e
  | Ok steps ->
      let t =
        {
          pattern;
          steps;
          spec;
          values = BT.create ();
          by_node = Hashtbl.create 256;
        }
      in
      Store.iter_pre store (fun n ->
          match Store.kind store n with
          | Store.Element | Store.Attribute ->
              if matches_path t store n then set_value t n (extract t store n)
          | _ -> ());
      Ok t

let create_exn ~pattern spec store =
  match create ~pattern spec store with
  | Ok t -> t
  | Error e -> invalid_arg ("Path_index.create: " ^ e)

let pattern t = t.pattern
let type_name t = t.spec.Lexical_types.type_name

let range ?lo ?hi t =
  let lo = Option.map (fun v -> (v, min_int)) lo in
  let hi = Option.map (fun v -> (v, max_int)) hi in
  let acc = ref [] in
  BT.iter_range ?lo ?hi (fun (_, n) () -> acc := n :: !acc) t.values;
  List.rev !acc

let entry_count t = BT.length t.values

let update_texts t store nodes =
  (* affected pattern nodes: the updated attributes themselves plus all
     ancestors of updated text nodes — re-read their string values
     (there is no combination algebra to lean on in this model) *)
  let dirty = Hashtbl.create 16 in
  let rec up n =
    if not (Hashtbl.mem dirty n) then begin
      Hashtbl.replace dirty n ();
      match Store.parent store n with Some p -> up p | None -> ()
    end
  in
  List.iter
    (fun n ->
      match Store.kind store n with
      | Store.Attribute -> Hashtbl.replace dirty n ()
      | _ -> up n)
    nodes;
  Hashtbl.iter
    (fun n () ->
      match Store.kind store n with
      | Store.Element | Store.Attribute ->
          if matches_path t store n then set_value t n (extract t store n)
      | _ -> ())
    dirty

let on_delete t store ~removed =
  List.iter (fun n -> set_value t n None) removed;
  (* ancestors of the removal site were passed by the caller as part of
     [removed]'s former parent chain? No: recompute any indexed node
     that lost descendants by re-reading the surviving ancestors. *)
  match removed with
  | [] -> ()
  | first :: _ ->
      let rec up n =
        (match Store.kind store n with
        | Store.Element ->
            if matches_path t store n then set_value t n (extract t store n)
        | _ -> ());
        match Store.parent store n with Some p -> up p | None -> ()
      in
      (* the first removed node is the subtree root; its (surviving)
         parent chain is what needs refreshing *)
      (match Store.parent store first with Some p -> up p | None -> ())

let on_insert t store ~roots =
  List.iter
    (fun root ->
      Store.iter_pre ~root store (fun n ->
          match Store.kind store n with
          | Store.Element | Store.Attribute ->
              if matches_path t store n then set_value t n (extract t store n)
          | _ -> ());
      match Store.parent store root with
      | Some p ->
          let rec up n =
            (match Store.kind store n with
            | Store.Element | Store.Document ->
                if
                  Store.kind store n = Store.Element && matches_path t store n
                then set_value t n (extract t store n)
            | _ -> ());
            match Store.parent store n with Some q -> up q | None -> ()
          in
          up p
      | None -> ())
    roots

let storage_bytes t = BT.memory_bytes ~value_bytes:0 t.values

let validate t store =
  let expected = Hashtbl.create 256 in
  Store.iter_pre store (fun n ->
      match Store.kind store n with
      | Store.Element | Store.Attribute ->
          if matches_path t store n then (
            match extract t store n with
            | Some v -> Hashtbl.replace expected n v
            | None -> ())
      | _ -> ());
  let problems = ref [] in
  if Hashtbl.length expected <> Hashtbl.length t.by_node then
    problems :=
      Printf.sprintf "entry count %d <> expected %d" (Hashtbl.length t.by_node)
        (Hashtbl.length expected)
      :: !problems;
  Hashtbl.iter
    (fun n v ->
      match Hashtbl.find_opt t.by_node n with
      | Some v' when v' = v -> ()
      | Some v' ->
          problems := Printf.sprintf "node %d: %g <> %g" n v' v :: !problems
      | None -> problems := Printf.sprintf "node %d missing" n :: !problems)
    expected;
  (match BT.check_invariants t.values with
  | Ok () -> ()
  | Error e -> problems := ("btree: " ^ e) :: !problems);
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

(** An indexed XML database: one document store plus the paper's full
    family of value indices, kept consistent through updates.

    This is the user-facing API of the library — shred a document, get
    self-tuned whole-document value indices (no path or type
    configuration, per the paper's introduction), run equality and
    range lookups, and apply updates with low maintenance cost.

    Construction is driven by a {!Config.t} record (which types, the
    opt-in substring index, and how many domains build in parallel);
    range lookups take a first-class {!Range.t} bound pair. The former
    optional-argument API survives as deprecated wrappers in
    {!Legacy}. *)

type t

type node = Xvi_xml.Store.node

(** Construction configuration. Build one with a record update of
    {!Config.default}:
    [{ Db.Config.default with jobs = 4; substring = true }]. *)
module Config : sig
  type t = {
    types : Lexical_types.spec list;
        (** typed indices to build; default
            [Lexical_types.[double (); datetime ()]] — the two types the
            paper singles out *)
    substring : bool;
        (** build the substring q-gram index (the paper's future-work
            extension); default [false] *)
    jobs : int;
        (** domains used for index construction; [<= 1] builds serially
            on the calling domain, [j > 1] spawns [j - 1] worker domains
            for the build and joins them before returning. The result is
            bit-identical either way. Default [1]. *)
  }

  val default : t
end

(** Inclusive range bounds for typed lookups.

    Both bounds are inclusive; an empty interval ([lo > hi]) matches
    nothing. A NaN bound also matches nothing: no value compares with
    NaN, so no value lies inclusively within such a range. [-0.0] and
    [0.0] are the same bound (and the same indexed key), per IEEE
    equality. *)
module Range : sig
  type t

  val between : float -> float -> t
  (** [between lo hi] — both bounds inclusive. *)

  val at_least : float -> t

  val at_most : float -> t

  val any : t
  (** Unbounded: every complete value, in value order. *)

  val lo : t -> float option
  val hi : t -> float option
end

val of_store : ?config:Config.t -> Xvi_xml.Store.t -> t
(** Index an existing store. The string index is always built; typed
    and substring indices follow [config] (default {!Config.default}).
    With [config.jobs > 1] the construction runs on a domain pool; see
    {!Indexer.create_multi} for why the parallel build is bit-identical
    to the serial one. *)

val of_xml : ?config:Config.t -> string -> (t, Xvi_xml.Parser.error) result
(** Shred an XML document and index it. *)

val of_xml_exn : ?config:Config.t -> string -> t

val store : t -> Xvi_xml.Store.t

val config : t -> Config.t
(** The configuration the database was built with; {!compact} reuses
    it. *)

val string_index : t -> String_index.t

val typed_index : t -> string -> Typed_index.t option
(** By type name, e.g. ["xs:double"]. *)

val typed_indices : t -> Typed_index.t list
val substring_index : t -> Substring_index.t option

val name_index : t -> Name_index.t
(** The structural element-name index; always built. *)

val plane : t -> Xvi_xml.Pre_plane.t
(** The pre/size/level snapshot of the current structure (MonetDB's
    range encoding). Built lazily, cached, and invalidated by
    structural updates; value updates keep it valid. *)

val elements_named : t -> string -> node list
(** Live elements with this tag, via {!Name_index}. *)

(** {1 Lookups} *)

val lookup_string : t -> string -> node list
(** All nodes (element, attribute or text) whose XDM string value equals
    the argument — e.g. the paper's
    [//*\[fn:data(name) = "ArthurDent"\]] support. *)

val lookup_double : t -> Range.t -> node list
(** Range lookup on the [xs:double] index, e.g.
    [lookup_double db (Range.between 10. 20.)].
    @raise Invalid_argument if the double index was not configured. *)

val lookup_typed : t -> string -> Range.t -> node list
(** Range lookup on a typed index by type name. *)

val lookup_contains : t -> string -> node list
(** Text/attribute nodes whose value contains the pattern.
    @raise Invalid_argument if the substring index was not built. *)

val lookup_element_contains : t -> string -> node list
(** Elements/document nodes whose XDM string value contains the
    pattern (boundary-spanning matches included).
    @raise Invalid_argument if the substring index was not built. *)

(** {2 Scoped lookups}

    Value-index hits intersected with a subtree through a staircase
    join on the pre/size/level plane — no tree walking, no scan. *)

val lookup_string_within : t -> scope:node -> string -> node list
(** Nodes in the subtree rooted at [scope] (inclusive) whose string
    value equals the argument, in document order. *)

val lookup_double_within : t -> scope:node -> Range.t -> node list

(** {1 Updates}

    Each operation mutates the store {e and} maintains every index. *)

val update_text : t -> node -> string -> unit
val update_texts : t -> (node * string) list -> unit

val delete_subtree : t -> node -> unit

val insert_xml :
  t -> parent:node -> string -> (node list, Xvi_xml.Parser.error) result
(** Parse an XML fragment and insert it as the last children of
    [parent]. *)

val compact : t -> t * (node -> node option)
(** Vacuum tombstones: a fresh database over a compacted store (dense
    ids in document order), all indices rebuilt with the original
    {!config}, plus the old-to-new id mapping. The original database is
    unchanged. *)

(** {1 Accounting and validation} *)

val index_storage_bytes : t -> int
(** All indices together. *)

val validate : t -> (unit, string) result
(** Every index equals a from-scratch rebuild. *)

(** {1 Deprecated}

    The pre-{!Config}/{!Range} optional-argument API, kept so existing
    callers keep compiling. Each wrapper forwards to the primary
    entry points above. *)

module Legacy : sig
  val of_store :
    ?types:Lexical_types.spec list -> ?substring:bool -> Xvi_xml.Store.t -> t
  [@@ocaml.deprecated "use Db.of_store ?config"]

  val of_xml :
    ?types:Lexical_types.spec list ->
    ?substring:bool ->
    string ->
    (t, Xvi_xml.Parser.error) result
  [@@ocaml.deprecated "use Db.of_xml ?config"]

  val of_xml_exn :
    ?types:Lexical_types.spec list -> ?substring:bool -> string -> t
  [@@ocaml.deprecated "use Db.of_xml_exn ?config"]

  val lookup_double : ?lo:float -> ?hi:float -> t -> node list
  [@@ocaml.deprecated "use Db.lookup_double with Db.Range"]

  val lookup_typed : ?lo:float -> ?hi:float -> t -> string -> node list
  [@@ocaml.deprecated "use Db.lookup_typed with Db.Range"]

  val lookup_double_within :
    ?lo:float -> ?hi:float -> t -> scope:node -> unit -> node list
  [@@ocaml.deprecated "use Db.lookup_double_within with Db.Range"]
end

(** An indexed XML database: one document store plus the paper's full
    family of value indices, kept consistent through updates.

    This is the user-facing API of the library — shred a document, get
    self-tuned whole-document value indices (no path or type
    configuration, per the paper's introduction), run equality and
    range lookups, and apply updates with low maintenance cost.

    Construction is driven by a {!Config.t} record (which types, the
    opt-in substring index, and how many domains build in parallel);
    range lookups take a first-class {!Range.t} bound pair.

    Every lookup below — and any composition of them — routes through
    the query layer: the predicate is compiled to an {!Xvi_query.Ir}
    term, planned against the available indices by estimated
    cardinality, and executed as streaming cursor merges. {!query},
    {!query_seq} and {!explain} expose that pipeline directly. *)

type t

type node = Xvi_xml.Store.node

(** Construction configuration. Build one with a record update of
    {!Config.default}:
    [{ Db.Config.default with jobs = 4; substring = true }]. *)
module Config : sig
  type t = {
    types : Lexical_types.spec list;
        (** typed indices to build; default
            [Lexical_types.[double (); datetime ()]] — the two types the
            paper singles out *)
    substring : bool;
        (** build the substring q-gram index (the paper's future-work
            extension); default [false] *)
    jobs : int;
        (** domains used for index construction; [<= 1] builds serially
            on the calling domain, [j > 1] spawns [j - 1] worker domains
            for the build and joins them before returning. The result is
            bit-identical either way. Default [1]. *)
  }

  val default : t
end

module Range = Xvi_query.Range
(** Inclusive range bounds for typed lookups (see {!Xvi_query.Range}).
    Re-exported with a visible equality so ranges flow between the
    lookup API and hand-built {!Xvi_query.Ir} terms. *)

module Ir = Xvi_query.Ir
(** The predicate IR accepted by {!query} / {!explain}. *)

val of_store : ?config:Config.t -> Xvi_xml.Store.t -> t
(** Index an existing store. The string index is always built; typed
    and substring indices follow [config] (default {!Config.default}).
    With [config.jobs > 1] the construction runs on a domain pool; see
    {!Indexer.create_multi} for why the parallel build is bit-identical
    to the serial one. *)

val assemble :
  config:Config.t ->
  store:Xvi_xml.Store.t ->
  strings:String_index.t ->
  typed:Typed_index.t list ->
  t
(** Assemble a database from components a streaming builder produced
    ([Xvi_ingest]): [typed] must be in [config.types] order. The
    store-derived parts ([Name_index], the optional substring index)
    are built here. When the components are marshal-identical to what
    the serial [of_store] pass builds, so is the database. *)

val of_xml : ?config:Config.t -> string -> (t, Xvi_xml.Parser.error) result
(** Shred an XML document and index it. *)

val of_xml_exn : ?config:Config.t -> string -> t
  [@@deprecated
    "raises through the public boundary; use Db.of_xml (or Xvi_serve.Engine) \
     and handle the Error case"]

val copy : t -> t
(** A logically independent replica: the off-heap store is snapshotted
    copy-on-write (O(chunks), sharing column chunks until either side
    writes), and the indexes round-trip through a marshal of the heap
    shell. One side can be mutated while the other is read from another
    domain; this is how {!Xvi_serve.Engine} publishes immutable epochs
    without deep-copying whole columns per commit. *)

type shell
(** The GC-heap half of a database: configuration plus every index —
    everything except the off-heap columnar store. Marshals with
    closures; {!Snapshot} persists it alongside the store's raw columnar
    blob. *)

val deconstruct : t -> Xvi_xml.Store.t * shell
val reconstruct : Xvi_xml.Store.t -> shell -> t

val store : t -> Xvi_xml.Store.t

val config : t -> Config.t
(** The configuration the database was built with; {!compact} reuses
    it. *)

val string_index : t -> String_index.t

val typed_index : t -> string -> Typed_index.t option
(** By type name, e.g. ["xs:double"]. *)

val typed_indices : t -> Typed_index.t list
val substring_index : t -> Substring_index.t option

val name_index : t -> Name_index.t
(** The structural element-name index; always built. *)

val plane : t -> Xvi_xml.Pre_plane.t
(** The pre/size/level snapshot of the current structure (MonetDB's
    range encoding). Built lazily, cached, and invalidated by
    structural updates; value updates keep it valid. *)

val elements_named : t -> string -> node list
(** Live elements with this tag, via {!Name_index}. *)

(** {1 Queries}

    The compositional entry points: hand the planner any {!Ir} term.
    Conjunctions are reordered cheapest-estimate-first and intersected
    by streaming leapfrog merges, disjunctions are k-way ordered merge
    unions, [Within] runs as a staircase-join filter on the cheapest
    cursor, and predicates no index serves fall back to a verified
    scan. *)

val query : t -> Ir.t -> node list
(** All matching nodes, in document order. *)

val query_seq : t -> Ir.t -> node Seq.t
(** Lazy execution in ascending {e node-id} order (the cursors' merge
    order, which is document order until structural inserts diverge the
    two); each [Seq] step pulls the underlying cursors once. *)

val query_ids : t -> Ir.t -> node list
(** Plan-output order without the final document-order sort: the
    index's native order for single-index plans (e.g. value order for a
    typed range), ascending node-id order otherwise. The cheapest way
    to consume hits whose order does not matter. *)

val estimate : t -> Ir.t -> int
(** The planner's cardinality estimate (an upper bound from index
    statistics; {e not} an execution). *)

val explain : t -> Ir.t -> string
(** The plan as an indented tree: per-node access paths with their
    estimates, intersections in execution (cheapest-first) order,
    staircase filters, residual verification, scan fallbacks. *)

(** {1 Lookups}

    The pre-IR lookup family; each is a one-line IR compile + plan and
    returns exactly what it always has. *)

val lookup_string : t -> string -> node list
(** All nodes (element, attribute or text) whose XDM string value equals
    the argument — e.g. the paper's
    [//*\[fn:data(name) = "ArthurDent"\]] support. *)

val lookup_double : t -> Range.t -> node list
(** Range lookup on the [xs:double] index, e.g.
    [lookup_double db (Range.between 10. 20.)]. Total even without the
    double index — see {!lookup_typed}. *)

val lookup_typed : t -> string -> Range.t -> node list
(** Range lookup on a typed index by type name, in (value, node) order.
    Without the index configured this still answers — the planner falls
    back to a verified document scan (DFA acceptance + parse per node),
    which is O(document), orders of magnitude above the indexed path;
    configure the index for anything hot.
    @raise Invalid_argument on a type name unknown to
    {!Lexical_types.all}. *)

val lookup_contains : t -> string -> node list
(** Text/attribute nodes whose value contains the pattern. Served by
    the substring index when built; otherwise the planner's verified
    scan answers — correct but O(document), the same cost cliff as
    {!lookup_typed}. *)

val lookup_element_contains : t -> string -> node list
(** Elements/document nodes whose XDM string value contains the
    pattern (boundary-spanning matches included). Same scan-fallback
    cost cliff as {!lookup_contains} when the substring index is not
    built. *)

(** {2 Scoped lookups}

    Value-index hits restricted to a subtree through a staircase-join
    filter on the pre/size/level plane — no tree walking, no list
    intersection. A scope that is tombstoned (or otherwise unknown to
    the current plane snapshot) covers nothing: the result is []. *)

val lookup_string_within : t -> scope:node -> string -> node list
(** Nodes in the subtree rooted at [scope] (inclusive) whose string
    value equals the argument, in document order. *)

val lookup_double_within : t -> scope:node -> Range.t -> node list

(** {2 Result-typed reads}

    The lookup family above is total except for one escape hatch: an
    unknown type name raises [Invalid_argument] out of {!lookup_typed} /
    {!query}. Boundaries that must never raise — {!Xvi_serve.Engine},
    the wire protocol — use these variants, which return the same
    answers with that failure as a value. *)

type read_error = [ `Unknown_type of string ]

val read_error_to_string : read_error -> string

val query_r : t -> Ir.t -> (node list, read_error) result
(** {!query} with unknown type names surfaced as [Error] instead of an
    exception. *)

val lookup_typed_r : t -> string -> Range.t -> (node list, read_error) result
(** {!lookup_typed}, total. *)

(** {1 Updates}

    Each operation mutates the store {e and} maintains every index. *)

val update_text : t -> node -> string -> unit
val update_texts : t -> (node * string) list -> unit

val delete_subtree : t -> node -> unit

val insert_xml :
  t -> parent:node -> string -> (node list, Xvi_xml.Parser.error) result
(** Parse an XML fragment and insert it as the last children of
    [parent]. *)

val compact : t -> t * (node -> node option)
(** Vacuum tombstones: a fresh database over a compacted store (dense
    ids in document order), all indices rebuilt with the original
    {!config}, plus the old-to-new id mapping. The original database is
    unchanged. *)

(** {1 Accounting and validation} *)

val index_storage_bytes : t -> int
(** All indices together. *)

val validate : t -> (unit, string) result
(** Every index equals a from-scratch rebuild. *)

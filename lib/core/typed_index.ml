module Store = Xvi_xml.Store
module BT = Xvi_btree.Btree.Bytes
module Enc = Xvi_btree.Encoding

(* Keys are order-preserving byte strings: [float_key value ^ int_key
   node], so the (value, node) order the index needs is plain byte
   order and range scans are flat memcmp over the leaves. *)

type node = Store.node
type reconstruct = [ `Document | `Fragment ]

type t = {
  spec : Lexical_types.spec;
  ops : int Indexer.ops;
  fields : int Indexer.fields;
  values : unit BT.t;
  by_node : (node, float) Hashtbl.t; (* complete nodes -> typed key *)
  frags : (node, string) Hashtbl.t; (* viable nodes -> lexical, `Fragment only *)
  reconstruct : reconstruct;
  mutable viable_count : int;
}

let indexable store n =
  match Store.kind store n with
  | Store.Element | Store.Text | Store.Attribute | Store.Document -> true
  | Store.Comment | Store.Pi | Store.Deleted -> false

let spec t = t.spec
let type_name t = t.spec.Lexical_types.type_name
let sct t = t.spec.Lexical_types.sct
let state_of t n = Indexer.get t.fields n
let is_viable t n = Sct.is_viable (sct t) (state_of t n)
let is_complete t n = Hashtbl.mem t.by_node n
let value_of t n = Hashtbl.find_opt t.by_node n

(* The lexical value of a viable node, for typed-key extraction. *)
let lexical_of t store n =
  match t.reconstruct with
  | `Document -> Store.string_value store n
  | `Fragment -> ( match Hashtbl.find_opt t.frags n with Some f -> f | None -> "")

(* An accepting state guarantees the lexical *shape*, not semantic
   validity — "0000-13-45T99:99:99" is shaped like a dateTime but is no
   value of the type. Such nodes keep their (viable) state but get no
   entry in the value B+tree. *)

let add_complete t n value =
  Hashtbl.replace t.by_node n value;
  BT.insert t.values (Enc.float_int_key value n) ()

let remove_complete t n =
  match Hashtbl.find_opt t.by_node n with
  | None -> ()
  | Some v ->
      Hashtbl.remove t.by_node n;
      ignore (BT.remove t.values (Enc.float_int_key v n) : bool)

(* Maintain the fragment table for a node whose state just changed.
   Children of a viable element are viable themselves, so their
   fragments are present — provided changes are applied deepest first. *)
let refresh_frag t store n new_state =
  if t.reconstruct = `Fragment then
    if not (Sct.is_viable (sct t) new_state) then Hashtbl.remove t.frags n
    else
      match Store.kind store n with
      | Store.Text | Store.Attribute ->
          Hashtbl.replace t.frags n (Store.text store n)
      | Store.Element | Store.Document ->
          let buf = Buffer.create 16 in
          List.iter
            (fun c ->
              match Hashtbl.find_opt t.frags c with
              | Some f -> Buffer.add_string buf f
              | None -> ())
            (Store.children store n);
          Hashtbl.replace t.frags n (Buffer.contents buf)
      | Store.Comment | Store.Pi | Store.Deleted -> ()

let register t store n state =
  if Sct.is_viable (sct t) state then begin
    t.viable_count <- t.viable_count + 1;
    if t.reconstruct = `Fragment then
      Hashtbl.replace t.frags n (Store.string_value store n);
    if Sct.is_accepting (sct t) state then
      match t.spec.Lexical_types.parse (Store.string_value store n) with
      | Some v -> add_complete t n v
      | None -> ()
  end

let of_fields ?(reconstruct = `Document) ?pool spec store fields =
  let ops = Indexer.sct_ops spec.Lexical_types.sct in
  let sct_ = spec.Lexical_types.sct in
  let t =
    {
      spec;
      ops;
      fields;
      values = BT.create ();
      by_node = Hashtbl.create 1024;
      frags = Hashtbl.create 64;
      reconstruct;
      viable_count = 0;
    }
  in
  let pairs = ref [] in
  (match pool with
  | Some pool
    when Xvi_util.Pool.parallelism pool > 1 && reconstruct = `Document ->
      (* Per-domain collection over node-id slices: each domain counts
         its viable nodes and parses its complete values (the expensive
         part — lexical re-reads and float parsing). The [by_node] table
         fill, the sort and the bulk load stay single-threaded.
         [`Fragment] mode stays serial: it populates the shared [frags]
         hashtable during collection. *)
      let slices =
        Xvi_util.Pool.slices (Store.node_range store)
          (Xvi_util.Pool.parallelism pool)
      in
      let parts =
        Xvi_util.Pool.map pool
          (fun k ->
            let lo, hi = slices.(k) in
            let viable = ref 0 and local = ref [] in
            for n = lo to hi - 1 do
              if indexable store n then begin
                let state = Indexer.get fields n in
                if Sct.is_viable sct_ state then begin
                  incr viable;
                  if Sct.is_accepting sct_ state then
                    match
                      t.spec.Lexical_types.parse (Store.string_value store n)
                    with
                    | Some v -> local := (v, n) :: !local
                    | None -> ()
                end
              end
            done;
            (!viable, !local))
          (Array.length slices)
      in
      Array.iter
        (fun (viable, local) ->
          t.viable_count <- t.viable_count + viable;
          List.iter
            (fun (v, n) ->
              Hashtbl.replace t.by_node n v;
              pairs := (Enc.float_int_key v n, ()) :: !pairs)
            local)
        parts
  | _ ->
      (* One collection pass; the value B+tree is bulk-loaded. *)
      Store.iter_pre store (fun n ->
          if indexable store n then begin
            let state = Indexer.get fields n in
            if Sct.is_viable sct_ state then begin
              t.viable_count <- t.viable_count + 1;
              if t.reconstruct = `Fragment then
                Hashtbl.replace t.frags n (Store.string_value store n);
              if Sct.is_accepting sct_ state then
                match
                  t.spec.Lexical_types.parse (Store.string_value store n)
                with
                | Some v ->
                    Hashtbl.replace t.by_node n v;
                    pairs := (Enc.float_int_key v n, ()) :: !pairs
                | None -> ()
            end
          end));
  let arr = Array.of_list !pairs in
  Array.sort (fun (k1, ()) (k2, ()) -> String.compare k1 k2) arr;
  { t with values = BT.of_sorted_array arr }

(* Streaming-ingest assembly: the builder already ran the state machine
   and parsed the complete values while shredding; this reproduces the
   exact structure the serial [of_fields] pass builds — same [by_node]
   insertion sequence (ascending node id, like [iter_pre]), same sorted
   pair array, same bulk load — so the result is marshal-identical. *)
let of_streamed spec fields ~viable_count ~complete =
  let ops = Indexer.sct_ops spec.Lexical_types.sct in
  let t =
    {
      spec;
      ops;
      fields;
      values = BT.create ();
      by_node = Hashtbl.create 1024;
      frags = Hashtbl.create 64;
      reconstruct = `Document;
      viable_count;
    }
  in
  Array.iter (fun (n, v) -> Hashtbl.replace t.by_node n v) complete;
  let pairs = Array.map (fun (n, v) -> (Enc.float_int_key v n, ())) complete in
  Array.sort (fun (k1, ()) (k2, ()) -> String.compare k1 k2) pairs;
  { t with values = BT.of_sorted_array pairs }

let create ?reconstruct ?pool spec store =
  let ops = Indexer.sct_ops spec.Lexical_types.sct in
  let fields = Indexer.empty_fields ops store in
  Indexer.create_multi ?pool store [ Indexer.Packed (ops, fields) ];
  of_fields ?reconstruct ?pool spec store fields

let bounds lo hi =
  ( Option.map (fun v -> Enc.float_int_key v min_int) lo,
    Option.map (fun v -> Enc.float_int_key v max_int) hi )

let range ?lo ?hi t =
  let lo, hi = bounds lo hi in
  let acc = ref [] in
  (* decode-free leaf walk: one callback per leaf run, the node pulled
     straight out of the key bytes — no per-binding closure dispatch,
     no value access *)
  BT.iter_raw ?lo ?hi
    (fun keys off len ->
      for i = off to off + len - 1 do
        acc := Enc.decode_int keys.(i) 8 :: !acc
      done)
    t.values;
  List.rev !acc

let equals t v = range ~lo:v ~hi:v t

let estimate_range ?lo ?hi t =
  let lo, hi = bounds lo hi in
  BT.count_range ?lo ?hi t.values

let cursor ?lo ?hi t =
  (* The tree's native order is (value, node); merges need node order,
     so materialize and sort on first pull — the cursor is lazy in
     *when* the range runs, and exact thereafter. *)
  let state = ref None in
  let rec pull () =
    match !state with
    | Some rest -> (
        match rest with
        | [] -> None
        | n :: tl ->
            state := Some tl;
            Some n)
    | None ->
        state := Some (List.sort Int.compare (range ?lo ?hi t));
        pull ()
  in
  pull

(* Apply an update: fix the viability counter from state changes, then
   re-extract fragments and typed values across the whole touched set —
   a state can survive a value change (replacing digits by digits), so
   the changed-state list alone is not enough. Touched nodes arrive
   deepest first, which [refresh_frag] relies on. *)
let apply t store (res : int Indexer.update_result) =
  List.iter
    (fun { Indexer.old_field; new_field; _ } ->
      let was = Sct.is_viable (sct t) old_field
      and now = Sct.is_viable (sct t) new_field in
      if was && not now then t.viable_count <- t.viable_count - 1;
      if now && not was then t.viable_count <- t.viable_count + 1)
    res.Indexer.changes;
  List.iter
    (fun (n, _level) ->
      let st = Indexer.get t.fields n in
      refresh_frag t store n st;
      remove_complete t n;
      if Sct.is_accepting (sct t) st then
        match t.spec.Lexical_types.parse (lexical_of t store n) with
        | Some v -> add_complete t n v
        | None -> ())
    res.Indexer.touched

let update_texts t store nodes =
  apply t store (Indexer.update t.ops store t.fields ~texts:nodes ())

let on_delete t store ~parent ~removed =
  List.iter
    (fun n ->
      if Sct.is_viable (sct t) (Indexer.get t.fields n) then
        t.viable_count <- t.viable_count - 1;
      Hashtbl.remove t.frags n;
      remove_complete t n)
    removed;
  apply t store
    (Indexer.update t.ops store t.fields ~texts:[] ~structural:[ parent ] ())

let on_insert t store ~roots =
  List.iter
    (fun root ->
      Indexer.compute_subtree t.ops store t.fields root;
      (* Register deepest-first so fragments of children exist. *)
      let nodes = ref [] in
      Store.iter_pre ~root store (fun n ->
          if indexable store n then nodes := n :: !nodes);
      List.iter
        (fun n -> register t store n (Indexer.get t.fields n))
        !nodes)
    roots;
  let parents =
    List.sort_uniq Int.compare (List.filter_map (Store.parent store) roots)
  in
  apply t store
    (Indexer.update t.ops store t.fields ~texts:[] ~structural:parents ())

type stats = {
  viable_nodes : int;
  complete_nodes : int;
  complete_text_nodes : int;
  complete_non_leaves : int;
}

let stats t store =
  let complete_texts = ref 0 and complete_non_leaves = ref 0 in
  Store.iter_pre store (fun n ->
      match Store.kind store n with
      | Store.Text -> if is_complete t n then incr complete_texts
      | Store.Element | Store.Document ->
          let has_element_child =
            List.exists
              (fun c -> Store.kind store c = Store.Element)
              (Store.children store n)
          in
          if has_element_child && is_complete t n then incr complete_non_leaves
      | _ -> ());
  {
    viable_nodes = t.viable_count;
    complete_nodes = Hashtbl.length t.by_node;
    complete_text_nodes = !complete_texts;
    complete_non_leaves = !complete_non_leaves;
  }

let entry_count t = BT.length t.values

let storage_bytes t =
  let state_column = t.viable_count * Sct.state_bytes (sct t) in
  let frag_bytes =
    Hashtbl.fold (fun _ f acc -> acc + 24 + String.length f) t.frags 0
  in
  state_column + frag_bytes + BT.memory_bytes ~value_bytes:0 t.values

let validate t store =
  let problems = ref [] in
  let reference = Indexer.create_reference t.ops store in
  let viable = ref 0 in
  let expected_complete = Hashtbl.create 256 in
  Store.iter_pre store (fun n ->
      if indexable store n then begin
        let expect = Indexer.get reference n and got = Indexer.get t.fields n in
        if expect <> got then
          problems :=
            Printf.sprintf "node %d: state %d <> expected %d" n got expect
            :: !problems;
        if Sct.is_viable (sct t) expect then begin
          incr viable;
          if t.reconstruct = `Fragment then begin
            let sv = Store.string_value store n in
            match Hashtbl.find_opt t.frags n with
            | Some f when String.equal f sv -> ()
            | Some f ->
                problems :=
                  Printf.sprintf "node %d: fragment %S <> string value %S" n f sv
                  :: !problems
            | None ->
                problems :=
                  Printf.sprintf "node %d: viable but no fragment" n :: !problems
          end
        end;
        if Sct.is_accepting (sct t) expect then
          match t.spec.Lexical_types.parse (Store.string_value store n) with
          | Some v -> Hashtbl.replace expected_complete n v
          | None -> ()
      end);
  if !viable <> t.viable_count then
    problems :=
      Printf.sprintf "viable count %d <> expected %d" t.viable_count !viable
      :: !problems;
  if Hashtbl.length expected_complete <> Hashtbl.length t.by_node then
    problems :=
      Printf.sprintf "complete count %d <> expected %d"
        (Hashtbl.length t.by_node)
        (Hashtbl.length expected_complete)
      :: !problems;
  Hashtbl.iter
    (fun n v ->
      match value_of t n with
      | Some v' when v' = v -> ()
      | Some v' ->
          problems :=
            Printf.sprintf "node %d: value %g <> expected %g" n v' v :: !problems
      | None ->
          problems := Printf.sprintf "node %d: missing value" n :: !problems)
    expected_complete;
  let tree_count = ref 0 in
  BT.iter
    (fun k () ->
      let v = Enc.decode_float k 0 and n = Enc.decode_int k 8 in
      incr tree_count;
      match Hashtbl.find_opt expected_complete n with
      | Some v' when v' = v -> ()
      | _ -> problems := Printf.sprintf "stale tree entry (%g, %d)" v n :: !problems)
    t.values;
  if !tree_count <> Hashtbl.length expected_complete then
    problems :=
      Printf.sprintf "tree entries %d <> expected %d" !tree_count
        (Hashtbl.length expected_complete)
      :: !problems;
  (match BT.check_invariants t.values with
  | Ok () -> ()
  | Error e -> problems := ("btree: " ^ e) :: !problems);
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

module Store = Xvi_xml.Store
module BT = Xvi_btree.Btree.Make (Xvi_btree.Btree.Int_key)

type node = Store.node

(* A posting is one unboxed int: the 32-bit hash in the high bits, the
   node id in the low 30 (62 bits total — exactly OCaml's int range).
   Packed order equals (hash, node) lexicographic order, so the tree
   both stores and compares single machine words. *)
let node_mask = 0x3FFF_FFFF
let pack h n = (h lsl 30) lor n

type t = {
  fields : Hash.t Indexer.fields;
  postings : unit BT.t;
  mutable entries : int;
}

let indexable store n =
  match Store.kind store n with
  | Store.Element | Store.Text | Store.Attribute | Store.Document -> true
  | Store.Comment | Store.Pi | Store.Deleted -> false

let add_posting t h n =
  BT.insert t.postings (pack (Hash.to_int h) n) ();
  t.entries <- t.entries + 1

let remove_posting t h n =
  if BT.remove t.postings (pack (Hash.to_int h) n) then
    t.entries <- t.entries - 1

(* Merge [k] individually-sorted int arrays into one sorted array; the
   per-domain posting accumulators overlap in (hash, node) key space, so
   a real k-way merge is needed (k is the domain count — tiny). *)
let merge_sorted parts =
  let k = Array.length parts in
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 parts in
  let out = Array.make (max total 1) 0 in
  let idx = Array.make k 0 in
  for o = 0 to total - 1 do
    let best = ref (-1) and best_v = ref max_int in
    for p = 0 to k - 1 do
      if idx.(p) < Array.length parts.(p) then begin
        let v = parts.(p).(idx.(p)) in
        if !best < 0 || v < !best_v then begin
          best := p;
          best_v := v
        end
      end
    done;
    out.(o) <- !best_v;
    idx.(!best) <- idx.(!best) + 1
  done;
  if total = 0 then [||] else Array.sub out 0 total

let of_sorted_keys fields keys =
  let arr = Array.map (fun k -> (k, ())) keys in
  { fields; postings = BT.of_sorted_array arr; entries = Array.length arr }

let pack_key h n = pack (Hash.to_int h) n

let of_key_seq fields ~count next =
  {
    fields;
    postings = BT.of_sorted_seq ~len:count (fun () -> (next (), ()));
    entries = count;
  }

let of_fields ?pool store fields =
  (* Bulk-load the posting B+tree. (hash, node) fits one unboxed int
     (32 + 30 bits), so collection and sorting run on an int vector —
     the cheap creation path the paper's Figure 9 numbers rely on. *)
  match pool with
  | Some pool when Xvi_util.Pool.parallelism pool > 1 ->
      (* Per-domain local accumulators over node-id slices, each sorted
         in its domain; the merge into one sorted key array and the
         B+tree bulk load stay single-threaded. *)
      let slices =
        Xvi_util.Pool.slices (Store.node_range store)
          (Xvi_util.Pool.parallelism pool)
      in
      let parts =
        Xvi_util.Pool.map pool
          (fun k ->
            let lo, hi = slices.(k) in
            let packed =
              Xvi_util.Vec.Int.create ~capacity:(max 16 (hi - lo)) ()
            in
            for n = lo to hi - 1 do
              if indexable store n then
                Xvi_util.Vec.Int.push packed
                  ((Hash.to_int (Indexer.get fields n) lsl 30) lor n)
            done;
            let keys = Xvi_util.Vec.Int.to_array packed in
            Array.sort Int.compare keys;
            keys)
          (Array.length slices)
      in
      of_sorted_keys fields (merge_sorted parts)
  | _ ->
      let packed = Xvi_util.Vec.Int.create ~capacity:(Store.node_range store) () in
      Store.iter_pre store (fun n ->
          if indexable store n then
            Xvi_util.Vec.Int.push packed
              ((Hash.to_int (Indexer.get fields n) lsl 30) lor n));
      let keys = Xvi_util.Vec.Int.to_array packed in
      Array.sort Int.compare keys;
      of_sorted_keys fields keys

let create store = of_fields store (Indexer.create Indexer.hash_ops store)

let hash_of t n = Indexer.get t.fields n

let candidates_of_hash t h =
  let lo = pack (Hash.to_int h) 0 and hi = pack (Hash.to_int h) node_mask in
  let acc = ref [] in
  BT.iter_range ~lo ~hi (fun k () -> acc := (k land node_mask) :: !acc) t.postings;
  List.rev !acc

let lookup_candidates t _store s = candidates_of_hash t (Hash.hash s)

let lookup t store s =
  List.filter (fun n -> String.equal (Store.string_value store n) s)
    (lookup_candidates t store s)

let estimate t s =
  let h = Hash.to_int (Hash.hash s) in
  BT.count_range ~lo:(pack h 0) ~hi:(pack h node_mask) t.postings

let cursor t store s =
  let h = Hash.to_int (Hash.hash s) in
  let bucket =
    ref (BT.to_seq_range ~lo:(pack h 0) ~hi:(pack h node_mask) t.postings)
  in
  (* pull hash matches off the leaf chain; verify against the real
     string value so collision false positives never escape the cursor *)
  let rec pull () =
    match !bucket () with
    | Seq.Nil -> None
    | Seq.Cons ((k, ()), rest) ->
        bucket := rest;
        let n = k land node_mask in
        if String.equal (Store.string_value store n) s then Some n else pull ()
  in
  pull

let apply_changes t changes =
  List.iter
    (fun { Indexer.node; old_field; new_field; _ } ->
      remove_posting t old_field node;
      add_posting t new_field node)
    changes

let update_texts t store nodes =
  apply_changes t
    (Indexer.update Indexer.hash_ops store t.fields ~texts:nodes ()).Indexer.changes

let on_delete t store ~parent ~removed =
  List.iter
    (fun n ->
      (* Tombstoned nodes keep their last field; drop their postings. *)
      remove_posting t (Indexer.get t.fields n) n)
    removed;
  apply_changes t
    (Indexer.update Indexer.hash_ops store t.fields ~texts:[]
       ~structural:[ parent ] ())
      .Indexer.changes

let on_insert t store ~roots =
  List.iter
    (fun root ->
      Indexer.compute_subtree Indexer.hash_ops store t.fields root;
      Store.iter_pre ~root store (fun n ->
          if indexable store n then add_posting t (Indexer.get t.fields n) n))
    roots;
  let parents =
    List.sort_uniq Int.compare
      (List.filter_map (fun r -> Store.parent store r) roots)
  in
  apply_changes t
    (Indexer.update Indexer.hash_ops store t.fields ~texts:[]
       ~structural:parents ())
      .Indexer.changes

let entry_count t = t.entries

let storage_bytes t =
  (* 4 bytes per node for the hash column (32-bit values), plus the
     posting B+tree. *)
  let column = 4 * t.entries in
  column + BT.memory_bytes ~value_bytes:0 t.postings

let validate t store =
  let problems = ref [] in
  let expected = Hashtbl.create 1024 in
  Store.iter_pre store (fun n ->
      if indexable store n then begin
        let h = Hash.hash (Store.string_value store n) in
        Hashtbl.replace expected n h;
        if not (Hash.equal (Indexer.get t.fields n) h) then
          problems :=
            Printf.sprintf "node %d: stored hash %d <> recomputed %d" n
              (Hash.to_int (Indexer.get t.fields n))
              (Hash.to_int h)
            :: !problems
      end);
  let posting_count = ref 0 in
  BT.iter
    (fun k () ->
      let h = k lsr 30 and n = k land node_mask in
      incr posting_count;
      match Hashtbl.find_opt expected n with
      | None -> problems := Printf.sprintf "stale posting for node %d" n :: !problems
      | Some eh ->
          if Hash.to_int eh <> h then
            problems :=
              Printf.sprintf "posting hash %d for node %d, expected %d" h n
                (Hash.to_int eh)
              :: !problems)
    t.postings;
  if !posting_count <> Hashtbl.length expected then
    problems :=
      Printf.sprintf "posting count %d <> indexable nodes %d" !posting_count
        (Hashtbl.length expected)
      :: !problems;
  (match BT.check_invariants t.postings with
  | Ok () -> ()
  | Error e -> problems := ("btree: " ^ e) :: !problems);
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " ps)

module Store = Xvi_xml.Store
module Vec = Xvi_util.Vec

type node = Store.node

type t = { by_name : (int, Vec.Int.t) Hashtbl.t }

let bucket t name_id =
  match Hashtbl.find_opt t.by_name name_id with
  | Some vec -> vec
  | None ->
      let vec = Vec.Int.create ~capacity:4 () in
      Hashtbl.add t.by_name name_id vec;
      vec

let add t store n = Vec.Int.push (bucket t (Store.name_id store n)) n

let create store =
  let t = { by_name = Hashtbl.create 64 } in
  Store.iter_pre store (fun n ->
      if Store.kind store n = Store.Element then add t store n);
  t

let nodes t store name =
  match Xvi_xml.Name_pool.find (Store.names store) name with
  | None -> []
  | Some id -> (
      match Hashtbl.find_opt t.by_name id with
      | None -> []
      | Some vec ->
          let acc = ref [] in
          Vec.Int.iter
            (fun n ->
              (* lazy deletion: skip tombstones; names are immutable, so
                 a live entry is always still an element of this name *)
              if Store.is_live store n then acc := n :: !acc)
            vec;
          List.sort Int.compare !acc)

let count t store name =
  match Xvi_xml.Name_pool.find (Store.names store) name with
  | None -> 0
  | Some id -> (
      match Hashtbl.find_opt t.by_name id with
      | None -> 0
      | Some vec ->
          Vec.Int.fold_left
            (fun acc n -> if Store.is_live store n then acc + 1 else acc)
            0 vec)

let cursor t store name =
  match Xvi_xml.Name_pool.find (Store.names store) name with
  | None -> fun () -> None
  | Some id -> (
      match Hashtbl.find_opt t.by_name id with
      | None -> fun () -> None
      | Some vec ->
          (* bucket vecs grow by push in ascending node-id order (one
             shredding pass, then inserts of strictly fresher ids), so a
             positional walk already streams the merge order; tombstones
             are skipped as in [nodes] *)
          let i = ref 0 in
          let rec pull () =
            if !i >= Vec.Int.length vec then None
            else begin
              let n = Vec.Int.get vec !i in
              incr i;
              if Store.is_live store n then Some n else pull ()
            end
          in
          pull)

let on_insert t store ~roots =
  List.iter
    (fun root ->
      Store.iter_pre ~root store (fun n ->
          if Store.kind store n = Store.Element then add t store n))
    roots

let storage_bytes t =
  Hashtbl.fold (fun _ vec acc -> acc + 32 + Vec.Int.memory_bytes vec) t.by_name 0

let validate t store =
  let expected = Hashtbl.create 64 in
  Store.iter_pre store (fun n ->
      if Store.kind store n = Store.Element then begin
        let name = Store.name store n in
        Hashtbl.replace expected name
          (n :: Option.value ~default:[] (Hashtbl.find_opt expected name))
      end);
  let problems = ref [] in
  Hashtbl.iter
    (fun name nodes_expected ->
      let got = nodes t store name in
      if got <> List.sort Int.compare nodes_expected then
        problems := Printf.sprintf "mismatch for <%s>" name :: !problems)
    expected;
  (* and no phantom names *)
  Hashtbl.iter
    (fun id _vec ->
      let name = Xvi_xml.Name_pool.name (Store.names store) id in
      let live = count t store name in
      if live > 0 && not (Hashtbl.mem expected name) then
        problems := Printf.sprintf "phantom name <%s>" name :: !problems)
    t.by_name;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

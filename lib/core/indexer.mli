(** The shared index creation and maintenance skeleton
    (paper Section 5, Figures 7 and 8).

    Both the string equality index and the typed range indices maintain
    one {e field} per node — a 32-bit hash value or a one-byte SCT state
    — with the same structure: a text node's field comes from its value
    ([H] / the FSM), and an element node's field is the ordered
    combination of its children's fields ([C] / the SCT probe). The
    algorithms below are generic over that structure, so "creating and
    updating multiple defined indices can be done simultaneously"
    (paper Section 5).

    The combination structure must be a monoid: [combine] associative
    with [identity] as unit. The field of a node with no text
    descendants (e.g. the paper's [<years/>]) is [identity] —
    consistently, [identity = of_text ""]. *)

type 'f ops = {
  field_name : string;  (** for diagnostics, e.g. ["hash"] *)
  of_text : string -> 'f;  (** [H] or the FSM run *)
  combine : 'f -> 'f -> 'f;  (** [C] or the SCT probe *)
  identity : 'f;
  equal : 'f -> 'f -> bool;
}

val hash_ops : Hash.t ops
(** The string-index instance. *)

val sct_ops : Sct.t -> int ops
(** The typed-index instance for a given state combination table. *)

type 'f fields
(** Per-node field storage, indexed by node id, growable. *)

val get : 'f fields -> Xvi_xml.Store.node -> 'f
(** Nodes never assigned (e.g. childless elements) read as the
    identity, which is exactly their correct field. *)

val set : 'f fields -> Xvi_xml.Store.node -> 'f -> unit
(** Assign one node's field, growing the storage with identity holes as
    needed — the write primitive of every builder below, exported for
    the streaming ingest builder which replays its staged fields
    through the same calls to reproduce the exact storage shape. *)

val alloc_fields : 'f ops -> capacity:int -> 'f fields
(** Fresh storage pre-sized for [capacity] nodes (same allocation the
    whole-document builders make from [Store.node_range]); used by the
    streaming builder, which only learns the node count at the end. *)

val fold_all : (Xvi_xml.Store.node -> 'f -> 'a -> 'a) -> 'f fields -> 'a -> 'a

val create : 'f ops -> Xvi_xml.Store.t -> 'f fields
(** Figure 7: a single depth-first pass driven by the sequence of text
    nodes in document order, maintaining an explicit stack of open
    ancestors; every departed node is combined into its parent exactly
    once. Attribute fields (independent of the children recursion) are
    computed in the same pass. *)

type packed = Packed : 'f ops * 'f fields -> packed
(** One index's field computation, with its type hidden, so machines of
    different field types can share a pass. *)

val empty_fields : 'f ops -> Xvi_xml.Store.t -> 'f fields
(** Fresh storage for {!create_multi}. *)

val create_multi : ?pool:Xvi_util.Pool.t -> Xvi_xml.Store.t -> packed list -> unit
(** The paper's Section 5 remark made concrete: "since all indices are
    independent of each other, creating ... multiple defined indices can
    be done simultaneously with only one pass". One Figure 7 traversal
    fills every packed field store; each text node is read once and fed
    to every machine. The [ablation] bench quantifies the saving.

    With [?pool] of parallelism [j > 1], the document-order context
    sequence is cut into [j] contiguous chunks; each domain runs the
    Figure 7 walk over its chunk into chunk-local partial fields, and
    the partials are merged per node with the associative [combine] in
    chunk order. Because every field is a monoid reduction over the
    text sequence (and [combine] is exact integer arithmetic / an exact
    SCT table lookup), the merged fields are {e bit-identical} to the
    serial pass — the [test_parallel] qcheck property pins this down.
    Without a pool (or with parallelism 1) the serial pass runs and no
    domain is ever involved. *)

val create_reference : 'f ops -> Xvi_xml.Store.t -> 'f fields
(** The obviously-correct recursive definition
    ([field n = fold combine (children n)]), used by tests to validate
    {!create} and {!update}. *)

type 'f change = {
  node : Xvi_xml.Store.node;
  old_field : 'f;
  new_field : 'f;
  level : int;  (** depth of [node]; changes are reported deepest first *)
}

type 'f update_result = {
  changes : 'f change list;
      (** nodes whose field actually changed, deepest first — drives
          posting-list repair *)
  touched : (Xvi_xml.Store.node * int) list;
      (** every recomputed node (the updated leaves plus all recombined
          ancestors) with its level, deepest first — a field can be
          unchanged while the underlying value changed (e.g. replacing
          the digits ["78"] by ["80"] preserves the SCT state), so typed
          indices must re-extract values across the whole touched set *)
}

val update :
  'f ops ->
  Xvi_xml.Store.t ->
  'f fields ->
  texts:Xvi_xml.Store.node list ->
  ?structural:Xvi_xml.Store.node list ->
  unit ->
  'f update_result
(** Figure 8: [texts] are text or attribute nodes whose value changed —
    their fields are recomputed from their new content; [structural]
    are elements whose child list changed (subtree deleted or inserted
    beneath them). Every affected ancestor is then recombined {e from
    its immediate children's fields}, bottom-up — the paper's key point:
    no string data outside the updated nodes is ever re-read. *)

val compute_subtree :
  'f ops -> Xvi_xml.Store.t -> 'f fields -> Xvi_xml.Store.node -> unit
(** Recursively (re)compute fields for a freshly inserted subtree
    (its nodes have no valid fields yet); does not touch ancestors —
    pass the subtree root's parent as [structural] to {!update}. *)

type t = int

let mask27 = 0x7FF_FFFF (* 2^27 - 1 *)
let empty = 0

(* 27-bit circular left rotation; [k] must be in [0, 27). *)
let rotl27 x k =
  if k = 0 then x land mask27
  else ((x lsl k) lor (x lsr (27 - k))) land mask27

(* Figure 2. The c-array is kept in the low 27 bits during the loop and
   packed above the offc field at the end. Masking after each XOR plays
   the role of the 32-bit overflow in the paper's C code. *)
let hash s =
  let carr = ref 0 in
  let offset = ref 0 in
  for i = 0 to String.length s - 1 do
    let c = Char.code (String.unsafe_get s i) land 127 in
    carr := !carr lxor (c lsl !offset);
    if !offset > 20 then carr := !carr lxor (c lsr (27 - !offset));
    carr := !carr land mask27;
    offset := !offset + 5;
    if !offset > 26 then offset := !offset - 27
  done;
  (!carr lsl 5) lor !offset

let c_array h = (h lsr 5) land mask27
let offset h = h land 31

let pack ~c_array:carr ~offset:off =
  ((carr land mask27) lsl 5) lor (off mod 27)

(* Figure 4. The c-array of the right operand is rotated left by the
   left operand's offset (continuing the circular XOR where the left
   string stopped) and XOR-ed in; offsets add modulo 27. *)
let combine hl hr =
  let carr = c_array hl lxor rotl27 (c_array hr) (offset hl) in
  let off = (offset hl + offset hr) mod 27 in
  (carr lsl 5) lor off

let inverse h =
  let off = offset h in
  let inv_off = (27 - off) mod 27 in
  (* rotate right by [off] = rotate left by [27 - off] *)
  let carr = rotl27 (c_array h) inv_off in
  (carr lsl 5) lor inv_off

let replace ~old_child ~new_child ~prefix h =
  (* h = prefix . old . suffix  ==>  suffix = old^-1 . prefix^-1 . h
     result = prefix . new . suffix *)
  let suffix = combine (inverse old_child) (combine (inverse prefix) h) in
  combine prefix (combine new_child suffix)

let to_int h = h
let of_int v = v land 0xFFFF_FFFF
let equal = Int.equal
let compare = Int.compare
let pp fmt h = Format.fprintf fmt "%07x|%02d" (c_array h) (offset h)

(** The string equality index (paper Section 3).

    Every live element, attribute and text node is indexed under the
    hash of its XDM string value — whole-document, path- and
    type-agnostic. A B+tree on [(hash, node id)] provides the posting
    lists; a per-node hash column supports update recombination without
    re-reading any string data.

    Lookups return {e candidates} (hash matches); {!lookup} filters them
    against the actual string values, so false positives from hash
    collisions (paper Figure 11) never reach the caller. *)

type t

type node = Xvi_xml.Store.node

val create : Xvi_xml.Store.t -> t
(** Build with the Figure 7 single-pass algorithm, then bulk-load the
    B+tree. Comments and processing instructions are not indexed (the
    paper covers "text, element, and attribute node values"). *)

val of_fields : ?pool:Xvi_util.Pool.t -> Xvi_xml.Store.t -> Hash.t Indexer.fields -> t
(** Build from fields already computed — how {!Db} shares one document
    pass across all its indices (paper §5). The fields become owned by
    the index.

    With [?pool] of parallelism [> 1], posting collection runs on
    per-domain accumulators over node-id slices (each sorted in its
    domain); the k-way merge and the B+tree bulk load stay
    single-threaded. The resulting tree is identical to the serial
    build. *)

val pack_key : Hash.t -> node -> int
(** The index's posting key: hash in the high 32 bits, node id in the
    low 30.  Packed order is (hash, node) lexicographic order. *)

val of_key_seq : Hash.t Indexer.fields -> count:int -> (unit -> int) -> t
(** Streaming-ingest assembly: bulk load from a generator of exactly
    [count] strictly ascending {!pack_key} postings (the ingest
    builder's batch-sorted runs, k-way merged), without materializing
    the key array.  Marshal-identical to the serial {!of_fields} over
    the same document. *)

val hash_of : t -> node -> Hash.t
(** The indexed hash of a live node. *)

val lookup : t -> Xvi_xml.Store.t -> string -> node list
(** Nodes whose string value equals the argument, in node-id order.
    Collision false-positives are filtered out. *)

val lookup_candidates : t -> Xvi_xml.Store.t -> string -> node list
(** Hash matches before verification — exposed for the collision
    experiments and for callers that layer their own predicates. *)

(** {1 Streaming access (query planner)} *)

val cursor : t -> Xvi_xml.Store.t -> string -> unit -> node option
(** Lazy posting cursor in ascending node order: pulls hash matches off
    the B+tree leaf chain one at a time, filtering collision false
    positives against the live string values. Do not update the index
    while a cursor is live. *)

val estimate : t -> string -> int
(** Hash-bucket size — the planner's cardinality estimate for an
    equality lookup (an upper bound: collisions inflate it). *)

(** {1 Maintenance} *)

val update_texts : t -> Xvi_xml.Store.t -> node list -> unit
(** Figure 8: the given text/attribute nodes' values changed in the
    store; recompute their hashes and recombine all affected ancestors
    from sibling hashes. *)

val on_delete : t -> Xvi_xml.Store.t -> parent:node -> removed:node list -> unit
(** A subtree was deleted: [removed] are its (now tombstoned) nodes,
    [parent] its former parent. Drops their postings and recombines
    upward from [parent]. *)

val on_insert : t -> Xvi_xml.Store.t -> roots:node list -> unit
(** Freshly inserted subtrees (all under the same parent): computes
    fields for the new nodes and recombines upward. *)

(** {1 Accounting and validation} *)

val entry_count : t -> int
val storage_bytes : t -> int
(** Per-node hash column + B+tree, as Figure 9 accounts it. *)

val validate : t -> Xvi_xml.Store.t -> (unit, string) result
(** Test hook: every live indexable node's stored hash equals the hash
    of its recomputed string value, postings match exactly, and the
    B+tree invariants hold. *)

(** Binary snapshots of an indexed database.

    Shredding and index creation dominate start-up time; a snapshot
    saves the store and every index in one file so a later process can
    reopen them directly — the role MonetDB's persistent BATs play for
    the paper's indices.

    Format: a magic string, a build fingerprint, the payload length and
    an MD5 digest of the payload, then the [Marshal]ed database (with
    closure marshalling, since type machines carry parsing functions).
    Snapshots are therefore {e only readable by the binary that wrote
    them} — the fingerprint enforces this, turning a segfault into a
    clean error. The length and digest make truncation and byte
    corruption detectable {e before} [Marshal] ever sees the payload, so
    {!load} is total: any damaged file yields an [Error], never an
    exception and never a corrupt [Ok]. This mirrors the usual trade-off
    of engine-internal storage formats, and the XML itself remains the
    portable representation. *)

val save : Db.t -> string -> unit
(** [save db path] writes a snapshot atomically (via a temp file and
    rename). *)

type error =
  | Not_a_snapshot  (** bad magic — the file is something else *)
  | Binary_mismatch  (** written by a different build of this library *)
  | Corrupted of string
      (** framing, length or digest check failed — the file started as a
          snapshot but its bytes were damaged *)
  | Io_error of string

val error_to_string : error -> string

val load : ?config:Db.Config.t -> string -> (Db.t, error) result
(** Read a snapshot back. Without [config] the marshalled database is
    returned as written. With [config] the loaded {e store} is kept but
    every index is rebuilt under the new configuration — the way to
    reopen a snapshot with different types, with the substring index,
    or with a parallel ([jobs > 1]) rebuild. *)

val load_exn : ?config:Db.Config.t -> string -> Db.t
(** @raise Failure on any {!error}. *)

val is_snapshot : string -> bool
(** Cheap magic check, for CLIs that accept either XML or snapshots. *)

(** Binary snapshots of an indexed database.

    Shredding and index creation dominate start-up time; a snapshot
    saves the store and every index in one file so a later process can
    reopen them directly — the role MonetDB's persistent BATs play for
    the paper's indices.

    Format (v3): a magic string, a build fingerprint, the payload length
    and an MD5 digest of the payload, then the [Marshal]ed pair of the
    write-ahead-log position ({e LSN}) the snapshot covers and the
    database (with closure marshalling, since type machines carry
    parsing functions). Snapshots are therefore {e only readable by the
    binary that wrote them} — the fingerprint enforces this, turning a
    segfault into a clean error. The length and digest make truncation
    and byte corruption detectable {e before} [Marshal] ever sees the
    payload — and because the LSN lives inside the digested payload, a
    damaged LSN is exactly as detectable — so {!load} is total: any
    damaged file yields an [Error], never an exception and never a
    corrupt [Ok]. This mirrors the usual trade-off of engine-internal
    storage formats, and the XML itself remains the portable
    representation.

    The LSN turns a snapshot into a {e checkpoint} for the durability
    layer ({!Xvi_wal}): recovery replays only the log records committed
    after it. A snapshot saved outside the durable path carries LSN 0
    (everything in any log is newer). *)

val save : ?lsn:int -> Db.t -> string -> unit
(** [save ?lsn db path] writes a snapshot atomically and durably: the
    bytes go to a temp file which is [fsync]ed before the rename into
    place, and the directory is synced after it — a crash at any point
    leaves either the old file or the new one, never a torn mix.
    [lsn] (default [0]) is the log position this snapshot covers. *)

type error =
  | Not_a_snapshot  (** bad magic — the file is something else *)
  | Binary_mismatch  (** written by a different build of this library *)
  | Corrupted of string
      (** framing, length or digest check failed — the file started as a
          snapshot but its bytes were damaged *)
  | Io_error of string

val error_to_string : error -> string

val load : ?config:Db.Config.t -> string -> (Db.t, error) result
(** Read a snapshot back. Without [config] the marshalled database is
    returned as written. With [config] the loaded {e store} is kept but
    every index is rebuilt under the new configuration — the way to
    reopen a snapshot with different types, with the substring index,
    or with a parallel ([jobs > 1]) rebuild. *)

val load_with_lsn :
  ?config:Db.Config.t -> string -> (Db.t * int, error) result
(** Like {!load}, also returning the checkpoint LSN recorded at
    {!save} time. The durable open path starts its log replay there. *)

val load_exn : ?config:Db.Config.t -> string -> Db.t
(** @raise Failure on any {!error}. *)

val is_snapshot : string -> bool
(** Cheap magic check, for CLIs that accept either XML or snapshots. *)

(** The paper's hash function [H] and combination function [C]
    (Section 3, Figures 2–4).

    A hash value is a packed 32-bit word: the 27 most significant bits
    (the {e c-array}) accumulate characters with a circular XOR at
    stride 5; the 5 least significant bits (the {e offc} field) record
    the offset at which the next character would be XOR-ed, i.e. 5 times
    the string length mod 27.

    The crucial algebraic property (proved in the paper by induction,
    and property-tested here) is that {!combine} is an associative
    homomorphism of concatenation:

    {[ hash (a ^ b) = combine (hash a) (hash b) ]}

    so the hash of an element node — whose XDM string value is the
    concatenation of its descendant text values — can be recomputed from
    its children's hashes alone.

    Beyond the paper: the set of hash values under [combine] is in fact
    a {e group} (a semidirect product of the XOR group on 27 bits with
    the cyclic offset group), so every value has an {!inverse}. This
    enables delta-maintenance without re-reading sibling hashes; the
    ablation bench quantifies the gain. *)

type t = private int
(** A packed hash value; always within [0, 2^32). *)

val empty : t
(** [hash "" = empty]; the identity of {!combine}. *)

val hash : string -> t
(** The paper's [H] (Figure 2). Characters contribute their 7 low bits
    (ASCII, or UTF-8 bytes masked to 7 bits, per the paper's footnote). *)

val combine : t -> t -> t
(** The paper's [C] (Figure 4): [combine (hash a) (hash b) = hash (a ^ b)]. *)

val inverse : t -> t
(** Group inverse: [combine h (inverse h) = empty = combine (inverse h) h]. *)

val replace : old_child:t -> new_child:t -> prefix:t -> t -> t
(** [replace ~old_child ~new_child ~prefix h] is the delta update: given
    a parent hash [h = combine prefix (combine old_child suffix)] where
    [prefix] is the combined hash of the children before the changed one,
    the result equals [combine prefix (combine new_child suffix)] without
    touching [suffix]. Extension over the paper (uses {!inverse}). *)

val c_array : t -> int
(** The 27-bit character accumulator (bits 5–31). *)

val offset : t -> int
(** The offc field (bits 0–4); a value in [0, 27). *)

val pack : c_array:int -> offset:int -> t
(** Inverse of ({!c_array}, {!offset}). Masks out-of-range inputs. *)

val to_int : t -> int

val of_int : int -> t
(** Re-admit a value produced by {!to_int} — used by builders that
    stage hashes in unboxed int columns. Masks to 32 bits. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints as [c-array|offc] in hex, e.g. [365ef1d|03]. *)

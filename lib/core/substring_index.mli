(** Substring (containment) index — the paper's stated future work
    ("indices capable of answering queries that involve substring
    matching", §7), built in the same self-tuned, updatable style.

    Every text and attribute node's value is indexed under its distinct
    character 3-grams (packed into 24-bit integer keys — no hash
    collisions at all); a containment query intersects the posting lists
    of the pattern's 3-grams, starting from the rarest, and verifies the
    few surviving candidates with a direct substring scan. Patterns
    shorter than 3 characters cannot use the gram index and fall back to
    a document scan.

    Scope note: the index covers the {e own} values of text and
    attribute nodes. A substring of an {e element's} concatenated string
    value can span text-node boundaries; answering those from per-node
    grams is not possible without positional information, so element
    containment is served by checking the element's descendants'
    matches plus a verification step — see {!element_contains}. *)

type t

type node = Xvi_xml.Store.node

val q : int
(** The gram width (3). *)

val create : Xvi_xml.Store.t -> t

val string_contains : pattern:string -> string -> bool
(** The naive substring check used to verify candidates (patterns are
    short) — shared with the query planner's scan fallback so both
    paths agree on the empty-pattern convention (everything matches). *)

val contains : t -> Xvi_xml.Store.t -> string -> node list
(** Text/attribute nodes whose value contains the pattern, in node-id
    order. Exact (candidates are verified). Patterns shorter than
    {!q} are answered by a scan over the indexed nodes. *)

val element_contains : t -> Xvi_xml.Store.t -> string -> node list
(** Elements (and the document node) whose XDM string value contains
    the pattern. Uses {!contains} hits as seeds — any within-node match
    lifts to every ancestor — and additionally verifies boundary-
    spanning matches on the seed nodes' ancestors. Exact but slower
    than {!contains}; degenerates to an ancestor sweep when the pattern
    is shorter than {!q}. *)

(** {1 Streaming access (query planner)} *)

val cursor : t -> Xvi_xml.Store.t -> string -> unit -> node option
(** {!contains} as a posting cursor (ascending node order). The gram
    intersection runs on the first pull — lazy in {e when} the work
    happens, so an enclosing leapfrog merge that exhausts early on
    another input never pays for it. *)

val element_cursor : t -> Xvi_xml.Store.t -> string -> unit -> node option
(** {!element_contains} as a cursor, same laziness contract. *)

val estimate : t -> string -> int
(** Rarest-gram posting-list length — the planner's cardinality
    estimate (an upper bound on {!contains} hits). Patterns shorter
    than {!q} estimate as the whole entry count: they scan. *)

val element_estimate : t -> string -> int
(** {!estimate} scaled by a nominal ancestor-chain depth. *)

(** {1 Maintenance}

    Gram postings depend on the {e old} value (to know which postings to
    drop), so update and delete take [(node, old value)] pairs; {!Db}
    captures them before mutating the store. *)

val update_texts : t -> Xvi_xml.Store.t -> (node * string) list -> unit
(** The store already holds the new values. *)

val on_delete : t -> removed:(node * string) list -> unit
val on_insert : t -> Xvi_xml.Store.t -> roots:node list -> unit

(** {1 Accounting and validation} *)

val entry_count : t -> int
(** Total (gram, node) postings. *)

val storage_bytes : t -> int

val validate : t -> Xvi_xml.Store.t -> (unit, string) result
(** Postings equal a from-scratch recomputation. *)

(** Predicate IR: the compositional query language over value indices.

    A term denotes a set of {e nodes} — the paper's index answers are
    node sets, so conjunction is node-set intersection (the same node
    must satisfy every conjunct), disjunction is union, and [Within]
    restricts to a subtree through the pre/size/level plane.

    Every leaf constrains the node's kind as well as its value, because
    that is what the corresponding index family answers:

    - [String_eq] / [Typed_range]: nodes with an XDM string value
      (element, text, attribute, document);
    - [Contains]: text and attribute nodes (the leaf postings of the
      substring index);
    - [Element_contains]: element and document nodes;
    - [Named]: elements.

    [Not p] complements against the {e universe} — live nodes with an
    XDM string value — not against all node ids, so comments, processing
    instructions and tombstones never appear in any answer.

    Terms are data; {!Plan} chooses access paths for them. Build them
    with the smart constructors, which flatten nested [And]/[Or],
    collapse double negation and drop [All] units. *)

type node = Xvi_xml.Store.node

type t =
  | All  (** every node in the universe *)
  | String_eq of string
  | Typed_range of string * Range.t  (** type name, e.g. ["xs:double"] *)
  | Contains of string
  | Element_contains of string
  | Named of string
  | Within of node * t  (** scope (inclusive) and inner predicate *)
  | And of t list
  | Or of t list  (** [Or \[\]] matches nothing *)
  | Not of t

(** {1 Smart constructors} *)

val all : t
val string_eq : string -> t
val typed_range : string -> Range.t -> t
val contains : string -> t
val element_contains : string -> t
val named : string -> t

val within : scope:node -> t -> t

val conj : t list -> t
(** Flattens nested [And], drops [All]; [conj []] is [All]. *)

val disj : t list -> t
(** Flattens nested [Or]; [disj []] matches nothing. *)

val neg : t -> t
(** Collapses double negation. *)

val to_string : t -> string
(** Compact one-line rendering, e.g.
    [(value = "x" and xs:double in [40, 60]) within #17]. *)

type t = { lo : float option; hi : float option }

let between lo hi = { lo = Some lo; hi = Some hi }
let at_least lo = { lo = Some lo; hi = None }
let at_most hi = { lo = None; hi = Some hi }
let any = { lo = None; hi = None }
let lo t = t.lo
let hi t = t.hi

let nan_bound t =
  let is_nan = function Some v -> Float.is_nan v | None -> false in
  is_nan t.lo || is_nan t.hi

let mem t v =
  (not (nan_bound t))
  && (match t.lo with None -> true | Some b -> v >= b)
  && match t.hi with None -> true | Some b -> v <= b

let to_string t =
  let bound inf = function Some v -> Printf.sprintf "%g" v | None -> inf in
  Printf.sprintf "[%s, %s]" (bound "-inf" t.lo) (bound "+inf" t.hi)

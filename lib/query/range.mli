(** Inclusive range bounds for typed lookups.

    Both bounds are inclusive; an empty interval ([lo > hi]) matches
    nothing. A NaN bound also matches nothing: no value compares with
    NaN, so no value lies inclusively within such a range. [-0.0] and
    [0.0] are the same bound (and the same indexed key), per IEEE
    equality. *)

type t

val between : float -> float -> t
(** [between lo hi] — both bounds inclusive. *)

val at_least : float -> t

val at_most : float -> t

val any : t
(** Unbounded: every complete value, in value order. *)

val lo : t -> float option
val hi : t -> float option

val nan_bound : t -> bool
(** A NaN bound satisfies no inclusive comparison, so the range matches
    nothing. Callers must check this {e before} handing the bounds to a
    B+tree range scan: the tree's key order deliberately sorts NaN last,
    which would turn [at_most nan] into "everything". *)

val mem : t -> float -> bool
(** Inclusive membership of a (non-NaN) value; [false] whenever
    {!nan_bound} holds. The scan-fallback verifier. *)

val to_string : t -> string
(** ["[lo, hi]"] with ["-inf"]/["+inf"] for open ends. *)

(** Streaming posting cursors.

    A cursor yields node ids in strictly ascending order, one pull at a
    time — the common currency of the index access paths, so that
    intersection and union run as ordered merges instead of list
    set-ops. Ascending {e node id} is the canonical merge order: every
    index can produce it cheaply, and it coincides with document order
    until structural inserts reorder ids (executors that promise
    document order re-sort through the pre/size/level plane at the
    end). *)

type node = Xvi_xml.Store.node

type t = unit -> node option
(** Pull the next node; [None] is exhaustion and must be sticky. *)

val empty : t

val of_sorted_list : node list -> t
(** The list must be sorted ascending; duplicates are skipped on pull. *)

val of_lazy_list : (unit -> node list) -> t
(** Defers the (sorted-ascending) materialization to the first pull —
    for access paths whose native order is not node order and which
    therefore sort on demand. *)

val filter : (node -> bool) -> t -> t

val union : t list -> t
(** k-way ordered merge, duplicates collapsed. *)

val inter : t list -> t
(** Leapfrog intersection: the first cursor drives, the rest catch up.
    Order the inputs cheapest-first so the driver is the most selective
    stream. [inter []] is {!empty}. *)

val to_list : t -> node list

val to_seq : t -> node Seq.t
(** Lazy: each [Seq] step pulls once. *)

type node = Xvi_xml.Store.node
type t = unit -> node option

let empty () = None

let of_sorted_list nodes =
  let rest = ref nodes in
  let rec pull () =
    match !rest with
    | [] -> None
    | n :: tl ->
        rest := tl;
        (* collapse duplicates so downstream merges see a strict order *)
        (match tl with m :: _ when m = n -> pull () | _ -> Some n)
  in
  pull

let of_lazy_list force =
  let state = ref None in
  fun () ->
    let c =
      match !state with
      | Some c -> c
      | None ->
          let c = of_sorted_list (force ()) in
          state := Some c;
          c
    in
    c ()

let filter keep c =
  let rec pull () =
    match c () with
    | None -> None
    | Some n when keep n -> Some n
    | Some _ -> pull ()
  in
  pull

let union cursors =
  (* heads of the still-live inputs; linear min scan — fan-in is the
     handful of branches of a disjunction, not worth a heap *)
  let heads = lazy (Array.of_list (List.map (fun c -> (c, c ())) cursors)) in
  let pull () =
    let heads = Lazy.force heads in
    let best = ref None in
    Array.iter
      (fun (_, h) ->
        match (h, !best) with
        | Some n, Some b when n < b -> best := Some n
        | Some n, None -> best := Some n
        | _ -> ())
      heads;
    match !best with
    | None -> None
    | Some n ->
        Array.iteri
          (fun i (c, h) -> if h = Some n then heads.(i) <- (c, c ()))
          heads;
        Some n
  in
  pull

let inter cursors =
  match cursors with
  | [] -> empty
  | driver :: others ->
      let others = Array.of_list others in
      (* last node each non-driver cursor has reached *)
      let reached = Array.map (fun _ -> Some min_int) others in
      let catch_up i target =
        let rec go = function
          | Some n when n < target -> go (others.(i) ())
          | pos ->
              reached.(i) <- pos;
              pos
        in
        match reached.(i) with
        | Some n when n >= target -> Some n
        | cur -> go cur
      in
      let rec pull () =
        match driver () with
        | None -> None
        | Some n ->
            let ok = ref true in
            Array.iteri
              (fun i _ ->
                if !ok then
                  match catch_up i n with
                  | Some m when m = n -> ()
                  | Some _ -> ok := false
                  | None -> ok := false)
              others;
            if !ok then Some n
            else if Array.exists (fun r -> r = None) reached then None
            else pull ()
      in
      pull

let to_list c =
  let rec go acc = match c () with None -> List.rev acc | Some n -> go (n :: acc) in
  go []

let to_seq c =
  let rec next () = match c () with None -> Seq.Nil | Some n -> Seq.Cons (n, next) in
  next

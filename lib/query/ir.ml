type node = Xvi_xml.Store.node

type t =
  | All
  | String_eq of string
  | Typed_range of string * Range.t
  | Contains of string
  | Element_contains of string
  | Named of string
  | Within of node * t
  | And of t list
  | Or of t list
  | Not of t

let all = All
let string_eq s = String_eq s
let typed_range ty r = Typed_range (ty, r)
let contains p = Contains p
let element_contains p = Element_contains p
let named n = Named n
let within ~scope p = Within (scope, p)

let conj ps =
  let flat =
    List.concat_map (function And qs -> qs | All -> [] | q -> [ q ]) ps
  in
  match flat with [] -> All | [ p ] -> p | ps -> And ps

let disj ps =
  let flat = List.concat_map (function Or qs -> qs | q -> [ q ]) ps in
  match flat with [ p ] -> p | ps -> Or ps

let neg = function Not p -> p | p -> Not p

let rec to_string = function
  | All -> "all"
  | String_eq s -> Printf.sprintf "value = %S" s
  | Typed_range (ty, r) -> Printf.sprintf "%s in %s" ty (Range.to_string r)
  | Contains p -> Printf.sprintf "contains %S" p
  | Element_contains p -> Printf.sprintf "element-contains %S" p
  | Named n -> Printf.sprintf "named <%s>" n
  | Within (scope, p) -> Printf.sprintf "(%s) within #%d" (to_string p) scope
  | And ps -> group " and " ps
  | Or [] -> "none"
  | Or ps -> group " or " ps
  | Not p -> Printf.sprintf "not (%s)" (to_string p)

and group sep ps =
  Printf.sprintf "(%s)" (String.concat sep (List.map to_string ps))

(** Cost-based planner and executor for {!Ir} terms.

    The planner knows nothing about the concrete indices: the database
    layer hands it a {!provider} of closures — one access path per
    servable leaf, a verifier for arbitrary residual predicates, and the
    pre/size/level plane for scope arithmetic. This inversion keeps the
    query layer below the index layer in the build graph while letting
    every [Db.lookup_*] route through one pipeline.

    Planning rules:

    - a leaf with an access path becomes a {e cursor} (ascending node
      order) with a cardinality estimate from the index (bucket size,
      B+tree range count, rarest q-gram posting length, name extent);
    - [And] splits into index-served conjuncts — sorted by estimate,
      cheapest first, and intersected by a streaming leapfrog merge —
      and residual conjuncts verified per candidate;
    - [And] with no index-served conjunct, [Not], and index-less leaves
      fall back to a verified scan over the universe (or over the scope
      subtree only, when under [Within]);
    - [Or] is a streaming k-way merge-union, unless some branch needs a
      scan, in which case one scan verifies the whole disjunction;
    - [Within] becomes a staircase-join filter ([pre scope <= pre n <=
      pre scope + size scope], O(1) per candidate) pushed onto the
      cheapest conjunct's cursor; a scope unknown to the plane (e.g.
      tombstoned) plans to the empty result. *)

type node = Xvi_xml.Store.node

(** One index access path for one leaf predicate. *)
type access = {
  label : string;  (** for {!explain}, e.g. ["string-index \"x\""] *)
  estimate : int;  (** cardinality upper bound from the index *)
  cursor : unit -> Cursor.t;  (** ascending node order, exact *)
  native : unit -> node list;
      (** the index's native answer order (e.g. value order for typed
          ranges) — what single-leaf plans return so pre-existing lookup
          signatures keep their ordering bit-identical *)
  check : node -> bool;
      (** O(1)-ish membership test for this leaf's set — the provider's
          ground-truth verifier specialized to the leaf predicate. Holds
          for exactly the nodes [native]/[cursor] enumerate, which lets
          a materialized intersection drive from its cheapest input and
          probe the rest without materializing them. *)
}

type provider = {
  universe : unit -> int;  (** live-node count: the scan estimate *)
  node_range : unit -> int;  (** scan domain: ids are [0 .. range-1] *)
  plane : unit -> Xvi_xml.Pre_plane.t;
  access : Ir.t -> access option;
      (** access path for a {e leaf} term; [None] when no index serves
          it (then the planner scans) *)
  verify : Ir.t -> node -> bool;
      (** ground-truth check of any term against one node *)
}

type t

val plan : provider -> Ir.t -> t

val estimate : t -> int

val run_list : t -> node list
(** Single-leaf plans return the access path's native order; every other
    shape returns ascending node order. *)

val run_seq : t -> node Seq.t
(** Always ascending node order; lazy — pulls the underlying cursors on
    demand. *)

val explain : t -> string
(** Multi-line plan tree with per-node estimates, children of an
    intersection in execution (cheapest-first) order. *)

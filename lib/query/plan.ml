module Pre_plane = Xvi_xml.Pre_plane

type node = Xvi_xml.Store.node

type access = {
  label : string;
  estimate : int;
  cursor : unit -> Cursor.t;
  native : unit -> node list;
  check : node -> bool;
}

type provider = {
  universe : unit -> int;
  node_range : unit -> int;
  plane : unit -> Pre_plane.t;
  access : Ir.t -> access option;
  verify : Ir.t -> node -> bool;
}

type t =
  | Empty
  | Leaf of access
  | Inter of t list  (* estimate-ascending; the head drives the merge *)
  | Union of t list
  | Filter of t * residual list  (* index-less conjuncts, verified per hit *)
  | Staircase of {
      scope : node;
      card : int;  (* scope subtree cardinality, for the estimate *)
      in_scope : node -> bool;  (* O(1) pre-range check, plane captured *)
      inner : t;
    }
  | Scan of scan

and residual = { r_pred : Ir.t; r_check : node -> bool }

and scan = {
  p : provider;
  pred : Ir.t;
  s_scope : node option;  (* restrict the scan to a subtree *)
  est : int;
}

let rec estimate = function
  | Empty -> 0
  | Leaf a -> a.estimate
  | Inter ts ->
      List.fold_left (fun acc t -> min acc (estimate t)) max_int ts
  | Union ts -> List.fold_left (fun acc t -> acc + estimate t) 0 ts
  | Filter (inner, _) -> estimate inner
  | Staircase s -> min s.card (estimate s.inner)
  | Scan s -> s.est

(* Can this plan shape produce a cursor without a universe scan? *)
let rec index_served = function
  | Empty | Leaf _ -> true
  | Inter ts | Union ts -> List.for_all index_served ts
  | Filter (inner, _) -> index_served inner
  | Staircase s -> index_served s.inner
  | Scan _ -> false

let is_leaf_term = function
  | Ir.String_eq _ | Ir.Typed_range _ | Ir.Contains _ | Ir.Element_contains _
  | Ir.Named _ ->
      true
  | _ -> false

let scan p pred = Scan { p; pred; s_scope = None; est = p.universe () }

(* Attach a [Within scope] restriction: a staircase filter on the
   cheapest cursor of an intersection, a single filter above a union,
   and a subtree-bounded domain for scans. [card] (scope subtree size)
   tightens the estimate so an enclosing conjunction still orders its
   children correctly. *)
let rec push_within plane scope plan =
  let card = 1 + Pre_plane.size plane scope in
  let staircase inner =
    Staircase
      {
        scope;
        card;
        in_scope = (fun n -> Pre_plane.in_subtree plane ~scope n);
        inner;
      }
  in
  match plan with
  | Empty -> Empty
  | Inter (cheapest :: rest) ->
      Inter (push_within plane scope cheapest :: rest)
  | Filter (inner, residuals) ->
      Filter (push_within plane scope inner, residuals)
  | Scan ({ s_scope = None; _ } as s) ->
      Scan { s with s_scope = Some scope; est = min s.est card }
  | (Leaf _ | Union _ | Staircase _ | Scan _ | Inter []) as inner ->
      staircase inner

let by_estimate a b = Int.compare (estimate a) (estimate b)

let rec plan p ir =
  match ir with
  | Ir.All -> scan p Ir.All
  | Ir.Typed_range (_, r) when Range.nan_bound r -> Empty
  | leaf when is_leaf_term leaf -> (
      match p.access leaf with
      | Some a -> Leaf a
      | None -> scan p leaf)
  | Ir.Not _ -> scan p ir
  | Ir.Within (scope, q) ->
      let plane = p.plane () in
      if Pre_plane.pre plane scope < 0 then Empty
      else push_within plane scope (plan p q)
  | Ir.And qs -> plan_and p qs
  | Ir.Or qs -> plan_or p qs
  | _ -> scan p ir

and plan_and p qs =
  let qs = List.filter (fun q -> q <> Ir.All) qs in
  let plans = List.map (fun q -> (q, plan p q)) qs in
  if List.exists (fun (_, pl) -> pl = Empty) plans then Empty
  else
    let served, residual =
      List.partition (fun (_, pl) -> index_served pl) plans
    in
    match served with
    | [] -> scan p (Ir.And qs)
    | _ ->
        let inner =
          match List.sort by_estimate (List.map snd served) with
          | [ one ] -> one
          | many -> Inter many
        in
        if residual = [] then inner
        else
          Filter
            ( inner,
              List.map
                (fun (q, _) -> { r_pred = q; r_check = p.verify q })
                residual )

and plan_or p qs =
  let plans = List.filter (fun pl -> pl <> Empty) (List.map (plan p) qs) in
  match plans with
  | [] -> Empty
  | [ one ] -> one
  | many ->
      (* one verified scan beats unioning any scan with anything *)
      if List.for_all index_served many then
        Union (List.sort by_estimate many)
      else scan p (Ir.Or qs)

(* --- Execution --- *)

let scan_cursor s =
  match s.s_scope with
  | None ->
      let range = s.p.node_range () in
      let n = ref 0 in
      let rec pull () =
        if !n >= range then None
        else
          let id = !n in
          incr n;
          if s.p.verify s.pred id then Some id else pull ()
      in
      pull
  | Some scope ->
      (* subtree domain: pull the plane's pre-order cursor, verify, and
         re-sort to node order lazily for merge compatibility *)
      Cursor.of_lazy_list (fun () ->
          let sub = Pre_plane.subtree_cursor (s.p.plane ()) scope in
          let rec collect acc =
            match sub () with
            | None -> List.sort Int.compare acc
            | Some n ->
                collect (if s.p.verify s.pred n then n :: acc else acc)
          in
          collect [])

let rec cursor = function
  | Empty -> Cursor.empty
  | Leaf a -> a.cursor ()
  | Inter ts -> Cursor.inter (List.map cursor ts)
  | Union ts -> Cursor.union (List.map cursor ts)
  | Filter (inner, residuals) ->
      Cursor.filter
        (fun n -> List.for_all (fun r -> r.r_check n) residuals)
        (cursor inner)
  | Staircase s -> Cursor.filter s.in_scope (cursor s.inner)
  | Scan s -> scan_cursor s

(* Per-element execution costs in nanoseconds, measured by the planner
   micro-calibration in the [storage] bench experiment. [cursor_step_ns]
   is the cost of pulling one element through a leapfrog merge cursor —
   closure dispatch, an option allocation per step, and the lazy node-
   order sort a value-ordered leaf performs on first pull.
   [check_step_ns] is one membership probe — a hashtable lookup on
   unboxed int keys, the dominant cost of a leaf [check]. Re-run [bench
   storage] and update these after any change to {!Cursor} or to the
   index native paths; the ratio, not the absolute values, decides the
   plan. *)
let cursor_step_ns = 698.7
let check_step_ns = 487.4

(* Materialized intersection of leaf accesses: the cheapest leaf's
   native list drives, and every candidate is probed against the other
   leaves' [check] predicates — the larger inputs are never materialized
   (no list allocation, no key decoding). [check] holds for exactly the
   set each cursor enumerates, so sorting the survivors reproduces
   [Cursor.inter]'s ascending duplicate-free output bit for bit. *)
let native_inter accs =
  (* The leaf estimates are exact index counts, so ordering by them
     avoids measuring any materialized list. *)
  match List.sort (fun a b -> Int.compare a.estimate b.estimate) accs with
  | [] -> []
  | driver :: rest ->
      List.sort_uniq Int.compare
        (List.filter
           (fun n -> List.for_all (fun a -> a.check n) rest)
           (driver.native ()))

let run_list t =
  match t with
  | Leaf a -> a.native ()
  | Inter ts when List.for_all (function Leaf _ -> true | _ -> false) ts ->
      (* The streaming merge touches every element of every input
         ([Cursor.inter]'s catch-up walks are linear, and [run_list]
         consumes the whole merge, so laziness buys nothing); the
         probe-driven intersection touches only the cheapest input, at
         (k-1) probes per candidate. The merge remains the only shape
         for composite plans and for {!run_seq}, where early
         termination and bounded memory do matter. *)
      let accs = List.map (function Leaf a -> a | _ -> assert false) ts in
      let smallest, total =
        List.fold_left
          (fun (m, s) a -> (min m a.estimate, s + a.estimate))
          (max_int, 0) accs
      in
      let probes = smallest * (List.length accs - 1) in
      if float_of_int probes *. check_step_ns
         < float_of_int total *. cursor_step_ns
      then native_inter accs
      else Cursor.to_list (cursor t)
  | _ -> Cursor.to_list (cursor t)

let run_seq t = Cursor.to_seq (cursor t)

(* --- Explain --- *)

let describe t =
  match t with
  | Empty -> "empty (est 0)"
  | Leaf a -> Printf.sprintf "%s (est %d)" a.label a.estimate
  | Inter ts ->
      Printf.sprintf "intersect [%d inputs, cheapest drives] (est %d)"
        (List.length ts) (estimate t)
  | Union ts ->
      Printf.sprintf "union [%d inputs, merge on node order] (est %d)"
        (List.length ts) (estimate t)
  | Filter (_, rs) ->
      Printf.sprintf "verify residual [%s] (est %d)"
        (String.concat "; " (List.map (fun r -> Ir.to_string r.r_pred) rs))
        (estimate t)
  | Staircase s ->
      Printf.sprintf "staircase within #%d (subtree card %d)" s.scope s.card
  | Scan s -> (
      match s.s_scope with
      | None ->
          Printf.sprintf "scan+verify %s (est %d, no index)"
            (Ir.to_string s.pred) s.est
      | Some scope ->
          Printf.sprintf "scan subtree #%d +verify %s (est %d, no index)"
            scope (Ir.to_string s.pred) s.est)

let explain t =
  let buf = Buffer.create 256 in
  let rec go prefix child_prefix t =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (describe t);
    Buffer.add_char buf '\n';
    let children =
      match t with
      | Inter ts | Union ts -> ts
      | Filter (inner, _) | Staircase { inner; _ } -> [ inner ]
      | _ -> []
    in
    let rec each = function
      | [] -> ()
      | [ last ] ->
          go (child_prefix ^ "`- ") (child_prefix ^ "   ") last
      | c :: rest ->
          go (child_prefix ^ "|- ") (child_prefix ^ "|  ") c;
          each rest
    in
    each children
  in
  go "" "" t;
  Buffer.contents buf

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect ?(wait_s = 5.0) ~socket () =
  let deadline = Xvi_util.Timing.now_s () +. wait_s in
  let rec attempt () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok { fd; closed = false }
    | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        if Xvi_util.Timing.now_s () < deadline then begin
          Unix.sleepf 0.02;
          attempt ()
        end
        else
          Error
            (Printf.sprintf "cannot connect to %s: %s" socket
               (Unix.error_message e))
  in
  attempt ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end

let request t req =
  if t.closed then Error "client is closed"
  else
    match Protocol.write_frame t.fd (Protocol.encode_request req) with
    | () -> (
        match Protocol.read_frame t.fd with
        | Ok payload -> Protocol.decode_response payload
        | Error `Closed -> Error "server closed the connection"
        | Error (`Malformed m) -> Error ("malformed response frame: " ^ m))
    | exception Unix.Unix_error (e, _, _) ->
        Error (Unix.error_message e)

(* --- typed round trips --- *)

let reject = function
  | Protocol.Err m -> Error m
  | Protocol.Conflict_r { node; reason } ->
      Error (Printf.sprintf "conflict on node %d: %s" node reason)
  | r ->
      Error
        (Printf.sprintf "unexpected response %S" (Protocol.encode_response r))

let epoch_rt t req =
  match request t req with
  | Ok (Protocol.Epoch { epoch; lsn; commits }) -> Ok (epoch, lsn, commits)
  | Ok r -> reject r
  | Error _ as e -> e

let hello t = epoch_rt t Protocol.Hello
let pin t = epoch_rt t Protocol.Pin

let nodes_rt t req =
  match request t req with
  | Ok (Protocol.Nodes ids) -> Ok ids
  | Ok r -> reject r
  | Error _ as e -> e

let lookup_string t v = nodes_rt t (Protocol.Lookup_string v)
let lookup_contains t v = nodes_rt t (Protocol.Lookup_contains v)
let lookup_named t v = nodes_rt t (Protocol.Lookup_named v)
let lookup_typed t ty lo hi = nodes_rt t (Protocol.Lookup_typed (ty, lo, hi))

let value t n =
  match request t (Protocol.Value n) with
  | Ok (Protocol.Value_r v) -> Ok v
  | Ok r -> reject r
  | Error _ as e -> e

let unit_rt t req =
  match request t req with
  | Ok Protocol.Ok_ -> Ok ()
  | Ok r -> reject r
  | Error _ as e -> e

let begin_ t = unit_rt t Protocol.Begin
let set t n v = unit_rt t (Protocol.Set (n, v))
let abort t = unit_rt t Protocol.Abort
let sync t = unit_rt t Protocol.Sync

let lsn_rt t req =
  match request t req with
  | Ok (Protocol.Lsn lsn) -> Ok lsn
  | Ok r -> reject r
  | Error _ as e -> e

let commit ?(durable = true) t =
  lsn_rt t (if durable then Protocol.Commit else Protocol.Commit_deferred)

let delete t n = lsn_rt t (Protocol.Delete n)

let insert t ~parent frag =
  match request t (Protocol.Insert (parent, frag)) with
  | Ok (Protocol.Nodes_lsn (ids, lsn)) -> Ok (ids, lsn)
  | Ok r -> reject r
  | Error _ as e -> e

let stats t =
  match request t Protocol.Stats with
  | Ok (Protocol.Stats_r kvs) -> Ok kvs
  | Ok r -> reject r
  | Error _ as e -> e

(* --- replication round trips --- *)

type repl_info = {
  role : string;
  last_lsn : int;
  durable_lsn : int;
  checkpoint_lsn : int;
  applied_lsn : int;
  leader_lsn : int;
}

let repl_info t =
  match request t Protocol.Repl_info with
  | Ok
      (Protocol.Repl_info_r
         { role; last_lsn; durable_lsn; checkpoint_lsn; applied_lsn; leader_lsn })
    ->
      Ok { role; last_lsn; durable_lsn; checkpoint_lsn; applied_lsn; leader_lsn }
  | Ok r -> reject r
  | Error _ as e -> e

let repl_snapshot t ~offset =
  match request t (Protocol.Repl_snapshot offset) with
  | Ok (Protocol.Chunk { total; data }) -> Ok (data, total)
  | Ok r -> reject r
  | Error _ as e -> e

let repl_pull t ~from_lsn ~max_bytes =
  match request t (Protocol.Repl_pull { from_lsn; max_bytes }) with
  | Ok (Protocol.Frames_r { durable_lsn; data }) -> Ok (`Frames (data, durable_lsn))
  | Ok (Protocol.Snapshot_needed_r base) -> Ok (`Snapshot_needed base)
  | Ok r -> reject r
  | Error _ as e -> e

let repl_digest t ~anchor lsn =
  match request t (Protocol.Repl_digest { anchor; lsn }) with
  | Ok (Protocol.Digest_r (Some hex)) -> Ok (`Digest hex)
  | Ok (Protocol.Digest_r None) -> Ok `Missing
  | Ok (Protocol.Snapshot_needed_r base) -> Ok (`Snapshot_needed base)
  | Ok r -> reject r
  | Error _ as e -> e

let promote t = unit_rt t Protocol.Promote

let bye_rt t req =
  match request t req with
  | Ok Protocol.Bye ->
      close t;
      Ok ()
  | Ok r ->
      close t;
      reject r
  | Error _ as e ->
      close t;
      e

let quit t = bye_rt t Protocol.Quit
let shutdown t = bye_rt t Protocol.Shutdown

type request =
  | Hello
  | Pin
  | Lookup_string of string
  | Lookup_contains of string
  | Lookup_element_contains of string
  | Lookup_named of string
  | Lookup_typed of string * float option * float option
  | Value of int
  | Begin
  | Set of int * string
  | Commit
  | Commit_deferred
  | Abort
  | Insert of int * string
  | Delete of int
  | Stats
  | Sync
  | Quit
  | Shutdown
  | Repl_info
  | Repl_snapshot of int  (** byte offset into the snapshot file *)
  | Repl_pull of { from_lsn : int; max_bytes : int }
  | Repl_digest of { anchor : int; lsn : int }
      (** chain digest over the log prefix [anchor..lsn] *)
  | Promote

type response =
  | Ok_
  | Epoch of { epoch : int; lsn : int; commits : int }
  | Nodes of int list
  | Nodes_lsn of int list * int
  | Value_r of string
  | Lsn of int
  | Stats_r of (string * string) list
  | Conflict_r of { node : int; reason : string }
  | Err of string
  | Bye
  | Repl_info_r of {
      role : string;
      last_lsn : int;
      durable_lsn : int;
      checkpoint_lsn : int;
      applied_lsn : int;
      leader_lsn : int;
    }
  | Chunk of { total : int; data : string }
  | Frames_r of { durable_lsn : int; data : string }
  | Digest_r of string option
      (** chain digest in hex; [None] = log does not span the range *)
  | Snapshot_needed_r of int  (** records [<= base] only exist in a snapshot *)

(* --- token escaping --- *)

(* '=' is structural: stats pairs are spelled <key>=<value> and decoded
   at the first raw '=', so escaped tokens must never contain one *)
let must_escape c =
  let b = Char.code c in
  b < 0x21 || b = 0x7f || c = '%' || c = '='

let escape s =
  if String.for_all (fun c -> not (must_escape c)) s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] <> '%' then begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
    else if i + 2 >= n then Error "truncated %-escape"
    else
      match (hex_val s.[i + 1], hex_val s.[i + 2]) with
      | Some hi, Some lo ->
          Buffer.add_char buf (Char.chr ((hi * 16) + lo));
          go (i + 3)
      | _ -> Error (Printf.sprintf "bad %%-escape at offset %d" i)
  in
  go 0

(* --- tokens --- *)

(* empty tokens are kept: an empty string argument escapes to an empty
   token (e.g. "lookup-string " is a lookup for ""), so splitting must
   not swallow it. Encoders never emit doubled spaces. *)
let split line = if line = "" then [] else String.split_on_char ' ' line
let join = String.concat " "

let bound_to_token = function
  | None -> "_"
  | Some v -> Printf.sprintf "%.17g" v

let bound_of_token = function
  | "_" -> Ok None
  | tok -> (
      match float_of_string_opt tok with
      | Some v -> Ok (Some v)
      | None -> Error (Printf.sprintf "bad float %S" tok))

let int_of_token tok =
  match int_of_string_opt tok with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad integer %S" tok)

(* --- requests --- *)

let encode_request = function
  | Hello -> "hello"
  | Pin -> "pin"
  | Lookup_string v -> join [ "lookup-string"; escape v ]
  | Lookup_contains v -> join [ "lookup-contains"; escape v ]
  | Lookup_element_contains v -> join [ "lookup-element-contains"; escape v ]
  | Lookup_named v -> join [ "lookup-named"; escape v ]
  | Lookup_typed (ty, lo, hi) ->
      join [ "lookup-typed"; escape ty; bound_to_token lo; bound_to_token hi ]
  | Value n -> join [ "value"; string_of_int n ]
  | Begin -> "begin"
  | Set (n, v) -> join [ "set"; string_of_int n; escape v ]
  | Commit -> "commit"
  | Commit_deferred -> "commit-deferred"
  | Abort -> "abort"
  | Insert (parent, frag) -> join [ "insert"; string_of_int parent; escape frag ]
  | Delete n -> join [ "delete"; string_of_int n ]
  | Stats -> "stats"
  | Sync -> "sync"
  | Quit -> "quit"
  | Shutdown -> "shutdown"
  | Repl_info -> "repl-info"
  | Repl_snapshot offset -> join [ "repl-snapshot"; string_of_int offset ]
  | Repl_pull { from_lsn; max_bytes } ->
      join [ "repl-pull"; string_of_int from_lsn; string_of_int max_bytes ]
  | Repl_digest { anchor; lsn } ->
      join [ "repl-digest"; string_of_int anchor; string_of_int lsn ]
  | Promote -> "promote"

let ( let* ) = Result.bind

let decode_request line =
  match split line with
  | [ "hello" ] -> Ok Hello
  | [ "pin" ] -> Ok Pin
  | [ "lookup-string"; v ] ->
      let* v = unescape v in
      Ok (Lookup_string v)
  | [ "lookup-contains"; v ] ->
      let* v = unescape v in
      Ok (Lookup_contains v)
  | [ "lookup-element-contains"; v ] ->
      let* v = unescape v in
      Ok (Lookup_element_contains v)
  | [ "lookup-named"; v ] ->
      let* v = unescape v in
      Ok (Lookup_named v)
  | [ "lookup-typed"; ty; lo; hi ] ->
      let* ty = unescape ty in
      let* lo = bound_of_token lo in
      let* hi = bound_of_token hi in
      Ok (Lookup_typed (ty, lo, hi))
  | [ "value"; n ] ->
      let* n = int_of_token n in
      Ok (Value n)
  | [ "begin" ] -> Ok Begin
  | [ "set"; n; v ] ->
      let* n = int_of_token n in
      let* v = unescape v in
      Ok (Set (n, v))
  | [ "commit" ] -> Ok Commit
  | [ "commit-deferred" ] -> Ok Commit_deferred
  | [ "abort" ] -> Ok Abort
  | [ "insert"; parent; frag ] ->
      let* parent = int_of_token parent in
      let* frag = unescape frag in
      Ok (Insert (parent, frag))
  | [ "delete"; n ] ->
      let* n = int_of_token n in
      Ok (Delete n)
  | [ "stats" ] -> Ok Stats
  | [ "sync" ] -> Ok Sync
  | [ "quit" ] -> Ok Quit
  | [ "shutdown" ] -> Ok Shutdown
  | [ "repl-info" ] -> Ok Repl_info
  | [ "repl-snapshot"; off ] ->
      let* off = int_of_token off in
      Ok (Repl_snapshot off)
  | [ "repl-pull"; from_lsn; max_bytes ] ->
      let* from_lsn = int_of_token from_lsn in
      let* max_bytes = int_of_token max_bytes in
      Ok (Repl_pull { from_lsn; max_bytes })
  | [ "repl-digest"; anchor; lsn ] ->
      let* anchor = int_of_token anchor in
      let* lsn = int_of_token lsn in
      Ok (Repl_digest { anchor; lsn })
  | [ "promote" ] -> Ok Promote
  | cmd :: _ -> Error (Printf.sprintf "unknown or malformed request %S" cmd)
  | [] -> Error "empty request"

(* --- responses --- *)

let encode_response = function
  | Ok_ -> "ok"
  | Epoch { epoch; lsn; commits } ->
      join [ "epoch"; string_of_int epoch; string_of_int lsn; string_of_int commits ]
  | Nodes ids ->
      join ("nodes" :: string_of_int (List.length ids) :: List.map string_of_int ids)
  | Nodes_lsn (ids, lsn) ->
      join
        ("nodes-lsn" :: string_of_int lsn
        :: string_of_int (List.length ids)
        :: List.map string_of_int ids)
  | Value_r v -> join [ "value"; escape v ]
  | Lsn lsn -> join [ "lsn"; string_of_int lsn ]
  | Stats_r kvs ->
      join ("stats" :: List.map (fun (k, v) -> escape k ^ "=" ^ escape v) kvs)
  | Conflict_r { node; reason } ->
      join [ "conflict"; string_of_int node; escape reason ]
  | Err m -> join [ "err"; escape m ]
  | Bye -> "bye"
  | Repl_info_r { role; last_lsn; durable_lsn; checkpoint_lsn; applied_lsn; leader_lsn } ->
      join
        [
          "repl-info"; escape role; string_of_int last_lsn;
          string_of_int durable_lsn; string_of_int checkpoint_lsn;
          string_of_int applied_lsn; string_of_int leader_lsn;
        ]
  | Chunk { total; data } -> join [ "chunk"; string_of_int total; escape data ]
  | Frames_r { durable_lsn; data } ->
      join [ "frames"; string_of_int durable_lsn; escape data ]
  | Digest_r None -> join [ "digest"; "_" ]
  | Digest_r (Some hex) -> join [ "digest"; escape hex ]
  | Snapshot_needed_r base -> join [ "snapshot-needed"; string_of_int base ]

let rec ints_of_tokens acc = function
  | [] -> Ok (List.rev acc)
  | tok :: rest ->
      let* n = int_of_token tok in
      ints_of_tokens (n :: acc) rest

let decode_response line =
  match split line with
  | [ "ok" ] -> Ok Ok_
  | [ "epoch"; e; l; c ] ->
      let* epoch = int_of_token e in
      let* lsn = int_of_token l in
      let* commits = int_of_token c in
      Ok (Epoch { epoch; lsn; commits })
  | "nodes" :: count :: ids ->
      let* count = int_of_token count in
      let* ids = ints_of_tokens [] ids in
      if List.length ids <> count then Error "nodes: count mismatch"
      else Ok (Nodes ids)
  | "nodes-lsn" :: lsn :: count :: ids ->
      let* lsn = int_of_token lsn in
      let* count = int_of_token count in
      let* ids = ints_of_tokens [] ids in
      if List.length ids <> count then Error "nodes-lsn: count mismatch"
      else Ok (Nodes_lsn (ids, lsn))
  | [ "value"; v ] ->
      let* v = unescape v in
      Ok (Value_r v)
  | [ "value" ] -> Ok (Value_r "")
  | [ "lsn"; l ] ->
      let* lsn = int_of_token l in
      Ok (Lsn lsn)
  | "stats" :: kvs ->
      let* kvs =
        List.fold_left
          (fun acc kv ->
            let* acc = acc in
            match String.index_opt kv '=' with
            | None -> Error (Printf.sprintf "stats: bad pair %S" kv)
            | Some i ->
                let* k = unescape (String.sub kv 0 i) in
                let* v =
                  unescape (String.sub kv (i + 1) (String.length kv - i - 1))
                in
                Ok ((k, v) :: acc))
          (Ok []) kvs
      in
      Ok (Stats_r (List.rev kvs))
  | [ "conflict"; n; reason ] ->
      let* node = int_of_token n in
      let* reason = unescape reason in
      Ok (Conflict_r { node; reason })
  | [ "err"; m ] ->
      let* m = unescape m in
      Ok (Err m)
  | [ "bye" ] -> Ok Bye
  | [ "repl-info"; role; last; durable; ckpt; applied; leader ] ->
      let* role = unescape role in
      let* last_lsn = int_of_token last in
      let* durable_lsn = int_of_token durable in
      let* checkpoint_lsn = int_of_token ckpt in
      let* applied_lsn = int_of_token applied in
      let* leader_lsn = int_of_token leader in
      Ok
        (Repl_info_r
           { role; last_lsn; durable_lsn; checkpoint_lsn; applied_lsn; leader_lsn })
  | [ "chunk"; total; data ] ->
      let* total = int_of_token total in
      let* data = unescape data in
      Ok (Chunk { total; data })
  | [ "frames"; durable_lsn; data ] ->
      let* durable_lsn = int_of_token durable_lsn in
      let* data = unescape data in
      Ok (Frames_r { durable_lsn; data })
  | [ "digest"; "_" ] -> Ok (Digest_r None)
  | [ "digest"; hex ] ->
      let* hex = unescape hex in
      Ok (Digest_r (Some hex))
  | [ "snapshot-needed"; base ] ->
      let* base = int_of_token base in
      Ok (Snapshot_needed_r base)
  | cmd :: _ -> Error (Printf.sprintf "unknown or malformed response %S" cmd)
  | [] -> Error "empty response"

(* --- framing --- *)

let max_frame = 16 * 1024 * 1024

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

let write_frame fd payload =
  write_all fd (Printf.sprintf "%d\n%s" (String.length payload) payload)

let read_byte fd =
  let b = Bytes.create 1 in
  match Unix.read fd b 0 1 with 0 -> None | _ -> Some (Bytes.get b 0)

let read_frame fd =
  (* length line: a short decimal, then '\n' *)
  let buf = Buffer.create 12 in
  let rec read_len () =
    match read_byte fd with
    | None -> if Buffer.length buf = 0 then Error `Closed else Error (`Malformed "eof inside frame header")
    | Some '\n' -> (
        match int_of_string_opt (Buffer.contents buf) with
        | Some n when n >= 0 && n <= max_frame -> Ok n
        | Some n -> Error (`Malformed (Printf.sprintf "frame length %d out of bounds" n))
        | None -> Error (`Malformed (Printf.sprintf "bad frame header %S" (Buffer.contents buf))))
    | Some c ->
        if Buffer.length buf > 10 then Error (`Malformed "frame header too long")
        else begin
          Buffer.add_char buf c;
          read_len ()
        end
  in
  match read_len () with
  | Error _ as e -> e
  | Ok len ->
      let payload = Bytes.create len in
      let rec fill off =
        if off >= len then Ok (Bytes.unsafe_to_string payload)
        else
          match Unix.read fd payload off (len - off) with
          | 0 -> Error (`Malformed "eof inside frame payload")
          | k -> fill (off + k)
      in
      fill 0

(** The `xvi serve` network front end: a Unix-domain socket speaking
    {!Protocol}, one {!Session} (and one domain) per connection.

    Readers scale by connection count: each connection's session pins
    epochs lock-free, so queries from N clients run on N domains with no
    shared state but the epoch cell. All writes funnel into the engine's
    single writer; concurrent commits share fsyncs through the engine's
    group-commit machinery.

    Shutdown is cooperative: a client sends [shutdown] (or the embedding
    process calls {!request_stop}), the accept loop drains, every open
    connection is joined, and the socket file is removed. *)

type t

type repl = {
  role : string;  (** ["leader"] or ["follower"], for logs and stats *)
  info : unit -> Protocol.response;
  snapshot_chunk : offset:int -> Protocol.response;
  pull : from_lsn:int -> max_bytes:int -> Protocol.response;
  frame_digest : anchor:int -> int -> Protocol.response;
  promote : unit -> ((Engine.t * repl) option, string) result;
      (** [Ok (Some (e, r))]: install [e] as the serving engine and [r]
          as the replication handler — a follower just became the
          leader. New connections see the new engine; connections opened
          against the replica keep their read-only pins. [Ok None]: the
          node already was the leader (idempotent). *)
  stats_extra : unit -> (string * string) list;
}
(** How replication requests are answered. The server only routes; the
    logic (tailing, chunking, watermark accounting) is provided by the
    replication layer ({!Xvi_repl}) so [lib/serve] stays free of any
    dependency on it. Without a handler every repl verb answers
    [err replication not enabled]. *)

val create :
  ?log:(string -> unit) ->
  ?repl:repl ->
  engine:Engine.t ->
  socket:string ->
  unit ->
  (t, string) result
(** Bind and listen on [socket] (an existing stale socket file is
    replaced). [log] receives one line per lifecycle event; default
    silence. The engine is borrowed, not owned — {!run} does not close
    it (after a promotion {!engine} returns the handle the caller must
    close instead). *)

val socket : t -> string

val engine : t -> Engine.t
(** The engine currently serving new connections — the one {!create}
    received, or the one the last successful promotion installed. *)

val set_repl : t -> repl option -> unit
(** Swap the replication handler (a promotion turns a follower's
    handler into a leader's). Takes effect on the next request. *)

val set_engine : t -> Engine.t -> unit
(** Point new connections at a replacement engine. {!Protocol.Promote}
    does this itself through the [repl.promote] return value; this entry
    point exists for engine swaps that originate outside a request —
    e.g. a follower re-seeding itself from a fresh snapshot after the
    leader checkpointed away the frames it still needed. Existing
    connections keep their pins on the old engine; the caller owns
    closing it once they drain. *)

val run : t -> unit
(** Accept and serve until a [shutdown] request (or {!request_stop})
    arrives; then join every connection domain, close and unlink the
    socket, and return. Runs on the calling domain. *)

val request_stop : t -> unit
(** Ask {!run} to wind down (thread-safe, returns immediately). *)

(** The `xvi serve` network front end: a Unix-domain socket speaking
    {!Protocol}, one {!Session} (and one domain) per connection.

    Readers scale by connection count: each connection's session pins
    epochs lock-free, so queries from N clients run on N domains with no
    shared state but the epoch cell. All writes funnel into the engine's
    single writer; concurrent commits share fsyncs through the engine's
    group-commit machinery.

    Shutdown is cooperative: a client sends [shutdown] (or the embedding
    process calls {!request_stop}), the accept loop drains, every open
    connection is joined, and the socket file is removed. *)

type t

val create :
  ?log:(string -> unit) ->
  engine:Engine.t ->
  socket:string ->
  unit ->
  (t, string) result
(** Bind and listen on [socket] (an existing stale socket file is
    replaced). [log] receives one line per lifecycle event; default
    silence. The engine is borrowed, not owned — {!run} does not close
    it. *)

val socket : t -> string

val run : t -> unit
(** Accept and serve until a [shutdown] request (or {!request_stop})
    arrives; then join every connection domain, close and unlink the
    socket, and return. Runs on the calling domain. *)

val request_stop : t -> unit
(** Ask {!run} to wind down (thread-safe, returns immediately). *)

(** One logical client of an {!Engine}: a pinned read epoch plus at most
    one open transaction.

    Lifecycle: {!create} pins the newest epoch; every read answers from
    that pinned database — immutable, lock-free, unaffected by
    concurrent commits — until the session repins ({!refresh}, or
    automatically after its own successful commit, so a client reads its
    own writes). Writes are staged with {!begin_} / {!stage} and
    serialised through the engine's single writer by {!commit}.

    Sessions multiplex: any number may exist concurrently (the server
    gives each connection one); a single session is {e not} itself
    thread-safe — it models one client. *)

type t

type node = Xvi_xml.Store.node

val create : Engine.t -> t

val engine : t -> Engine.t

val pinned : t -> Engine.pinned
(** The epoch this session currently reads. *)

val db : t -> Xvi_core.Db.t
(** The pinned database — use any {!Xvi_core.Db} read on it directly. *)

val refresh : t -> Engine.pinned
(** Repin to the newest published epoch ({!Engine.pin}; lock-free). *)

(** {1 Reads} — all answered at the pinned epoch, never blocking. *)

val lookup_string : t -> string -> node list
val lookup_contains : t -> string -> node list
val lookup_element_contains : t -> string -> node list
val elements_named : t -> string -> node list

val lookup_typed :
  t -> string -> Xvi_query.Range.t -> (node list, Engine.error) result

val query : t -> Xvi_query.Ir.t -> (node list, Engine.error) result

val string_value : t -> node -> (string, Engine.error) result
(** XDM string value of a live node of the pinned epoch. *)

(** {1 Writes} *)

val begin_ : t -> (unit, Engine.error) result
(** Open the session's transaction. [Error (Invalid _)] if one is
    already open. *)

val in_txn : t -> bool

val stage : t -> node -> string -> (unit, Engine.error) result
(** Buffer a text/attribute write in the open transaction. *)

val commit : ?durable:bool -> t -> (Xvi_wal.Wal.lsn, Engine.error) result
(** Commit the open transaction through the engine's writer; [Error
    (Conflict _)] is the first-committer-wins loss. With [durable] (the
    default) the call blocks until the commit's log record is fsynced —
    group commit batches concurrent sessions behind one fsync — and
    then repins so the session sees its own write (guaranteed when the
    engine publishes at every durable boundary, i.e. [publish_period =
    0.]). [durable:false] returns as soon as the commit is applied; the
    ack promises nothing a crash can't undo. *)

val abort : t -> unit
(** Drop the open transaction, if any. Never fails. *)

val insert_xml :
  t -> parent:node -> string -> (node list * Xvi_wal.Wal.lsn, Engine.error) result
(** Structural write-through (auto-repins on success). Rejected while a
    transaction is open — structural ops are single-op transactions. *)

val delete_subtree : t -> node -> (Xvi_wal.Wal.lsn, Engine.error) result

val close : t -> unit
(** Abort any open transaction. The pinned epoch needs no release —
    epochs are garbage-collected when the last session lets go. *)

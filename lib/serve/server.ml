module Range = Xvi_query.Range

type client = {
  dom : unit Domain.t;
  cfd : Unix.file_descr;
  alive : bool Atomic.t;
      (** who closes [cfd]: the handler normally; the shutdown drain
          when it must wake a handler blocked in a read *)
}

(* Replication is served through the same request loop, but its logic
   lives a layer up (Xvi_repl) — the server only routes. [promote]
   returns the replacement engine when a follower becomes the leader;
   the server publishes it so every *new* connection serves writable
   sessions, while connections opened against the replica keep their
   (read-only, still valid) pins. *)
type repl = {
  role : string;  (** "leader" or "follower", for logs and stats *)
  info : unit -> Protocol.response;
  snapshot_chunk : offset:int -> Protocol.response;
  pull : from_lsn:int -> max_bytes:int -> Protocol.response;
  frame_digest : anchor:int -> int -> Protocol.response;
  promote : unit -> ((Engine.t * repl) option, string) result;
  stats_extra : unit -> (string * string) list;
}

type t = {
  engine : Engine.t Atomic.t;
  socket_path : string;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  log : string -> unit;
  clients_lock : Mutex.t;
  mutable clients : client list;
  mutable repl : repl option;
}

let socket t = t.socket_path
let engine t = Atomic.get t.engine
let request_stop t = Atomic.set t.stop true
let set_repl t repl = t.repl <- repl
let set_engine t e = Atomic.set t.engine e
[@@xvi.lint.allow
  "D1: engine swap is a single-word atomic publication; request loops \
   re-read the cell per request, so no lock is needed"]

let create ?(log = fun (_ : string) -> ()) ?repl ~engine ~socket () =
  (* a peer that dies mid-frame must surface as EPIPE on the write —
     not as a process-killing SIGPIPE; every socket program in this
     process shares the disposition, which is the posture they all want *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    (* a stale socket file from a crashed server would fail the bind *)
    if Sys.file_exists socket then Unix.unlink socket;
    Unix.bind fd (Unix.ADDR_UNIX socket);
    Unix.listen fd 64
  with
  | () ->
      log (Printf.sprintf "listening on %s" socket);
      Ok
        {
          engine = Atomic.make engine;
          socket_path = socket;
          listen_fd = fd;
          stop = Atomic.make false;
          log;
          clients_lock = Mutex.create ();
          clients = [];
          repl;
        }
  | exception Unix.Unix_error (e, fn, _) ->
      Unix.close fd;
      Error
        (Printf.sprintf "cannot listen on %s: %s (%s)" socket
           (Unix.error_message e) fn)

(* --- request execution against one session --- *)

let range_of_bounds lo hi =
  match (lo, hi) with
  | None, None -> Range.any
  | Some lo, None -> Range.at_least lo
  | None, Some hi -> Range.at_most hi
  | Some lo, Some hi -> Range.between lo hi

let epoch_response (pin : Engine.pinned) =
  Protocol.Epoch
    { epoch = pin.Engine.epoch; lsn = pin.Engine.lsn; commits = pin.Engine.commits }

let error_response = function
  | Engine.Conflict c ->
      Protocol.Conflict_r { node = c.Xvi_txn.Txn.node; reason = c.Xvi_txn.Txn.reason }
  | e -> Protocol.Err (Engine.error_to_string e)

let stats_pairs t =
  let s = Engine.stats (engine t) in
  let base =
    [
      ("epoch", string_of_int s.Engine.epoch);
      ("commits", string_of_int s.Engine.commits);
      ("last_lsn", string_of_int s.Engine.last_lsn);
      ("durable_lsn", string_of_int s.Engine.durable_lsn);
      ("txn_committed", string_of_int s.Engine.txn.Xvi_txn.Txn.committed);
      ("txn_conflicts", string_of_int s.Engine.txn.Xvi_txn.Txn.conflicts);
    ]
  in
  let base =
    match s.Engine.durable with
    | None -> base @ [ ("durable", "no") ]
    | Some d ->
        base
        @ [
            ("durable", "yes");
            ("wal_bytes", string_of_int d.Xvi_wal.Durable.wal_bytes);
            ( "last_checkpoint_lsn",
              string_of_int d.Xvi_wal.Durable.last_checkpoint_lsn );
          ]
  in
  match t.repl with
  | None -> base
  | Some r -> base @ (("role", r.role) :: r.stats_extra ())

let exec t session req =
  let nodes_of = function
    | Ok ids -> Protocol.Nodes ids
    | Error e -> error_response e
  in
  match (req : Protocol.request) with
  | Protocol.Hello -> (epoch_response (Session.pinned session), `Continue)
  | Protocol.Pin -> (epoch_response (Session.refresh session), `Continue)
  | Protocol.Lookup_string v ->
      (Protocol.Nodes (Session.lookup_string session v), `Continue)
  | Protocol.Lookup_contains v ->
      (Protocol.Nodes (Session.lookup_contains session v), `Continue)
  | Protocol.Lookup_element_contains v ->
      (Protocol.Nodes (Session.lookup_element_contains session v), `Continue)
  | Protocol.Lookup_named v ->
      (Protocol.Nodes (Session.elements_named session v), `Continue)
  | Protocol.Lookup_typed (ty, lo, hi) ->
      (nodes_of (Session.lookup_typed session ty (range_of_bounds lo hi)), `Continue)
  | Protocol.Value n -> (
      match Session.string_value session n with
      | Ok v -> (Protocol.Value_r v, `Continue)
      | Error e -> (error_response e, `Continue))
  | Protocol.Begin -> (
      match Session.begin_ session with
      | Ok () -> (Protocol.Ok_, `Continue)
      | Error e -> (error_response e, `Continue))
  | Protocol.Set (n, v) -> (
      match Session.stage session n v with
      | Ok () -> (Protocol.Ok_, `Continue)
      | Error e -> (error_response e, `Continue))
  | Protocol.Commit -> (
      match Session.commit ~durable:true session with
      | Ok lsn -> (Protocol.Lsn lsn, `Continue)
      | Error e -> (error_response e, `Continue))
  | Protocol.Commit_deferred -> (
      match Session.commit ~durable:false session with
      | Ok lsn -> (Protocol.Lsn lsn, `Continue)
      | Error e -> (error_response e, `Continue))
  | Protocol.Abort ->
      Session.abort session;
      (Protocol.Ok_, `Continue)
  | Protocol.Insert (parent, frag) -> (
      match Session.insert_xml session ~parent frag with
      | Ok (roots, lsn) -> (Protocol.Nodes_lsn (roots, lsn), `Continue)
      | Error e -> (error_response e, `Continue))
  | Protocol.Delete n -> (
      match Session.delete_subtree session n with
      | Ok lsn -> (Protocol.Lsn lsn, `Continue)
      | Error e -> (error_response e, `Continue))
  | Protocol.Stats -> (Protocol.Stats_r (stats_pairs t), `Continue)
  | Protocol.Sync ->
      Engine.sync (engine t);
      (Protocol.Ok_, `Continue)
  | Protocol.Repl_info -> (
      match t.repl with
      | None -> (Protocol.Err "replication not enabled", `Continue)
      | Some r -> (r.info (), `Continue))
  | Protocol.Repl_snapshot offset -> (
      match t.repl with
      | None -> (Protocol.Err "replication not enabled", `Continue)
      | Some r -> (r.snapshot_chunk ~offset, `Continue))
  | Protocol.Repl_pull { from_lsn; max_bytes } -> (
      match t.repl with
      | None -> (Protocol.Err "replication not enabled", `Continue)
      | Some r -> (r.pull ~from_lsn ~max_bytes, `Continue))
  | Protocol.Repl_digest { anchor; lsn } -> (
      match t.repl with
      | None -> (Protocol.Err "replication not enabled", `Continue)
      | Some r -> (r.frame_digest ~anchor lsn, `Continue))
  | Protocol.Promote -> (
      match t.repl with
      | None -> (Protocol.Err "replication not enabled", `Continue)
      | Some r -> (
          match r.promote () with
          | Error m -> (Protocol.Err m, `Continue)
          | Ok None -> (Protocol.Ok_, `Continue)
          | Ok (Some (e, r')) ->
              (Atomic.set t.engine e
              [@xvi.lint.allow
                "D1: promotion swaps the engine cell atomically; the \
                 request loop re-reads it per request and the old \
                 engine stays valid for in-flight readers"]);
              t.repl <- Some r';
              t.log "promoted: serving as leader";
              (Protocol.Ok_, `Continue)))
  | Protocol.Quit -> (Protocol.Bye, `Quit)
  | Protocol.Shutdown -> (Protocol.Bye, `Shutdown)

let serve_connection t fd alive =
  let session = Session.create (engine t) in
  let respond r = Protocol.write_frame fd (Protocol.encode_response r) in
  let rec loop () =
    match Protocol.read_frame fd with
    | Error `Closed -> ()
    | Error (`Malformed m) ->
        (* framing is lost; tell the peer once and hang up *)
        respond (Protocol.Err ("protocol error: " ^ m))
    | Ok payload -> (
        match Protocol.decode_request payload with
        | Error m ->
            respond (Protocol.Err m);
            loop ()
        | Ok req -> (
            let resp, verdict = exec t session req in
            respond resp;
            match verdict with
            | `Continue -> loop ()
            | `Quit -> ()
            | `Shutdown -> request_stop t))
  in
  Fun.protect
    ~finally:(fun () ->
      Session.close session;
      if Atomic.exchange alive false then Unix.close fd)
    (fun () ->
      match loop () with
      | () -> ()
      | exception Unix.Unix_error (_, _, _) ->
          (* peer vanished mid-write (or the drain shut us down);
             nothing to answer to *)
          ())

let run t =
  let rec accept_loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          (* a signal (e.g. the embedding process's SIGINT handler asking
             us to stop) interrupted the wait; loop and re-check [stop] *)
          ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              let alive = Atomic.make true in
              let dom = Domain.spawn (fun () -> serve_connection t fd alive) in
              Mutex.lock t.clients_lock;
              t.clients <- { dom; cfd = fd; alive } :: t.clients;
              Mutex.unlock t.clients_lock
          | exception Unix.Unix_error (_, _, _) -> ()));
      accept_loop ()
    end
  in
  accept_loop ();
  t.log "shutting down";
  (* no new connections; drain the live ones. A handler blocked in a
     read is woken by shutting its socket down; whoever wins the [alive]
     exchange owns the close. *)
  Mutex.lock t.clients_lock;
  let clients = t.clients in
  t.clients <- [];
  Mutex.unlock t.clients_lock;
  List.iter
    (fun c ->
      let mine = Atomic.exchange c.alive false in
      if mine then begin
        match Unix.shutdown c.cfd Unix.SHUTDOWN_ALL with
        | () -> ()
        | exception Unix.Unix_error (_, _, _) -> ()
      end;
      Domain.join c.dom;
      if mine then Unix.close c.cfd)
    clients;
  Unix.close t.listen_fd;
  if Sys.file_exists t.socket_path then Unix.unlink t.socket_path;
  t.log "stopped"

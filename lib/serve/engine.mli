(** The unified database engine: one writer, any number of lock-free
    readers, one API over the in-memory / durable split.

    Before this module, callers picked a concrete handle —
    {!Xvi_core.Db} for a memory database, {!Xvi_wal.Durable} for a
    crash-safe directory — and each exposed a different mix of raising
    and result-typed operations, none of them safe to share between
    domains. [Engine] replaces both as the public boundary:

    {b Epoch-based MVCC.} The engine owns a private {e master} database
    that only the single writer (serialised by an internal lock) ever
    mutates. After commits become durable, the engine {e publishes} an
    immutable deep copy of the master — an {e epoch} — through one
    [Atomic] cell. Readers {!pin} the current epoch with a single atomic
    load and then run any {!Xvi_core.Db} read against a database no one
    will ever mutate: no read takes a lock, before or after pinning, so
    a stalled or slow writer cannot block a reader (and vice versa).

    {b Durability = visibility.} An epoch only ever contains commits
    whose log records have been fsynced ([sync_mode = Always], an aged
    group-commit window, or an explicit {!sync}); under [Never] the OS
    page cache is the declared durability contract, so commits publish
    immediately. A reader can therefore never observe state that a
    crash could take back.

    {b Group commit across sessions.} Deferred commits from any number
    of sessions share fsyncs exactly as {!Xvi_wal.Wal} batches them; a
    background flusher domain closes aged windows under quiescence,
    advances the durable watermark, publishes, and wakes every
    {!await_durable} waiter — so concurrent committers pay one fsync
    per window, not one each.

    All entry points are result-typed; nothing here raises on bad
    input. *)

type t

type node = Xvi_xml.Store.node

type error =
  | Io of string  (** filesystem-level failure opening or initialising *)
  | Parse of Xvi_xml.Parser.error  (** a document or fragment that does not parse *)
  | Read of Xvi_core.Db.read_error  (** unknown type name in a query *)
  | Conflict of Xvi_txn.Txn.conflict  (** first-committer-wins loss *)
  | Invalid of string  (** bad target node, finished transaction, misuse *)
  | Read_only  (** a write reached a replica; writes go to the leader *)
  | Closed  (** the engine was {!close}d *)

val error_to_string : error -> string

(** {1 Opening} *)

type target =
  | Memory of Xvi_core.Db.t
      (** serve an already-built database; no durability *)
  | Dir of string  (** recover and serve a {!Xvi_wal.Durable} directory *)
  | Replica of string
      (** serve a durable directory {e read-only}: snapshot + committed
          log replayed as in recovery, but with no torn-tail truncation,
          no writer attached, and every write entry point returning
          [Error Read_only]. A replication follower owns the directory's
          bytes itself (it appends shipped frames) and feeds the engine
          through {!replica_apply}; promotion is simply {!close} followed
          by [open_ (Dir d)] — the ordinary recovery path. *)

val open_ :
  ?config:Xvi_core.Db.Config.t ->
  ?sync_mode:Xvi_wal.Wal.sync_mode ->
  ?auto_checkpoint_bytes:int ->
  ?publish_period:float ->
  target ->
  (t, error) result
(** [open_ (Dir d)] recovers the directory exactly as
    {!Xvi_wal.Durable.open_} does (snapshot + replay + torn-tail
    truncation); [open_ (Memory db)] takes ownership of [db] as the
    master — the caller must not touch [db] afterwards (readers use
    published copies, see {!pin}). [config], [sync_mode] and
    [auto_checkpoint_bytes] apply to [Dir] targets only.

    [publish_period] (seconds, default [0.]) rate-limits epoch
    publication: a fresh epoch is cut at most once per period, so the
    deep-copy cost amortises over many commits the way fsyncs amortise
    under group commit. [0.] publishes at every durable boundary —
    read-your-writes for a session that awaited durability. {!refresh}
    and {!sync} always force a fresh epoch regardless of the period. *)

val init :
  ?sync_mode:Xvi_wal.Wal.sync_mode ->
  ?auto_checkpoint_bytes:int ->
  ?publish_period:float ->
  ?force:bool ->
  dir:string ->
  Xvi_core.Db.t ->
  (t, error) result
(** Initialise a fresh durable directory from [db] (snapshot at LSN 0,
    empty log) and serve it. Refuses to overwrite an existing durable
    directory unless [force] — the same contract as
    {!Xvi_wal.Durable.create}, minus the exceptions. *)

val ingest :
  ?config:Xvi_core.Db.Config.t ->
  ?sync_mode:Xvi_wal.Wal.sync_mode ->
  ?auto_checkpoint_bytes:int ->
  ?publish_period:float ->
  ?force:bool ->
  ?batch_rows:int ->
  ?pool:Xvi_util.Pool.t ->
  ?progress:(Xvi_ingest.Ingest.progress -> unit) ->
  dir:string ->
  Xvi_xml.Sax.source ->
  (t, error) result
(** Stream a document into a fresh durable directory
    ({!Xvi_wal.Durable.bulk_ingest}: bounded-memory shred + index,
    every batch WAL-committed) and serve the finished database — the
    first published epoch is the fully loaded, durably checkpointed
    state. [force] as in {!init}. On a parse error the durable prefix
    stays in the directory; [open_ (Dir d)] then reports the
    interrupted ingest instead of serving the empty pre-ingest state
    (finish or recreate it via {!Xvi_wal.Durable.resume_ingest} /
    the CLI). *)

val is_durable : t -> bool
val dir : t -> string option

val read_only : t -> bool
(** [true] exactly for [Replica] targets. *)

val last_replay : t -> Xvi_wal.Wal.replay_report option
(** What recovery did, for [Dir] targets opened over an existing log. *)

(** {1 Reading: epochs} *)

type pinned = {
  epoch : int;  (** publication counter, strictly increasing *)
  lsn : Xvi_wal.Wal.lsn;  (** every commit at or below this LSN is in [db] *)
  commits : int;  (** committed mutations since {!open_} included in [db] *)
  db : Xvi_core.Db.t;  (** immutable — never mutated by anyone, ever *)
}

val pin : t -> pinned
(** The newest published epoch: one atomic load, no lock, never blocks —
    not even mid-commit of the writer. The returned database is valid
    (and consistent) forever; a long-running reader simply sees an older
    epoch. Re-pin to observe newer commits. *)

val snapshot : t -> Xvi_core.Db.t
(** [(pin t).db] — the read handle sessions pin. *)

val refresh : t -> pinned
(** Force publication of any durable-but-unpublished state (syncing the
    log first if commits are still deferred), then {!pin}. This is the
    one read-side call that takes the writer lock; use it for
    read-your-writes, not in hot read loops. *)

(** {1 Writing} *)

val begin_ : t -> Xvi_txn.Txn.t
(** A transaction on the master database, staged through
    {!Xvi_txn.Txn.update_text} and committed with {!submit}. Staging
    validates against live state; the authoritative re-check happens
    inside {!submit} under the writer lock. *)

val submit : t -> Xvi_txn.Txn.t -> (Xvi_wal.Wal.lsn, error) result
(** Serialise, conflict-check and commit the transaction: on [Ok lsn]
    the write set is write-ahead logged (per the sync mode) and applied
    to the master with every index maintained. Returns [Error
    (Conflict _)] on a first-committer-wins loss. The commit becomes
    {e visible} to new {!pin}s once durable — immediately under
    [Always], at the next window flush under [Group]. An empty write
    set commits as a no-op and returns the current LSN. *)

val submit_durable : t -> Xvi_txn.Txn.t -> (Xvi_wal.Wal.lsn, error) result
(** {!submit}, then {!await_durable}: on [Ok], the commit is on stable
    storage — the ack a remote client can trust. *)

val await_durable : t -> Xvi_wal.Wal.lsn -> unit
(** Block until every commit at or below [lsn] is fsynced (returns
    immediately on memory engines and already-covered LSNs). *)

val update_texts : t -> (node * string) list -> (Xvi_wal.Wal.lsn, error) result
(** Begin + stage + {!submit} in one call. [Error (Invalid _)] if a
    target is not a text or attribute node. *)

val insert_xml :
  t -> parent:node -> string -> (node list * Xvi_wal.Wal.lsn, error) result
(** Durably logged structural insert (single-operation transaction).
    Validated before logging: a bad parent or unparsable fragment is an
    [Error] and nothing reaches the log. *)

val delete_subtree : t -> node -> (Xvi_wal.Wal.lsn, error) result

val sync : t -> unit
(** Fsync any deferred commits, publish, and wake waiters. *)

val replica_apply :
  t -> Xvi_wal.Wal.framed list -> (Xvi_wal.Wal.lsn, error) result
(** Apply committed transaction groups (as delivered by
    {!Xvi_wal.Wal.Tail.poll}) to a [Replica] engine's master and publish
    a fresh epoch; returns the new applied LSN. Frames at or below the
    current applied LSN are skipped — replay stays idempotent under
    re-delivery. The caller must have made the frames locally durable
    first (the follower appends + fsyncs before applying), preserving
    the "no epoch a crash can take back" invariant. [Error Read_only]
    on non-replica engines (it is the only write that goes the other
    way). *)

val checkpoint : t -> (unit, error) result
(** Snapshot + truncate the log ({!Xvi_wal.Durable.checkpoint});
    [Error (Invalid _)] on a memory engine. *)

(** {1 Accounting} *)

type stats = {
  epoch : int;  (** latest published epoch *)
  commits : int;  (** committed mutations since open *)
  last_lsn : Xvi_wal.Wal.lsn;  (** newest committed LSN (durable or not) *)
  durable_lsn : Xvi_wal.Wal.lsn;  (** fsync watermark; [>= last_lsn] means no deferred tail *)
  txn : Xvi_txn.Txn.stats;
  durable : Xvi_wal.Durable.stats option;  (** [None] on memory engines *)
}

val stats : t -> stats

val close : t -> unit
(** Final sync, final publication of nothing further, flusher joined,
    underlying handles released. Idempotent. Blocked
    {!await_durable}/{!submit_durable} callers are released (their
    commits are durable: close syncs first). *)

(** {1 Test instrumentation} *)

val set_commit_stall : t -> (unit -> unit) option -> unit
(** Install a hook the writer runs {e while holding the writer lock} at
    the start of every {!submit} — the concurrency harness uses it to
    stall the writer mid-commit and assert that readers keep pinning
    and querying epochs meanwhile. Not for production use. *)

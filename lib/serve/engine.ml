module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Db = Xvi_core.Db
module Txn = Xvi_txn.Txn
module Wal = Xvi_wal.Wal
module Durable = Xvi_wal.Durable
module Timing = Xvi_util.Timing

type node = Store.node

type error =
  | Io of string
  | Parse of Parser.error
  | Read of Db.read_error
  | Conflict of Txn.conflict
  | Invalid of string
  | Read_only
  | Closed

let error_to_string = function
  | Io m -> m
  | Parse e -> Parser.error_to_string e
  | Read e -> Db.read_error_to_string e
  | Conflict c ->
      Printf.sprintf "serialisation conflict on node %d: %s" c.Txn.node
        c.Txn.reason
  | Invalid m -> m
  | Read_only -> "engine is a read-only replica; writes go to the leader"
  | Closed -> "engine is closed"

type pinned = { epoch : int; lsn : Wal.lsn; commits : int; db : Db.t }

type backend = Mem | Disk of Durable.t | Rep of string  (** replica: dir *)

type flusher = { fdomain : unit Domain.t; stop : bool Atomic.t }

type t = {
  backend : backend;
  mgr : Txn.manager;
  master : Db.t;
  lock : Mutex.t;  (** serialises every mutation of master + metadata *)
  flushed : Condition.t;  (** signalled whenever [durable_upto] advances *)
  published : pinned Atomic.t;  (** the lock-free read side *)
  publish_period : float;
  mutable epoch : int;
  mutable commits : int;
  mutable last_lsn : Wal.lsn;
  mutable durable_upto : Wal.lsn;
  mutable dirty : bool;  (** master is ahead of the published epoch *)
  mutable deferred_since : float;  (** arrival time of the oldest unacked commit *)
  mutable last_publish : float;
  mutable stall : (unit -> unit) option;
  mutable flusher : flusher option;
  mutable closed : bool;
}

(* --- publication ---

   Every helper below runs with [t.lock] held. An epoch is cut only when
   the whole master state is durable ([durable_upto >= last_lsn]): the
   copy would otherwise leak commits a crash could take back. The plane
   is forced on the copy before it escapes, so readers never write the
   (benignly racy) lazy cache themselves. *)

let publish_locked t now =
  if t.dirty && t.durable_upto >= t.last_lsn then begin
    t.epoch <- t.epoch + 1;
    let db = Db.copy t.master in
    ignore (Db.plane db : Xvi_xml.Pre_plane.t);
    Atomic.set t.published
      { epoch = t.epoch; lsn = t.last_lsn; commits = t.commits; db };
    t.dirty <- false;
    t.last_publish <- now
  end

let maybe_publish_locked t =
  let now = Timing.now_s () in
  if t.publish_period <= 0.0 || now -. t.last_publish >= t.publish_period then
    publish_locked t now

(* Ack commits up to [lsn]: advance the watermark, publish (subject to
   the period), wake waiters. *)
let acked_locked t lsn =
  if lsn > t.durable_upto then t.durable_upto <- lsn;
  maybe_publish_locked t;
  Condition.broadcast t.flushed

let sync_locked t =
  (match t.backend with Disk d -> Durable.sync d | Mem | Rep _ -> ());
  if t.last_lsn > t.durable_upto then t.durable_upto <- t.last_lsn;
  publish_locked t (Timing.now_s ());
  Condition.broadcast t.flushed

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- the group-commit flusher ---

   Under [Group w] a quiescent window would otherwise stay open (and its
   commits unacked) until the next append; the flusher closes windows
   that aged past [w] so sessions blocked in [await_durable] are woken
   in bounded time. It sleeps in short slices so [close] never waits
   long to join it, but only fsyncs once the oldest unacked commit is
   older than the window — the batching observable stays intact. *)

let flusher_loop t window stop =
  let slice = Float.min 0.05 (Float.max 0.0005 (window /. 2.0)) in
  while not (Atomic.get stop) do
    Unix.sleepf slice;
    Mutex.lock t.lock;
    if
      (not t.closed)
      && t.durable_upto < t.last_lsn
      && Timing.now_s () -. t.deferred_since >= window
    then sync_locked t
    else if t.dirty && t.durable_upto >= t.last_lsn then
      (* durable state the publish period postponed; cut it now *)
      maybe_publish_locked t;
    Mutex.unlock t.lock
  done

(* --- opening --- *)

let make ?(publish_period = 0.0) ~backend ~master ~last_lsn () =
  let mgr =
    match backend with
    | Mem | Rep _ -> Txn.manager master
    | Disk d -> Durable.manager d
  in
  let now = Timing.now_s () in
  let epoch0 =
    let db = Db.copy master in
    ignore (Db.plane db : Xvi_xml.Pre_plane.t);
    { epoch = 0; lsn = last_lsn; commits = 0; db }
  in
  let t =
    {
      backend;
      mgr;
      master;
      lock = Mutex.create ();
      flushed = Condition.create ();
      published = Atomic.make epoch0;
      publish_period;
      epoch = 0;
      commits = 0;
      last_lsn;
      durable_upto = last_lsn;
      dirty = false;
      deferred_since = now;
      last_publish = now;
      stall = None;
      flusher = None;
      closed = false;
    }
  in
  (match backend with
  | Disk d -> (
      match Durable.sync_mode d with
      | Wal.Group window ->
          let stop = Atomic.make false in
          let fdomain = Domain.spawn (fun () -> flusher_loop t window stop) in
          t.flusher <- Some { fdomain; stop }
      | Wal.Always | Wal.Never -> ())
  | Mem | Rep _ -> ());
  t

type target = Memory of Db.t | Dir of string | Replica of string

(* A replica open is recovery minus its side effects: snapshot +
   committed-prefix replay, but nothing is truncated and no writer is
   attached — the follower owns the directory's bytes and this engine
   only ever learns of new frames through [replica_apply]. *)
let open_replica ?config ?publish_period dir =
  let module Snapshot = Xvi_core.Snapshot in
  match Snapshot.load_with_lsn ?config (Durable.snapshot_path dir) with
  | Error e ->
      Error
        (Io
           (Printf.sprintf "%s: %s"
              (Durable.snapshot_path dir)
              (Snapshot.error_to_string e)))
  | Ok (db, snap_lsn) -> (
      let wpath = Durable.wal_path dir in
      if not (Sys.file_exists wpath) then
        Ok
          (make ?publish_period ~backend:(Rep dir) ~master:db
             ~last_lsn:snap_lsn ())
      else
        match Wal.scan_file wpath with
        | Error m -> Error (Io (Printf.sprintf "%s: %s" wpath m))
        | Ok scan -> (
            match Wal.apply ~from_lsn:snap_lsn db scan.Wal.frames with
            | Error m -> Error (Io (Printf.sprintf "%s: replay: %s" wpath m))
            | Ok (_ : Wal.apply_stats) ->
                Ok
                  (make ?publish_period ~backend:(Rep dir) ~master:db
                     ~last_lsn:(max scan.Wal.last_lsn snap_lsn) ())))

let open_ ?config ?sync_mode ?auto_checkpoint_bytes ?publish_period target =
  match target with
  | Memory db ->
      Ok (make ?publish_period ~backend:Mem ~master:db ~last_lsn:0 ())
  | Dir dir -> (
      match Durable.open_ ?config ?sync_mode ?auto_checkpoint_bytes dir with
      | Error m -> Error (Io m)
      | Ok d -> (
          match Durable.pending_ingest d with
          | Some { Durable.chunks; chunk_bytes } ->
              (* serving the pre-ingest (empty) database would silently
                 hide the durable prefix; recovery needs the source *)
              Durable.close d;
              Error
                (Invalid
                   (Printf.sprintf
                      "%s holds an interrupted bulk ingest (%d chunks, %d \
                       bytes); finish it with ingest --resume (or recreate \
                       the directory)"
                      dir chunks chunk_bytes))
          | None ->
              Ok
                (make ?publish_period ~backend:(Disk d) ~master:(Durable.db d)
                   ~last_lsn:(Durable.last_lsn d) ())))
  | Replica dir -> open_replica ?config ?publish_period dir

let init ?sync_mode ?auto_checkpoint_bytes ?publish_period ?(force = false)
    ~dir db =
  let file_in_the_way =
    match Sys.is_directory dir with
    | true -> false
    | false -> true
    | exception Sys_error _ -> false
  in
  if file_in_the_way then
    Error (Invalid (Printf.sprintf "%s exists and is not a directory" dir))
  else if (not force) && Durable.is_durable_dir dir then
    Error
      (Invalid
         (Printf.sprintf
            "%s already holds a durable store; pass force to overwrite it" dir))
  else
    match Durable.create ?sync_mode ?auto_checkpoint_bytes ~force ~dir db with
    | d ->
        Ok
          (make ?publish_period ~backend:(Disk d) ~master:db
             ~last_lsn:(Durable.last_lsn d) ())
    | exception Unix.Unix_error (e, fn, arg) ->
        Error (Io (Printf.sprintf "%s: %s(%s)" (Unix.error_message e) fn arg))
    | exception Sys_error m -> Error (Io m)

let ingest ?config ?sync_mode ?auto_checkpoint_bytes ?publish_period
    ?(force = false) ?batch_rows ?pool ?progress ~dir source =
  let file_in_the_way =
    match Sys.is_directory dir with
    | true -> false
    | false -> true
    | exception Sys_error _ -> false
  in
  if file_in_the_way then
    Error (Invalid (Printf.sprintf "%s exists and is not a directory" dir))
  else if (not force) && Durable.is_durable_dir dir then
    Error
      (Invalid
         (Printf.sprintf
            "%s already holds a durable store; pass force to overwrite it" dir))
  else
    match
      Durable.bulk_ingest ?sync_mode ?auto_checkpoint_bytes ~force ?config
        ?batch_rows ?pool ?progress ~dir source
    with
    | Ok d ->
        Ok
          (make ?publish_period ~backend:(Disk d) ~master:(Durable.db d)
             ~last_lsn:(Durable.last_lsn d) ())
    | Error m -> Error (Io m)
    | exception Unix.Unix_error (e, fn, arg) ->
        Error (Io (Printf.sprintf "%s: %s(%s)" (Unix.error_message e) fn arg))
    | exception Sys_error m -> Error (Io m)

let is_durable t = match t.backend with Disk _ -> true | Mem | Rep _ -> false

let dir t =
  match t.backend with
  | Disk d -> Some (Durable.dir d)
  | Rep dir -> Some dir
  | Mem -> None

let read_only t = match t.backend with Rep _ -> true | Mem | Disk _ -> false

let last_replay t =
  match t.backend with Disk d -> Durable.last_replay d | Mem | Rep _ -> None

(* --- reading --- *)

let pin t = Atomic.get t.published
let snapshot t = (pin t).db

let refresh t =
  with_lock t (fun () -> if not t.closed then sync_locked t);
  pin t

(* --- writing --- *)

let begin_ t = with_lock t (fun () -> Txn.begin_ t.mgr)

let group_window t =
  match t.backend with
  | Disk d -> (
      match Durable.sync_mode d with Wal.Group w -> Some w | _ -> None)
  | Mem | Rep _ -> None

let submit t tx =
  if not (Txn.is_active tx) then
    Error (Invalid "Engine.submit: transaction is finished")
  else
    with_lock t (fun () ->
        if t.closed then Error Closed
        else if read_only t then begin
          Txn.abort tx;
          Error Read_only
        end
        else begin
          (match t.stall with Some f -> f () | None -> ());
          let had_tail = t.durable_upto < t.last_lsn in
          match Txn.commit_r tx with
          | Error c -> Error (Conflict c)
          | Ok info when info.Txn.writes = 0 -> Ok t.last_lsn
          | Ok info ->
              t.commits <- t.commits + 1;
              let lsn =
                match t.backend with
                | Mem | Rep _ -> t.last_lsn + 1
                | Disk d -> Durable.last_lsn d
              in
              t.last_lsn <- lsn;
              t.dirty <- true;
              (match info.Txn.durability with
              | `Memory | `Synced -> acked_locked t lsn
              | `Deferred -> (
                  match group_window t with
                  | Some _ ->
                      (* the flusher (or a later window-closing commit)
                         will ack; remember when the tail started aging *)
                      if not had_tail then t.deferred_since <- Timing.now_s ()
                  | None ->
                      (* [Never]: the OS page cache is the declared
                         durability contract — ack now *)
                      acked_locked t lsn));
              Ok lsn
        end)

let await_durable t lsn =
  Mutex.lock t.lock;
  while t.durable_upto < lsn && not t.closed do
    Condition.wait t.flushed t.lock
  done;
  Mutex.unlock t.lock

let submit_durable t tx =
  match submit t tx with
  | Error _ as e -> e
  | Ok lsn ->
      await_durable t lsn;
      Ok lsn

let update_texts t writes =
  let tx = begin_ t in
  let rec stage = function
    | [] -> Ok ()
    | (n, v) :: rest -> (
        match Txn.update_text tx n v with
        | Ok () -> stage rest
        | Error `Not_text ->
            Txn.abort tx;
            Error
              (Invalid
                 (Printf.sprintf
                    "Engine.update_texts: node %d is not a text or attribute \
                     node"
                    n))
        | Error `Finished ->
            Error (Invalid "Engine.update_texts: transaction is finished"))
  in
  match stage writes with Error _ as e -> e | Ok () -> submit t tx

(* --- structural operations ---

   Validated here, result-typed, before anything reaches [Durable] (whose
   own checks raise). Single-operation transactions, serialised by the
   writer lock like everything else. *)

let check_insert_parent db parent =
  let store = Db.store db in
  if parent < 0 || parent >= Store.node_range store then
    Error (Invalid (Printf.sprintf "insert_xml: parent %d out of range" parent))
  else
    match Store.kind store parent with
    | Store.Document | Store.Element -> Ok ()
    | _ ->
        Error
          (Invalid
             (Printf.sprintf
                "insert_xml: parent %d cannot take children (not a live \
                 element or the document)"
                parent))

let check_delete_target db node =
  let store = Db.store db in
  if node < 0 || node >= Store.node_range store then
    Error (Invalid (Printf.sprintf "delete_subtree: node %d out of range" node))
  else if not (Store.is_live store node) then
    Error
      (Invalid (Printf.sprintf "delete_subtree: node %d is already deleted" node))
  else if node = Store.document then
    Error (Invalid "delete_subtree: cannot delete the document root")
  else Ok ()

(* After a structural commit: under [Always] the record is already
   synced; under [Group]/[Never] it is deferred like any other commit.
   [had_tail] is whether unacked commits already existed when the
   operation started — it decides whether this one opens a new window. *)
let structural_committed_locked t ~had_tail =
  t.commits <- t.commits + 1;
  let lsn =
    match t.backend with
    | Mem | Rep _ -> t.last_lsn + 1
    | Disk d -> Durable.last_lsn d
  in
  t.last_lsn <- lsn;
  t.dirty <- true;
  (match t.backend with
  | Mem | Rep _ -> acked_locked t lsn
  | Disk d -> (
      match Durable.sync_mode d with
      | Wal.Always | Wal.Never -> acked_locked t lsn
      | Wal.Group _ ->
          if not had_tail then t.deferred_since <- Timing.now_s ()));
  lsn

let insert_xml t ~parent fragment =
  with_lock t (fun () ->
      if t.closed then Error Closed
      else if read_only t then Error Read_only
      else
        match check_insert_parent t.master parent with
        | Error _ as e -> e
        | Ok () -> (
            let had_tail = t.durable_upto < t.last_lsn in
            let inserted =
              match t.backend with
              | Mem -> Db.insert_xml t.master ~parent fragment
              | Disk d -> Durable.insert_xml d ~parent fragment
              | Rep _ -> assert false (* rejected by the read_only guard *)
            in
            match inserted with
            | Error e -> Error (Parse e)
            | Ok roots -> Ok (roots, structural_committed_locked t ~had_tail)))

let delete_subtree t node =
  with_lock t (fun () ->
      if t.closed then Error Closed
      else if read_only t then Error Read_only
      else
        match check_delete_target t.master node with
        | Error _ as e -> e
        | Ok () ->
            let had_tail = t.durable_upto < t.last_lsn in
            (match t.backend with
            | Mem -> Db.delete_subtree t.master node
            | Disk d -> Durable.delete_subtree d node
            | Rep _ -> assert false (* rejected by the read_only guard *));
            Ok (structural_committed_locked t ~had_tail))

let sync t = with_lock t (fun () -> if not t.closed then sync_locked t)

(* Frames arrive in committed groups ([Wal.Tail.poll] delimits them the
   way recovery would); [Wal.apply]'s [from_lsn] watermark makes
   re-delivery a no-op, so the follower can replay the same batch after
   a retry without diverging. The applied LSN doubles as the durable
   watermark — the caller fsynced the bytes before handing them over —
   which is exactly the condition [publish_locked] requires. *)
let replica_apply t frames =
  with_lock t (fun () ->
      if t.closed then Error Closed
      else
        match t.backend with
        | Mem | Disk _ -> Error Read_only
        | Rep _ -> (
            match Wal.apply ~from_lsn:t.last_lsn t.master frames with
            | Error m -> Error (Invalid m)
            | Ok stats ->
                let lsn =
                  List.fold_left
                    (fun acc f -> max acc f.Wal.lsn)
                    t.last_lsn frames
                in
                t.commits <- t.commits + stats.Wal.applied_txns;
                t.last_lsn <- lsn;
                t.durable_upto <- lsn;
                if stats.Wal.applied_txns > 0 then t.dirty <- true;
                publish_locked t (Timing.now_s ());
                Condition.broadcast t.flushed;
                Ok lsn))

let checkpoint t =
  with_lock t (fun () ->
      if t.closed then Error Closed
      else
        match t.backend with
        | Rep _ -> Error Read_only
        | Mem -> Error (Invalid "checkpoint: engine is not durable")
        | Disk d ->
            Durable.checkpoint d;
            (* checkpointing synced everything it covered *)
            if t.last_lsn > t.durable_upto then t.durable_upto <- t.last_lsn;
            publish_locked t (Timing.now_s ());
            Condition.broadcast t.flushed;
            Ok ())

(* --- accounting --- *)

type stats = {
  epoch : int;
  commits : int;
  last_lsn : Wal.lsn;
  durable_lsn : Wal.lsn;
  txn : Txn.stats;
  durable : Durable.stats option;
}

let stats t =
  with_lock t (fun () ->
      {
        epoch = t.epoch;
        commits = t.commits;
        last_lsn = t.last_lsn;
        durable_lsn = t.durable_upto;
        txn = Txn.stats t.mgr;
        durable =
          (match t.backend with
          | Disk d -> Some (Durable.stats d)
          | Mem | Rep _ -> None);
      })

let close t =
  (match t.flusher with
  | Some f -> Atomic.set f.stop true
  | None -> ());
  with_lock t (fun () ->
      if not t.closed then begin
        (* final sync + final publication, then cut everyone loose *)
        (match t.backend with
        | Disk d ->
            Durable.sync d;
            if t.last_lsn > t.durable_upto then t.durable_upto <- t.last_lsn;
            publish_locked t (Timing.now_s ());
            Durable.close d
        | Mem | Rep _ -> publish_locked t (Timing.now_s ()));
        t.closed <- true;
        Condition.broadcast t.flushed
      end);
  match t.flusher with
  | Some f ->
      Domain.join f.fdomain;
      t.flusher <- None
  | None -> ()

let set_commit_stall t hook = with_lock t (fun () -> t.stall <- hook)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Txn = Xvi_txn.Txn

type node = Store.node

type t = {
  engine : Engine.t;
  mutable pin : Engine.pinned;
  mutable txn : Txn.t option;
}

let create engine = { engine; pin = Engine.pin engine; txn = None }
let engine t = t.engine
let pinned t = t.pin
let db t = t.pin.Engine.db

let refresh t =
  t.pin <- Engine.pin t.engine;
  t.pin

(* --- reads: straight off the pinned epoch --- *)

let lookup_string t s = Db.lookup_string (db t) s
let lookup_contains t pat = Db.lookup_contains (db t) pat
let lookup_element_contains t pat = Db.lookup_element_contains (db t) pat
let elements_named t name = Db.elements_named (db t) name

let lookup_typed t name range =
  match Db.lookup_typed_r (db t) name range with
  | Ok _ as ok -> ok
  | Error e -> Error (Engine.Read e)

let query t ir =
  match Db.query_r (db t) ir with
  | Ok _ as ok -> ok
  | Error e -> Error (Engine.Read e)

let string_value t n =
  let store = Db.store (db t) in
  if n < 0 || n >= Store.node_range store then
    Error (Engine.Invalid (Printf.sprintf "node %d out of range" n))
  else if not (Store.is_live store n) then
    Error (Engine.Invalid (Printf.sprintf "node %d is deleted" n))
  else Ok (Store.string_value store n)

(* --- writes --- *)

let in_txn t = t.txn <> None

let begin_ t =
  match t.txn with
  | Some _ -> Error (Engine.Invalid "Session.begin_: transaction already open")
  | None ->
      t.txn <- Some (Engine.begin_ t.engine);
      Ok ()

let stage t n v =
  match t.txn with
  | None -> Error (Engine.Invalid "Session.stage: no open transaction")
  | Some tx -> (
      match Txn.update_text tx n v with
      | Ok () -> Ok ()
      | Error `Not_text ->
          Error
            (Engine.Invalid
               (Printf.sprintf "node %d is not a text or attribute node" n))
      | Error `Finished ->
          Error (Engine.Invalid "Session.stage: transaction is finished"))

let commit ?(durable = true) t =
  match t.txn with
  | None -> Error (Engine.Invalid "Session.commit: no open transaction")
  | Some tx -> (
      t.txn <- None;
      let result =
        if durable then Engine.submit_durable t.engine tx
        else Engine.submit t.engine tx
      in
      match result with
      | Ok _ as ok ->
          ignore (refresh t : Engine.pinned);
          ok
      | Error _ as e -> e)

let abort t =
  match t.txn with
  | None -> ()
  | Some tx ->
      if Txn.is_active tx then Txn.abort tx;
      t.txn <- None

let insert_xml t ~parent fragment =
  if in_txn t then
    Error
      (Engine.Invalid
         "Session.insert_xml: finish the open transaction first (structural \
          operations are single-op transactions)")
  else
    match Engine.insert_xml t.engine ~parent fragment with
    | Ok _ as ok ->
        (* force publication: structural ops are rare and the client will
           almost always read the shape it just created *)
        t.pin <- Engine.refresh t.engine;
        ok
    | Error _ as e -> e

let delete_subtree t node =
  if in_txn t then
    Error
      (Engine.Invalid
         "Session.delete_subtree: finish the open transaction first \
          (structural operations are single-op transactions)")
  else
    match Engine.delete_subtree t.engine node with
    | Ok _ as ok ->
        t.pin <- Engine.refresh t.engine;
        ok
    | Error _ as e -> e

let close t = abort t

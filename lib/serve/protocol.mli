(** The `xvi serve` wire protocol: length-prefixed frames, one line of
    space-separated tokens per frame.

    {2 Framing}

    Each frame is the payload's decimal byte length, a newline, then
    exactly that many payload bytes:

    {v <len-decimal> "\n" <len bytes> v}

    Frames carry one request or one response. String arguments are
    percent-encoded ([%XX] for bytes [< 0x21], [%], and [0x7F]) so any
    XML content — spaces, newlines, arbitrary bytes — travels as a
    single token. An empty argument travels as an empty token (the
    separating space is still present), so it round-trips too.

    {2 Requests}

    {v
    hello                          -> epoch
    pin                            -> epoch        (repin newest epoch)
    lookup-string <v>              -> nodes
    lookup-contains <v>            -> nodes
    lookup-element-contains <v>    -> nodes
    lookup-named <tag>             -> nodes
    lookup-typed <type> <lo> <hi>  -> nodes        (bounds: float or "_")
    value <node>                   -> value        (XDM string value)
    begin                          -> ok
    set <node> <v>                 -> ok           (stage a text write)
    commit                         -> lsn          (durable ack)
    commit-deferred                -> lsn          (applied, not yet fsynced)
    abort                          -> ok
    insert <parent> <fragment>     -> nodes-lsn
    delete <node>                  -> lsn
    stats                          -> stats
    sync                           -> ok
    quit                           -> bye          (close this connection)
    shutdown                       -> bye          (stop the whole server)
    v}

    {2 Replication}

    Followers drive replication entirely through the same
    request/response frames — the stream is a pull loop, so a follower
    at any LSN can resume after either side restarts:

    {v
    repl-info                      -> repl-info    (role and watermarks)
    repl-snapshot <offset>         -> chunk        (bootstrap transfer)
    repl-pull <from-lsn> <max>     -> frames | snapshot-needed
    repl-digest <anchor> <lsn>     -> digest | snapshot-needed
    promote                        -> ok           (follower becomes leader)
    v}

    [frames] carries raw {!Xvi_wal.Wal} frame bytes — already
    length+digest framed, so in-transit corruption is detected by the
    follower exactly as recovery detects torn logs, with no second
    checksum layer. [snapshot-needed] means the leader checkpointed the
    requested records away; only a fresh snapshot can re-seed the
    follower.

    {2 Responses}

    {v
    ok
    epoch <epoch> <lsn> <commits>
    nodes <count> <id>*
    nodes-lsn <lsn> <count> <id>*
    value <v>
    lsn <lsn>
    stats <key>=<value>*
    conflict <node> <reason>
    err <message>
    bye
    v} *)

type request =
  | Hello
  | Pin
  | Lookup_string of string
  | Lookup_contains of string
  | Lookup_element_contains of string
  | Lookup_named of string
  | Lookup_typed of string * float option * float option
  | Value of int
  | Begin
  | Set of int * string
  | Commit
  | Commit_deferred
  | Abort
  | Insert of int * string
  | Delete of int
  | Stats
  | Sync
  | Quit
  | Shutdown
  | Repl_info
  | Repl_snapshot of int  (** byte offset into the snapshot file *)
  | Repl_pull of { from_lsn : int; max_bytes : int }
  | Repl_digest of { anchor : int; lsn : int }
      (** chain digest over the log prefix [anchor..lsn] — see
          {!Digest_r} *)
  | Promote

type response =
  | Ok_
  | Epoch of { epoch : int; lsn : int; commits : int }
  | Nodes of int list
  | Nodes_lsn of int list * int
  | Value_r of string
  | Lsn of int
  | Stats_r of (string * string) list
  | Conflict_r of { node : int; reason : string }
  | Err of string
  | Bye
  | Repl_info_r of {
      role : string;  (** ["leader"] or ["follower"] *)
      last_lsn : int;
      durable_lsn : int;
      checkpoint_lsn : int;
      applied_lsn : int;  (** follower: highest locally applied LSN *)
      leader_lsn : int;  (** follower: last observed leader durable LSN *)
    }
  | Chunk of { total : int; data : string }
      (** one slice of the snapshot file; [total] is its full size *)
  | Frames_r of { durable_lsn : int; data : string }
      (** raw WAL frame bytes (complete committed groups); empty [data]
          means the follower is caught up to [durable_lsn] *)
  | Digest_r of string option
      (** hex digest over the digests of every frame in [anchor..lsn],
          in LSN order; [None] = the leader's log does not span that
          range. A single frame's digest would be unsound for the rejoin
          walkback — a commit record does not commit to the history
          before it, so two diverged logs can carry byte-identical
          commit frames at the same LSN. Equal {e chain} digests attest
          the whole range. *)
  | Snapshot_needed_r of int
      (** records [<= base] were checkpointed away *)

(** {1 Codec} — total in both directions; unparsable input is an
    [Error], never an exception. *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

val escape : string -> string
val unescape : string -> (string, string) result

(** {1 Framing over a file descriptor} *)

val max_frame : int
(** Refuse frames larger than this (16 MiB) — a malformed length
    prefix must not allocate unbounded memory. *)

val write_frame : Unix.file_descr -> string -> unit
(** May raise [Unix.Unix_error] (broken pipe etc.) — the server maps
    that to dropping the connection. *)

val read_frame : Unix.file_descr -> (string, [ `Closed | `Malformed of string ]) result
(** [`Closed] on clean EOF before any byte of a frame. *)

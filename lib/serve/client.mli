(** In-process client for the {!Protocol} — used by the tests, the
    bench harness, and `xvi client`. Blocking, one request in flight;
    create one client per domain. *)

type t

val connect : ?wait_s:float -> socket:string -> unit -> (t, string) result
(** Connect to a server's Unix socket, retrying for up to [wait_s]
    seconds (default [5.]) while the socket does not exist yet or
    refuses — so a freshly forked `xvi serve` needs no handshake
    choreography. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** One round trip. Any [Err]/[Conflict_r] payload is still [Ok] here —
    it is a well-formed response; [Error] means the transport or codec
    failed. *)

val close : t -> unit

(** {1 Typed round trips}

    Thin wrappers that also turn protocol-level [Err]/[Conflict_r]
    responses and unexpected response shapes into [Error]. *)

val hello : t -> (int * int * int, string) result
(** [(epoch, lsn, commits)] of the session's pinned epoch. *)

val pin : t -> (int * int * int, string) result
val lookup_string : t -> string -> (int list, string) result
val lookup_contains : t -> string -> (int list, string) result
val lookup_named : t -> string -> (int list, string) result

val lookup_typed :
  t -> string -> float option -> float option -> (int list, string) result

val value : t -> int -> (string, string) result
val begin_ : t -> (unit, string) result
val set : t -> int -> string -> (unit, string) result

val commit : ?durable:bool -> t -> (int, string) result
(** The committed LSN; [Error] carries a conflict's reason too. *)

val abort : t -> (unit, string) result
val insert : t -> parent:int -> string -> (int list * int, string) result
val delete : t -> int -> (int, string) result
val stats : t -> ((string * string) list, string) result
val sync : t -> (unit, string) result

(** {1 Replication round trips} *)

type repl_info = {
  role : string;  (** ["leader"] or ["follower"] *)
  last_lsn : int;
  durable_lsn : int;
  checkpoint_lsn : int;
  applied_lsn : int;
  leader_lsn : int;
}

val repl_info : t -> (repl_info, string) result

val repl_snapshot : t -> offset:int -> (string * int, string) result
(** [(data, total)] — one slice of the snapshot file starting at
    [offset]; [total] is the file's full size (loop until covered). *)

val repl_pull :
  t ->
  from_lsn:int ->
  max_bytes:int ->
  ([ `Frames of string * int | `Snapshot_needed of int ], string) result
(** [`Frames (bytes, leader_durable_lsn)] — raw WAL frames past
    [from_lsn] (empty when caught up); [`Snapshot_needed base] when the
    leader checkpointed them away. *)

val repl_digest :
  t ->
  anchor:int ->
  int ->
  ( [ `Digest of string | `Missing | `Snapshot_needed of int ],
    string )
  result
(** The leader-side chain digest over the log prefix [anchor..lsn] —
    how a rejoining node locates the last common LSN before truncating
    its divergent tail. [`Missing] when the leader's log does not reach
    [lsn]; [`Snapshot_needed] when it no longer reaches back to
    [anchor]. *)

val promote : t -> (unit, string) result
(** Ask a follower to become the leader (stop pulling, recover its
    local directory, serve writes). *)

val quit : t -> (unit, string) result
(** Polite hang-up (awaits [bye], then closes). *)

val shutdown : t -> (unit, string) result
(** Ask the server to stop, await [bye], close. *)

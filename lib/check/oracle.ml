module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Lexical_types = Xvi_core.Lexical_types

type node = Store.node

(* Everything below walks the tree through the navigation links only.
   [Store.iter_pre], [Store.string_value], [Store.compare_order] and the
   pre plane are deliberately not used: they are the machinery under
   test (directly or via the indices), and the oracle must not inherit
   their bugs. *)

let string_value store n =
  match Store.kind store n with
  | Store.Text | Store.Attribute | Store.Comment | Store.Pi ->
      Store.text store n
  | Store.Element | Store.Document ->
      let buf = Buffer.create 16 in
      let rec collect c =
        match Store.kind store c with
        | Store.Text -> Buffer.add_string buf (Store.text store c)
        | Store.Element ->
            Option.iter collect_siblings (Store.first_child store c)
        | _ -> ()
      and collect_siblings c =
        collect c;
        Option.iter collect_siblings (Store.next_sibling store c)
      in
      Option.iter collect_siblings (Store.first_child store n);
      Buffer.contents buf
  | Store.Deleted -> invalid_arg "Oracle.string_value: deleted node"

(* Pre-order walk: a node, then its attributes, then its children — the
   document order the plane and [iter_pre] promise. *)
let walk store f =
  let rec node n =
    f n;
    let rec attrs = function
      | None -> ()
      | Some a ->
          f a;
          attrs (Store.next_attribute store a)
    in
    attrs (Store.first_attribute store n);
    let rec kids = function
      | None -> ()
      | Some k ->
          node k;
          kids (Store.next_sibling store k)
    in
    kids (Store.first_child store n)
  in
  node Store.document

let collect store pred =
  let acc = ref [] in
  walk store (fun n -> if pred n then acc := n :: !acc);
  List.sort Int.compare !acc

let has_string_value store n =
  match Store.kind store n with
  | Store.Element | Store.Text | Store.Attribute | Store.Document -> true
  | Store.Comment | Store.Pi | Store.Deleted -> false

let lookup_string store s =
  collect store (fun n ->
      has_string_value store n && String.equal (string_value store n) s)

(* Membership in a typed index is acceptance by the type's DFA — the
   lexical specification itself, interpreted character by character via
   [Dfa.run]'s plain table walk — and only then does [parse] supply the
   key. [parse] alone is no membership test: it assumes a DFA-vetted
   shape and happily parses positionally through garbage. *)
let typed_value (spec : Lexical_types.spec) store n =
  if has_string_value store n then begin
    let sv = string_value store n in
    if Xvi_core.Dfa.accepts (Xvi_core.Sct.dfa spec.Lexical_types.sct) sv then
      spec.Lexical_types.parse sv
    else None
  end
  else None

(* The B+tree key order: NaN sorts after every number (and -0. equals
   0., as in [Float.compare] via [compare_float]'s IEEE fast path). *)
let compare_value a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> if a < b then -1 else if a > b then 1 else 0

let in_range range v =
  let lo_ok =
    match Db.Range.lo range with
    | None -> true
    | Some lo -> (not (Float.is_nan lo)) && compare_value lo v <= 0
  in
  let hi_ok =
    match Db.Range.hi range with
    | None -> true
    | Some hi -> (not (Float.is_nan hi)) && compare_value v hi <= 0
  in
  lo_ok && hi_ok

let lookup_typed store spec range =
  let hits = ref [] in
  walk store (fun n ->
      match typed_value spec store n with
      | Some v when in_range range v -> hits := (v, n) :: !hits
      | _ -> ());
  List.map snd
    (List.sort
       (fun (v1, n1) (v2, n2) ->
         match compare_value v1 v2 with 0 -> Int.compare n1 n2 | c -> c)
       !hits)

let string_contains ~pattern s =
  let m = String.length pattern and n = String.length s in
  if m = 0 then true
  else begin
    let rec at i j = j = m || (s.[i + j] = pattern.[j] && at i (j + 1)) in
    let rec go i = i + m <= n && (at i 0 || go (i + 1)) in
    go 0
  end

let lookup_contains store pattern =
  collect store (fun n ->
      match Store.kind store n with
      | Store.Text | Store.Attribute ->
          string_contains ~pattern (Store.text store n)
      | _ -> false)

let lookup_element_contains store pattern =
  collect store (fun n ->
      match Store.kind store n with
      | Store.Element | Store.Document ->
          string_contains ~pattern (string_value store n)
      | _ -> false)

let elements_named store name =
  collect store (fun n ->
      Store.kind store n = Store.Element
      && String.equal (Store.name store n) name)

let in_subtree store ~scope n =
  let rec up c =
    c = scope || match Store.parent store c with Some p -> up p | None -> false
  in
  up n

(* Document order, computed from this module's own walk so that the
   attribute placement matches the plane without depending on it. *)
let sort_doc_order store nodes =
  let rank = Hashtbl.create 256 in
  let next = ref 0 in
  walk store (fun n ->
      Hashtbl.replace rank n !next;
      incr next);
  List.sort
    (fun a b -> Int.compare (Hashtbl.find rank a) (Hashtbl.find rank b))
    nodes

let within store ~scope hits =
  sort_doc_order store (List.filter (in_subtree store ~scope) hits)

let lookup_string_within store ~scope s =
  within store ~scope (lookup_string store s)

let lookup_typed_within store spec ~scope range =
  within store ~scope (lookup_typed store spec range)

(* --- compositional predicate-IR evaluation (the planner's oracle) ---

   One recursive [holds] per node over the same walk as everything
   above: no cursors, no estimates, no plan shapes. The universe is the
   set of live nodes with an XDM string value, mirroring the documented
   [Ir.Not] semantics; each leaf constrains the node kind exactly as the
   corresponding index family does. *)

module Ir = Db.Ir

let spec_named name =
  match
    List.find_opt
      (fun s -> String.equal s.Lexical_types.type_name name)
      (Lexical_types.all ())
  with
  | Some s -> s
  | None -> invalid_arg ("Oracle.eval_ir: unknown type " ^ name)

let rec ir_holds store ir n =
  match (ir : Ir.t) with
  | Ir.All -> true
  | Ir.String_eq s -> String.equal (string_value store n) s
  | Ir.Typed_range (ty, r) -> (
      match typed_value (spec_named ty) store n with
      | Some v -> in_range r v
      | None -> false)
  | Ir.Contains pat -> (
      match Store.kind store n with
      | Store.Text | Store.Attribute ->
          string_contains ~pattern:pat (Store.text store n)
      | _ -> false)
  | Ir.Element_contains pat -> (
      match Store.kind store n with
      | Store.Element | Store.Document ->
          string_contains ~pattern:pat (string_value store n)
      | _ -> false)
  | Ir.Named nm ->
      Store.kind store n = Store.Element && String.equal (Store.name store n) nm
  | Ir.Within (scope, q) -> in_subtree store ~scope n && ir_holds store q n
  | Ir.And qs -> List.for_all (fun q -> ir_holds store q n) qs
  | Ir.Or qs -> List.exists (fun q -> ir_holds store q n) qs
  | Ir.Not q -> not (ir_holds store q n)

let eval_ir store ir =
  let hits = ref [] in
  walk store (fun n ->
      if has_string_value store n && ir_holds store ir n then
        hits := n :: !hits);
  List.rev !hits

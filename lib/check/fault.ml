module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Snapshot = Xvi_core.Snapshot
module Txn = Xvi_txn.Txn
module Wal = Xvi_wal.Wal
module Durable = Xvi_wal.Durable

type report = { truncations : int; flips : int }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* One damaged variant: load must return Error — an exception or an Ok
   means the snapshot layer trusted corrupt bytes. *)
let expect_rejection ~what path =
  (match Snapshot.is_snapshot path with
  | (true | false) -> ()
  | exception e ->
      failwith
        (Printf.sprintf "is_snapshot raised %s on %s" (Printexc.to_string e)
           what));
  match Snapshot.load path with
  | Error _ -> Ok ()
  | Ok _ -> Error (Printf.sprintf "load returned Ok on %s" what)
  | exception e ->
      Error
        (Printf.sprintf "load raised %s on %s" (Printexc.to_string e) what)

let sweep ?(flips = 128) ?all_offsets ?truncations:trunc_cap db =
  let path = Filename.temp_file "xvi_fault" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Snapshot.save db path;
      let pristine = read_file path in
      let size = String.length pristine in
      (match Snapshot.load path with
      | Ok _ -> ()
      | Error e ->
          failwith ("pristine snapshot did not load: " ^ Snapshot.error_to_string e));
      let all_offsets =
        match all_offsets with Some b -> b | None -> size <= 8192
      in
      let failure = ref None in
      let fail m = if !failure = None then failure := Some m in
      (* truncations: descending, so each step is one metadata-only
         syscall and the file never has to be rewritten *)
      let lengths =
        match trunc_cap with
        | None -> List.init size (fun i -> size - 1 - i)
        | Some cap when cap >= size -> List.init size (fun i -> size - 1 - i)
        | Some cap ->
            (* evenly spaced, still descending so truncate alone suffices *)
            List.init cap (fun i -> (cap - 1 - i) * size / cap)
      in
      let truncations = ref 0 in
      List.iter
        (fun len ->
          if !failure = None then begin
            Unix.truncate path len;
            incr truncations;
            match
              expect_rejection
                ~what:(Printf.sprintf "truncation to %d bytes" len)
                path
            with
            | Ok () -> ()
            | Error m -> fail m
          end)
        lengths;
      write_file path pristine;
      (* byte flips: every offset when small, else evenly spaced plus
         the whole header region (magic, fingerprint, length, digest) *)
      let offsets =
        if all_offsets then List.init size (fun i -> i)
        else begin
          let header = min size 128 in
          let spaced =
            List.init flips (fun i -> i * size / flips)
          in
          List.sort_uniq Int.compare (List.init header (fun i -> i) @ spaced)
        end
      in
      let flipped = ref 0 in
      List.iter
        (fun pos ->
          if !failure = None then begin
            let damaged = Bytes.of_string pristine in
            Bytes.set damaged pos
              (Char.chr (Char.code pristine.[pos] lxor (1 lsl (pos mod 8))));
            write_file path (Bytes.to_string damaged);
            incr flipped;
            match
              expect_rejection
                ~what:(Printf.sprintf "byte flip at offset %d" pos)
                path
            with
            | Ok () -> ()
            | Error m -> fail m
          end)
        offsets;
      (* and the original must still load after a restore *)
      write_file path pristine;
      (match Snapshot.load path with
      | Ok _ -> ()
      | Error e ->
          fail ("restored pristine snapshot rejected: " ^ Snapshot.error_to_string e));
      match !failure with
      | Some m -> Error m
      | None -> Ok { truncations = !truncations; flips = !flipped })

(* --- crash-point sweep over the write-ahead log ---

   The oracle for every crash position is a database rebuilt from the
   base snapshot by re-issuing the committed prefix of operations
   through the public Db/Txn APIs — no WAL code anywhere in it. Which
   operations are "the committed prefix" is also decided independently
   of the scan logic: the live run records the log size after each
   commit, and a crash at byte [c] commits exactly the operations whose
   recorded size is <= c. Recovery must then produce a database whose
   marshalled bytes are identical to the oracle's, twice over (reopening
   the recovered directory must change nothing — idempotency). *)

type wal_op =
  | W_batch of (Store.node * string) list
  | W_insert of { parent : Store.node; fragment : string }
  | W_delete of Store.node

type wal_report = { crash_points : int; wal_flips : int; commits : int }

let db_digest db = Digest.string (Marshal.to_string db [ Marshal.Closures ])

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* Re-issue the first [k] operations on a fresh load of the base
   snapshot. Batches go through Txn with the same insertion order as the
   live run, so the winning commit hands Db.update_texts the same list
   in the same order — the oracle and the recovery must agree bit for
   bit, not just logically. *)
let oracle_rebuild snap_path ops k =
  match Snapshot.load snap_path with
  | Error e ->
      failwith ("wal_sweep: oracle snapshot load: " ^ Snapshot.error_to_string e)
  | Ok db ->
      let mgr = Txn.manager db in
      List.iter
        (function
          | W_batch writes -> (
              let tx = Txn.begin_ mgr in
              List.iter
                (fun (n, v) ->
                  match Txn.update_text tx n v with
                  | Ok () -> ()
                  | Error _ -> failwith "wal_sweep: oracle update rejected")
                writes;
              match Txn.commit tx with
              | Ok () -> ()
              | Error _ -> failwith "wal_sweep: oracle commit conflicted")
          | W_insert { parent; fragment } -> (
              match Db.insert_xml db ~parent fragment with
              | Ok _ -> ()
              | Error _ -> failwith "wal_sweep: oracle insert rejected")
          | W_delete n -> Db.delete_subtree db n)
        (take k ops);
      db_digest db

let wal_sweep ?crash_points ?(wal_flips = 128) db batches =
  let batches = List.filter (fun b -> b <> []) batches in
  let base = fresh_dir "xvi_wal_base" in
  let crash = fresh_dir "xvi_wal_crash" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf base;
      rm_rf crash)
    (fun () ->
      (* Live run: snapshot the caller's database at LSN 0, reopen the
         directory (so the caller's copy is never mutated), and commit
         the scripted operations, recording the log size after each. *)
      Durable.close (Durable.create ~sync_mode:Wal.Always ~dir:base db);
      let live =
        match Durable.open_ base with
        | Ok t -> t
        | Error m -> failwith ("wal_sweep: reopen failed: " ^ m)
      in
      let boundaries = ref [] (* (wal size after commit, op), reversed *) in
      let record op =
        boundaries := ((Durable.stats live).Durable.wal_bytes, op) :: !boundaries
      in
      List.iter
        (fun writes ->
          match Durable.update_texts live writes with
          | Ok () -> record (W_batch writes)
          | Error (c : Txn.conflict) ->
              failwith ("wal_sweep: live commit conflicted: " ^ c.Txn.reason))
        batches;
      let probe = "<wal-probe kind=\"crash-sweep\">probe text</wal-probe>" in
      (match Durable.insert_xml live ~parent:Store.document probe with
      | Ok (root :: _) ->
          record (W_insert { parent = Store.document; fragment = probe });
          Durable.delete_subtree live root;
          record (W_delete root)
      | Ok [] -> failwith "wal_sweep: probe insert returned no roots"
      | Error e ->
          failwith
            ("wal_sweep: probe insert rejected: "
            ^ Xvi_xml.Parser.error_to_string e));
      Durable.close live;
      let boundaries = List.rev !boundaries in
      let ops = List.map snd boundaries in
      let sizes = Array.of_list (List.map fst boundaries) in
      let commits = Array.length sizes in
      let wal_bytes = read_file (Filename.concat base "wal.log") in
      let snap_bytes = read_file (Filename.concat base "snapshot.xvi") in
      let wal_size = String.length wal_bytes in
      let magic_len = String.length Wal.magic in
      (* memoised oracle digests, one per committed-prefix length *)
      let oracle = Array.make (commits + 1) None in
      let oracle_digest k =
        match oracle.(k) with
        | Some d -> d
        | None ->
            let d = oracle_rebuild (Filename.concat base "snapshot.xvi") ops k in
            oracle.(k) <- Some d;
            d
      in
      let committed_before cut =
        let k = ref 0 in
        Array.iter (fun s -> if s <= cut then incr k) sizes;
        !k
      in
      let failure = ref None in
      let fail m = if !failure = None then failure := Some m in
      let crash_snap = Filename.concat crash "snapshot.xvi" in
      let crash_wal = Filename.concat crash "wal.log" in
      (* One crash variant: the snapshot plus the damaged log. Expects
         recovery to land exactly on the oracle of [expect] commits, and
         a second recovery of the recovered directory to change
         nothing. *)
      let check_variant ~what ~damaged ~expect =
        write_file crash_snap snap_bytes;
        write_file crash_wal damaged;
        match Durable.open_ crash with
        | Error m ->
            fail (Printf.sprintf "recovery failed on %s: %s" what m)
        | Ok t ->
            let d1 = db_digest (Durable.db t) in
            Durable.close t;
            if d1 <> oracle_digest expect then
              fail
                (Printf.sprintf
                   "recovery diverged from oracle on %s (%d commits expected)"
                   what expect)
            else (
              match Durable.open_ crash with
              | Error m ->
                  fail (Printf.sprintf "second recovery failed on %s: %s" what m)
              | Ok t2 ->
                  let d2 = db_digest (Durable.db t2) in
                  Durable.close t2;
                  if d2 <> d1 then
                    fail
                      (Printf.sprintf "recovery is not idempotent on %s" what))
      in
      let expect_open_error ~what ~damaged =
        write_file crash_snap snap_bytes;
        write_file crash_wal damaged;
        match Durable.open_ crash with
        | Error _ -> ()
        | Ok t ->
            Durable.close t;
            fail (Printf.sprintf "recovery accepted %s" what)
      in
      (* crash positions: every byte length of the log, or [crash_points]
         evenly spaced ones plus every commit boundary and its
         neighbours *)
      let lengths =
        match crash_points with
        | None -> List.init (wal_size + 1) (fun i -> i)
        | Some cap ->
            let spaced = List.init cap (fun i -> i * wal_size / cap) in
            let edges =
              Array.to_list sizes
              |> List.concat_map (fun s -> [ s - 1; s; s + 1 ])
            in
            List.sort_uniq Int.compare
              ((0 :: (magic_len - 1) :: magic_len :: wal_size :: edges) @ spaced)
            |> List.filter (fun l -> l >= 0 && l <= wal_size)
      in
      let points = ref 0 in
      List.iter
        (fun len ->
          if !failure = None then begin
            incr points;
            let damaged = String.sub wal_bytes 0 len in
            let what = Printf.sprintf "log torn at byte %d of %d" len wal_size in
            if len < magic_len then expect_open_error ~what ~damaged
            else check_variant ~what ~damaged ~expect:(committed_before len)
          end)
        lengths;
      (* byte flips inside the log: damage after the magic must recover
         the prefix before the damaged frame; damage inside the magic
         must be rejected *)
      let flip_offsets =
        let wanted = min wal_flips wal_size in
        if wanted <= 0 then []
        else
          List.sort_uniq Int.compare
            (List.init magic_len (fun i -> i)
            @ List.init wanted (fun i -> i * wal_size / wanted))
          |> List.filter (fun p -> p >= 0 && p < wal_size)
      in
      let flipped = ref 0 in
      List.iter
        (fun pos ->
          if !failure = None then begin
            incr flipped;
            let damaged = Bytes.of_string wal_bytes in
            Bytes.set damaged pos
              (Char.chr
                 (Char.code wal_bytes.[pos] lxor (1 lsl (pos mod 8))));
            let damaged = Bytes.to_string damaged in
            let what = Printf.sprintf "byte flip at log offset %d" pos in
            if pos < magic_len then expect_open_error ~what ~damaged
            else check_variant ~what ~damaged ~expect:(committed_before pos)
          end)
        flip_offsets;
      match !failure with
      | Some m -> Error m
      | None ->
          Ok { crash_points = !points; wal_flips = !flipped; commits })

(* --- crash-point sweep over group commit across sessions ---

   Same oracle discipline as [wal_sweep], but the live run goes through
   the serving engine: up to [sessions] concurrently open transactions
   commit deferred under a group window too wide to ever close on its
   own, so only the explicit engine sync at the end of each round — one
   shared fsync for the whole round — makes them durable. The WAL size
   recorded after each commit and at each sync boundary decides,
   independently of the recovery scanner, what a crash at byte [c] may
   keep: recovery must land on exactly the committed prefix, and at a
   sync boundary on exactly the acked set — every acknowledged commit
   present, no unacked commit visible. *)

module Iset = Set.Make (Int)
module Engine = Xvi_serve.Engine

type serve_report = {
  serve_crash_points : int;
  sessions : int;
  serve_commits : int;
  syncs : int;
}

let serve_sweep ?crash_points ?(sessions = 3) db batches =
  let batches = List.filter (fun b -> b <> []) batches in
  let base = fresh_dir "xvi_serve_base" in
  let crash = fresh_dir "xvi_serve_crash" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf base;
      rm_rf crash)
    (fun () ->
      (* a window no commit will ever out-wait: only explicit syncs ack *)
      let window = Wal.Group 3600.0 in
      (match Engine.init ~sync_mode:window ~dir:base db with
      | Ok e -> Engine.close e
      | Error e ->
          failwith ("serve_sweep: init failed: " ^ Engine.error_to_string e));
      let engine =
        match Engine.open_ ~sync_mode:window (Engine.Dir base) with
        | Ok e -> e
        | Error e ->
            failwith ("serve_sweep: open failed: " ^ Engine.error_to_string e)
      in
      (* rounds: up to [sessions] pairwise-disjoint batches staged in
         concurrently open transactions (overlap would make the later
         commit a legitimate first-committer-wins conflict, which is not
         what this sweep is about) *)
      let nodes_of b = Iset.of_list (List.map fst b) in
      let rounds =
        let rec pack acc cur cur_nodes n = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | b :: rest ->
              let bn = nodes_of b in
              if n < sessions && Iset.disjoint cur_nodes bn then
                pack acc (b :: cur) (Iset.union cur_nodes bn) (n + 1) rest
              else pack (List.rev cur :: acc) [ b ] bn 1 rest
        in
        pack [] [] Iset.empty 0 batches
      in
      let boundaries = ref [] (* (wal size after commit, op), reversed *) in
      let sync_points = ref [] (* (wal size at sync, commits acked), reversed *) in
      let committed = ref 0 in
      let wal_bytes () =
        match (Engine.stats engine).Engine.durable with
        | Some d -> d.Durable.wal_bytes
        | None -> failwith "serve_sweep: engine is not durable"
      in
      List.iter
        (fun round ->
          (* every session's transaction is open before any commits, so
             the log interleaves their records inside one unsynced
             window *)
          let txs =
            List.map
              (fun b ->
                let tx = Engine.begin_ engine in
                List.iter
                  (fun (n, v) ->
                    match Txn.update_text tx n v with
                    | Ok () -> ()
                    | Error _ -> failwith "serve_sweep: stage rejected")
                  b;
                (tx, b))
              round
          in
          List.iter
            (fun (tx, b) ->
              match Engine.submit engine tx with
              | Ok _ ->
                  incr committed;
                  boundaries := (wal_bytes (), W_batch b) :: !boundaries
              | Error e ->
                  failwith
                    ("serve_sweep: commit rejected: " ^ Engine.error_to_string e))
            txs;
          (* the whole round must still be pending — group commit defers
             every ack to the shared fsync *)
          let st = Engine.stats engine in
          if round <> [] && st.Engine.durable_lsn >= st.Engine.last_lsn then
            failwith
              "serve_sweep: deferred commits were acked before the shared sync";
          Engine.sync engine;
          let st = Engine.stats engine in
          if st.Engine.durable_lsn < st.Engine.last_lsn then
            failwith "serve_sweep: sync left commits unacked";
          sync_points := (wal_bytes (), !committed) :: !sync_points)
        rounds;
      Engine.close engine;
      let boundaries = List.rev !boundaries in
      let syncs = List.rev !sync_points in
      let ops = List.map snd boundaries in
      let sizes = Array.of_list (List.map fst boundaries) in
      let commits = Array.length sizes in
      let wal_all = read_file (Filename.concat base "wal.log") in
      let snap_bytes = read_file (Filename.concat base "snapshot.xvi") in
      let wal_size = String.length wal_all in
      let magic_len = String.length Wal.magic in
      let oracle = Array.make (commits + 1) None in
      let oracle_digest k =
        match oracle.(k) with
        | Some d -> d
        | None ->
            let d = oracle_rebuild (Filename.concat base "snapshot.xvi") ops k in
            oracle.(k) <- Some d;
            d
      in
      let committed_before cut =
        let k = ref 0 in
        Array.iter (fun s -> if s <= cut then incr k) sizes;
        !k
      in
      let failure = ref None in
      let fail m = if !failure = None then failure := Some m in
      (* the ack bookkeeping must agree with the recorded boundaries:
         at a sync point, the durable log holds exactly the acked set *)
      List.iter
        (fun (s, acked) ->
          if committed_before s <> acked then
            fail
              (Printf.sprintf
                 "sync at %d bytes acked %d commits but the log holds %d" s
                 acked (committed_before s)))
        syncs;
      let crash_snap = Filename.concat crash "snapshot.xvi" in
      let crash_wal = Filename.concat crash "wal.log" in
      let check_variant ~what ~damaged ~expect =
        write_file crash_snap snap_bytes;
        write_file crash_wal damaged;
        match Durable.open_ crash with
        | Error m -> fail (Printf.sprintf "recovery failed on %s: %s" what m)
        | Ok t ->
            let d1 = db_digest (Durable.db t) in
            Durable.close t;
            if d1 <> oracle_digest expect then
              fail
                (Printf.sprintf
                   "recovery diverged from oracle on %s (%d commits expected)"
                   what expect)
            else (
              match Durable.open_ crash with
              | Error m ->
                  fail (Printf.sprintf "second recovery failed on %s: %s" what m)
              | Ok t2 ->
                  let d2 = db_digest (Durable.db t2) in
                  Durable.close t2;
                  if d2 <> d1 then
                    fail (Printf.sprintf "recovery is not idempotent on %s" what))
      in
      let expect_open_error ~what ~damaged =
        write_file crash_snap snap_bytes;
        write_file crash_wal damaged;
        match Durable.open_ crash with
        | Error _ -> ()
        | Ok t ->
            Durable.close t;
            fail (Printf.sprintf "recovery accepted %s" what)
      in
      (* crash positions: every byte length, or [crash_points] evenly
         spaced ones plus every commit boundary, every sync boundary,
         and their neighbours *)
      let lengths =
        match crash_points with
        | None -> List.init (wal_size + 1) (fun i -> i)
        | Some cap ->
            let spaced = List.init cap (fun i -> i * wal_size / cap) in
            let edges =
              (Array.to_list sizes @ List.map fst syncs)
              |> List.concat_map (fun s -> [ s - 1; s; s + 1 ])
            in
            List.sort_uniq Int.compare
              ((0 :: (magic_len - 1) :: magic_len :: wal_size :: edges) @ spaced)
            |> List.filter (fun l -> l >= 0 && l <= wal_size)
      in
      let points = ref 0 in
      List.iter
        (fun len ->
          if !failure = None then begin
            incr points;
            let damaged = String.sub wal_all 0 len in
            let what =
              Printf.sprintf "group-commit log torn at byte %d of %d" len
                wal_size
            in
            if len < magic_len then expect_open_error ~what ~damaged
            else check_variant ~what ~damaged ~expect:(committed_before len)
          end)
        lengths;
      match !failure with
      | Some m -> Error m
      | None ->
          Ok
            {
              serve_crash_points = !points;
              sessions;
              serve_commits = commits;
              syncs = List.length syncs;
            })

(* --- replication fault sweep: two nodes, one faulty stream ---

   The leader run and the oracle discipline are exactly [wal_sweep]'s.
   What is under test here is the replication path: a real
   [Xvi_repl.Follower] fed by an in-process transport whose "leader" is
   a byte string we cut, truncate and corrupt at will. The follower's
   code — batch validation, append-then-apply, rejoin walkback,
   re-seed, promotion — is the production code, byte for byte; only
   the wire is fake. *)

module Repl_transport = Xvi_repl.Transport
module Follower = Xvi_repl.Follower

type repl_report = {
  repl_cut_points : int;
  stream_flips : int;
  follower_crashes : int;
  repl_failovers : int;
  repl_commits : int;
}

let repl_sweep ?cut_points ?stream_flips:flip_cap ?follower_crashes:crash_cap
    ?failovers:failover_cap db batches =
  let batches = List.filter (fun b -> b <> []) batches in
  let base = fresh_dir "xvi_repl_base" in
  let scratch = fresh_dir "xvi_repl_scratch" in
  let fdir = Filename.concat scratch "follower" in
  let golden = Filename.concat scratch "golden" in
  let old_dir = Filename.concat scratch "rejoin" in
  let fake_wal = Filename.concat scratch "leader_wal.log" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf fdir;
      rm_rf golden;
      rm_rf old_dir;
      rm_rf scratch;
      rm_rf base)
    (fun () ->
      (* live leader run: snapshot at LSN 0, every commit fsynced *)
      Durable.close (Durable.create ~sync_mode:Wal.Always ~dir:base db);
      let live =
        match Durable.open_ base with
        | Ok t -> t
        | Error m -> failwith ("repl_sweep: reopen failed: " ^ m)
      in
      let boundaries = ref [] in
      let record op =
        boundaries := ((Durable.stats live).Durable.wal_bytes, op) :: !boundaries
      in
      List.iter
        (fun writes ->
          match Durable.update_texts live writes with
          | Ok () -> record (W_batch writes)
          | Error (c : Txn.conflict) ->
              failwith ("repl_sweep: live commit conflicted: " ^ c.Txn.reason))
        batches;
      let probe = "<repl-probe kind=\"repl-sweep\">probe text</repl-probe>" in
      (match Durable.insert_xml live ~parent:Store.document probe with
      | Ok (root :: _) ->
          record (W_insert { parent = Store.document; fragment = probe });
          Durable.delete_subtree live root;
          record (W_delete root)
      | Ok [] -> failwith "repl_sweep: probe insert returned no roots"
      | Error e ->
          failwith
            ("repl_sweep: probe insert rejected: "
            ^ Xvi_xml.Parser.error_to_string e));
      Durable.close live;
      let boundaries = List.rev !boundaries in
      let ops = List.map snd boundaries in
      let sizes = Array.of_list (List.map fst boundaries) in
      let commits = Array.length sizes in
      let wal_all = read_file (Filename.concat base "wal.log") in
      let snap_bytes = read_file (Filename.concat base "snapshot.xvi") in
      let wal_size = String.length wal_all in
      let magic_len = String.length Wal.magic in
      let oracle = Array.make (commits + 1) None in
      let oracle_digest k =
        match oracle.(k) with
        | Some d -> d
        | None ->
            let d = oracle_rebuild (Filename.concat base "snapshot.xvi") ops k in
            oracle.(k) <- Some d;
            d
      in
      let committed_before cut =
        let k = ref 0 in
        Array.iter (fun s -> if s <= cut then incr k) sizes;
        !k
      in
      let failure = ref None in
      let fail m = if !failure = None then failure := Some m in
      (* the fake leader: serves whatever prefix [visible] holds,
         through the same Tail code the real leader serves with; one
         pending corruption flips a byte of the next shipped batch *)
      let visible = ref wal_all in
      let corrupt = ref None in
      let flip s pos =
        let b = Bytes.of_string s in
        Bytes.set b pos (Char.chr (Char.code s.[pos] lxor (1 lsl (pos mod 8))));
        Bytes.to_string b
      in
      let leader : Repl_transport.t =
        {
          Repl_transport.info = (fun () -> Error "fake leader: no info");
          snapshot_chunk =
            (fun ~offset ->
              let total = String.length snap_bytes in
              if offset >= total then Ok ("", total)
              else Ok (String.sub snap_bytes offset (total - offset), total));
          pull =
            (fun ~from_lsn ~max_bytes ->
              write_file fake_wal !visible;
              match Wal.scan_string !visible with
              | Error m -> Error m
              | Ok scan -> (
                  let durable = scan.Wal.last_lsn in
                  let tail = Wal.Tail.create ~from_lsn fake_wal in
                  match Wal.Tail.poll ~upto_lsn:durable ~max_bytes tail with
                  | Error m -> Error m
                  | Ok Wal.Tail.Await -> Ok (`Frames ("", durable))
                  | Ok (Wal.Tail.Snapshot_needed { base }) ->
                      Ok (`Snapshot_needed base)
                  | Ok (Wal.Tail.Frames { bytes; _ }) ->
                      let bytes =
                        match !corrupt with
                        | Some pos when pos < String.length bytes ->
                            corrupt := None;
                            flip bytes pos
                        | Some _ | None -> bytes
                      in
                      Ok (`Frames (bytes, durable))));
          frame_digest =
            (fun ~anchor lsn ->
              match Wal.scan_string !visible with
              | Error m -> Error m
              | Ok scan -> (
                  if anchor < 1 || lsn < anchor then Ok `Missing
                  else
                    match scan.Wal.frames with
                    | [] -> Ok `Missing
                    | first :: _ when anchor < first.Wal.lsn ->
                        Ok (`Snapshot_needed (first.Wal.lsn - 1))
                    | frames ->
                        if List.exists (fun f -> f.Wal.lsn = lsn) frames then begin
                          let buf = Buffer.create 256 in
                          List.iter
                            (fun f ->
                              if anchor <= f.Wal.lsn && f.Wal.lsn <= lsn then
                                Buffer.add_string buf (Wal.frame_digest f))
                            frames;
                          Ok
                            (`Digest
                              (Digest.to_hex (Digest.string (Buffer.contents buf))))
                        end
                        else Ok `Missing));
          close = (fun () -> ());
        }
      in
      let drain f =
        let rec go n =
          if n > 100_000 then Error "follower did not converge"
          else
            match Follower.catch_up f with
            | Ok `Caught_up -> Ok ()
            | Ok (`Applied _) | Ok `Resynced -> go (n + 1)
            | Error _ as e -> e
        in
        go 0
      in
      let dir_digest dir ~what =
        match Durable.open_ dir with
        | Error m -> Error (Printf.sprintf "recovery failed on %s: %s" what m)
        | Ok t ->
            let d = db_digest (Durable.db t) in
            Durable.close t;
            Ok d
      in
      let follower_over transport ~dir =
        Follower.create ~sync_mode:Wal.Always ~batch_bytes:(1 lsl 30)
          ~transport ~dir ()
      in
      let fresh_follower ~dir =
        rm_rf dir;
        follower_over leader ~dir
      in
      (* recover the follower's directory and require the oracle of
         [expect] commits, twice over (promotion = this recovery) *)
      let check_promoted_dir dir ~what ~expect =
        match dir_digest dir ~what with
        | Error m -> fail m
        | Ok d1 ->
            if d1 <> oracle_digest expect then
              fail
                (Printf.sprintf
                   "state diverged from oracle on %s (%d commits expected)"
                   what expect)
            else (
              match dir_digest dir ~what:(what ^ ", second recovery") with
              | Error m -> fail m
              | Ok d2 ->
                  if d2 <> d1 then
                    fail (Printf.sprintf "recovery is not idempotent on %s" what))
      in
      (* --- leader-crash sweep: cut the stream at every frame boundary
         (and just inside each frame); the follower must converge on
         exactly the committed prefix of the cut *)
      let frame_ends =
        let rec go pos acc =
          match Wal.decode wal_all pos with
          | Wal.Frame (_, next) -> go next (next :: acc)
          | Wal.End | Wal.Torn _ -> List.rev acc
        in
        go magic_len []
      in
      let clamp = List.filter (fun c -> c >= magic_len && c <= wal_size) in
      let cuts =
        match cut_points with
        | None ->
            List.sort_uniq Int.compare
              (clamp
                 (magic_len :: wal_size
                 :: List.concat_map (fun c -> [ c - 1; c; c + 1 ]) frame_ends))
        | Some cap ->
            let spaced =
              List.init cap (fun i ->
                  magic_len + (i * (wal_size - magic_len) / cap))
            in
            let edges =
              Array.to_list sizes
              |> List.concat_map (fun s -> [ s - 1; s; s + 1 ])
            in
            List.sort_uniq Int.compare
              (clamp ((magic_len :: wal_size :: edges) @ spaced))
      in
      let cut_count = ref 0 in
      List.iter
        (fun c ->
          if !failure = None then begin
            incr cut_count;
            visible := String.sub wal_all 0 c;
            let what =
              Printf.sprintf "leader crash at byte %d of %d" c wal_size
            in
            match fresh_follower ~dir:fdir with
            | Error m -> fail (Printf.sprintf "bootstrap on %s: %s" what m)
            | Ok f -> (
                match drain f with
                | Error m ->
                    Follower.close f;
                    fail (Printf.sprintf "catch-up on %s: %s" what m)
                | Ok () ->
                    Follower.close f;
                    check_promoted_dir fdir ~what ~expect:(committed_before c))
          end)
        cuts;
      (* --- corruption sweep: flip one byte of the shipped stream; the
         follower must reject the whole batch with nothing applied, then
         converge once the wire is clean again *)
      visible := wal_all;
      let stream_len = wal_size - magic_len in
      let flip_positions =
        match flip_cap with
        | None -> List.init stream_len (fun i -> i)
        | Some cap ->
            let wanted = min cap stream_len in
            if wanted <= 0 then []
            else
              List.sort_uniq Int.compare
                (List.init wanted (fun i -> i * stream_len / wanted))
      in
      let flip_count = ref 0 in
      List.iter
        (fun pos ->
          if !failure = None then begin
            incr flip_count;
            match fresh_follower ~dir:fdir with
            | Error m ->
                fail (Printf.sprintf "bootstrap before flip at %d: %s" pos m)
            | Ok f ->
                corrupt := Some pos;
                (match Follower.catch_up f with
                | Ok (`Caught_up | `Applied _ | `Resynced) ->
                    fail
                      (Printf.sprintf
                         "follower accepted a stream with byte %d flipped" pos)
                | Error _ -> ());
                corrupt := None;
                if !failure = None && Follower.applied_lsn f <> 0 then
                  fail
                    (Printf.sprintf
                       "partial batch applied after flip at %d (lsn %d)" pos
                       (Follower.applied_lsn f));
                (match drain f with
                | Error m ->
                    fail
                      (Printf.sprintf "no convergence after flip at %d: %s" pos m)
                | Ok () -> ());
                Follower.close f;
                if !failure = None then begin
                  match
                    dir_digest fdir
                      ~what:(Printf.sprintf "retry after flip at %d" pos)
                  with
                  | Error m -> fail m
                  | Ok d ->
                      if d <> oracle_digest commits then
                        fail
                          (Printf.sprintf
                             "converged state diverged from oracle after flip \
                              at %d"
                             pos)
                end
          end)
        flip_positions;
      (* --- follower-crash sweep: tear the follower's own log at every
         length; re-creating the follower over the damaged directory
         must truncate the torn tail (or re-seed from scratch) and
         converge back to the full oracle *)
      visible := wal_all;
      (match fresh_follower ~dir:golden with
      | Error m -> fail ("golden bootstrap: " ^ m)
      | Ok f -> (
          match drain f with
          | Error m ->
              Follower.close f;
              fail ("golden catch-up: " ^ m)
          | Ok () -> Follower.close f));
      let crash_count = ref 0 in
      if !failure = None then begin
        let golden_wal = read_file (Filename.concat golden "wal.log") in
        let golden_size = String.length golden_wal in
        let crash_lengths =
          match crash_cap with
          | None -> List.init (golden_size + 1) (fun i -> i)
          | Some cap ->
              List.sort_uniq Int.compare
                (0 :: golden_size
                :: List.init cap (fun i -> i * golden_size / cap))
        in
        List.iter
          (fun len ->
            if !failure = None then begin
              incr crash_count;
              let what =
                Printf.sprintf "follower crash at byte %d of %d" len golden_size
              in
              rm_rf fdir;
              Unix.mkdir fdir 0o755;
              write_file (Filename.concat fdir "snapshot.xvi") snap_bytes;
              write_file (Filename.concat fdir "wal.log")
                (String.sub golden_wal 0 len);
              match follower_over leader ~dir:fdir with
              | Error m -> fail (Printf.sprintf "rejoin on %s: %s" what m)
              | Ok f -> (
                  match drain f with
                  | Error m ->
                      Follower.close f;
                      fail (Printf.sprintf "catch-up on %s: %s" what m)
                  | Ok () -> (
                      Follower.close f;
                      match dir_digest fdir ~what with
                      | Error m -> fail m
                      | Ok d ->
                          if d <> oracle_digest commits then
                            fail
                              (Printf.sprintf "state diverged from oracle on %s"
                                 what)))
            end)
          crash_lengths
      end;
      (* --- failover rounds: promote the follower at a cut, commit a
         fresh write on the promoted leader, then let the deposed
         leader rejoin with its full (now divergent) log — the walkback
         must truncate its tail at the last common LSN and both
         directories must recover to bit-identical state *)
      let failover_cuts =
        let all =
          List.sort_uniq Int.compare (magic_len :: Array.to_list sizes)
        in
        match failover_cap with
        | None -> all
        | Some cap ->
            let arr = Array.of_list all in
            let n = Array.length arr in
            if n <= cap then all
            else List.init cap (fun i -> arr.(i * n / cap))
      in
      let failover_count = ref 0 in
      List.iter
        (fun c ->
          if !failure = None then begin
            incr failover_count;
            visible := String.sub wal_all 0 c;
            let what = Printf.sprintf "failover at cut %d" c in
            let round () =
              match fresh_follower ~dir:fdir with
              | Error m -> Error ("bootstrap: " ^ m)
              | Ok f -> (
                  match drain f with
                  | Error m ->
                      Follower.close f;
                      Error ("catch-up: " ^ m)
                  | Ok () -> (
                      match Follower.promote f with
                      | Error m ->
                          Follower.close f;
                          Error ("promote: " ^ m)
                      | Ok (promoted, _handlers) ->
                          Fun.protect
                            ~finally:(fun () ->
                              Follower.close f;
                              Engine.close promoted)
                            (fun () ->
                              let frag =
                                Printf.sprintf
                                  "<failover cut=\"%d\">fresh write</failover>"
                                  c
                              in
                              match
                                Engine.insert_xml promoted
                                  ~parent:Store.document frag
                              with
                              | Error e ->
                                  Error
                                    ("failover write: "
                                    ^ Engine.error_to_string e)
                              | Ok _ -> (
                                  Engine.sync promoted;
                                  rm_rf old_dir;
                                  Unix.mkdir old_dir 0o755;
                                  write_file
                                    (Filename.concat old_dir "snapshot.xvi")
                                    snap_bytes;
                                  write_file
                                    (Filename.concat old_dir "wal.log")
                                    wal_all;
                                  match
                                    follower_over
                                      (Repl_transport.of_engine promoted)
                                      ~dir:old_dir
                                  with
                                  | Error m -> Error ("rejoin: " ^ m)
                                  | Ok old -> (
                                      match drain old with
                                      | Error m ->
                                          Follower.close old;
                                          Error ("rejoin catch-up: " ^ m)
                                      | Ok () ->
                                          let a = Follower.applied_lsn old in
                                          let b =
                                            (Engine.pin promoted).Engine.lsn
                                          in
                                          Follower.close old;
                                          if a <> b then
                                            Error
                                              (Printf.sprintf
                                                 "rejoined node stopped at \
                                                  lsn %d, leader at %d"
                                                 a b)
                                          else Ok ())))))
            in
            match round () with
            | Error m -> fail (Printf.sprintf "%s: %s" what m)
            | Ok () -> (
                match
                  ( dir_digest fdir ~what:(what ^ ", promoted"),
                    dir_digest old_dir ~what:(what ^ ", rejoined") )
                with
                | Error m, _ | _, Error m -> fail m
                | Ok d1, Ok d2 ->
                    if d1 <> d2 then
                      fail
                        (Printf.sprintf
                           "rejoined node did not converge to the promoted \
                            leader on %s"
                           what))
          end)
        failover_cuts;
      match !failure with
      | Some m -> Error m
      | None ->
          Ok
            {
              repl_cut_points = !cut_count;
              stream_flips = !flip_count;
              follower_crashes = !crash_count;
              repl_failovers = !failover_count;
              repl_commits = commits;
            })

(* --- crash-point sweep over streaming bulk ingest ---

   The live run streams a document through Durable.bulk_ingest with a
   deliberately tiny batch budget, recording the log size after every
   committed chunk. The crash sweep then replants the pre-ingest
   snapshot plus a cut (or corrupted) log in a scratch directory and
   demands, independently of the recovery code's own bookkeeping:

   - open_ lands on the pre-ingest (empty) database with exactly the
     chunks whose commit boundary survived the cut held as pending —
     and is idempotent about it;
   - resume_ingest over the original document converges to a database
     marshal-bit-identical to the serial whole-document build — no
     matter where the crash cut;
   - the completed directory (live or resumed) reopens to that same
     digest, which doubles as the streamed-vs-whole differential. *)

type ingest_report = {
  ingest_crash_points : int;
  ingest_flips : int;
  ingest_batches : int;
}

let ingest_sweep ?crash_points ?(ingest_flips = 64) ?(batch_rows = 16) doc =
  let source_of () =
    let pos = ref 0 in
    fun () ->
      if !pos >= String.length doc then None
      else begin
        let n = min 512 (String.length doc - !pos) in
        let b = Bytes.of_string (String.sub doc !pos n) in
        pos := !pos + n;
        Some b
      end
  in
  (* the serial whole-document oracle, and the empty pre-ingest one *)
  match Xvi_xml.Parser.parse doc with
  | Error e ->
      Error ("ingest_sweep: document: " ^ Xvi_xml.Parser.error_to_string e)
  | Ok store ->
      let full_digest = db_digest (Db.of_store store) in
      let empty_digest = db_digest (Db.of_store (Store.create ())) in
      let base = fresh_dir "xvi_ingest_base" in
      let crash = fresh_dir "xvi_ingest_crash" in
      Fun.protect
        ~finally:(fun () ->
          rm_rf base;
          rm_rf crash)
        (fun () ->
          let base_wal = Filename.concat base "wal.log" in
          let base_snap = Filename.concat base "snapshot.xvi" in
          let snap_bytes = ref "" (* the LSN-0 pre-ingest snapshot *) in
          let wal_bytes = ref "" in
          let sizes = ref [] (* log size after each chunk commit, reversed *) in
          let on_progress (_ : Xvi_ingest.Ingest.progress) =
            if String.length !snap_bytes = 0 then
              snap_bytes := read_file base_snap;
            let w = read_file base_wal in
            (* the final progress call can land without a fresh commit *)
            if String.length w > String.length !wal_bytes then begin
              wal_bytes := w;
              sizes := String.length w :: !sizes
            end
          in
          (match
             Durable.bulk_ingest ~dir:base ~batch_rows
               ~progress:on_progress (source_of ())
           with
          | Error m -> failwith ("ingest_sweep: live ingest failed: " ^ m)
          | Ok t ->
              let d = db_digest (Durable.db t) in
              Durable.close t;
              if d <> full_digest then
                failwith
                  "ingest_sweep: streamed ingest diverged from the \
                   whole-document build");
          (match Durable.open_ base with
          | Error m -> failwith ("ingest_sweep: reopen failed: " ^ m)
          | Ok t ->
              let d = db_digest (Durable.db t) in
              let pending = Durable.pending_ingest t in
              Durable.close t;
              (match pending with
              | Some _ ->
                  failwith
                    "ingest_sweep: completed directory still reports a \
                     pending ingest"
              | None -> ());
              if d <> full_digest then
                failwith
                  "ingest_sweep: completed directory did not reopen to the \
                   whole-document digest");
          let wal_bytes = !wal_bytes in
          let snap_bytes = !snap_bytes in
          let wal_size = String.length wal_bytes in
          let sizes = Array.of_list (List.rev !sizes) in
          let batches = Array.length sizes in
          let magic_len = String.length Wal.magic in
          let committed_before cut =
            let k = ref 0 in
            Array.iter (fun s -> if s <= cut then incr k) sizes;
            !k
          in
          let failure = ref None in
          let fail m = if !failure = None then failure := Some m in
          let crash_snap = Filename.concat crash "snapshot.xvi" in
          let crash_wal = Filename.concat crash "wal.log" in
          (* One crash variant: recovery must expose exactly [expect]
             pending chunks over the empty database, twice over; when
             chunks survived, resuming over the original document must
             converge to the whole-document digest, after which the
             directory must reopen to it. *)
          let check_variant ~what ~damaged ~expect =
            write_file crash_snap snap_bytes;
            write_file crash_wal damaged;
            match Durable.open_ crash with
            | Error m -> fail (Printf.sprintf "recovery failed on %s: %s" what m)
            | Ok t -> (
                let d1 = db_digest (Durable.db t) in
                let chunks1 =
                  match Durable.pending_ingest t with
                  | None -> 0
                  | Some p -> p.Durable.chunks
                in
                if d1 <> empty_digest then begin
                  Durable.close t;
                  fail
                    (Printf.sprintf
                       "recovery did not land on the pre-ingest state on %s"
                       what)
                end
                else if chunks1 <> expect then begin
                  Durable.close t;
                  fail
                    (Printf.sprintf
                       "recovery kept %d chunks on %s (%d committed)" chunks1
                       what expect)
                end
                else begin
                  Durable.close t;
                  (* idempotence, then resume on a fresh handle *)
                  match Durable.open_ crash with
                  | Error m ->
                      fail
                        (Printf.sprintf "second recovery failed on %s: %s" what
                           m)
                  | Ok t2 -> (
                      let d2 = db_digest (Durable.db t2) in
                      let chunks2 =
                        match Durable.pending_ingest t2 with
                        | None -> 0
                        | Some p -> p.Durable.chunks
                      in
                      if d2 <> d1 || chunks2 <> chunks1 then begin
                        Durable.close t2;
                        fail
                          (Printf.sprintf "recovery is not idempotent on %s"
                             what)
                      end
                      else if chunks2 = 0 then Durable.close t2
                      else
                        match
                          Durable.resume_ingest ~batch_rows t2 (source_of ())
                        with
                        | Error m ->
                            fail
                              (Printf.sprintf "resume failed on %s: %s" what m)
                        | Ok t3 ->
                            let d3 = db_digest (Durable.db t3) in
                            Durable.close t3;
                            if d3 <> full_digest then
                              fail
                                (Printf.sprintf
                                   "resumed ingest diverged from the \
                                    whole-document build on %s"
                                   what)
                            else (
                              match Durable.open_ crash with
                              | Error m ->
                                  fail
                                    (Printf.sprintf
                                       "post-resume reopen failed on %s: %s"
                                       what m)
                              | Ok t4 ->
                                  let d4 = db_digest (Durable.db t4) in
                                  Durable.close t4;
                                  if d4 <> full_digest then
                                    fail
                                      (Printf.sprintf
                                         "resumed directory did not reopen \
                                          to the whole-document digest on %s"
                                         what)))
                end)
          in
          let expect_open_error ~what ~damaged =
            write_file crash_snap snap_bytes;
            write_file crash_wal damaged;
            match Durable.open_ crash with
            | Error _ -> ()
            | Ok t ->
                Durable.close t;
                fail (Printf.sprintf "recovery accepted %s" what)
          in
          let lengths =
            match crash_points with
            | None -> List.init (wal_size + 1) (fun i -> i)
            | Some cap ->
                let spaced = List.init cap (fun i -> i * wal_size / cap) in
                let edges =
                  Array.to_list sizes
                  |> List.concat_map (fun s -> [ s - 1; s; s + 1 ])
                in
                List.sort_uniq Int.compare
                  ((0 :: (magic_len - 1) :: magic_len :: wal_size :: edges)
                  @ spaced)
                |> List.filter (fun l -> l >= 0 && l <= wal_size)
          in
          let points = ref 0 in
          List.iter
            (fun len ->
              if !failure = None then begin
                incr points;
                let damaged = String.sub wal_bytes 0 len in
                let what =
                  Printf.sprintf "ingest log torn at byte %d of %d" len
                    wal_size
                in
                if len < magic_len then expect_open_error ~what ~damaged
                else check_variant ~what ~damaged ~expect:(committed_before len)
              end)
            lengths;
          let flip_offsets =
            let wanted = min ingest_flips wal_size in
            if wanted <= 0 then []
            else
              List.sort_uniq Int.compare
                (List.init magic_len (fun i -> i)
                @ List.init wanted (fun i -> i * wal_size / wanted))
              |> List.filter (fun p -> p >= 0 && p < wal_size)
          in
          let flipped = ref 0 in
          List.iter
            (fun pos ->
              if !failure = None then begin
                incr flipped;
                let damaged = Bytes.of_string wal_bytes in
                Bytes.set damaged pos
                  (Char.chr
                     (Char.code wal_bytes.[pos] lxor (1 lsl (pos mod 8))));
                let damaged = Bytes.to_string damaged in
                let what =
                  Printf.sprintf "byte flip at ingest log offset %d" pos
                in
                if pos < magic_len then expect_open_error ~what ~damaged
                else check_variant ~what ~damaged ~expect:(committed_before pos)
              end)
            flip_offsets;
          match !failure with
          | Some m -> Error m
          | None ->
              Ok
                {
                  ingest_crash_points = !points;
                  ingest_flips = !flipped;
                  ingest_batches = batches;
                })

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Snapshot = Xvi_core.Snapshot
module Txn = Xvi_txn.Txn
module Wal = Xvi_wal.Wal
module Durable = Xvi_wal.Durable

type report = { truncations : int; flips : int }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* One damaged variant: load must return Error — an exception or an Ok
   means the snapshot layer trusted corrupt bytes. *)
let expect_rejection ~what path =
  (match Snapshot.is_snapshot path with
  | (true | false) -> ()
  | exception e ->
      failwith
        (Printf.sprintf "is_snapshot raised %s on %s" (Printexc.to_string e)
           what));
  match Snapshot.load path with
  | Error _ -> Ok ()
  | Ok _ -> Error (Printf.sprintf "load returned Ok on %s" what)
  | exception e ->
      Error
        (Printf.sprintf "load raised %s on %s" (Printexc.to_string e) what)

let sweep ?(flips = 128) ?all_offsets ?truncations:trunc_cap db =
  let path = Filename.temp_file "xvi_fault" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Snapshot.save db path;
      let pristine = read_file path in
      let size = String.length pristine in
      (match Snapshot.load path with
      | Ok _ -> ()
      | Error e ->
          failwith ("pristine snapshot did not load: " ^ Snapshot.error_to_string e));
      let all_offsets =
        match all_offsets with Some b -> b | None -> size <= 8192
      in
      let failure = ref None in
      let fail m = if !failure = None then failure := Some m in
      (* truncations: descending, so each step is one metadata-only
         syscall and the file never has to be rewritten *)
      let lengths =
        match trunc_cap with
        | None -> List.init size (fun i -> size - 1 - i)
        | Some cap when cap >= size -> List.init size (fun i -> size - 1 - i)
        | Some cap ->
            (* evenly spaced, still descending so truncate alone suffices *)
            List.init cap (fun i -> (cap - 1 - i) * size / cap)
      in
      let truncations = ref 0 in
      List.iter
        (fun len ->
          if !failure = None then begin
            Unix.truncate path len;
            incr truncations;
            match
              expect_rejection
                ~what:(Printf.sprintf "truncation to %d bytes" len)
                path
            with
            | Ok () -> ()
            | Error m -> fail m
          end)
        lengths;
      write_file path pristine;
      (* byte flips: every offset when small, else evenly spaced plus
         the whole header region (magic, fingerprint, length, digest) *)
      let offsets =
        if all_offsets then List.init size (fun i -> i)
        else begin
          let header = min size 128 in
          let spaced =
            List.init flips (fun i -> i * size / flips)
          in
          List.sort_uniq Int.compare (List.init header (fun i -> i) @ spaced)
        end
      in
      let flipped = ref 0 in
      List.iter
        (fun pos ->
          if !failure = None then begin
            let damaged = Bytes.of_string pristine in
            Bytes.set damaged pos
              (Char.chr (Char.code pristine.[pos] lxor (1 lsl (pos mod 8))));
            write_file path (Bytes.to_string damaged);
            incr flipped;
            match
              expect_rejection
                ~what:(Printf.sprintf "byte flip at offset %d" pos)
                path
            with
            | Ok () -> ()
            | Error m -> fail m
          end)
        offsets;
      (* and the original must still load after a restore *)
      write_file path pristine;
      (match Snapshot.load path with
      | Ok _ -> ()
      | Error e ->
          fail ("restored pristine snapshot rejected: " ^ Snapshot.error_to_string e));
      match !failure with
      | Some m -> Error m
      | None -> Ok { truncations = !truncations; flips = !flipped })

(* --- crash-point sweep over the write-ahead log ---

   The oracle for every crash position is a database rebuilt from the
   base snapshot by re-issuing the committed prefix of operations
   through the public Db/Txn APIs — no WAL code anywhere in it. Which
   operations are "the committed prefix" is also decided independently
   of the scan logic: the live run records the log size after each
   commit, and a crash at byte [c] commits exactly the operations whose
   recorded size is <= c. Recovery must then produce a database whose
   marshalled bytes are identical to the oracle's, twice over (reopening
   the recovered directory must change nothing — idempotency). *)

type wal_op =
  | W_batch of (Store.node * string) list
  | W_insert of { parent : Store.node; fragment : string }
  | W_delete of Store.node

type wal_report = { crash_points : int; wal_flips : int; commits : int }

let db_digest db = Digest.string (Marshal.to_string db [ Marshal.Closures ])

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* Re-issue the first [k] operations on a fresh load of the base
   snapshot. Batches go through Txn with the same insertion order as the
   live run, so the winning commit hands Db.update_texts the same list
   in the same order — the oracle and the recovery must agree bit for
   bit, not just logically. *)
let oracle_rebuild snap_path ops k =
  match Snapshot.load snap_path with
  | Error e ->
      failwith ("wal_sweep: oracle snapshot load: " ^ Snapshot.error_to_string e)
  | Ok db ->
      let mgr = Txn.manager db in
      List.iter
        (function
          | W_batch writes -> (
              let tx = Txn.begin_ mgr in
              List.iter
                (fun (n, v) ->
                  match Txn.update_text tx n v with
                  | Ok () -> ()
                  | Error _ -> failwith "wal_sweep: oracle update rejected")
                writes;
              match Txn.commit tx with
              | Ok () -> ()
              | Error _ -> failwith "wal_sweep: oracle commit conflicted")
          | W_insert { parent; fragment } -> (
              match Db.insert_xml db ~parent fragment with
              | Ok _ -> ()
              | Error _ -> failwith "wal_sweep: oracle insert rejected")
          | W_delete n -> Db.delete_subtree db n)
        (take k ops);
      db_digest db

let wal_sweep ?crash_points ?(wal_flips = 128) db batches =
  let batches = List.filter (fun b -> b <> []) batches in
  let base = fresh_dir "xvi_wal_base" in
  let crash = fresh_dir "xvi_wal_crash" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf base;
      rm_rf crash)
    (fun () ->
      (* Live run: snapshot the caller's database at LSN 0, reopen the
         directory (so the caller's copy is never mutated), and commit
         the scripted operations, recording the log size after each. *)
      Durable.close (Durable.create ~sync_mode:Wal.Always ~dir:base db);
      let live = Durable.open_exn base in
      let boundaries = ref [] (* (wal size after commit, op), reversed *) in
      let record op =
        boundaries := ((Durable.stats live).Durable.wal_bytes, op) :: !boundaries
      in
      List.iter
        (fun writes ->
          match Durable.update_texts live writes with
          | Ok () -> record (W_batch writes)
          | Error (c : Txn.conflict) ->
              failwith ("wal_sweep: live commit conflicted: " ^ c.Txn.reason))
        batches;
      let probe = "<wal-probe kind=\"crash-sweep\">probe text</wal-probe>" in
      (match Durable.insert_xml live ~parent:Store.document probe with
      | Ok (root :: _) ->
          record (W_insert { parent = Store.document; fragment = probe });
          Durable.delete_subtree live root;
          record (W_delete root)
      | Ok [] -> failwith "wal_sweep: probe insert returned no roots"
      | Error e ->
          failwith
            ("wal_sweep: probe insert rejected: "
            ^ Xvi_xml.Parser.error_to_string e));
      Durable.close live;
      let boundaries = List.rev !boundaries in
      let ops = List.map snd boundaries in
      let sizes = Array.of_list (List.map fst boundaries) in
      let commits = Array.length sizes in
      let wal_bytes = read_file (Filename.concat base "wal.log") in
      let snap_bytes = read_file (Filename.concat base "snapshot.xvi") in
      let wal_size = String.length wal_bytes in
      let magic_len = String.length Wal.magic in
      (* memoised oracle digests, one per committed-prefix length *)
      let oracle = Array.make (commits + 1) None in
      let oracle_digest k =
        match oracle.(k) with
        | Some d -> d
        | None ->
            let d = oracle_rebuild (Filename.concat base "snapshot.xvi") ops k in
            oracle.(k) <- Some d;
            d
      in
      let committed_before cut =
        let k = ref 0 in
        Array.iter (fun s -> if s <= cut then incr k) sizes;
        !k
      in
      let failure = ref None in
      let fail m = if !failure = None then failure := Some m in
      let crash_snap = Filename.concat crash "snapshot.xvi" in
      let crash_wal = Filename.concat crash "wal.log" in
      (* One crash variant: the snapshot plus the damaged log. Expects
         recovery to land exactly on the oracle of [expect] commits, and
         a second recovery of the recovered directory to change
         nothing. *)
      let check_variant ~what ~damaged ~expect =
        write_file crash_snap snap_bytes;
        write_file crash_wal damaged;
        match Durable.open_ crash with
        | Error m ->
            fail (Printf.sprintf "recovery failed on %s: %s" what m)
        | Ok t ->
            let d1 = db_digest (Durable.db t) in
            Durable.close t;
            if d1 <> oracle_digest expect then
              fail
                (Printf.sprintf
                   "recovery diverged from oracle on %s (%d commits expected)"
                   what expect)
            else (
              match Durable.open_ crash with
              | Error m ->
                  fail (Printf.sprintf "second recovery failed on %s: %s" what m)
              | Ok t2 ->
                  let d2 = db_digest (Durable.db t2) in
                  Durable.close t2;
                  if d2 <> d1 then
                    fail
                      (Printf.sprintf "recovery is not idempotent on %s" what))
      in
      let expect_open_error ~what ~damaged =
        write_file crash_snap snap_bytes;
        write_file crash_wal damaged;
        match Durable.open_ crash with
        | Error _ -> ()
        | Ok t ->
            Durable.close t;
            fail (Printf.sprintf "recovery accepted %s" what)
      in
      (* crash positions: every byte length of the log, or [crash_points]
         evenly spaced ones plus every commit boundary and its
         neighbours *)
      let lengths =
        match crash_points with
        | None -> List.init (wal_size + 1) (fun i -> i)
        | Some cap ->
            let spaced = List.init cap (fun i -> i * wal_size / cap) in
            let edges =
              Array.to_list sizes
              |> List.concat_map (fun s -> [ s - 1; s; s + 1 ])
            in
            List.sort_uniq Int.compare
              ((0 :: (magic_len - 1) :: magic_len :: wal_size :: edges) @ spaced)
            |> List.filter (fun l -> l >= 0 && l <= wal_size)
      in
      let points = ref 0 in
      List.iter
        (fun len ->
          if !failure = None then begin
            incr points;
            let damaged = String.sub wal_bytes 0 len in
            let what = Printf.sprintf "log torn at byte %d of %d" len wal_size in
            if len < magic_len then expect_open_error ~what ~damaged
            else check_variant ~what ~damaged ~expect:(committed_before len)
          end)
        lengths;
      (* byte flips inside the log: damage after the magic must recover
         the prefix before the damaged frame; damage inside the magic
         must be rejected *)
      let flip_offsets =
        let wanted = min wal_flips wal_size in
        if wanted <= 0 then []
        else
          List.sort_uniq Int.compare
            (List.init magic_len (fun i -> i)
            @ List.init wanted (fun i -> i * wal_size / wanted))
          |> List.filter (fun p -> p >= 0 && p < wal_size)
      in
      let flipped = ref 0 in
      List.iter
        (fun pos ->
          if !failure = None then begin
            incr flipped;
            let damaged = Bytes.of_string wal_bytes in
            Bytes.set damaged pos
              (Char.chr
                 (Char.code wal_bytes.[pos] lxor (1 lsl (pos mod 8))));
            let damaged = Bytes.to_string damaged in
            let what = Printf.sprintf "byte flip at log offset %d" pos in
            if pos < magic_len then expect_open_error ~what ~damaged
            else check_variant ~what ~damaged ~expect:(committed_before pos)
          end)
        flip_offsets;
      match !failure with
      | Some m -> Error m
      | None ->
          Ok { crash_points = !points; wal_flips = !flipped; commits })

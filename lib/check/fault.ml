module Snapshot = Xvi_core.Snapshot

type report = { truncations : int; flips : int }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* One damaged variant: load must return Error — an exception or an Ok
   means the snapshot layer trusted corrupt bytes. *)
let expect_rejection ~what path =
  (match Snapshot.is_snapshot path with
  | (true | false) -> ()
  | exception e ->
      failwith
        (Printf.sprintf "is_snapshot raised %s on %s" (Printexc.to_string e)
           what));
  match Snapshot.load path with
  | Error _ -> Ok ()
  | Ok _ -> Error (Printf.sprintf "load returned Ok on %s" what)
  | exception e ->
      Error
        (Printf.sprintf "load raised %s on %s" (Printexc.to_string e) what)

let sweep ?(flips = 128) ?all_offsets ?truncations:trunc_cap db =
  let path = Filename.temp_file "xvi_fault" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Snapshot.save db path;
      let pristine = read_file path in
      let size = String.length pristine in
      (match Snapshot.load path with
      | Ok _ -> ()
      | Error e ->
          failwith ("pristine snapshot did not load: " ^ Snapshot.error_to_string e));
      let all_offsets =
        match all_offsets with Some b -> b | None -> size <= 8192
      in
      let failure = ref None in
      let fail m = if !failure = None then failure := Some m in
      (* truncations: descending, so each step is one metadata-only
         syscall and the file never has to be rewritten *)
      let lengths =
        match trunc_cap with
        | None -> List.init size (fun i -> size - 1 - i)
        | Some cap when cap >= size -> List.init size (fun i -> size - 1 - i)
        | Some cap ->
            (* evenly spaced, still descending so truncate alone suffices *)
            List.init cap (fun i -> (cap - 1 - i) * size / cap)
      in
      let truncations = ref 0 in
      List.iter
        (fun len ->
          if !failure = None then begin
            Unix.truncate path len;
            incr truncations;
            match
              expect_rejection
                ~what:(Printf.sprintf "truncation to %d bytes" len)
                path
            with
            | Ok () -> ()
            | Error m -> fail m
          end)
        lengths;
      write_file path pristine;
      (* byte flips: every offset when small, else evenly spaced plus
         the whole header region (magic, fingerprint, length, digest) *)
      let offsets =
        if all_offsets then List.init size (fun i -> i)
        else begin
          let header = min size 128 in
          let spaced =
            List.init flips (fun i -> i * size / flips)
          in
          List.sort_uniq compare (List.init header (fun i -> i) @ spaced)
        end
      in
      let flipped = ref 0 in
      List.iter
        (fun pos ->
          if !failure = None then begin
            let damaged = Bytes.of_string pristine in
            Bytes.set damaged pos
              (Char.chr (Char.code pristine.[pos] lxor (1 lsl (pos mod 8))));
            write_file path (Bytes.to_string damaged);
            incr flipped;
            match
              expect_rejection
                ~what:(Printf.sprintf "byte flip at offset %d" pos)
                path
            with
            | Ok () -> ()
            | Error m -> fail m
          end)
        offsets;
      (* and the original must still load after a restore *)
      write_file path pristine;
      (match Snapshot.load path with
      | Ok _ -> ()
      | Error e ->
          fail ("restored pristine snapshot rejected: " ^ Snapshot.error_to_string e));
      match !failure with
      | Some m -> Error m
      | None -> Ok { truncations = !truncations; flips = !flipped })

(** Random documents and operation traces for the differential harness.

    Documents mix everything the shredder accepts: nested elements,
    mixed content (the paper's [<age><decades>4</decades>2<years/></age>]
    shape), attributes, numeric / datetime / prose / near-numeric text,
    empty elements, comments and processing instructions.

    Operations are {e self-contained}: a node is designated by an
    integer {e selector} resolved at application time against a
    deterministic enumeration of the eligible live nodes (node-id
    order, modulo the count). A trace [(document, op list)] therefore
    replays bit-identically on any machine, survives shrinking (removing
    an op leaves the rest meaningful), and can be printed as OCaml. *)

type op =
  | Update_text of int * string
      (** selector over live text/attribute nodes, new value *)
  | Update_texts of (int * string) list  (** one batched maintenance pass *)
  | Delete_subtree of int  (** selector over live non-document nodes *)
  | Insert_xml of int * string
      (** selector over live elements + the document node, fragment *)
  | Compact  (** vacuum tombstones; replaces the database *)
  | Snapshot_roundtrip  (** save + load through {!Xvi_core.Snapshot} *)
  | Txn of txn_script
      (** two interleaved transactions on one fresh manager *)

and txn_script = {
  writes_a : (int * string) list;
  writes_b : (int * string) list;
  abort_a : bool;  (** abort [a] instead of committing it *)
  abort_b : bool;
}

val names : string array
(** The element-name pool documents draw from; the runner probes these
    against the name index. *)

val document : Xvi_util.Prng.t -> string
(** A random well-formed document, roughly 20–200 nodes. *)

val fragment : Xvi_util.Prng.t -> string
(** A small well-formed fragment (possibly with a leading/trailing bare
    text run) for {!Xvi_core.Db.insert_xml}. *)

val value : Xvi_util.Prng.t -> string
(** A replacement text value: numeric, datetime, prose, near-numeric
    junk, a viable-but-incomplete fragment like ["."], or empty. *)

val op : Xvi_util.Prng.t -> op
(** The next random operation, weighted towards value updates (the
    paper's Figure 8 path). *)

(** A random predicate-IR tree in the same self-contained style as
    {!op}: scopes are integer selectors resolved by the runner against
    the live elements + the document node at check time. Range bounds
    may be open; type names mix the harness-indexed types with known
    types that have no index, forcing the planner's verified-scan
    fallback into the differential. *)
type ir_spec =
  | S_eq of string
  | S_range of string * float option * float option
      (** type name, inclusive lo / hi *)
  | S_contains of string
  | S_el_contains of string
  | S_named of string
  | S_within of int * ir_spec
  | S_and of ir_spec list
  | S_or of ir_spec list
  | S_not of ir_spec

val ir : Xvi_util.Prng.t -> ir_spec
(** A random tree, depth at most 3, leaves as above. *)

val op_to_ocaml : op -> string
(** The op as OCaml constructor syntax, for replayable trace output. *)

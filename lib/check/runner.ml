module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Snapshot = Xvi_core.Snapshot
module Lexical_types = Xvi_core.Lexical_types
module Txn = Xvi_txn.Txn
module Prng = Xvi_util.Prng

type outcome = { docs : int; ops : int; checks : int }

type failure = {
  seed : int;
  doc_index : int;
  doc : string;
  ops : Gen.op list;
  message : string;
}

let default_config =
  { Db.Config.default with Db.Config.substring = true }

(* --- selector resolution (documented in Gen: node-id order, mod) --- *)

let eligible store pred =
  let acc = ref [] in
  Store.iter_pre store (fun n -> if pred n then acc := n :: !acc);
  Array.of_list (List.rev !acc)

let leaves store =
  eligible store (fun n ->
      match Store.kind store n with
      | Store.Text | Store.Attribute -> true
      | _ -> false)

let deletable store = eligible store (fun n -> n <> Store.document)

let insert_parents store =
  eligible store (fun n ->
      n = Store.document || Store.kind store n = Store.Element)

let resolve arr k = if Array.length arr = 0 then None else Some arr.(k mod Array.length arr)

let resolve_writes store ws =
  let ls = leaves store in
  if Array.length ls = 0 then []
  else List.map (fun (k, v) -> (ls.(k mod Array.length ls), v)) ws

module Iset = Set.Make (Int)

(* --- one operation, through the public APIs only --- *)

exception Check_failed of string

let failf fmt = Printf.ksprintf (fun m -> raise (Check_failed m)) fmt

let apply_txn db (s : Gen.txn_script) =
  let store = Db.store db in
  let wa = resolve_writes store s.Gen.writes_a
  and wb = resolve_writes store s.Gen.writes_b in
  if wa = [] && wb = [] then ()
  else begin
    let mgr = Txn.manager db in
    let a = Txn.begin_ mgr and b = Txn.begin_ mgr in
    let write t (n, v) =
      match Txn.update_text t n v with
      | Ok () -> ()
      | Error `Finished -> failf "txn write refused: `Finished on live txn"
      | Error `Not_text -> failf "txn write refused: `Not_text on node %d" n
    in
    (* interleave the two write streams a, b, a, b, ... *)
    let rec zip t t' xs ys =
      match xs with
      | [] -> List.iter (write t') ys
      | x :: xs ->
          write t x;
          zip t' t ys xs
    in
    zip a b wa wb;
    let set_of ws = Iset.of_list (List.map fst ws) in
    let overlap = not (Iset.disjoint (set_of wa) (set_of wb)) in
    let a_committed =
      if s.Gen.abort_a || wa = [] then begin
        Txn.abort a;
        false
      end
      else
        match Txn.commit a with
        | Ok () -> true
        | Error c ->
            failf "txn a conflicted on a fresh manager: %s" c.Txn.reason
    in
    (* a is finished either way: further writes must say so *)
    (match (if wa = [] then wb else wa) with
    | [] -> failf "apply_txn: both write sets empty past the emptiness guard"
    | (probe, _) :: _ -> (
        match Txn.update_text a probe "x" with
        | Error `Finished -> ()
        | Ok () -> failf "write accepted after txn a finished"
        | Error `Not_text ->
            failf "`Not_text instead of `Finished after txn a finished"));
    let expect_conflict = a_committed && overlap && wb <> [] in
    let b_committed =
      if s.Gen.abort_b || wb = [] then begin
        Txn.abort b;
        false
      end
      else
        match (Txn.commit b, expect_conflict) with
        | Ok (), false -> true
        | Ok (), true -> failf "txn b committed but overlapped txn a's writes"
        | Error _, true -> false
        | Error c, false ->
            failf "txn b conflicted without overlap: %s" c.Txn.reason
    in
    (* first-committer-wins bookkeeping must reconcile exactly *)
    let st = Txn.stats mgr in
    let committed = (if a_committed then 1 else 0) + if b_committed then 1 else 0
    and conflicts = if expect_conflict && not (s.Gen.abort_b || wb = []) then 1 else 0 in
    let aborted = 2 - committed in
    if st.Txn.committed <> committed || st.Txn.aborted <> aborted
       || st.Txn.conflicts <> conflicts
    then
      failf "txn stats {c=%d;a=%d;x=%d} do not reconcile with {c=%d;a=%d;x=%d}"
        st.Txn.committed st.Txn.aborted st.Txn.conflicts committed aborted
        conflicts
  end

let apply_op db op =
  let store = Db.store db in
  match (op : Gen.op) with
  | Gen.Update_text (k, v) ->
      (match resolve (leaves store) k with
      | None -> db
      | Some n ->
          Db.update_text db n v;
          db)
  | Gen.Update_texts ws ->
      Db.update_texts db (resolve_writes store ws);
      db
  | Gen.Delete_subtree k ->
      (match resolve (deletable store) k with
      | None -> db
      | Some n ->
          Db.delete_subtree db n;
          db)
  | Gen.Insert_xml (k, frag) ->
      (match resolve (insert_parents store) k with
      | None -> db
      | Some parent ->
          (match Db.insert_xml db ~parent frag with
          | Ok _ -> ()
          | Error e ->
              failf "generated fragment %S rejected: %s" frag
                (Xvi_xml.Parser.error_to_string e));
          db)
  | Gen.Compact -> fst (Db.compact db)
  | Gen.Snapshot_roundtrip ->
      let path = Filename.temp_file "xvi_diff" ".snap" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Snapshot.save db path;
          match Snapshot.load path with
          | Ok db' -> db'
          | Error e ->
              failf "snapshot roundtrip failed: %s" (Snapshot.error_to_string e))
  | Gen.Txn s ->
      apply_txn db s;
      db

(* --- cross-checking every query family against the oracle --- *)

let show_nodes ns =
  let shown = List.filteri (fun i _ -> i < 20) ns in
  Printf.sprintf "[%s]%s"
    (String.concat ";" (List.map string_of_int shown))
    (if List.length ns > 20 then Printf.sprintf "…(%d)" (List.length ns) else "")

let compare_lists ~what expected actual =
  if expected <> actual then
    failf "%s diverged: oracle %s vs index %s" what (show_nodes expected)
      (show_nodes actual)

let show_range r =
  let s = function None -> "_" | Some v -> Printf.sprintf "%h" v in
  Printf.sprintf "[%s,%s]" (s (Db.Range.lo r)) (s (Db.Range.hi r))

let sample_values rng store =
  (* string values of a few random live nodes, as equality probes *)
  let pool = eligible store (fun n ->
      match Store.kind store n with
      | Store.Element | Store.Text | Store.Attribute -> true
      | _ -> false)
  in
  if Array.length pool = 0 then []
  else
    List.init 3 (fun _ ->
        Oracle.string_value store (Prng.choose rng pool))

let sample_doubles rng store =
  let double = Lexical_types.double () in
  let ls = leaves store in
  let vals = ref [] in
  for _ = 1 to 8 do
    if Array.length ls > 0 then
      match double.Lexical_types.parse (Store.text store (Prng.choose rng ls)) with
      | Some v -> vals := v :: !vals
      | None -> ()
  done;
  !vals

let sample_pattern rng store =
  let ls = leaves store in
  if Array.length ls = 0 then "x"
  else
    let s = Store.text store (Prng.choose rng ls) in
    if String.length s = 0 then "x"
    else
      let start = Prng.int rng (String.length s) in
      let len = min (1 + Prng.int rng 5) (String.length s - start) in
      String.sub s start len

(* A generated spec becomes a concrete IR term against the current
   store: [S_within] selectors resolve over the live elements + the
   document node (the same pool as insert parents); an unresolvable
   scope drops the wrapper rather than the whole tree. *)
let rec resolve_ir store (s : Gen.ir_spec) : Db.Ir.t =
  let range_of lo hi =
    match (lo, hi) with
    | None, None -> Db.Range.any
    | Some lo, None -> Db.Range.at_least lo
    | None, Some hi -> Db.Range.at_most hi
    | Some lo, Some hi -> Db.Range.between lo hi
  in
  match s with
  | Gen.S_eq v -> Db.Ir.string_eq v
  | Gen.S_range (ty, lo, hi) -> Db.Ir.typed_range ty (range_of lo hi)
  | Gen.S_contains p -> Db.Ir.contains p
  | Gen.S_el_contains p -> Db.Ir.element_contains p
  | Gen.S_named nm -> Db.Ir.named nm
  | Gen.S_within (k, inner) -> (
      let inner = resolve_ir store inner in
      match resolve (insert_parents store) k with
      | Some scope -> Db.Ir.within ~scope inner
      | None -> inner)
  | Gen.S_and ss -> Db.Ir.conj (List.map (resolve_ir store) ss)
  | Gen.S_or ss -> Db.Ir.disj (List.map (resolve_ir store) ss)
  | Gen.S_not s -> Db.Ir.neg (resolve_ir store s)

let check ~config ~step db counter =
  let store = Db.store db in
  let rng = Prng.create (0x5EED + (7919 * step)) in
  let tick () = incr counter in
  (* string equality *)
  let probes =
    ("" :: "\xe2\x89\x8b absent \xe2\x89\x8b" :: sample_values rng store)
  in
  List.iter
    (fun s ->
      tick ();
      compare_lists
        ~what:(Printf.sprintf "lookup_string %S" s)
        (Oracle.lookup_string store s)
        (Db.lookup_string db s))
    probes;
  (* double ranges *)
  let double = Lexical_types.double () in
  let ranges =
    Db.Range.
      [
        any; between 0. 100.; between 43. 42.; between nan 1.;
        at_most infinity; at_least (-0.);
      ]
    @ List.concat_map
        (fun v ->
          Db.Range.
            [ between v v; at_least v; between (v -. 1.5) (v +. 0.5) ])
        (sample_doubles rng store)
  in
  List.iter
    (fun r ->
      tick ();
      compare_lists
        ~what:(Printf.sprintf "lookup_double %s" (show_range r))
        (Oracle.lookup_typed store double r)
        (Db.lookup_double db r))
    ranges;
  (* datetime, through the by-name entry point *)
  let datetime = Lexical_types.datetime () in
  tick ();
  compare_lists ~what:"lookup_typed xs:dateTime any"
    (Oracle.lookup_typed store datetime Db.Range.any)
    (Db.lookup_typed db "xs:dateTime" Db.Range.any);
  (* containment *)
  if config.Db.Config.substring then begin
    List.iter
      (fun pat ->
        tick ();
        compare_lists
          ~what:(Printf.sprintf "lookup_contains %S" pat)
          (Oracle.lookup_contains store pat)
          (Db.lookup_contains db pat);
        tick ();
        compare_lists
          ~what:(Printf.sprintf "lookup_element_contains %S" pat)
          (Oracle.lookup_element_contains store pat)
          (Db.lookup_element_contains db pat))
      [ sample_pattern rng store; ""; "zz\xc2\xac" ]
  end;
  (* element names *)
  let name_probes =
    let named = eligible store (fun n -> Store.kind store n = Store.Element) in
    Prng.choose rng Gen.names
    :: "nonexistent"
    :: (if Array.length named = 0 then []
        else [ Store.name store (Prng.choose rng named) ])
  in
  List.iter
    (fun nm ->
      tick ();
      compare_lists
        ~what:(Printf.sprintf "elements_named %S" nm)
        (Oracle.elements_named store nm)
        (Db.elements_named db nm))
    name_probes;
  (* scoped lookups *)
  let scopes = insert_parents store in
  if Array.length scopes > 0 then begin
    let scope = Prng.choose rng scopes in
    let s =
      (List.nth probes (2 mod List.length probes)
      [@xvi.lint.allow
        "R2: probes opens with two literal conses, so (2 mod length) is a \
         valid index"])
    in
    tick ();
    compare_lists
      ~what:(Printf.sprintf "lookup_string_within scope=%d %S" scope s)
      (Oracle.lookup_string_within store ~scope s)
      (Db.lookup_string_within db ~scope s);
    let r =
      (List.hd ranges
      [@xvi.lint.allow "R2: ranges starts with a literal six-element list"])
    in
    tick ();
    compare_lists
      ~what:(Printf.sprintf "lookup_double_within scope=%d %s" scope (show_range r))
      (Oracle.lookup_typed_within store double ~scope r)
      (Db.lookup_double_within db ~scope r)
  end;
  (* compositional IR queries: random conjunction/disjunction/negation/
     scope trees through the planner vs the oracle's per-node truth
     test *)
  List.iter
    (fun spec ->
      let ir = resolve_ir store spec in
      tick ();
      compare_lists
        ~what:(Printf.sprintf "query %s" (Db.Ir.to_string ir))
        (Oracle.eval_ir store ir)
        (Db.query db ir))
    (List.init 3 (fun _ -> Gen.ir rng));
  (* periodically, the heavyweight check: every index vs a rebuild *)
  if step mod 7 = 0 then begin
    tick ();
    match Db.validate db with
    | Ok () -> ()
    | Error e -> failf "Db.validate: %s" e
  end

let run_doc ?(config = default_config) ~doc ~ops () =
  let counter = ref 0 in
  try
    let db =
      match Db.of_xml ~config doc with
      | Ok db -> db
      | Error e ->
          failf "document rejected by parser: %s"
            (Xvi_xml.Parser.error_to_string e)
    in
    check ~config ~step:0 db counter;
    let _db =
      List.fold_left
        (fun (db, i) op ->
          let db =
            try apply_op db op
            with Check_failed m -> failf "step %d (%s): %s" i (Gen.op_to_ocaml op) m
          in
          (try check ~config ~step:i db counter
           with Check_failed m -> failf "after step %d (%s): %s" i (Gen.op_to_ocaml op) m);
          (db, i + 1))
        (db, 1) ops
    in
    Ok !counter
  with
  | Check_failed m -> Error m
  | e ->
      Error
        (Printf.sprintf "escaped exception: %s" (Printexc.to_string e))

(* --- shrinking: ddmin-lite over the op list --- *)

let remove_slice i size ops =
  List.filteri (fun j _ -> j < i || j >= i + size) ops

let shrink ~config ~doc ops =
  let budget = ref 300 in
  let fails ops =
    if !budget <= 0 then false
    else begin
      decr budget;
      Result.is_error (run_doc ~config ~doc ~ops ())
    end
  in
  let rec pass size ops =
    if size < 1 then ops
    else begin
      let rec try_at i ops =
        if i >= List.length ops then ops
        else begin
          let cand = remove_slice i size ops in
          if List.length cand < List.length ops && fails cand then try_at i cand
          else try_at (i + size) ops
        end
      in
      pass (size / 2) (try_at 0 ops)
    end
  in
  pass (max 1 (List.length ops / 2)) ops

(* --- the fleet loop --- *)

let run ?(config = default_config) ?(log = fun _ -> ()) ~seed ~docs ~ops_per_doc
    () =
  let master = Prng.create seed in
  let total_ops = ref 0 and total_checks = ref 0 in
  let rec loop i =
    if i >= docs then Ok { docs; ops = !total_ops; checks = !total_checks }
    else begin
      let rng = Prng.split master in
      let doc = Gen.document rng in
      let ops = List.init ops_per_doc (fun _ -> Gen.op rng) in
      match run_doc ~config ~doc ~ops () with
      | Ok checks ->
          total_ops := !total_ops + ops_per_doc;
          total_checks := !total_checks + checks;
          log
            (Printf.sprintf "doc %d/%d ok: %d ops, %d checks" (i + 1) docs
               ops_per_doc checks);
          loop (i + 1)
      | Error _ ->
          log (Printf.sprintf "doc %d/%d FAILED, shrinking..." (i + 1) docs);
          let ops = shrink ~config ~doc ops in
          let message =
            match run_doc ~config ~doc ~ops () with
            | Error m -> m
            | Ok _ -> "(divergence vanished during shrinking — flaky trace)"
          in
          Error { seed; doc_index = i; doc; ops; message }
    end
  in
  loop 0

(* --- concurrent readers against a single writer ---------------------

   Readers pin epochs from a serving {!Xvi_serve.Engine} while the
   writer commits a scripted sequence of text batches. Every pin is
   checked two ways:

   - bit identity: the pinned database's marshalled bytes must equal
     those of an oracle replica that replayed exactly the first
     [pin.commits] scripted batches through the same Txn path, copied
     and plane-forced the same way publication does — an epoch is the
     whole committed prefix, never a torn or partial state;
   - self-consistency: query families answered on the pinned database
     are compared against {!Oracle} over its own store.

   Midway, the writer stalls inside a commit — holding the writer lock —
   until every reader has made further progress, which is the lock-free
   read claim asserted rather than assumed. *)

module Engine = Xvi_serve.Engine

type concurrent_outcome = {
  readers : int;
  reads : int;
  commits : int;
  epochs : int;
}

let pub_digest db =
  (* exactly what publication does: deep copy, force the plane, hash the
     marshalled bytes — so oracle and epoch digests are comparable *)
  let c = Db.copy db in
  ignore (Db.plane c : Xvi_xml.Pre_plane.t);
  Digest.string (Marshal.to_string c [ Marshal.Closures ])

let run_concurrent ?(config = default_config) ?(log = fun (_ : string) -> ())
    ~seed ~readers ~commits () =
  try
    (* Small column chunks (2^8 entries) so the scripted writes append
       and mutate across many chunk boundaries: the run then exercises
       the store's chunked copy-on-write — shared chunks cloned on first
       write, fresh chunks appended past the boundary — not just the
       heap indexes' isolation. The chunk size travels with each vector,
       so every copy, epoch, and oracle replica in the run agrees. *)
    Xvi_util.Bigvec.with_chunk_log_for_testing 8 @@ fun () ->
    if readers < 1 then failf "run_concurrent: need at least one reader";
    if commits < 1 then failf "run_concurrent: need at least one commit";
    let rng = Prng.create seed in
    (* a generated document with at least one writable leaf *)
    let rec pick tries =
      if tries = 0 then
        failf "run_concurrent: no generated document had a writable leaf"
      else
        match Db.of_xml ~config (Gen.document rng) with
        | Error _ -> pick (tries - 1)
        | Ok db ->
            if Array.length (leaves (Db.store db)) = 0 then pick (tries - 1)
            else db
    in
    let master = pick 50 in
    let replica = Db.copy master in
    let ls = leaves (Db.store master) in
    (* the whole write script is fixed before any domain starts *)
    let batches =
      List.init commits (fun k ->
          let width = 1 + Prng.int rng 3 in
          List.init width (fun j ->
              let n = ls.(Prng.int rng (Array.length ls)) in
              let v =
                if (k + j) mod 3 = 0 then Printf.sprintf "%d.%d" k j
                else Printf.sprintf "c%d-w%d" k j
              in
              (n, v)))
    in
    (* oracle digests for every commit prefix, replayed on the replica
       through the same Txn path the engine's writer uses *)
    let expected = Array.make (commits + 1) "" in
    expected.(0) <- pub_digest replica;
    let omgr = Txn.manager replica in
    List.iteri
      (fun i writes ->
        let tx = Txn.begin_ omgr in
        List.iter
          (fun (n, v) ->
            match Txn.update_text tx n v with
            | Ok () -> ()
            | Error _ -> failf "run_concurrent: oracle stage rejected")
          writes;
        (match Txn.commit tx with
        | Ok () -> ()
        | Error _ -> failf "run_concurrent: oracle commit conflicted");
        expected.(i + 1) <- pub_digest replica)
      batches;
    let engine =
      match Engine.open_ (Engine.Memory master) with
      | Ok e -> e
      | Error e -> failf "run_concurrent: %s" (Engine.error_to_string e)
    in
    (* Pin the pre-write epoch and hold it across the whole run: with
       chunked copy-on-write the writer mutates chunks this pin shares,
       so its bytes after every commit has landed must still be the
       0-commit prefix, bit for bit. *)
    let pin0 = Engine.pin engine in
    let pin0_digest =
      Digest.string (Marshal.to_string pin0.Engine.db [ Marshal.Closures ])
    in
    if pin0_digest <> expected.(pin0.Engine.commits) then
      failf "pre-write pin is not the %d-commit prefix" pin0.Engine.commits;
    let total_reads = Atomic.make 0 in
    let writer_done = Atomic.make false in
    let reader idx =
      let rng = Prng.create (seed + (7919 * (idx + 1))) in
      let last_epoch = ref (-1) and last_commits = ref (-1) in
      let seen = ref Iset.empty in
      let my_reads = ref 0 in
      let check_pin (pin : Engine.pinned) =
        if pin.Engine.epoch < !last_epoch then
          failf "reader %d: epoch went backwards (%d after %d)" idx
            pin.Engine.epoch !last_epoch;
        if pin.Engine.commits < !last_commits then
          failf "reader %d: commit count went backwards (%d after %d)" idx
            pin.Engine.commits !last_commits;
        last_epoch := pin.Engine.epoch;
        last_commits := pin.Engine.commits;
        seen := Iset.add pin.Engine.epoch !seen;
        if pin.Engine.commits < 0 || pin.Engine.commits > commits then
          failf "reader %d: pinned %d commits of a %d-commit script" idx
            pin.Engine.commits commits;
        let d =
          Digest.string (Marshal.to_string pin.Engine.db [ Marshal.Closures ])
        in
        if d <> expected.(pin.Engine.commits) then
          failf "reader %d: epoch %d is not the scripted %d-commit prefix" idx
            pin.Engine.epoch pin.Engine.commits;
        let db = pin.Engine.db in
        let store = Db.store db in
        let pls = leaves store in
        if Array.length pls > 0 then begin
          let probe = Store.text store (Prng.choose rng pls) in
          compare_lists
            ~what:(Printf.sprintf "reader %d lookup_string %S" idx probe)
            (Oracle.lookup_string store probe)
            (Db.lookup_string db probe)
        end;
        let nm = Prng.choose rng Gen.names in
        compare_lists
          ~what:(Printf.sprintf "reader %d elements_named %S" idx nm)
          (Oracle.elements_named store nm)
          (Db.elements_named db nm);
        compare_lists
          ~what:(Printf.sprintf "reader %d lookup_double any" idx)
          (Oracle.lookup_typed store (Lexical_types.double ()) Db.Range.any)
          (Db.lookup_double db Db.Range.any);
        incr my_reads;
        Atomic.incr total_reads
      in
      let rec loop () =
        let pin = Engine.pin engine in
        check_pin pin;
        if not (Atomic.get writer_done) then loop ()
      in
      match
        loop ();
        (* one last pin so the final epoch is covered too *)
        check_pin (Engine.pin engine)
      with
      | () -> Ok (!my_reads, !seen)
      | exception Check_failed m -> Error m
      | exception e ->
          Error
            (Printf.sprintf "reader %d escaped exception: %s" idx
               (Printexc.to_string e))
    in
    let doms = List.init readers (fun idx -> Domain.spawn (fun () -> reader idx)) in
    let stall_failed = ref false in
    let stall_at = commits / 2 in
    let writer_commit k writes =
      let tx = Engine.begin_ engine in
      List.iter
        (fun (n, v) ->
          match Txn.update_text tx n v with
          | Ok () -> ()
          | Error _ -> failf "writer: stage of commit %d rejected" k)
        writes;
      match Engine.submit engine tx with
      | Ok _ -> ()
      | Error e ->
          failf "writer: commit %d rejected: %s" k (Engine.error_to_string e)
    in
    let werr = ref None in
    (try
       List.iteri
         (fun k writes ->
           if k = stall_at then
             Engine.set_commit_stall engine
               (Some
                  (fun () ->
                    (* the writer now holds the commit lock; every reader
                       must still make progress before it lets go *)
                    let target = Atomic.get total_reads + (2 * readers) in
                    let deadline = Xvi_util.Timing.now_s () +. 30.0 in
                    let rec wait () =
                      if Atomic.get total_reads >= target then ()
                      else if Xvi_util.Timing.now_s () > deadline then
                        stall_failed := true
                      else begin
                        Unix.sleepf 0.001;
                        wait ()
                      end
                    in
                    wait ()));
           writer_commit k writes;
           if k = stall_at then Engine.set_commit_stall engine None
           else Unix.sleepf 0.0002)
         batches
     with Check_failed m -> werr := Some m);
    Atomic.set writer_done true;
    let results = List.map Domain.join doms in
    let pin0_after =
      Digest.string (Marshal.to_string pin0.Engine.db [ Marshal.Closures ])
    in
    if pin0_after <> pin0_digest then
      failf
        "pinned pre-write epoch changed under the writer — a copy-on-write \
         chunk was mutated while shared";
    Engine.close engine;
    match !werr with
    | Some m -> Error m
    | None ->
        if !stall_failed then
          Error
            "readers made no progress while the writer was stalled \
             mid-commit — a read blocked on the writer"
        else begin
          let rec collect reads seen = function
            | [] ->
                let out =
                  { readers; reads; commits; epochs = Iset.cardinal seen }
                in
                log
                  (Printf.sprintf
                     "%d readers made %d checked reads over %d epochs while \
                      %d commits landed"
                     out.readers out.reads out.epochs out.commits);
                Ok out
            | Error m :: _ -> Error m
            | Ok (r, s) :: rest -> collect (reads + r) (Iset.union seen s) rest
          in
          collect 0 Iset.empty results
        end
  with
  | Check_failed m -> Error m
  | e -> Error (Printf.sprintf "escaped exception: %s" (Printexc.to_string e))

(* --- replayable trace rendering --- *)

let doc_literal doc =
  (* a quoted-string literal keeps the XML readable; fall back to %S if
     the closing delimiter happens to occur in the text *)
  let closer = "|xvi}" in
  let contains_closer =
    let m = String.length closer and n = String.length doc in
    let rec at i j = j = m || (doc.[i + j] = closer.[j] && at i (j + 1)) in
    let rec go i = i + m <= n && (at i 0 || go (i + 1)) in
    go 0
  in
  if contains_closer then Printf.sprintf "%S" doc
  else Printf.sprintf "{xvi|%s|xvi}" doc

let render_trace f =
  let ops =
    String.concat ";\n    " (List.map Gen.op_to_ocaml f.ops)
  in
  String.concat "\n"
    [
      Printf.sprintf
        "(* xvi differential harness: minimal failing trace (seed %d, doc %d).\n\
        \   Divergence: %s *)"
        f.seed f.doc_index f.message;
      Printf.sprintf "let doc = %s" (doc_literal f.doc);
      "let ops =";
      Printf.sprintf "  Xvi_check.Gen.[\n    %s;\n  ]" ops;
      "let () =";
      "  match Xvi_check.Runner.run_doc ~doc ~ops () with";
      "  | Ok n -> Printf.printf \"trace no longer fails (%d checks)\\n\" n";
      "  | Error m -> prerr_endline m; exit 1";
      "";
    ]

(** The differential-testing oracle: every {!Xvi_core.Db} query answered
    by direct recursive traversal of the store, with no index structure
    involved anywhere.

    This module is the standing definition of {e correct} for the whole
    index family. It re-implements the XDM string value, typed-value
    extraction and document order from the {!Xvi_xml.Store} navigation
    primitives alone ([kind] / [first_child] / [next_sibling] /
    [first_attribute] / [text]); it shares no code with the indices, the
    [Indexer] recombination pass, or the pre/size/level plane, so a bug
    in any of those shows up as a divergence rather than being mirrored
    here.

    Reference semantics implemented here (and documented in DESIGN.md):

    - {e string value}: for text, attribute, comment and PI nodes, their
      own content; for elements and the document node, the concatenation
      of all {e descendant text nodes} in document order — attributes,
      comments and PIs do not contribute.
    - {e typed value}: a node has a typed value iff the type's DFA
      accepts its full string value (run directly, character by
      character); [spec.parse] then supplies the key. Range bounds are
      inclusive, an empty ([lo > hi]) or NaN bound matches nothing, and
      results are ordered by (value, node id).
    - {e document order}: pre-order; the attributes of an element come
      right after the element and before its children.

    All results are lists of live nodes; equality lookups and
    containment are in node-id order, matching the index contracts. *)

type node = Xvi_xml.Store.node

val string_value : Xvi_xml.Store.t -> node -> string
(** Independent recomputation of {!Xvi_xml.Store.string_value}. *)

val typed_value :
  Xvi_core.Lexical_types.spec -> Xvi_xml.Store.t -> node -> float option
(** The typed key of a node whose string value is a complete lexical
    form of the spec's type; [None] otherwise. *)

val lookup_string : Xvi_xml.Store.t -> string -> node list
(** Oracle for {!Xvi_core.Db.lookup_string}: live element, attribute,
    text and document nodes whose string value equals the argument. *)

val lookup_typed :
  Xvi_xml.Store.t ->
  Xvi_core.Lexical_types.spec ->
  Xvi_core.Db.Range.t ->
  node list
(** Oracle for {!Xvi_core.Db.lookup_typed} / [lookup_double]. *)

val lookup_contains : Xvi_xml.Store.t -> string -> node list
(** Oracle for {!Xvi_core.Db.lookup_contains}: text and attribute nodes
    whose own content contains the pattern. *)

val lookup_element_contains : Xvi_xml.Store.t -> string -> node list
(** Oracle for {!Xvi_core.Db.lookup_element_contains}: elements and the
    document node whose string value contains the pattern. *)

val elements_named : Xvi_xml.Store.t -> string -> node list
(** Oracle for {!Xvi_core.Db.elements_named}. *)

val lookup_string_within :
  Xvi_xml.Store.t -> scope:node -> string -> node list
(** Oracle for {!Xvi_core.Db.lookup_string_within}: string matches that
    are [scope] itself or lie in its subtree, in document order. *)

val lookup_typed_within :
  Xvi_xml.Store.t ->
  Xvi_core.Lexical_types.spec ->
  scope:node ->
  Xvi_core.Db.Range.t ->
  node list
(** Oracle for {!Xvi_core.Db.lookup_double_within}, generalised over the
    spec. *)

val eval_ir : Xvi_xml.Store.t -> Xvi_core.Db.Ir.t -> node list
(** Oracle for {!Xvi_core.Db.query}: the predicate IR evaluated by one
    recursive truth test per node over this module's own pre-order walk
    — no cursors, no plans, no estimates. The universe is the live
    nodes with an XDM string value; [Within] is the ancestor up-walk,
    [Not] the complement within the universe. Results in document
    order.
    @raise Invalid_argument on a [Typed_range] whose type name is not
    in {!Xvi_core.Lexical_types.all} (matching {!Xvi_core.Db.query}). *)

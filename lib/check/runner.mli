(** The differential runner: apply a random operation trace to an
    indexed {!Xvi_core.Db} and, after {e every} step, compare every
    query family against {!Oracle}'s index-free answers.

    On a divergence the runner shrinks the trace (delta debugging over
    the op list) to a minimal failing sequence and renders it as a
    self-contained, replayable OCaml program. *)

type outcome = {
  docs : int;  (** documents generated and exercised *)
  ops : int;  (** operations applied *)
  checks : int;  (** individual oracle-vs-index comparisons *)
}

type failure = {
  seed : int;
  doc_index : int;  (** which generated document failed *)
  doc : string;  (** its XML, verbatim *)
  ops : Gen.op list;  (** shrunk to a minimal failing trace *)
  message : string;  (** what diverged, at which step *)
}

val run_doc :
  ?config:Xvi_core.Db.Config.t ->
  doc:string ->
  ops:Gen.op list ->
  unit ->
  (int, string) result
(** Replay one trace: build the database over [doc] (default config:
    doubles + datetimes + the substring index, serial build), apply each
    op, cross-check after every step. [Ok checks] on success, [Error
    message] on the first divergence, validation failure, or escaped
    exception. This is the entry point a printed trace calls. *)

val run :
  ?config:Xvi_core.Db.Config.t ->
  ?log:(string -> unit) ->
  seed:int ->
  docs:int ->
  ops_per_doc:int ->
  unit ->
  (outcome, failure) result
(** Generate [docs] random documents from [seed], each with
    [ops_per_doc] operations, and differential-check them all. The
    first divergence is shrunk before being returned. [log] receives
    one progress line per document. *)

val render_trace : failure -> string
(** The failure as a replayable OCaml program ([run_doc] invocation),
    plus the divergence message in a comment. *)

(** {1 Concurrent readers against a single writer}

    {!run_concurrent} serves a generated document through
    {!Xvi_serve.Engine} and races [readers] reader domains against the
    single writer while it commits a scripted sequence of text batches.
    Each reader repeatedly pins an epoch and checks it two ways: the
    pinned database's marshalled bytes must be {e bit-identical} to an
    oracle replica that replayed exactly the first [pin.commits]
    scripted batches (an epoch is always a whole committed prefix, never
    torn), and several query families on the pinned database must agree
    with {!Oracle} over its own store. Epoch and commit counters must
    never move backwards within a reader.

    Midway through the script the writer {e stalls inside a commit},
    holding the writer lock, and refuses to continue until every reader
    has made further progress — so a run that returns [Ok] has
    witnessed, not assumed, that no read ever blocks on the writer.

    The run forces small store-column chunks
    ({!Xvi_util.Bigvec.with_chunk_log_for_testing}) so the scripted
    writes cross many chunk boundaries, and holds one pre-write pin
    across the entire script: its re-digest at the end proves the
    chunked copy-on-write never mutated a shared chunk in place. *)

type concurrent_outcome = {
  readers : int;  (** reader domains raced *)
  reads : int;  (** pins fully cross-checked, summed over readers *)
  commits : int;  (** scripted writer commits applied *)
  epochs : int;  (** distinct epochs observed by any reader *)
}

val run_concurrent :
  ?config:Xvi_core.Db.Config.t ->
  ?log:(string -> unit) ->
  seed:int ->
  readers:int ->
  commits:int ->
  unit ->
  (concurrent_outcome, string) result
(** Race [readers] domains against a [commits]-batch writer over a
    document generated from [seed]. [Error] carries the first
    divergence, ordering violation, or the blocked-reader verdict. *)

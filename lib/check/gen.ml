module Prng = Xvi_util.Prng
module Serializer = Xvi_xml.Serializer

type op =
  | Update_text of int * string
  | Update_texts of (int * string) list
  | Delete_subtree of int
  | Insert_xml of int * string
  | Compact
  | Snapshot_roundtrip
  | Txn of txn_script

and txn_script = {
  writes_a : (int * string) list;
  writes_b : (int * string) list;
  abort_a : bool;
  abort_b : bool;
}

let names =
  [| "item"; "price"; "name"; "age"; "decades"; "years"; "note"; "entry";
     "v"; "w"; "person"; "weight" |]

let attr_names = [| "id"; "key"; "ts"; "unit"; "lang" |]

let vocab =
  [| "alpha"; "beta"; "gamma"; "Arthur"; "Dent"; "value"; "index"; "tree";
     "xml"; "green" |]

let number rng =
  match Prng.int rng 10 with
  | 0 -> string_of_int (Prng.int rng 1000)
  | 1 -> Printf.sprintf "-%d" (Prng.int rng 100)
  | 2 -> Printf.sprintf "%d.%d" (Prng.int rng 100) (Prng.int rng 1000)
  | 3 -> Printf.sprintf "%d.%dE%d" (Prng.int rng 10) (Prng.int rng 100)
           (Prng.in_range rng (-5) 5)
  | 4 -> "-0"
  | 5 -> "0"
  | 6 -> "42"
  | 7 -> "." (* viable double fragment, never a complete value *)
  | 8 -> Printf.sprintf "%d." (Prng.int rng 50)
  | _ -> Printf.sprintf ".%d" (Prng.int rng 50)

let datetime rng =
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d%s"
    (1970 + Prng.int rng 80)
    (1 + Prng.int rng 12)
    (1 + Prng.int rng 28)
    (Prng.int rng 24) (Prng.int rng 60) (Prng.int rng 60)
    (match Prng.int rng 4 with
    | 0 -> "Z"
    | 1 -> Printf.sprintf "+%02d:00" (Prng.int rng 13)
    | 2 -> Printf.sprintf "-%02d:30" (Prng.int rng 13)
    | _ -> "")

let words rng =
  String.concat " "
    (List.init (1 + Prng.int rng 3) (fun _ -> Prng.choose rng vocab))

(* Shaped like a number or datetime but not one — exercises the
   accepting-state-but-unparseable corner of the typed indices. *)
let junk rng =
  Prng.choose rng
    [| "12a"; "1.2.3"; "--5"; "2009-13-45T99:00:00Z"; "+"; "E5"; "1E"; " 7 x" |]

let value rng =
  Prng.choose_weighted rng
    [|
      (4, `Number); (3, `Words); (2, `Datetime); (2, `Junk); (1, `Empty);
    |]
  |> function
  | `Number -> number rng
  | `Words -> words rng
  | `Datetime -> datetime rng
  | `Junk -> junk rng
  | `Empty -> ""

(* --- documents --- *)

let add_attrs buf rng =
  let k = Prng.int rng 3 in
  let used = ref [] in
  for _ = 1 to k do
    let a = Prng.choose rng attr_names in
    if not (List.mem a !used) then begin
      used := a :: !used;
      Buffer.add_string buf
        (Printf.sprintf " %s=\"%s\"" a (Serializer.escape_attr (value rng)))
    end
  done

let rec element buf rng depth =
  let name = Prng.choose rng names in
  Buffer.add_char buf '<';
  Buffer.add_string buf name;
  add_attrs buf rng;
  if depth >= 4 || Prng.int rng 5 = 0 then Buffer.add_string buf "/>"
  else begin
    Buffer.add_char buf '>';
    let kids = Prng.int rng 4 in
    for _ = 0 to kids do
      match Prng.int rng 10 with
      | 0 | 1 | 2 | 3 -> element buf rng (depth + 1)
      | 4 | 5 | 6 | 7 ->
          Buffer.add_string buf (Serializer.escape_text (value rng))
      | 8 -> Buffer.add_string buf "<!-- noise -->"
      | _ -> Buffer.add_string buf "<?pi data?>"
    done;
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  end

let document rng =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "<doc>";
  for _ = 0 to 1 + Prng.int rng 5 do
    element buf rng 1
  done;
  Buffer.add_string buf "</doc>";
  Buffer.contents buf

let fragment rng =
  let buf = Buffer.create 64 in
  for _ = 0 to Prng.int rng 2 do
    if Prng.int rng 4 = 0 then
      Buffer.add_string buf (Serializer.escape_text (value rng))
    else element buf rng 3
  done;
  if Buffer.length buf = 0 then element buf rng 3;
  Buffer.contents buf

(* --- operations --- *)

let selector rng = Prng.int rng 1_000_000

let writes rng =
  List.init (1 + Prng.int rng 4) (fun _ -> (selector rng, value rng))

let op rng =
  match
    Prng.choose_weighted rng
      [|
        (28, `Update); (14, `Batch); (14, `Txn); (14, `Insert); (10, `Delete);
        (4, `Compact); (4, `Snapshot);
      |]
  with
  | `Update -> Update_text (selector rng, value rng)
  | `Batch -> Update_texts (writes rng)
  | `Txn ->
      Txn
        {
          writes_a = writes rng;
          writes_b = writes rng;
          abort_a = Prng.int rng 5 = 0;
          abort_b = Prng.int rng 5 = 0;
        }
  | `Insert -> Insert_xml (selector rng, fragment rng)
  | `Delete -> Delete_subtree (selector rng)
  | `Compact -> Compact
  | `Snapshot -> Snapshot_roundtrip

(* --- predicate-IR trees (the query-planner differential) --- *)

type ir_spec =
  | S_eq of string
  | S_range of string * float option * float option
  | S_contains of string
  | S_el_contains of string
  | S_named of string
  | S_within of int * ir_spec
  | S_and of ir_spec list
  | S_or of ir_spec list
  | S_not of ir_spec

let pattern rng =
  let w = Prng.choose rng vocab in
  String.sub w 0 (1 + Prng.int rng (String.length w))

let bound rng =
  match Prng.int rng 4 with
  | 0 -> None
  | 1 -> Some (float_of_int (Prng.in_range rng (-100) 1000))
  | 2 -> Some (float_of_int (Prng.int rng 800) /. 8.)
  | _ -> Some (float_of_int (Prng.int rng 50))

(* xs:double and xs:dateTime are indexed under the harness config;
   xs:integer and xs:decimal are known types without an index, so a
   range over them must route through the planner's verified-scan
   fallback and still agree with the oracle. *)
let range_types =
  [| "xs:double"; "xs:double"; "xs:double"; "xs:dateTime"; "xs:integer";
     "xs:decimal" |]

let ir_leaf rng =
  match Prng.int rng 7 with
  | 0 | 1 -> S_eq (value rng)
  | 2 -> S_eq (Prng.choose rng vocab)
  | 3 -> S_range (Prng.choose rng range_types, bound rng, bound rng)
  | 4 -> S_contains (pattern rng)
  | 5 -> S_el_contains (pattern rng)
  | _ -> S_named (Prng.choose rng names)

let rec ir_node rng depth =
  if depth <= 0 then ir_leaf rng
  else
    match Prng.int rng 8 with
    | 0 | 1 ->
        S_and (List.init (2 + Prng.int rng 2) (fun _ -> ir_node rng (depth - 1)))
    | 2 | 3 ->
        S_or (List.init (2 + Prng.int rng 2) (fun _ -> ir_node rng (depth - 1)))
    | 4 -> S_not (ir_node rng (depth - 1))
    | 5 -> S_within (selector rng, ir_node rng (depth - 1))
    | _ -> ir_leaf rng

let ir rng = ir_node rng 3

(* --- trace printing --- *)

let writes_to_ocaml ws =
  "[ "
  ^ String.concat "; "
      (List.map (fun (k, v) -> Printf.sprintf "(%d, %S)" k v) ws)
  ^ " ]"

let op_to_ocaml = function
  | Update_text (k, v) -> Printf.sprintf "Update_text (%d, %S)" k v
  | Update_texts ws -> Printf.sprintf "Update_texts %s" (writes_to_ocaml ws)
  | Delete_subtree k -> Printf.sprintf "Delete_subtree %d" k
  | Insert_xml (k, frag) -> Printf.sprintf "Insert_xml (%d, %S)" k frag
  | Compact -> "Compact"
  | Snapshot_roundtrip -> "Snapshot_roundtrip"
  | Txn { writes_a; writes_b; abort_a; abort_b } ->
      Printf.sprintf
        "Txn { writes_a = %s; writes_b = %s; abort_a = %b; abort_b = %b }"
        (writes_to_ocaml writes_a) (writes_to_ocaml writes_b) abort_a abort_b

(** Fault injection for the snapshot layer.

    {!sweep} saves a snapshot of the given database, then damages the
    file in two systematic ways and asserts that {!Xvi_core.Snapshot}
    stays total on every variant:

    - {e truncation}: the file cut to every shorter length (descending,
      via [Unix.truncate], so the sweep is metadata-only and covers all
      offsets even for large snapshots);
    - {e byte flips}: single-byte corruptions — every offset when the
      file is small enough, otherwise [flips] offsets evenly spaced
      across the file plus the entire header region.

    For each damaged variant, [Snapshot.load] must return [Error _]:
    raising any exception or returning [Ok] on damaged bytes is a
    failure. [Snapshot.is_snapshot] is also exercised and must never
    raise. *)

type report = { truncations : int; flips : int }
(** How many damaged variants were exercised. *)

val sweep :
  ?flips:int ->
  ?all_offsets:bool ->
  ?truncations:int ->
  Xvi_core.Db.t ->
  (report, string) result
(** [sweep db] runs the full sweep against a fresh snapshot of [db] in a
    temp file (removed afterwards). [flips] (default [128]) is the
    minimum number of byte-flip offsets; [all_offsets] (default: only
    when the file is ≤ 8 KiB) forces one flip per byte of the file;
    [truncations] caps the truncation sweep to that many evenly spaced
    lengths (default: every length shorter than the file). *)

(** {1 Crash-point sweep over the write-ahead log}

    {!wal_sweep} runs a scripted, durably-logged workload against a
    {!Xvi_wal.Durable} directory, then simulates a crash at byte
    positions of the log — every length of a torn tail, and single-byte
    corruptions — and checks each recovery against an {e oracle}: a
    database rebuilt from the base snapshot by re-issuing the committed
    operation prefix through the public [Db]/[Txn] APIs, with no WAL
    code involved. Which operations count as committed at a crash
    position is decided from log sizes recorded during the live run,
    independently of the scanner under test.

    For every crash position, recovery must (a) succeed, (b) yield a
    database whose marshalled bytes equal the oracle's, and (c) be
    idempotent — recovering the recovered directory changes nothing.
    Damage inside the log's magic header must instead be rejected. *)

type wal_report = {
  crash_points : int;  (** torn-tail positions exercised *)
  wal_flips : int;  (** single-byte corruptions exercised *)
  commits : int;  (** committed transactions in the scripted workload *)
}

val wal_sweep :
  ?crash_points:int ->
  ?wal_flips:int ->
  Xvi_core.Db.t ->
  (Xvi_xml.Store.node * string) list list ->
  (wal_report, string) result
(** [wal_sweep db batches] snapshots [db] into a fresh durable
    directory (the caller's copy is never mutated), commits each batch
    of text updates as one transaction, then a probe subtree insert and
    delete, and sweeps crash positions as described above.
    [crash_points] caps the torn-tail positions to that many evenly
    spaced lengths plus every commit boundary and its neighbours
    (default: every byte length of the log); [wal_flips] (default
    [128]) bounds the corruption offsets, which always include the
    whole magic header. Batch writes must target text or attribute
    nodes of [db]. *)

(** {1 Crash-point sweep over group commit across sessions}

    {!serve_sweep} replays the same crash discipline against the
    {!Xvi_serve.Engine} serving path: batches are packed into rounds of
    up to [sessions] pairwise-disjoint transactions, all open
    concurrently, committed {e deferred} under a group window too wide
    to ever close on its own — so only the explicit engine sync closing
    each round (one shared fsync for every session's commit in it) makes
    them durable. The live run also asserts the group-commit observable
    itself: before each round's sync the engine's durable watermark must
    trail its last LSN, and after it must cover it.

    The crash sweep then cuts the log at torn-tail positions (always
    including every commit and sync boundary): recovery must land on
    exactly the committed prefix of the cut, be idempotent, and — at a
    sync boundary — hold exactly the acked set: every commit whose sync
    returned before the crash is present, and no unacked commit is
    visible. *)

type serve_report = {
  serve_crash_points : int;  (** torn-tail positions exercised *)
  sessions : int;  (** concurrently open transactions per round *)
  serve_commits : int;  (** commits in the scripted workload *)
  syncs : int;  (** shared group-commit fsync boundaries *)
}

val serve_sweep :
  ?crash_points:int ->
  ?sessions:int ->
  Xvi_core.Db.t ->
  (Xvi_xml.Store.node * string) list list ->
  (serve_report, string) result
(** [serve_sweep db batches] initialises a durable directory from [db]
    (never mutating the caller's copy), serves it through an engine with
    an effectively infinite group window, and runs the multi-session
    deferred-commit workload described above. Batches with overlapping
    write sets are placed in different rounds — a conflict would abort
    the round, which is not what this sweep measures. [sessions]
    defaults to [3]; [crash_points] caps the sweep as in
    {!wal_sweep}. *)

(** {1 Replication fault sweep}

    {!repl_sweep} runs the same scripted workload as {!wal_sweep} on a
    leader, then drives a {e real} {!Xvi_repl.Follower} — production
    bootstrap, pull, validation, append-then-apply, rejoin and
    promotion code — through an in-process transport whose leader side
    is a byte string the sweep cuts, tears and corrupts:

    - {e leader crash}: the stream is cut at every WAL frame boundary
      (and just inside each frame). The follower must converge on
      exactly the committed prefix of the cut, and promoting it —
      recovering its directory — must yield marshalled bytes identical
      to the {!wal_sweep} oracle for that prefix, twice over.
    - {e in-transit corruption}: every byte of the shipped stream is
      flipped once. The follower must reject the whole batch with
      nothing applied (the WAL digest framing is the only checksum
      layer), then converge to the full oracle once the wire is clean.
    - {e follower crash}: a fully synced follower's own log is torn at
      every length; re-creating the follower over the damaged
      directory must truncate the torn tail (or re-seed) and converge
      back to the full oracle.
    - {e failover and rejoin}: at each commit-boundary cut the
      follower is promoted and commits a fresh write; the deposed
      leader then rejoins with its full — now divergent — log. The
      digest walkback must truncate its tail at the last common LSN,
      and both directories must recover to bit-identical state. *)

type repl_report = {
  repl_cut_points : int;  (** leader-crash stream cuts exercised *)
  stream_flips : int;  (** in-transit corruptions exercised *)
  follower_crashes : int;  (** follower-log tear positions exercised *)
  repl_failovers : int;  (** promote-and-rejoin rounds exercised *)
  repl_commits : int;  (** committed transactions in the workload *)
}

val repl_sweep :
  ?cut_points:int ->
  ?stream_flips:int ->
  ?follower_crashes:int ->
  ?failovers:int ->
  Xvi_core.Db.t ->
  (Xvi_xml.Store.node * string) list list ->
  (repl_report, string) result
(** [repl_sweep db batches] — workload shape as in {!wal_sweep} (each
    batch one committed transaction, plus a probe insert and delete).
    Each optional cap bounds its sweep to that many evenly spaced
    points (commit edges always included); default is the full sweep. *)

(** {1 Crash-point sweep over streaming bulk ingest}

    {!ingest_sweep} streams a document through
    {!Xvi_wal.Durable.bulk_ingest} with a deliberately tiny batch
    budget, recording the log size after every committed chunk, then
    tears and corrupts the mid-ingest log exactly as {!wal_sweep}
    does. For every crash position, recovery must land on the
    pre-ingest (empty) database with exactly the chunks whose commit
    boundary survived held as pending — idempotently — and
    {!Xvi_wal.Durable.resume_ingest} over the original document must
    converge to a database marshal-bit-identical to the serial
    whole-document build ([Parser.parse] + [Db.of_store]), which the
    sweep also asserts for the uninterrupted live run and for every
    reopen of a completed directory. *)

type ingest_report = {
  ingest_crash_points : int;  (** torn-tail positions exercised *)
  ingest_flips : int;  (** single-byte corruptions exercised *)
  ingest_batches : int;  (** chunk commits in the live ingest *)
}

val ingest_sweep :
  ?crash_points:int ->
  ?ingest_flips:int ->
  ?batch_rows:int ->
  string ->
  (ingest_report, string) result
(** [ingest_sweep doc] — [doc] must parse. [batch_rows] (default [16])
    sets the live run's batch budget; keep it small so even a short
    document commits several chunks. [crash_points] caps the torn-tail
    positions to that many evenly spaced lengths plus every chunk
    boundary and its neighbours (default: every byte length of the
    log); [ingest_flips] (default [64]) bounds the corruption
    offsets. *)

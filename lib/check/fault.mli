(** Fault injection for the snapshot layer.

    {!sweep} saves a snapshot of the given database, then damages the
    file in two systematic ways and asserts that {!Xvi_core.Snapshot}
    stays total on every variant:

    - {e truncation}: the file cut to every shorter length (descending,
      via [Unix.truncate], so the sweep is metadata-only and covers all
      offsets even for large snapshots);
    - {e byte flips}: single-byte corruptions — every offset when the
      file is small enough, otherwise [flips] offsets evenly spaced
      across the file plus the entire header region.

    For each damaged variant, [Snapshot.load] must return [Error _]:
    raising any exception or returning [Ok] on damaged bytes is a
    failure. [Snapshot.is_snapshot] is also exercised and must never
    raise. *)

type report = { truncations : int; flips : int }
(** How many damaged variants were exercised. *)

val sweep :
  ?flips:int ->
  ?all_offsets:bool ->
  ?truncations:int ->
  Xvi_core.Db.t ->
  (report, string) result
(** [sweep db] runs the full sweep against a fresh snapshot of [db] in a
    temp file (removed afterwards). [flips] (default [128]) is the
    minimum number of byte-flip offsets; [all_offsets] (default: only
    when the file is ≤ 8 KiB) forces one flip per byte of the file;
    [truncations] caps the truncation sweep to that many evenly spaced
    lengths (default: every length shorter than the file). *)

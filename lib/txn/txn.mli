(** Transactional value updates without ancestor locks (paper §5.1).

    The challenge the paper raises: every text update changes the hash
    of {e all} its ancestors, so naive value-index locking would
    serialise every transaction on the document root. Its answer: the
    combination function [C] is written so that ancestor recombination
    commutes — a committing transaction re-reads the {e latest} fields
    of the updated node's siblings and recombines bottom-up, and even if
    concurrent commits changed those siblings in the meantime, the
    result is the same as any serial order.

    This module simulates that protocol with optimistic concurrency:

    - a transaction buffers text writes; no locks are taken;
    - at commit, write-write conflicts on the {e updated nodes
      themselves} (never on ancestors) abort the transaction;
    - the commit then runs the Figure 8 maintenance, which re-reads
      current sibling fields — the paper's "re-read the latest value of
      all ancestor nodes ... and their direct children".

    The test suite checks the headline property: disjoint transactions
    committed in any interleaving leave byte-identical indices. *)

type manager
type t

type conflict = { node : Xvi_xml.Store.node; reason : string }

val manager : Xvi_core.Db.t -> manager
val db : manager -> Xvi_core.Db.t

val begin_ : manager -> t

val update_text :
  t ->
  Xvi_xml.Store.node ->
  string ->
  (unit, [ `Finished | `Not_text ]) result
(** Buffer a text-node write. Later writes to the same node within the
    transaction overwrite earlier ones. [Error `Finished] if the
    transaction already committed or aborted; [Error `Not_text] if the
    node is not a text or attribute node. *)

val write_set : t -> Xvi_xml.Store.node list

val commit : t -> (unit, conflict) result
(** First-committer-wins on each written node; ancestors are never part
    of the conflict check. On success the store and all value indices
    are updated atomically (single-threaded simulation). *)

val abort : t -> unit

type stats = {
  committed : int;
  aborted : int;  (** conflict aborts and explicit {!abort}s together *)
  conflicts : int;  (** commit attempts lost to first-committer-wins *)
}

val stats : manager -> stats

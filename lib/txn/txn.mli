(** Transactional value updates without ancestor locks (paper §5.1).

    The challenge the paper raises: every text update changes the hash
    of {e all} its ancestors, so naive value-index locking would
    serialise every transaction on the document root. Its answer: the
    combination function [C] is written so that ancestor recombination
    commutes — a committing transaction re-reads the {e latest} fields
    of the updated node's siblings and recombines bottom-up, and even if
    concurrent commits changed those siblings in the meantime, the
    result is the same as any serial order.

    This module simulates that protocol with optimistic concurrency:

    - a transaction buffers text writes; no locks are taken;
    - at commit, write-write conflicts on the {e updated nodes
      themselves} (never on ancestors) abort the transaction;
    - the commit then runs the Figure 8 maintenance, which re-reads
      current sibling fields — the paper's "re-read the latest value of
      all ancestor nodes ... and their direct children".

    A manager may carry a {!durability} hook (installed by
    {!Xvi_wal.Durable}): the winning commit's write set is handed to
    the hook {e before} any store or index byte changes — the
    write-ahead invariant — and a post-visibility callback fires after
    maintenance, where the durable layer checks its auto-checkpoint
    threshold.

    The test suite checks the headline property: disjoint transactions
    committed in any interleaving leave byte-identical indices. *)

type manager
type t

type conflict = { node : Xvi_xml.Store.node; reason : string }

type durability = {
  log_commit :
    (Xvi_xml.Store.node * string) list -> [ `Synced | `Deferred ];
      (** Called with the write set of a commit that has passed the
          conflict check, before the store or any index is touched. The
          return says whether the log record already reached stable
          storage ([`Synced]) or is waiting for a group-commit window /
          explicit sync ([`Deferred]) — tallied in {!stats}. An
          exception aborts the commit with the store untouched. *)
  committed : unit -> unit;
      (** Called after the commit is fully applied and visible. *)
}

val manager : ?durability:durability -> Xvi_core.Db.t -> manager
(** A fresh manager over [db]. Without [durability] commits are
    memory-only (exactly the pre-WAL behaviour). *)

val db : manager -> Xvi_core.Db.t

val begin_ : manager -> t

val update_text :
  t ->
  Xvi_xml.Store.node ->
  string ->
  (unit, [ `Finished | `Not_text ]) result
(** Buffer a text-node write. Later writes to the same node within the
    transaction overwrite earlier ones. [Error `Finished] if the
    transaction already committed or aborted; [Error `Not_text] if the
    node is not a text or attribute node. *)

val write_set : t -> Xvi_xml.Store.node list

val is_active : t -> bool
(** Neither committed nor aborted yet — the only state {!commit} /
    {!abort} accept. Boundaries that must not raise (the serve engine)
    check this instead of catching [Invalid_argument]. *)

type commit_info = {
  durability : [ `Memory | `Synced | `Deferred ];
      (** [`Memory]: no durability hook ran (memory-only manager, or an
          empty write set — nothing reached the log). [`Synced] /
          [`Deferred]: what the hook reported, see {!durability}. *)
  writes : int;  (** size of the committed write set *)
}

val commit_r : t -> (commit_info, conflict) result
(** {!commit}, but telling the caller what the commit did — whether its
    log record is already on stable storage and whether it wrote
    anything at all. The serve engine's group-commit ack tracking needs
    both: a [`Deferred] commit must not be acked until a later fsync
    covers its LSN, and an empty commit must not advance any watermark. *)

val commit : t -> (unit, conflict) result
(** First-committer-wins on each written node; ancestors are never part
    of the conflict check. A written node that a structural delete has
    tombstoned since {!update_text} validated it is also a conflict —
    structural operations bypass the version table, so the kind is
    re-checked against the store here, before anything can reach the
    durability hook's log. On success the write set is logged through
    the manager's durability hook (when present) and only then applied:
    the store and all value indices are updated atomically
    (single-threaded simulation). Callers must not discard the [Error]
    case silently — a lost conflict is a lost update. *)

val abort : t -> unit

type stats = {
  committed : int;
  aborted : int;  (** conflict aborts and explicit {!abort}s together *)
  conflicts : int;  (** commit attempts lost to first-committer-wins *)
  wal_synced : int;
      (** durable commits whose log record was fsynced inline
          ([sync_mode = Always], or a group window that closed) *)
  wal_deferred : int;
      (** durable commits batched into a later group-commit fsync (or
          left to the OS under [sync_mode = Never]) — [wal_synced +
          wal_deferred = committed] on a durable manager with non-empty
          write sets, and the split is the group-commit batching
          observable *)
}

val stats : manager -> stats

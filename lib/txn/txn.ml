module Store = Xvi_xml.Store
module Db = Xvi_core.Db

type durability = {
  log_commit : (Store.node * string) list -> [ `Synced | `Deferred ];
  committed : unit -> unit;
}

type manager = {
  db : Db.t;
  versions : (Store.node, int) Hashtbl.t; (* node -> commit stamp *)
  durability : durability option;
  mutable clock : int;
  mutable committed : int;
  mutable aborted : int;
  mutable conflicts : int;
  mutable wal_synced : int;
  mutable wal_deferred : int;
}

type stats = {
  committed : int;
  aborted : int;
  conflicts : int;
  wal_synced : int;
  wal_deferred : int;
}

type status = Active | Committed | Aborted

type t = {
  mgr : manager;
  start : int;
  writes : (Store.node, string) Hashtbl.t;
  mutable status : status;
}

type conflict = { node : Store.node; reason : string }

let manager ?durability db =
  {
    db;
    versions = Hashtbl.create 256;
    durability;
    clock = 0;
    committed = 0;
    aborted = 0;
    conflicts = 0;
    wal_synced = 0;
    wal_deferred = 0;
  }

let db mgr = mgr.db

let begin_ mgr =
  { mgr; start = mgr.clock; writes = Hashtbl.create 8; status = Active }

let check_active t op =
  match t.status with
  | Active -> ()
  | Committed | Aborted ->
      invalid_arg (Printf.sprintf "Txn.%s: transaction is finished" op)

let update_text t node value =
  match t.status with
  | Committed | Aborted -> Error `Finished
  | Active -> (
      match Store.kind (Db.store t.mgr.db) node with
      | Store.Text | Store.Attribute ->
          Hashtbl.replace t.writes node value;
          Ok ()
      | _ -> Error `Not_text)

let write_set t = Hashtbl.fold (fun n _ acc -> n :: acc) t.writes []

let is_active t =
  match t.status with Active -> true | Committed | Aborted -> false

type commit_info = {
  durability : [ `Memory | `Synced | `Deferred ];
  writes : int;
}

let commit_r t =
  check_active t "commit";
  (* First-committer-wins, checked only on the written leaves — the
     paper's point is precisely that ancestors need no locks and no
     conflict check, because recombination commutes. Structural deletes
     bypass the version table, so the kind a write validated at
     [update_text] time is re-checked here: a node tombstoned since then
     must surface as a conflict *before* the durability hook can log a
     record that would fail to apply (and fail again on every replay). *)
  let conflict =
    Hashtbl.fold
      (fun node _ acc ->
        match acc with
        | Some _ -> acc
        | None -> (
            match Hashtbl.find_opt t.mgr.versions node with
            | Some stamp when stamp > t.start ->
                Some
                  {
                    node;
                    reason =
                      Printf.sprintf
                        "node %d committed at stamp %d after txn start %d" node
                        stamp t.start;
                  }
            | _ -> (
                match Store.kind (Db.store t.mgr.db) node with
                | Store.Text | Store.Attribute -> None
                | _ ->
                    Some
                      {
                        node;
                        reason =
                          Printf.sprintf
                            "node %d was removed by a structural operation \
                             during the transaction"
                            node;
                      })))
      t.writes None
  in
  match conflict with
  | Some c ->
      t.status <- Aborted;
      t.mgr.aborted <- t.mgr.aborted + 1;
      t.mgr.conflicts <- t.mgr.conflicts + 1;
      Error c
  | None ->
      t.mgr.clock <- t.mgr.clock + 1;
      let stamp = t.mgr.clock in
      let updates = Hashtbl.fold (fun n v acc -> (n, v) :: acc) t.writes [] in
      (* Write-ahead: the log record must be appended (and, depending on
         the sync mode, forced) before any index or store byte changes,
         so a crash between the two replays the commit rather than
         losing it. *)
      let durability =
        match t.mgr.durability with
        | Some d when updates <> [] -> (
            match d.log_commit updates with
            | `Synced ->
                t.mgr.wal_synced <- t.mgr.wal_synced + 1;
                `Synced
            | `Deferred ->
                t.mgr.wal_deferred <- t.mgr.wal_deferred + 1;
                `Deferred)
        | _ -> `Memory
      in
      Db.update_texts t.mgr.db updates;
      List.iter (fun (n, _) -> Hashtbl.replace t.mgr.versions n stamp) updates;
      t.status <- Committed;
      t.mgr.committed <- t.mgr.committed + 1;
      (* Post-visibility hook: the durable layer checks its
         auto-checkpoint threshold here, once the database reflects the
         commit it would snapshot. *)
      (match t.mgr.durability with
      | Some d when updates <> [] -> d.committed ()
      | _ -> ());
      Ok { durability; writes = List.length updates }

let commit t = Result.map (fun (_ : commit_info) -> ()) (commit_r t)

let abort t =
  check_active t "abort";
  t.status <- Aborted;
  t.mgr.aborted <- t.mgr.aborted + 1

let stats (mgr : manager) =
  {
    committed = mgr.committed;
    aborted = mgr.aborted;
    conflicts = mgr.conflicts;
    wal_synced = mgr.wal_synced;
    wal_deferred = mgr.wal_deferred;
  }

module Store = Xvi_xml.Store
module Sax = Xvi_xml.Sax
module Bigvec = Xvi_util.Bigvec
module Pool = Xvi_util.Pool
module Db = Xvi_core.Db
module Indexer = Xvi_core.Indexer
module Hash = Xvi_core.Hash
module Sct = Xvi_core.Sct
module Lexical_types = Xvi_core.Lexical_types
module String_index = Xvi_core.String_index
module Typed_index = Xvi_core.Typed_index

(* The streaming shredder maintains, per open element, exactly the
   state the Figure 7 walk keeps on its explicit stack: the combined
   field of the element's departed children.  A text or attribute node
   is finalized at its append; an element when its end tag arrives; the
   document at end of stream.  At finalization a node's field is final
   — that is when its posting is emitted and its SCT state judged —
   so every index machine runs in the same single pass as the shred.

   Bit-identity with the serial whole-document build rests on three
   replications, each pinned by the differential harness:

   - field storage: the serial pass [set]s exactly the text nodes,
     attributes and text-bearing ancestors (combining departed children
     into parents, where [combine x identity = x] exactly — the unit
     law the parallel builder already relies on).  We stage fields in
     an off-heap column and replay [0 .. max_assigned] through
     [Indexer.set] at the end, reproducing the exact [Vec.Poly] shape
     (identity holes included).
   - postings: the serial pass collects every indexable node's packed
     key and sorts once; we sort bounded batch runs and k-way merge
     them into [Btree.of_sorted_seq], which builds the identical tree.
   - typed values: viable/accepting judgements happen at finalization
     with the same states; the [(node, value)] pairs are replayed in
     ascending node order, matching the serial pass's insertion
     sequence. *)

type machine = { spec : Lexical_types.spec; msct : Sct.t; mid : int }

type frame = {
  node : Store.node;
  mutable has_text : bool;
  mutable hash : Hash.t;
  states : int array; (* one accumulator per machine *)
}

module Builder = struct
  type t = {
    store : Store.t;
    config : Db.Config.t;
    pool : Pool.t option;
    machines : machine array;
    (* Off-heap field staging, one slot per store row; identity until
       assigned.  [max_assigned] tracks the replay bound — the serial
       pass's final [Vec.Poly] length minus one. *)
    hv : Bigvec.Int.t;
    sv : Bigvec.Int.t array;
    mutable max_assigned : int;
    (* Posting keys in finalization order; [runs] are the sorted batch
       spans, [run_start] the beginning of the open batch. *)
    posts : Bigvec.Int.t;
    mutable runs : (int * int) list; (* newest first *)
    mutable run_start : int;
    mutable nbatches : int;
    mutable row_mark : int; (* node_range at the last batch cut *)
    (* Typed completions per machine: node, value bits split 32/32 (an
       OCaml int holds 63 bits, one short of a float's 64). *)
    comp_nodes : Bigvec.Int.t array;
    comp_hi : Bigvec.Int.t array;
    comp_lo : Bigvec.Int.t array;
    viable : int array;
    mutable stack : frame list; (* innermost first; document at bottom *)
    mutable root_closed : bool;
  }

  let create ?pool config =
    let machines =
      Array.of_list
        (List.map
           (fun spec ->
             let msct = spec.Lexical_types.sct in
             { spec; msct; mid = Sct.identity msct })
           config.Db.Config.types)
    in
    let store = Store.create () in
    let k = Array.length machines in
    let t =
      {
        store;
        config;
        pool;
        machines;
        hv = Bigvec.Int.create ();
        sv = Array.init k (fun _ -> Bigvec.Int.create ());
        max_assigned = -1;
        posts = Bigvec.Int.create ();
        runs = [];
        run_start = 0;
        nbatches = 0;
        row_mark = Store.node_range store;
        comp_nodes = Array.init k (fun _ -> Bigvec.Int.create ());
        comp_hi = Array.init k (fun _ -> Bigvec.Int.create ());
        comp_lo = Array.init k (fun _ -> Bigvec.Int.create ());
        viable = Array.make k 0;
        stack =
          [
            {
              node = Store.document;
              has_text = false;
              hash = Hash.empty;
              states = Array.map (fun m -> m.mid) machines;
            };
          ];
        root_closed = false;
      }
    in
    (* slots for the pre-existing document row *)
    let range = Store.node_range store in
    while Bigvec.Int.length t.hv < range do
      Bigvec.Int.push t.hv (Hash.to_int Hash.empty)
    done;
    Array.iteri
      (fun i v ->
        while Bigvec.Int.length v < range do
          Bigvec.Int.push v machines.(i).mid
        done)
      t.sv;
    t

  let top t =
    match t.stack with
    | f :: _ -> f
    | [] -> invalid_arg "Ingest.Builder: no open node"

  let sync_slots t =
    let range = Store.node_range t.store in
    while Bigvec.Int.length t.hv < range do
      Bigvec.Int.push t.hv (Hash.to_int Hash.empty)
    done;
    Array.iteri
      (fun i v ->
        while Bigvec.Int.length v < range do
          Bigvec.Int.push v t.machines.(i).mid
        done)
      t.sv

  let stage_hash t n h =
    Bigvec.Int.set t.hv n (Hash.to_int h);
    if n > t.max_assigned then t.max_assigned <- n

  let stage_state t i n st = Bigvec.Int.set t.sv.(i) n st
  let posting t h n = Bigvec.Int.push t.posts (String_index.pack_key h n)

  let push_complete t i n v =
    let bits = Int64.bits_of_float v in
    Bigvec.Int.push t.comp_nodes.(i) n;
    Bigvec.Int.push t.comp_hi.(i)
      (Int64.to_int (Int64.shift_right_logical bits 32));
    Bigvec.Int.push t.comp_lo.(i)
      (Int64.to_int (Int64.logand bits 0xFFFF_FFFFL))

  (* Viability/acceptance at finalization; [lexical] is forced only for
     accepting states (string-value reconstruction on elements). *)
  let typed_finalize t n states lexical =
    Array.iteri
      (fun i m ->
        let st = states.(i) in
        if Sct.is_viable m.msct st then begin
          t.viable.(i) <- t.viable.(i) + 1;
          if Sct.is_accepting m.msct st then
            match m.spec.Lexical_types.parse (lexical ()) with
            | Some v -> push_complete t i n v
            | None -> ()
        end)
      t.machines

  (* Finalize a leaf (text or attribute) with content [txt]; returns
     its fields for the caller to fold into the parent accumulator. *)
  let leaf t n txt =
    let h = Hash.hash txt in
    stage_hash t n h;
    posting t h n;
    let states =
      Array.map (fun m -> Sct.of_string m.msct txt) t.machines
    in
    Array.iteri (fun i st -> stage_state t i n st) states;
    typed_finalize t n states (fun () -> txt);
    (h, states)

  let feed t ev =
    match ev with
    | Sax.Start_element { name; attrs } ->
        let parent = (top t).node in
        let e = Store.append_element t.store ~parent name in
        sync_slots t;
        List.iter
          (fun (an, av) ->
            let a =
              Store.append_attribute t.store ~element:e ~name:an ~value:av
            in
            sync_slots t;
            ignore (leaf t a av : Hash.t * int array))
          attrs;
        t.stack <-
          {
            node = e;
            has_text = false;
            hash = Hash.empty;
            states = Array.map (fun m -> m.mid) t.machines;
          }
          :: t.stack
    | Sax.End_element _ -> (
        match t.stack with
        | f :: (p :: _ as rest) ->
            t.stack <- rest;
            posting t f.hash f.node;
            if f.has_text then begin
              stage_hash t f.node f.hash;
              Array.iteri (fun i st -> stage_state t i f.node st) f.states
            end;
            typed_finalize t f.node f.states (fun () ->
                Store.string_value t.store f.node);
            if f.has_text then begin
              p.hash <- Hash.combine p.hash f.hash;
              Array.iteri
                (fun i m ->
                  p.states.(i) <- Sct.compose m.msct p.states.(i) f.states.(i))
                t.machines;
              p.has_text <- true
            end;
            (match rest with [ _document ] -> t.root_closed <- true | _ -> ())
        | _ -> invalid_arg "Ingest.Builder.feed: unbalanced End_element")
    | Sax.Text txt | Sax.Cdata txt ->
        let f = top t in
        let n = Store.append_text t.store ~parent:f.node txt in
        sync_slots t;
        let h, states = leaf t n txt in
        f.hash <- Hash.combine f.hash h;
        Array.iteri
          (fun i m -> f.states.(i) <- Sct.compose m.msct f.states.(i) states.(i))
          t.machines;
        f.has_text <- true
    | Sax.Comment c ->
        (* Trailing misc is parsed but not stored, as in [Parser]. *)
        if not t.root_closed then begin
          ignore (Store.append_comment t.store ~parent:(top t).node c
                  : Store.node);
          sync_slots t
        end
    | Sax.Pi { target; body } ->
        if not t.root_closed then begin
          ignore (Store.append_pi t.store ~parent:(top t).node ~target body
                  : Store.node);
          sync_slots t
        end

  let rows t = Store.node_range t.store
  let pending_rows t = Store.node_range t.store - t.row_mark
  let batches t = t.nbatches

  (* Sort the posting span [lo, hi) in place.  With a pool, slices are
     sorted per domain and merged back — output identical to the serial
     sort since keys are distinct. *)
  let sort_run t lo hi =
    let len = hi - lo in
    let write_back arr =
      Array.iteri (fun j v -> Bigvec.Int.set t.posts (lo + j) v) arr
    in
    match t.pool with
    | Some pool when Pool.parallelism pool > 1 && len > 4096 ->
        let slices = Pool.slices len (Pool.parallelism pool) in
        let parts =
          Pool.map pool
            (fun k ->
              let a, b = slices.(k) in
              let arr =
                Array.init (b - a) (fun j -> Bigvec.Int.get t.posts (lo + a + j))
              in
              Array.sort Int.compare arr;
              arr)
            (Array.length slices)
        in
        let k = Array.length parts in
        let idx = Array.make k 0 in
        for o = lo to hi - 1 do
          let best = ref (-1) and best_v = ref max_int in
          for p = 0 to k - 1 do
            if idx.(p) < Array.length parts.(p) then begin
              let v = parts.(p).(idx.(p)) in
              if !best < 0 || v < !best_v then begin
                best := p;
                best_v := v
              end
            end
          done;
          Bigvec.Int.set t.posts o !best_v;
          idx.(!best) <- idx.(!best) + 1
        done
    | _ ->
        let arr = Array.init len (fun j -> Bigvec.Int.get t.posts (lo + j)) in
        Array.sort Int.compare arr;
        write_back arr

  let flush_batch t =
    let lo = t.run_start and hi = Bigvec.Int.length t.posts in
    if hi > lo then begin
      sort_run t lo hi;
      t.runs <- (lo, hi) :: t.runs;
      t.run_start <- hi;
      t.nbatches <- t.nbatches + 1
    end;
    t.row_mark <- Store.node_range t.store

  (* Ascending k-way merge over the sorted runs: a binary min-heap of
     run heads feeding the B+tree bulk loader one key at a time. *)
  let run_merger posts runs =
    let k = Array.length runs in
    let pos = Array.make (max k 1) 0 and stop = Array.make (max k 1) 0 in
    let hkey = Array.make (max k 1) 0 and hrun = Array.make (max k 1) 0 in
    let hsize = ref 0 in
    let swap i j =
      let tk = hkey.(i) and tr = hrun.(i) in
      hkey.(i) <- hkey.(j);
      hrun.(i) <- hrun.(j);
      hkey.(j) <- tk;
      hrun.(j) <- tr
    in
    let rec sift_up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if hkey.(i) < hkey.(parent) then begin
          swap i parent;
          sift_up parent
        end
      end
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < !hsize && hkey.(l) < hkey.(!smallest) then smallest := l;
      if r < !hsize && hkey.(r) < hkey.(!smallest) then smallest := r;
      if !smallest <> i then begin
        swap i !smallest;
        sift_down !smallest
      end
    in
    Array.iteri
      (fun i (lo, hi) ->
        pos.(i) <- lo;
        stop.(i) <- hi;
        if lo < hi then begin
          hkey.(!hsize) <- Bigvec.Int.get posts lo;
          hrun.(!hsize) <- i;
          incr hsize;
          sift_up (!hsize - 1)
        end)
      runs;
    fun () ->
      if !hsize = 0 then invalid_arg "Ingest: posting merge exhausted";
      let key = hkey.(0) and r = hrun.(0) in
      pos.(r) <- pos.(r) + 1;
      if pos.(r) < stop.(r) then begin
        hkey.(0) <- Bigvec.Int.get posts pos.(r);
        sift_down 0
      end
      else begin
        decr hsize;
        if !hsize > 0 then begin
          hkey.(0) <- hkey.(!hsize);
          hrun.(0) <- hrun.(!hsize);
          sift_down 0
        end
      end;
      key

  let finish t =
    (* finalize the document node *)
    (match t.stack with
    | [ d ] ->
        posting t d.hash d.node;
        if d.has_text then begin
          stage_hash t d.node d.hash;
          Array.iteri (fun i st -> stage_state t i d.node st) d.states
        end;
        typed_finalize t d.node d.states (fun () ->
            Store.string_value t.store d.node)
    | _ -> invalid_arg "Ingest.Builder.finish: unclosed elements");
    t.stack <- [];
    flush_batch t;
    let range = Store.node_range t.store in
    (* replay staged fields through [Indexer.set]: same storage shape
       as the serial pass (identity holes are exactly the dummy) *)
    let hash_fields =
      Indexer.alloc_fields Indexer.hash_ops ~capacity:range
    in
    for n = 0 to t.max_assigned do
      Indexer.set hash_fields n (Hash.of_int (Bigvec.Int.get t.hv n))
    done;
    let typed =
      List.mapi
        (fun i spec ->
          let m = t.machines.(i) in
          let fields =
            Indexer.alloc_fields (Indexer.sct_ops m.msct) ~capacity:range
          in
          for n = 0 to t.max_assigned do
            Indexer.set fields n (Bigvec.Int.get t.sv.(i) n)
          done;
          let len = Bigvec.Int.length t.comp_nodes.(i) in
          let complete =
            Array.init len (fun j ->
                let n = Bigvec.Int.get t.comp_nodes.(i) j in
                let bits =
                  Int64.logor
                    (Int64.shift_left (Int64.of_int (Bigvec.Int.get t.comp_hi.(i) j)) 32)
                    (Int64.of_int (Bigvec.Int.get t.comp_lo.(i) j))
                in
                (n, Int64.float_of_bits bits))
          in
          Array.sort (fun (a, _) (b, _) -> Int.compare a b) complete;
          Typed_index.of_streamed spec fields ~viable_count:t.viable.(i)
            ~complete)
        t.config.Db.Config.types
    in
    let count = Bigvec.Int.length t.posts in
    let next = run_merger t.posts (Array.of_list (List.rev t.runs)) in
    let strings = String_index.of_key_seq hash_fields ~count next in
    Db.assemble ~config:t.config ~store:t.store ~strings ~typed

  let staging_bytes t =
    let vec = Bigvec.Int.memory_bytes in
    let sum = Array.fold_left (fun acc v -> acc + vec v) 0 in
    vec t.hv + sum t.sv + vec t.posts + sum t.comp_nodes + sum t.comp_hi
    + sum t.comp_lo
end

type progress = { rows : int; batches : int; consumed : int }

let default_batch_rows = 65536

let load ?(config = Db.Config.default) ?(batch_rows = default_batch_rows)
    ?pool ?(progress = fun (_ : progress) -> ()) source =
  let batch_rows = max 1 batch_rows in
  let sax = Sax.make source in
  let b = Builder.create ?pool config in
  let report () =
    progress
      {
        rows = Builder.rows b;
        batches = Builder.batches b;
        consumed = Sax.consumed sax;
      }
  in
  let rec go () =
    match Sax.next sax with
    | Error e -> Error e
    | Ok None ->
        let db = Builder.finish b in
        report ();
        Ok db
    | Ok (Some (ev, _pos)) ->
        Builder.feed b ev;
        if Builder.pending_rows b >= batch_rows then begin
          Builder.flush_batch b;
          report ()
        end;
        go ()
  in
  go ()

(** Streaming bulk ingest: shred + index in one bounded-memory pass.

    The whole-document front door ([Parser.parse] then [Db.of_store])
    allocates O(document) on the heap — the input string, then the
    posting sort transients — before the first posting lands in the
    off-heap columns.  This module consumes a {!Xvi_xml.Sax} event
    stream instead and runs the paper's one-pass multi-index machinery
    {e incrementally}: store rows and field staging go straight into
    off-heap [Bigvec] columns, the open-element accumulator stack is
    O(depth), and postings are sorted in bounded batches, k-way merged
    into the B+tree bulk loader at the end.  Live heap during ingest is
    O(depth + batch) plus the final index shell.

    The product is {e marshal-bit-identical} to
    [Db.of_store ~config (Parser.parse doc)] with [config.jobs = 1]
    — the differential harness and [Fault.ingest_sweep] enforce this on
    every document.  [~pool] parallelism only accelerates the per-batch
    posting sorts, whose output is order-invariant. *)

module Builder : sig
  (** Event consumer.  Feed it a valid [Sax] event stream (the driver
      is responsible for stopping on [Sax] errors), cut batches
      whenever {!pending_rows} exceeds the budget, then {!finish}. *)

  type t

  val create : ?pool:Xvi_util.Pool.t -> Xvi_core.Db.Config.t -> t
  (** A fresh builder over an empty store.  [config.jobs] is ignored
      here — pass [?pool] to parallelize batch sorts. *)

  val feed : t -> Xvi_xml.Sax.event -> unit
  (** Append the event's rows and run every index machine one step. *)

  val rows : t -> int
  (** Store rows appended so far (= [Store.node_range] of the store
      under construction). *)

  val pending_rows : t -> int
  (** Rows appended since the last {!flush_batch} — the driver's batch
      cut signal. *)

  val batches : t -> int
  (** Completed batches. *)

  val flush_batch : t -> unit
  (** Close the current batch: sort its posting run (on the pool when
      present).  No-op when nothing is pending.  Must only be called at
      event boundaries — which is any point between {!feed} calls. *)

  val finish : t -> Xvi_core.Db.t
  (** Finalize the document node, flush the last batch, replay the
      staged fields, merge the posting runs into the B+tree bulk
      loader, and assemble the database.  Must only be called after the
      event stream ended cleanly ([Ok None] from [Sax.next]); the
      builder must not be used afterwards. *)

  val staging_bytes : t -> int
  (** Off-heap bytes held by the staging columns (bench accounting;
      the store's own columns are not included). *)
end

type progress = {
  rows : int;  (** store rows appended *)
  batches : int;  (** posting batches completed *)
  consumed : int;  (** source bytes fully tokenized *)
}

val load :
  ?config:Xvi_core.Db.Config.t ->
  ?batch_rows:int ->
  ?pool:Xvi_util.Pool.t ->
  ?progress:(progress -> unit) ->
  Xvi_xml.Sax.source ->
  (Xvi_core.Db.t, Xvi_xml.Parser.error) result
(** Drive a source through {!Builder} with a batch cut every
    [batch_rows] (default 65536) appended rows.  [progress] fires at
    every batch edge and once at the end.  In-memory (non-durable)
    ingest; the WAL-checkpointed variant is [Xvi_wal.Durable.bulk_ingest]. *)

val default_batch_rows : int

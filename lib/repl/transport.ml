module Client = Xvi_serve.Client

type pull_reply =
  [ `Frames of string * int  (** raw frame bytes, leader durable LSN *)
  | `Snapshot_needed of int ]

type digest_reply =
  [ `Digest of string | `Missing | `Snapshot_needed of int ]

type t = {
  info : unit -> (Client.repl_info, string) result;
  snapshot_chunk : offset:int -> (string * int, string) result;
  pull : from_lsn:int -> max_bytes:int -> (pull_reply, string) result;
  frame_digest : anchor:int -> int -> (digest_reply, string) result;
  close : unit -> unit;
}

let of_client c =
  {
    info = (fun () -> Client.repl_info c);
    snapshot_chunk = (fun ~offset -> Client.repl_snapshot c ~offset);
    pull = (fun ~from_lsn ~max_bytes -> Client.repl_pull c ~from_lsn ~max_bytes);
    frame_digest = (fun ~anchor lsn -> Client.repl_digest c ~anchor lsn);
    close = (fun () -> Client.close c);
  }

let connect ?wait_s ~socket () =
  (* the pull loop writes to a leader that may die at any instant; that
     must surface as an [Error] from the request (EPIPE), not kill the
     follower process with SIGPIPE. One-shot CLI clients deliberately
     keep the default disposition — a closed stdout pipe should end
     them the way it ends any Unix filter. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Client.connect ?wait_s ~socket () with
  | Error _ as e -> e
  | Ok c -> Ok (of_client c)

(* A transport straight onto an engine in this process — the leader's
   serving functions without the socket between. The fault harness and
   the bench use it to run real follower code against a local leader. *)
let of_engine e =
  let module P = Xvi_serve.Protocol in
  let unexpected r =
    Error ("unexpected repl response " ^ P.encode_response r)
  in
  {
    info =
      (fun () ->
        match Leader.info e with
        | P.Repl_info_r
            { role; last_lsn; durable_lsn; checkpoint_lsn; applied_lsn; leader_lsn }
          ->
            Ok
              {
                Client.role;
                last_lsn;
                durable_lsn;
                checkpoint_lsn;
                applied_lsn;
                leader_lsn;
              }
        | P.Err m -> Error m
        | r -> unexpected r);
    snapshot_chunk =
      (fun ~offset ->
        match Leader.snapshot_chunk e ~offset with
        | P.Chunk { total; data } -> Ok (data, total)
        | P.Err m -> Error m
        | r -> unexpected r);
    pull =
      (fun ~from_lsn ~max_bytes ->
        match Leader.pull e ~from_lsn ~max_bytes with
        | P.Frames_r { durable_lsn; data } -> Ok (`Frames (data, durable_lsn))
        | P.Snapshot_needed_r base -> Ok (`Snapshot_needed base)
        | P.Err m -> Error m
        | r -> unexpected r);
    frame_digest =
      (fun ~anchor lsn ->
        match Leader.frame_digest e ~anchor lsn with
        | P.Digest_r (Some h) -> Ok (`Digest h)
        | P.Digest_r None -> Ok `Missing
        | P.Snapshot_needed_r base -> Ok (`Snapshot_needed base)
        | P.Err m -> Error m
        | r -> unexpected r);
    close = (fun () -> ());
  }

(** The leader's side of log shipping: stateless answers to the
    replication verbs, computed from the engine's durable directory.

    The leader keeps {e no} per-follower state — a pull request names
    the LSN it wants to resume from, the answer re-reads the WAL through
    {!Xvi_wal.Wal.Tail}, and {!Xvi_wal.Wal.encode_frames} guarantees the
    shipped bytes are bit-identical to the on-disk frames. A follower
    (or a hundred) can therefore connect, vanish and resume at any time
    without the leader tracking anything, and a follower can serve these
    same verbs to its own downstream (cascading replication): every
    function here only needs an engine with a directory.

    Only {e durable} frames ship: {!pull} caps the tail at the engine's
    fsync watermark, so nothing a leader crash could take back ever
    reaches a follower. *)

val chunk_bytes : int
(** Snapshot transfer slice size (1 MiB). *)

val info : Xvi_serve.Engine.t -> Xvi_serve.Protocol.response
(** [repl-info] with [role = "leader"] and the engine's watermarks. *)

val snapshot_chunk :
  Xvi_serve.Engine.t -> offset:int -> Xvi_serve.Protocol.response
(** One {!chunk_bytes} slice of the snapshot file. A checkpoint racing
    the transfer can hand the follower mixed bytes; the snapshot's own
    digest framing rejects them at load and the follower re-bootstraps. *)

val pull :
  Xvi_serve.Engine.t ->
  from_lsn:int ->
  max_bytes:int ->
  Xvi_serve.Protocol.response
(** Durable committed groups past [from_lsn]: [frames] (empty = caught
    up, retry later), or [snapshot-needed] after a checkpoint truncated
    them away. [max_bytes] is clamped so the escaped response stays
    under {!Xvi_serve.Protocol.max_frame}. *)

val frame_digest :
  Xvi_serve.Engine.t -> anchor:int -> int -> Xvi_serve.Protocol.response
(** The chain digest over the log prefix [anchor..lsn]: the digest of
    every frame's digest in that range, in LSN order. A rejoining node
    walks its own commit boundaries newest-first through this verb to
    find the last LSN at which both {e histories} — not just both
    boundary frames — agree; a single frame's digest would be unsound
    because commit records do not commit to what precedes them.
    [digest _] (none) when the log does not reach [lsn];
    [snapshot-needed] when a checkpoint truncated [anchor] away. *)

val handlers : Xvi_serve.Engine.t -> Xvi_serve.Server.repl
(** The {!Xvi_serve.Server} routing record for a leader; [promote] is
    an idempotent no-op ([Ok None]). *)

(** Client-side read routing across a leader and its followers.

    Writes always go to the leader (followers answer them with
    [Read_only]); reads round-robin across the followers, falling back
    to the leader when every follower exceeds the staleness bound. This
    is how the bench harness measures follower read scaling, and the
    pattern an application embeds for stale-bounded reads.

    Staleness is polled, not tracked per read: each follower's
    [repl-info] is re-fetched every [refresh_every] reads (only when a
    bound is requested), so the bound is {e approximate} — a follower
    can fall behind between polls by however much the leader commits in
    that window. An exact bound would cost one extra round trip per
    read, which is the entire follower-read advantage.

    Not domain-safe: clients carry one request in flight, so give each
    domain its own router over its own connections. *)

type t

val create :
  ?refresh_every:int ->
  leader:Xvi_serve.Client.t ->
  followers:Xvi_serve.Client.t list ->
  unit ->
  t
(** Borrow the connections (closing them stays the caller's job).
    [refresh_every] defaults to 64 reads per follower. *)

val leader : t -> Xvi_serve.Client.t
val followers : t -> Xvi_serve.Client.t list

val read :
  ?max_staleness:int ->
  t ->
  (Xvi_serve.Client.t -> ('a, string) result) ->
  ('a, string) result
(** Run a read against the next follower whose last-polled staleness is
    within [max_staleness] (commits behind the leader; default: any).
    Falls back to the leader when none qualifies. *)

val write :
  t -> (Xvi_serve.Client.t -> ('a, string) result) -> ('a, string) result
(** Run against the leader. *)

(** A replication follower: a read-only {!Xvi_serve.Engine} replica fed
    by pulling the leader's WAL frames through a {!Transport}.

    {2 The replication loop}

    Each {!catch_up} round pulls the frames past the locally applied
    LSN, validates the batch all-or-nothing — every frame must pass the
    WAL's digest check, LSNs must continue the local log without a gap,
    and the batch must end on a commit boundary — then appends it to
    the follower's {e own} WAL, fsyncs, and only then applies it through
    {!Xvi_serve.Engine.replica_apply}. Shipped bytes are the leader's
    on-disk bytes bit for bit, so the follower's log grows into a
    prefix-identical copy of the leader's, and in-transit corruption is
    rejected by exactly the code that rejects torn logs at recovery; the
    next pull re-reads clean bytes and converges.

    Append-then-apply preserves the engine's core invariant on the
    follower: no published epoch can contain state a local crash would
    take back. Restarting a crashed follower is therefore just
    {!create} over the same directory — recovery replays its local log
    and pulling resumes from the applied watermark.

    {2 Staleness}

    Reads served from a follower are {e stale-bounded}: every pull
    reply carries the leader's durable LSN, and
    [{!staleness} = leader durable LSN - follower applied LSN] is the
    number of durable commits the replica has not yet applied (0 =
    fully caught up at last contact).

    {2 Failover}

    {!promote} stops the pull loop, closes the replica, and re-opens
    the directory through the ordinary recovery path — the follower
    {e is} a valid durable directory at every instant, so promotion
    needs no state conversion at all. A deposed leader rejoins as a
    follower via {!create} over its old directory: it walks its commit
    boundaries newest-first, asks the new leader for the {e chain}
    digest of the whole log prefix up to each boundary (a single
    frame's digest would be unsound — commit records do not commit to
    the history before them), truncates its divergent tail at the last
    LSN where both histories agree, and resumes pulling (or re-seeds
    from a snapshot when no common prefix survives). *)

type t

val create :
  ?config:Xvi_core.Db.Config.t ->
  ?sync_mode:Xvi_wal.Wal.sync_mode ->
  ?auto_checkpoint_bytes:int ->
  ?publish_period:float ->
  ?batch_bytes:int ->
  ?poll_interval:float ->
  ?log:(string -> unit) ->
  transport:Transport.t ->
  dir:string ->
  unit ->
  (t, string) result
(** Bootstrap or rejoin, then open [dir] as a read-only replica.

    A missing or empty [dir] bootstraps: the leader's snapshot is
    fetched in {!Leader.chunk_bytes} slices and an empty local log is
    started. An existing durable [dir] rejoins as described above. A
    non-empty [dir] that is not a durable directory is refused.

    [sync_mode] and [auto_checkpoint_bytes] take effect only on
    {!promote} (a replica never writes its own frames); [batch_bytes]
    caps one pull (default 1 MiB); [poll_interval] is the idle polling
    period of {!start}'s loop (default 20 ms). *)

val engine : t -> Xvi_serve.Engine.t
(** The engine to serve reads from — the replica, or after {!promote}
    the recovered leader engine. Sessions pin its epochs as usual. *)

val dir : t -> string

val applied_lsn : t -> int
(** Highest LSN applied to (and durable in) the replica. *)

val leader_lsn : t -> int
(** The leader's durable LSN as of the last successful pull. *)

val staleness : t -> int
(** [max 0 (leader_lsn - applied_lsn)]. *)

val catch_up :
  t -> ([ `Applied of int | `Caught_up | `Resynced ], string) result
(** One pull round. [`Applied lsn]: a batch landed (call again — more
    may be waiting). [`Caught_up]: nothing new. [`Resynced]: the leader
    checkpointed past us and the replica re-seeded from a fresh
    snapshot. [Error] leaves the replica unchanged — a rejected batch
    or unreachable leader is retried on the next round. *)

val start : t -> unit
(** Spawn the pull domain: {!catch_up} continuously, sleeping
    [poll_interval] when caught up or erroring. Idempotent. *)

val stop : t -> unit
(** Stop and join the pull domain (no-op when not running). *)

val promote : t -> (Xvi_serve.Engine.t * Xvi_serve.Server.repl, string) result
(** Become the leader: {!stop}, close the replica, recover [dir] as a
    writable engine (with [create]'s [sync_mode] and
    [auto_checkpoint_bytes]), and return it with leader handlers for
    {!Xvi_serve.Server.set_repl}. The follower object is spent
    afterwards; the caller owns closing the returned engine. *)

val handlers : t -> Xvi_serve.Server.repl
(** Routing record for a server fronting this follower: [repl-info]
    reports role ["follower"] and both watermarks; the snapshot / pull /
    digest verbs serve from the follower's own directory so further
    followers can chain off it; [promote] runs {!promote} and hands the
    server the new engine and leader handlers; [stats] rows gain
    [applied_lsn], [leader_lsn] and [staleness]. *)

val set_on_engine_change : t -> (Xvi_serve.Engine.t -> unit) -> unit
(** Called with the replacement engine whenever the follower swaps it —
    a re-seed after [snapshot-needed], or a promotion. A server embeds
    this as {!Xvi_serve.Server.set_engine} so new connections follow. *)

val close : t -> unit
(** Stop pulling, close the replica engine and local log, close the
    transport. After {!promote} this only closes the transport — the
    promoted engine belongs to the caller. *)

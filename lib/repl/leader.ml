module Engine = Xvi_serve.Engine
module Protocol = Xvi_serve.Protocol
module Server = Xvi_serve.Server
module Wal = Xvi_wal.Wal
module Durable = Xvi_wal.Durable

let chunk_bytes = 1 lsl 20

(* Protocol frames cap at [Protocol.max_frame] (16 MiB) and escaping can
   triple a byte, so raw payloads handed to the codec must stay under a
   third of that. 4 MiB leaves headroom for the surrounding tokens. *)
let max_raw_bytes = 4 * 1024 * 1024

let no_dir = Protocol.Err "replication source has no durable directory"

let checkpoint_lsn_of (s : Engine.stats) =
  match s.Engine.durable with
  | Some d -> d.Durable.last_checkpoint_lsn
  | None -> 0

let info e =
  let s = Engine.stats e in
  Protocol.Repl_info_r
    {
      role = "leader";
      last_lsn = s.Engine.last_lsn;
      durable_lsn = s.Engine.durable_lsn;
      checkpoint_lsn = checkpoint_lsn_of s;
      applied_lsn = s.Engine.last_lsn;
      leader_lsn = s.Engine.durable_lsn;
    }

let snapshot_chunk e ~offset =
  match Engine.dir e with
  | None -> no_dir
  | Some dir -> (
      let path = Durable.snapshot_path dir in
      match open_in_bin path with
      | exception Sys_error m -> Protocol.Err m
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let total = in_channel_length ic in
              if offset < 0 then Protocol.Err "negative offset"
              else if offset >= total then Protocol.Chunk { total; data = "" }
              else begin
                seek_in ic offset;
                let n = min chunk_bytes (total - offset) in
                match really_input_string ic n with
                | data -> Protocol.Chunk { total; data }
                | exception End_of_file ->
                    (* the file shrank under us — a checkpoint replaced
                       it; the follower's snapshot digest check catches
                       the mix and it restarts the transfer *)
                    Protocol.Err "snapshot changed during transfer"
              end))

let pull e ~from_lsn ~max_bytes =
  match Engine.dir e with
  | None -> no_dir
  | Some dir -> (
      let durable_lsn = (Engine.stats e).Engine.durable_lsn in
      let max_bytes = max 1 (min max_bytes max_raw_bytes) in
      let tail = Wal.Tail.create ~from_lsn (Durable.wal_path dir) in
      match Wal.Tail.poll ~upto_lsn:durable_lsn ~max_bytes tail with
      | Error m -> Protocol.Err m
      | Ok (Wal.Tail.Frames { bytes; _ }) ->
          Protocol.Frames_r { durable_lsn; data = bytes }
      | Ok Wal.Tail.Await -> Protocol.Frames_r { durable_lsn; data = "" }
      | Ok (Wal.Tail.Snapshot_needed { base }) -> Protocol.Snapshot_needed_r base)

(* Digest over the digests of every frame in [anchor..lsn], in LSN
   order. A single frame's digest would be unsound for the rejoin
   walkback: a commit record carries only a transaction counter, so two
   diverged logs routinely hold byte-identical commit frames at the
   same LSN. The chain commits to the whole range. *)
let chain_digest frames ~anchor ~lsn =
  let buf = Buffer.create ((lsn - anchor + 1) * 16) in
  List.iter
    (fun f ->
      if anchor <= f.Wal.lsn && f.Wal.lsn <= lsn then
        Buffer.add_string buf (Wal.frame_digest f))
    frames;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let frame_digest e ~anchor lsn =
  match Engine.dir e with
  | None -> no_dir
  | Some dir -> (
      match Wal.scan_file (Durable.wal_path dir) with
      | Error m -> Protocol.Err m
      | Ok scan -> (
          if anchor < 1 || lsn < anchor then Protocol.Digest_r None
          else
            match scan.Wal.frames with
            | [] -> Protocol.Digest_r None
            | first :: _ when anchor < first.Wal.lsn ->
                (* checkpointed away: only a snapshot covers it now *)
                Protocol.Snapshot_needed_r (first.Wal.lsn - 1)
            | frames ->
                (* LSNs are strictly contiguous, so the log spans
                   [anchor..lsn] iff it contains the endpoint *)
                if List.exists (fun f -> f.Wal.lsn = lsn) frames then
                  Protocol.Digest_r (Some (chain_digest frames ~anchor ~lsn))
                else Protocol.Digest_r None))

let handlers e =
  {
    Server.role = "leader";
    info = (fun () -> info e);
    snapshot_chunk = (fun ~offset -> snapshot_chunk e ~offset);
    pull = (fun ~from_lsn ~max_bytes -> pull e ~from_lsn ~max_bytes);
    frame_digest = (fun ~anchor lsn -> frame_digest e ~anchor lsn);
    promote = (fun () -> Ok None);
    stats_extra = (fun () -> []);
  }

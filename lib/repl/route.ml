module Client = Xvi_serve.Client

type replica = { client : Client.t; mutable stale : int; mutable reads : int }

type t = {
  leader : Client.t;
  replicas : replica array;
  mutable next : int;
  refresh_every : int;
}

let refresh r =
  match Client.repl_info r.client with
  | Ok i -> r.stale <- max 0 (i.Client.leader_lsn - i.Client.applied_lsn)
  | Error _ ->
      (* unreachable replica: infinitely stale, never picked under a
         bound; re-probed after the next refresh_every reads *)
      r.stale <- max_int

let create ?(refresh_every = 64) ~leader ~followers () =
  let replicas =
    Array.of_list
      (List.map (fun client -> { client; stale = 0; reads = 0 }) followers)
  in
  { leader; replicas; next = 0; refresh_every }

let leader t = t.leader
let followers t = Array.to_list (Array.map (fun r -> r.client) t.replicas)
let write t f = f t.leader

let read ?max_staleness t f =
  let n = Array.length t.replicas in
  if n = 0 then f t.leader
  else begin
    let start = t.next in
    t.next <- (t.next + 1) mod n;
    let rec pick i =
      if i >= n then f t.leader (* every replica too stale: read upstream *)
      else begin
        let r = t.replicas.((start + i) mod n) in
        match max_staleness with
        | None ->
            r.reads <- r.reads + 1;
            f r.client
        | Some bound ->
            if r.reads mod t.refresh_every = 0 then refresh r;
            r.reads <- r.reads + 1;
            if r.stale <= bound then f r.client else pick (i + 1)
      end
    in
    pick 0
  end

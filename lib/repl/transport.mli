(** How a follower reaches its leader — the four replication round
    trips as a record of closures.

    The production transport ({!connect}) speaks {!Xvi_serve.Protocol}
    over the leader's Unix socket. The fault-injection harness
    ({!Xvi_check.Fault}) substitutes in-process transports that cut,
    truncate or corrupt the stream at chosen points while the follower
    code under test stays byte-for-byte the production code — that
    substitution is the whole reason this indirection exists. *)

type pull_reply =
  [ `Frames of string * int
    (** raw {!Xvi_wal.Wal} frame bytes (complete committed groups;
        empty = caught up), and the leader's durable LSN *)
  | `Snapshot_needed of int
    (** the leader checkpointed the requested frames away; records
        [<= base] are only available via a snapshot *) ]

type digest_reply =
  [ `Digest of string  (** chain digest over [anchor..lsn], hex *)
  | `Missing  (** the leader's log does not reach [lsn] *)
  | `Snapshot_needed of int
    (** the leader's log no longer reaches back to [anchor] *) ]

type t = {
  info : unit -> (Xvi_serve.Client.repl_info, string) result;
  snapshot_chunk : offset:int -> (string * int, string) result;
      (** [(data, total)]: one slice of the leader's snapshot file *)
  pull : from_lsn:int -> max_bytes:int -> (pull_reply, string) result;
  frame_digest : anchor:int -> int -> (digest_reply, string) result;
  close : unit -> unit;
}

val of_client : Xvi_serve.Client.t -> t
(** Wrap a connected client; {!t.close} closes it. The client must not
    be shared with other request traffic (one request in flight). *)

val connect : ?wait_s:float -> socket:string -> unit -> (t, string) result
(** Connect to a leader's socket ({!Xvi_serve.Client.connect}
    semantics: retries while the socket is still appearing). *)

val of_engine : Xvi_serve.Engine.t -> t
(** A transport straight onto an engine in this process — {!Leader}'s
    serving functions with no socket between. The engine must have a
    durable directory. {!t.close} is a no-op; the engine stays the
    caller's to close. *)

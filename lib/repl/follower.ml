module Engine = Xvi_serve.Engine
module Protocol = Xvi_serve.Protocol
module Server = Xvi_serve.Server
module Wal = Xvi_wal.Wal
module Durable = Xvi_wal.Durable

(* --- filesystem helpers --- *)

let close_fd_quiet fd =
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path

let wipe dir =
  Array.iter (fun n -> rm_rf (Filename.concat dir n)) (Sys.readdir dir)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let write_file_durable path data =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
      match
        Fun.protect
          ~finally:(fun () -> close_fd_quiet fd)
          (fun () ->
            write_all fd data;
            Unix.fsync fd)
      with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | data -> Ok data
      | exception Sys_error m -> Error m
      | exception End_of_file -> Error (path ^ ": unexpected end of file"))

let truncate_durable path size =
  match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
      match
        Fun.protect
          ~finally:(fun () -> close_fd_quiet fd)
          (fun () ->
            Unix.ftruncate fd size;
            Unix.fsync fd)
      with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

(* --- bootstrap: fetch the leader's snapshot, start an empty log --- *)

let fetch_snapshot (transport : Transport.t) dir =
  let buf = Buffer.create (1 lsl 20) in
  let rec go offset =
    match transport.snapshot_chunk ~offset with
    | Error _ as e -> e
    | Ok (data, total) ->
        Buffer.add_string buf data;
        let got = offset + String.length data in
        if got >= total then Ok ()
        else if String.length data = 0 then Error "snapshot transfer stalled"
        else go got
  in
  match go 0 with
  | Error _ as e -> e
  | Ok () -> write_file_durable (Durable.snapshot_path dir) (Buffer.contents buf)

let fetch_into transport dir =
  match fetch_snapshot transport dir with
  | Error _ as e -> e
  | Ok () -> write_file_durable (Durable.wal_path dir) Wal.magic

let prepare_dir dir =
  if Sys.file_exists dir then
    if not (Sys.is_directory dir) then Error (dir ^ " is not a directory")
    else if Array.length (Sys.readdir dir) > 0 then
      Error (dir ^ " exists, is not empty, and is not a durable directory")
    else Ok ()
  else
    match Unix.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* --- rejoin: find the last common LSN, drop the divergent tail --- *)

(* Every Commit/Abort/Checkpoint frame in the local log, newest first,
   with the byte offset just past it (the truncation point that keeps
   it) and the chain digest over the local frames from the log's first
   LSN (the anchor) up to and including the boundary — the same chain
   {!Leader.frame_digest} computes, so equal digests mean both
   histories agree on the whole range, not merely on one boundary
   frame. A torn local tail just ends the walk — the boundaries before
   it are intact. *)
let local_boundaries data =
  let magic_len = String.length Wal.magic in
  if
    String.length data < magic_len
    || not (String.equal (String.sub data 0 magic_len) Wal.magic)
  then None
  else
    let chain = Buffer.create 256 in
    let anchor = ref 0 in
    let rec go pos acc =
      match Wal.decode data pos with
      | Wal.Frame (f, next) ->
          if !anchor = 0 then anchor := f.Wal.lsn;
          Buffer.add_string chain (Wal.frame_digest f);
          let acc =
            match f.Wal.record with
            | Wal.Commit _ | Wal.Abort _ | Wal.Checkpoint _ ->
                ( f.Wal.lsn,
                  next,
                  Digest.to_hex (Digest.string (Buffer.contents chain)) )
                :: acc
            | Wal.Begin _ | Wal.Update_text _ | Wal.Insert _ | Wal.Delete _
            | Wal.Ingest_chunk _ ->
                acc
          in
          go next acc
      | Wal.End | Wal.Torn _ -> acc
    in
    let boundaries = go magic_len [] in
    Some (!anchor, boundaries)

let rejoin ~log (transport : Transport.t) dir =
  let path = Durable.wal_path dir in
  match read_file path with
  | Error m -> Error m
  | Ok data -> (
      match local_boundaries data with
      | None ->
          log "rejoin: local log header unreadable; reseeding";
          Ok `Reseed
      | Some (_, []) ->
          (* no complete commit survives locally; drop any partial or
             torn bytes after the header so appends resume on a clean
             log — O_APPEND would otherwise write new frames after the
             garbage and poison every later recovery *)
          let magic_len = String.length Wal.magic in
          if String.length data = magic_len then Ok `Kept
          else (
            log "rejoin: no local commit boundary; truncating to header";
            match truncate_durable path magic_len with
            | Ok () -> Ok `Kept
            | Error _ as e -> e)
      | Some (anchor, (_ :: _ as boundaries)) ->
          let rec walk = function
            | [] ->
                log "rejoin: no common commit boundary; reseeding";
                Ok `Reseed
            | (lsn, end_off, hex) :: older -> (
                match transport.frame_digest ~anchor lsn with
                | Error _ as e -> e
                | Ok (`Snapshot_needed _) ->
                    log "rejoin: leader checkpointed past us; reseeding";
                    Ok `Reseed
                | Ok `Missing -> walk older
                | Ok (`Digest h) ->
                    if String.equal h hex then
                      if end_off = String.length data then Ok `Kept
                      else (
                        log
                          (Printf.sprintf
                             "rejoin: truncating divergent tail after lsn %d"
                             lsn);
                        match truncate_durable path end_off with
                        | Ok () -> Ok `Kept
                        | Error _ as e -> e)
                    else walk older)
          in
          walk boundaries)

(* --- the follower --- *)

type state = { engine : Engine.t; wal_fd : Unix.file_descr }

type t = {
  dir : string;
  transport : Transport.t;
  config : Xvi_core.Db.Config.t option;
  sync_mode : Wal.sync_mode option;
  auto_checkpoint_bytes : int option;
  publish_period : float option;
  batch_bytes : int;
  poll_interval : float;
  log : string -> unit;
  lock : Mutex.t;
  mutable state : state option;
      (** [None] once promoted or after a failed reseed *)
  engine_cell : Engine.t Atomic.t;  (** last good engine, lock-free reads *)
  leader_durable : int Atomic.t;
  stop_flag : bool Atomic.t;
  mutable dom : unit Domain.t option;
  mutable promoted : bool;
  mutable on_engine_change : Engine.t -> unit;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let engine t = Atomic.get t.engine_cell
let applied_lsn t = (Engine.pin (engine t)).Engine.lsn
let leader_lsn t = Atomic.get t.leader_durable
let staleness t = max 0 (leader_lsn t - applied_lsn t)
let dir t = t.dir
let set_on_engine_change t f = with_lock t (fun () -> t.on_engine_change <- f)

let open_wal_fd dir =
  match
    (Unix.openfile (Durable.wal_path dir) [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644
    [@xvi.lint.allow
      "R4: held open for the follower's whole life; closed in \
       close/promote/reseed"])
  with
  | fd -> Ok fd
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let open_replica ?config ?publish_period dir =
  match Engine.open_ ?config ?publish_period (Engine.Replica dir) with
  | Error e -> Error (Engine.error_to_string e)
  | Ok eng -> (
      match open_wal_fd dir with
      | Error m ->
          Engine.close eng;
          Error m
      | Ok fd -> Ok { engine = eng; wal_fd = fd })

let open_state_locked t =
  match
    open_replica ?config:t.config ?publish_period:t.publish_period t.dir
  with
  | Error _ as e -> e
  | Ok st ->
      t.state <- Some st;
      Atomic.set t.engine_cell st.engine;
      t.on_engine_change st.engine;
      Ok ()

let drop_state t =
  match t.state with
  | None -> ()
  | Some st ->
      Engine.close st.engine;
      close_fd_quiet st.wal_fd;
      t.state <- None

let reseed_locked t =
  t.log "reseed: fetching a fresh snapshot from the leader";
  drop_state t;
  match wipe t.dir with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Sys_error m -> Error m
  | () -> (
      match fetch_into t.transport t.dir with
      | Error _ as e -> e
      | Ok () -> open_state_locked t)

(* A batch is applied all-or-nothing: every frame must decode (the WAL
   digest framing catches in-transit corruption exactly as recovery
   catches torn logs), LSNs must continue the local log without a gap,
   and the batch must end on a commit boundary. Any violation rejects
   the whole batch before a byte lands in the local log; the next pull
   re-reads clean bytes from the leader's disk. *)
let validate_batch ~applied data =
  let len = String.length data in
  let rec go pos prev acc =
    if pos = len then
      match acc with
      | { Wal.record = Wal.Commit _ | Wal.Abort _ | Wal.Checkpoint _; _ } :: _
        ->
          Ok (List.rev acc)
      | _ -> Error "batch does not end on a commit boundary"
    else
      match Wal.decode data pos with
      | Wal.Frame (f, next) ->
          if f.Wal.lsn <> prev + 1 then
            Error
              (Printf.sprintf "lsn gap: expected %d, got %d" (prev + 1)
                 f.Wal.lsn)
          else go next f.Wal.lsn (f :: acc)
      | Wal.End -> Error "empty batch"
      | Wal.Torn m -> Error ("damaged frame: " ^ m)
  in
  go 0 applied []

let append_fsync fd data =
  let before = (Unix.fstat fd).Unix.st_size in
  match
    write_all fd data;
    Unix.fsync fd
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      (* keep the local log at a clean boundary so a retry's re-append
         cannot leave a half batch in the middle *)
      (match Unix.ftruncate fd before with
      | () -> ()
      | exception Unix.Unix_error (_, _, _) -> ());
      Error (Unix.error_message e)

let catch_up_locked t =
  match t.state with
  | None ->
      if t.promoted then Error "follower was promoted"
      else (
        (* a previous reseed failed mid-way; try again *)
        match reseed_locked t with
        | Ok () -> Ok `Resynced
        | Error _ as e -> e)
  | Some st -> (
      let applied = (Engine.pin st.engine).Engine.lsn in
      match t.transport.pull ~from_lsn:applied ~max_bytes:t.batch_bytes with
      | Error _ as e -> e
      | Ok (`Snapshot_needed _) -> (
          match reseed_locked t with
          | Ok () -> Ok `Resynced
          | Error _ as e -> e)
      | Ok (`Frames (data, leader_durable)) -> (
          Atomic.set t.leader_durable leader_durable;
          if String.length data = 0 then Ok `Caught_up
          else
            match validate_batch ~applied data with
            | Error m -> Error ("rejected batch: " ^ m)
            | Ok frames -> (
                match append_fsync st.wal_fd data with
                | Error _ as e -> e
                | Ok () -> (
                    match Engine.replica_apply st.engine frames with
                    | Error e -> Error (Engine.error_to_string e)
                    | Ok lsn -> Ok (`Applied lsn)))))

let catch_up t = with_lock t (fun () -> catch_up_locked t)

let run_loop t =
  while not (Atomic.get t.stop_flag) do
    match catch_up t with
    | Ok (`Applied _) -> ()  (* drain eagerly: more may already be durable *)
    | Ok `Caught_up | Ok `Resynced -> Unix.sleepf t.poll_interval
    | Error m ->
        t.log ("pull: " ^ m);
        Unix.sleepf t.poll_interval
  done

let start t =
  with_lock t (fun () ->
      match t.dom with
      | Some _ -> ()
      | None ->
          Atomic.set t.stop_flag false;
          t.dom <- Some (Domain.spawn (fun () -> run_loop t)))

let stop t =
  Atomic.set t.stop_flag true;
  let dom =
    with_lock t (fun () ->
        let d = t.dom in
        t.dom <- None;
        d)
  in
  match dom with Some d -> Domain.join d | None -> ()

let promote t =
  stop t;
  with_lock t (fun () ->
      if t.promoted then Error "already promoted"
      else
        match t.state with
        | None -> Error "follower is not live (reseed pending); cannot promote"
        | Some st -> (
            Engine.close st.engine;
            close_fd_quiet st.wal_fd;
            t.state <- None;
            t.promoted <- true;
            t.transport.close ();
            (* the ordinary recovery path: snapshot + replay + torn-tail
               truncation — exactly what a restart after a crash does *)
            match
              Engine.open_ ?config:t.config ?sync_mode:t.sync_mode
                ?auto_checkpoint_bytes:t.auto_checkpoint_bytes
                ?publish_period:t.publish_period (Engine.Dir t.dir)
            with
            | Error e ->
                Error
                  (Printf.sprintf "recovering %s: %s" t.dir
                     (Engine.error_to_string e))
            | Ok e ->
                Atomic.set t.engine_cell e;
                t.on_engine_change e;
                t.log "promoted: recovered local directory as leader";
                Ok (e, Leader.handlers e)))

let handlers t =
  let applied () = applied_lsn t in
  {
    Server.role = "follower";
    info =
      (fun () ->
        let s = Engine.stats (engine t) in
        Protocol.Repl_info_r
          {
            role = "follower";
            last_lsn = s.Engine.last_lsn;
            durable_lsn = s.Engine.durable_lsn;
            checkpoint_lsn = 0;
            applied_lsn = s.Engine.last_lsn;
            leader_lsn = leader_lsn t;
          });
    (* a follower serves the same verbs from its own directory, so a
       downstream follower can chain off it (cascading replication) *)
    snapshot_chunk = (fun ~offset -> Leader.snapshot_chunk (engine t) ~offset);
    pull =
      (fun ~from_lsn ~max_bytes -> Leader.pull (engine t) ~from_lsn ~max_bytes);
    frame_digest = (fun ~anchor lsn -> Leader.frame_digest (engine t) ~anchor lsn);
    promote =
      (fun () ->
        match promote t with
        | Error _ as e -> e
        | Ok (e, r) -> Ok (Some (e, r)));
    stats_extra =
      (fun () ->
        [
          ("applied_lsn", string_of_int (applied ()));
          ("leader_lsn", string_of_int (leader_lsn t));
          ("staleness", string_of_int (staleness t));
        ]);
  }

let close t =
  stop t;
  with_lock t (fun () ->
      drop_state t;
      t.transport.close ())

let create ?config ?sync_mode ?auto_checkpoint_bytes ?publish_period
    ?(batch_bytes = 1 lsl 20) ?(poll_interval = 0.02)
    ?(log = fun (_ : string) -> ()) ~transport ~dir () =
  let boot =
    if Durable.is_durable_dir dir then
      match rejoin ~log transport dir with
      | Error _ as e -> e
      | Ok `Kept -> Ok ()
      | Ok `Reseed -> (
          match wipe dir with
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
          | exception Sys_error m -> Error m
          | () -> fetch_into transport dir)
    else
      match prepare_dir dir with
      | Error _ as e -> e
      | Ok () -> fetch_into transport dir
  in
  match boot with
  | Error _ as e -> e
  | Ok () -> (
      match open_replica ?config ?publish_period dir with
      | Error _ as e -> e
      | Ok st ->
          Ok
            {
              dir;
              transport;
              config;
              sync_mode;
              auto_checkpoint_bytes;
              publish_period;
              batch_bytes;
              poll_interval;
              log;
              lock = Mutex.create ();
              state = Some st;
              engine_cell = Atomic.make st.engine;
              leader_durable = Atomic.make 0;
              stop_flag = Atomic.make false;
              dom = None;
              promoted = false;
              on_engine_change = (fun (_ : Engine.t) -> ());
            })

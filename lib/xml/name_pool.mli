(** Interned element/attribute names.

    The columnar store keeps one integer per node for its tag name; this
    pool provides the bidirectional mapping. Interning also makes name
    tests in the query layer integer comparisons, as in MonetDB/XQuery. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** [intern t name] returns the id for [name], allocating one if new. *)

val copy : t -> t
(** Structural deep copy; later interns on either side do not affect the
    other. *)

val find : t -> string -> int option
(** Id for [name] if already interned. *)

val name : t -> int -> string
(** Inverse of {!intern}. @raise Invalid_argument on unknown id. *)

val count : t -> int
val memory_bytes : t -> int

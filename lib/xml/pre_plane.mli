(** The pre/size/level plane.

    MonetDB/XQuery stores XML as a relation over a range encoding: each
    node's {e pre} rank (document order), subtree {e size}, and {e level}
    (paper reference [1]; the paper's Section 5 notes the algorithms only
    assume the DFS interface this encoding provides). The plane makes
    structural relationships arithmetic:

    - document order: [pre a < pre b];
    - [d] is a descendant of [a] iff [pre a < pre d <= pre a + size a];
    - the descendants of [a] are the contiguous pre range
      [(pre a, pre a + size a]].

    A plane is a {e snapshot} of the live tree: value updates keep it
    valid, structural updates (insert/delete) invalidate it — callers
    rebuild, as MonetDB's pos-page maintenance amortises. {!Xvi_core.Db}
    manages that lifecycle.

    Staircase joins (Grust et al.) answer ancestor/descendant joins
    between whole node {e sets} in one merge pass over pre ranks — this
    is how a context set from a value index combines with a structural
    step without per-node tree walks. *)

type t

type node = Store.node

val build : Store.t -> t
(** One document pass. *)

val live_nodes : t -> int

val pre : t -> node -> int
(** Document-order rank; [-1] for nodes unknown to this snapshot
    (tombstoned before the build, or created after). *)

val node_at : t -> int -> node
(** Inverse of {!pre}. @raise Invalid_argument out of range. *)

val size : t -> node -> int
(** Live descendants (attributes included), excluding the node. *)

val level : t -> node -> int

val compare_order : t -> node -> node -> int
(** O(1), vs the store's O(depth + siblings) link-walking comparison. *)

val is_descendant : t -> ancestor:node -> node -> bool
(** O(1); strict. *)

val descendants : t -> node -> node list
(** The pre range, in document order. *)

val in_subtree : t -> scope:node -> node -> bool
(** [scope] itself or a descendant of it — the staircase-join predicate
    used by the query planner's [Within] filter. O(1). Total: [false]
    when either node is unknown to this snapshot (so a tombstoned scope
    covers nothing rather than raising). *)

val subtree_cursor : t -> node -> unit -> node option
(** Lazy document-order cursor over [scope] and its descendants (the
    contiguous pre range), pulled one node at a time. Exhausted from the
    start when the scope is unknown to this snapshot. *)

val sort_doc_order : t -> node list -> node list

(** {1 Staircase joins} *)

val join_descendant : t -> context:node list -> node list -> node list
(** Nodes (from the second set) that are strict descendants of {e some}
    context node; one merge pass over pre ranks after sorting, no tree
    walks. Result in document order, duplicates removed. *)

val join_ancestor : t -> context:node list -> node list -> node list
(** Nodes that are strict ancestors of some context node. *)

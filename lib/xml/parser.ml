type error = { line : int; col : int; offset : int; message : string }

let error_to_string e = Printf.sprintf "%d:%d: %s" e.line e.col e.message

exception Parse_error of error

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
  strip_ws : bool;
  store : Store.t;
}

let fail st fmt =
  Printf.ksprintf
    (fun message ->
      raise
        (Parse_error
           { line = st.line; col = st.pos - st.bol + 1; offset = st.pos;
             message }))
    fmt

let eof st = st.pos >= String.length st.src
let peek st = st.src.[st.pos]

let advance st =
  if st.src.[st.pos] = '\n' then begin
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  end;
  st.pos <- st.pos + 1

let next st =
  if eof st then fail st "unexpected end of input";
  let c = peek st in
  advance st;
  c

let expect st c =
  let got = next st in
  if got <> c then fail st "expected %C, found %C" c got

let expect_string st s =
  String.iter (fun c -> expect st c) s

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip st s = expect_string st s

let is_ws = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let skip_ws st =
  while (not (eof st)) && is_ws (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if eof st || not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let add_utf8 buf code =
  if code < 0 || code > 0x10FFFF then invalid_arg "add_utf8"
  else if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

(* Resolve a reference after '&' has been consumed. *)
let parse_reference st buf =
  if eof st then fail st "unterminated entity reference";
  if peek st = '#' then begin
    advance st;
    let hex = (not (eof st)) && (peek st = 'x' || peek st = 'X') in
    if hex then advance st;
    let start = st.pos in
    while (not (eof st)) && peek st <> ';' do
      advance st
    done;
    let digits = String.sub st.src start (st.pos - start) in
    expect st ';';
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> fail st "bad character reference &#%s;" digits
    in
    (try add_utf8 buf code
     with Invalid_argument _ -> fail st "character reference out of range")
  end
  else begin
    let name = parse_name st in
    expect st ';';
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "apos" -> Buffer.add_char buf '\''
    | "quot" -> Buffer.add_char buf '"'
    | other -> fail st "unknown entity &%s;" other
  end

let parse_attr_value st =
  let quote = next st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  let buf = Buffer.create 16 in
  let rec go () =
    let c = next st in
    if c = quote then ()
    else begin
      (match c with
      | '&' -> parse_reference st buf
      | '<' -> fail st "'<' in attribute value"
      | c -> Buffer.add_char buf c);
      go ()
    end
  in
  go ();
  Buffer.contents buf

(* Text content until the next '<'. Returns None when the accumulated text
   is dropped by whitespace stripping. *)
let parse_text st =
  let buf = Buffer.create 32 in
  let only_ws = ref true in
  let rec go () =
    if (not (eof st)) && peek st <> '<' then begin
      let c = next st in
      (match c with
      | '&' ->
          only_ws := false;
          parse_reference st buf
      | c ->
          if not (is_ws c) then only_ws := false;
          Buffer.add_char buf c);
      go ()
    end
  in
  go ();
  if Buffer.length buf = 0 then None
  else if !only_ws && st.strip_ws then None
  else Some (Buffer.contents buf)

let parse_comment st =
  (* after "<!--" *)
  let buf = Buffer.create 16 in
  let rec go () =
    if looking_at st "-->" then begin
      skip st "-->"
    end
    else begin
      if looking_at st "--" then fail st "'--' inside comment";
      Buffer.add_char buf (next st);
      go ()
    end
  in
  go ();
  Buffer.contents buf

let parse_cdata st =
  (* after "<![CDATA[" *)
  let buf = Buffer.create 32 in
  let rec go () =
    if looking_at st "]]>" then skip st "]]>"
    else begin
      Buffer.add_char buf (next st);
      go ()
    end
  in
  go ();
  Buffer.contents buf

let parse_pi st =
  (* after "<?" *)
  let target = parse_name st in
  skip_ws st;
  let buf = Buffer.create 16 in
  let rec go () =
    if looking_at st "?>" then skip st "?>"
    else begin
      Buffer.add_char buf (next st);
      go ()
    end
  in
  go ();
  (target, Buffer.contents buf)

let skip_doctype st =
  (* after "<!DOCTYPE" *)
  let depth = ref 1 in
  while !depth > 0 do
    match next st with
    | '<' -> incr depth
    | '>' -> decr depth
    | '[' ->
        (* internal subset: skip to the matching ']' *)
        let sub = ref 1 in
        while !sub > 0 do
          match next st with
          | '[' -> incr sub
          | ']' -> decr sub
          | _ -> ()
        done
    | _ -> ()
  done

(* Parse attributes then either "/>" or ">". Returns [true] when the
   element is self-closing. *)
let parse_attributes st ~element =
  let rec go () =
    skip_ws st;
    if eof st then fail st "unterminated start tag"
    else if peek st = '>' then begin
      advance st;
      false
    end
    else if looking_at st "/>" then begin
      skip st "/>";
      true
    end
    else begin
      let name = parse_name st in
      skip_ws st;
      expect st '=';
      skip_ws st;
      let value = parse_attr_value st in
      ignore (Store.append_attribute st.store ~element ~name ~value : Store.node);
      go ()
    end
  in
  go ()

(* Parse one element, appending under [parent]. '<' and the name test are
   already known: call with pos at the name. *)
let rec parse_element st ~parent =
  let tag = parse_name st in
  let element = Store.append_element st.store ~parent tag in
  let self_closing = parse_attributes st ~element in
  if not self_closing then begin
    parse_content st ~parent:element;
    (* now at "</" *)
    skip st "</";
    let close = parse_name st in
    if close <> tag then fail st "mismatched end tag </%s> for <%s>" close tag;
    skip_ws st;
    expect st '>'
  end;
  element

(* Children of [parent] until "</" or end of input. *)
and parse_content st ~parent =
  if eof st then ()
  else if peek st <> '<' then begin
    (match parse_text st with
    | Some txt -> ignore (Store.append_text st.store ~parent txt : Store.node)
    | None -> ());
    parse_content st ~parent
  end
  else if looking_at st "</" then ()
  else if looking_at st "<!--" then begin
    skip st "<!--";
    let c = parse_comment st in
    ignore (Store.append_comment st.store ~parent c : Store.node);
    parse_content st ~parent
  end
  else if looking_at st "<![CDATA[" then begin
    skip st "<![CDATA[";
    let txt = parse_cdata st in
    if String.length txt > 0 then
      ignore (Store.append_text st.store ~parent txt : Store.node);
    parse_content st ~parent
  end
  else if looking_at st "<?" then begin
    skip st "<?";
    let target, txt = parse_pi st in
    ignore (Store.append_pi st.store ~parent ~target txt : Store.node);
    parse_content st ~parent
  end
  else begin
    expect st '<';
    ignore (parse_element st ~parent : Store.node);
    parse_content st ~parent
  end

let parse_prolog st =
  skip_ws st;
  if looking_at st "<?xml" then begin
    skip st "<?";
    ignore (parse_pi st : string * string)
  end;
  let rec misc () =
    skip_ws st;
    if looking_at st "<!--" then begin
      skip st "<!--";
      let c = parse_comment st in
      ignore (Store.append_comment st.store ~parent:Store.document c : Store.node);
      misc ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip st "<!DOCTYPE";
      skip_doctype st;
      misc ()
    end
    else if looking_at st "<?" then begin
      skip st "<?";
      let target, txt = parse_pi st in
      ignore (Store.append_pi st.store ~parent:Store.document ~target txt : Store.node);
      misc ()
    end
  in
  misc ()

let parse ?(strip_ws = true) src =
  let st =
    { src; pos = 0; line = 1; bol = 0; strip_ws; store = Store.create () }
  in
  try
    parse_prolog st;
    if eof st || peek st <> '<' then fail st "expected root element";
    expect st '<';
    ignore (parse_element st ~parent:Store.document : Store.node);
    (* trailing misc *)
    let rec misc () =
      skip_ws st;
      if eof st then ()
      else if looking_at st "<!--" then begin
        skip st "<!--";
        ignore (parse_comment st : string);
        misc ()
      end
      else if looking_at st "<?" then begin
        skip st "<?";
        ignore (parse_pi st : string * string);
        misc ()
      end
      else fail st "content after the root element"
    in
    misc ();
    Ok st.store
  with Parse_error e -> Error e

let parse_exn ?strip_ws src =
  match parse ?strip_ws src with
  | Ok store -> store
  | Error e -> failwith (error_to_string e)

let parse_fragment ?(strip_ws = true) store ~parent src =
  let st = { src; pos = 0; line = 1; bol = 0; strip_ws; store } in
  let before = Store.children store parent in
  try
    parse_content st ~parent;
    if not (eof st) then fail st "unexpected end-tag in fragment";
    let after = Store.children store parent in
    let fresh =
      List.filter (fun n -> not (List.mem n before)) after
    in
    Ok fresh
  with Parse_error e -> Error e

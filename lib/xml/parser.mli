(** Non-validating XML 1.0 parser / shredder.

    Parses XML text directly into a {!Store.t} (one pass, no intermediate
    tree) — the analogue of MonetDB/XQuery's document shredder, and the
    "shred time" baseline of the Figure 9 experiments.

    Supported: elements, attributes (single- or double-quoted), character data,
    the five predefined entities, decimal and hexadecimal character
    references, CDATA sections, comments, processing instructions, an XML
    declaration, and a DOCTYPE declaration (skipped, including an internal
    subset). Namespaces are not resolved; qualified names are kept as
    opaque strings, as MonetDB/XQuery's storage does. *)

type error = { line : int; col : int; offset : int; message : string }
(** [line]/[col] are 1-based; [offset] is the 0-based absolute byte
    offset of the failure position in the input. *)

val error_to_string : error -> string
(** ["LINE:COL: MESSAGE"] — the byte offset is available on the record
    for callers that want it (seeking in a stream, editor spans). *)

val parse : ?strip_ws:bool -> string -> (Store.t, error) result
(** [parse s] shreds document [s] into a fresh store. [strip_ws]
    (default [true]) drops whitespace-only text nodes — boundary
    whitespace stripping, the common XML-database shredding default; set
    it to [false] to keep mixed-content whitespace exactly. *)

val parse_exn : ?strip_ws:bool -> string -> Store.t
(** @raise Failure on ill-formed input. *)

val parse_fragment :
  ?strip_ws:bool -> Store.t -> parent:Store.node -> string ->
  (Store.node list, error) result
(** [parse_fragment store ~parent s] parses a sequence of nodes (no
    single-root requirement) and appends them as children of [parent];
    returns the new top-level node ids. Used for subtree insertion. *)

type t = {
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable n : int;
}

let create () = { by_name = Hashtbl.create 64; by_id = Array.make 64 ""; n = 0 }

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
      let id = t.n in
      if id = Array.length t.by_id then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit t.by_id 0 bigger 0 id;
        t.by_id <- bigger
      end;
      t.by_id.(id) <- name;
      Hashtbl.add t.by_name name id;
      t.n <- id + 1;
      id

let copy t =
  { by_name = Hashtbl.copy t.by_name; by_id = Array.copy t.by_id; n = t.n }

let find t name = Hashtbl.find_opt t.by_name name

let name t id =
  if id < 0 || id >= t.n then invalid_arg (Printf.sprintf "Name_pool.name: %d" id);
  t.by_id.(id)

let count t = t.n

let memory_bytes t =
  let strings =
    Hashtbl.fold (fun s _ acc -> acc + 24 + String.length s) t.by_name 0
  in
  strings + (8 * Array.length t.by_id) + (16 * t.n)

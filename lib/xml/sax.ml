(* Streaming pull tokenizer over an incremental byte source.

   This is [Parser]'s lexer re-hosted on a refillable window: the same
   primitives ([peek]/[advance]/[looking_at]/...), the same entity and
   whitespace rules, the same prolog/content/epilog grammar — so the
   event stream, replayed through the [Store] append calls [Parser]
   makes, rebuilds a marshal-identical store.  Any behavioural
   divergence from [Parser] here is a bug; the qcheck round-trip and
   the ingest bit-identity differential exist to catch it. *)

type source = unit -> bytes option
type position = { line : int; col : int; offset : int }

type event =
  | Start_element of { name : string; attrs : (string * string) list }
  | End_element of string
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of { target : string; body : string }

type mode = Prolog | Content | Epilog

type t = {
  source : source;
  strip_ws : bool;
  (* Window of not-yet-consumed source bytes: [buf.[pos .. len-1]] are
     pending, [base] is the absolute offset of [buf.[0]].  Refilling
     compacts so [base + pos] — the absolute consume offset — is
     invariant across refills. *)
  mutable buf : bytes;
  mutable len : int;
  mutable pos : int;
  mutable base : int;
  mutable src_eof : bool;
  mutable line : int;
  mutable bol : int; (* absolute offset of beginning of current line *)
  mutable stack : string list; (* open element names, innermost first *)
  mutable depth : int;
  mutable mode : mode;
  mutable xmldecl_checked : bool;
  (* A self-closing tag yields two events from one token. *)
  mutable pending : (event * position) list;
  mutable failed : Parser.error option;
}

exception Fail of Parser.error

let abs t = t.base + t.pos

let fail t fmt =
  Printf.ksprintf
    (fun message ->
      raise
        (Fail
           { Parser.line = t.line; col = abs t - t.bol + 1; offset = abs t;
             message }))
    fmt

(* --- window management --- *)

let refill t =
  if t.pos > 0 then begin
    let rem = t.len - t.pos in
    Bytes.blit t.buf t.pos t.buf 0 rem;
    t.base <- t.base + t.pos;
    t.pos <- 0;
    t.len <- rem
  end;
  match t.source () with
  | None -> t.src_eof <- true
  | Some chunk ->
      let n = Bytes.length chunk in
      if t.len + n > Bytes.length t.buf then begin
        let cap = ref (max 64 (2 * Bytes.length t.buf)) in
        while t.len + n > !cap do
          cap := 2 * !cap
        done;
        let grown = Bytes.create !cap in
        Bytes.blit t.buf 0 grown 0 t.len;
        t.buf <- grown
      end;
      Bytes.blit chunk 0 t.buf t.len n;
      t.len <- t.len + n

(* Make [n] bytes available, or return false at end of input — the
   streaming analogue of [Parser]'s bounds checks: a [looking_at] near
   the end of input is false, never an error. *)
let ensure t n =
  while t.len - t.pos < n && not t.src_eof do
    refill t
  done;
  t.len - t.pos >= n

let at_eof t = not (ensure t 1)
let peek t = Bytes.get t.buf t.pos

let advance t =
  if Bytes.get t.buf t.pos = '\n' then begin
    t.line <- t.line + 1;
    t.bol <- abs t + 1
  end;
  t.pos <- t.pos + 1

let next_ch t =
  if at_eof t then fail t "unexpected end of input";
  let c = peek t in
  advance t;
  c

let expect t c =
  let got = next_ch t in
  if got <> c then fail t "expected %C, found %C" c got

let skip_string t s = String.iter (fun c -> expect t c) s

let looking_at t s =
  let n = String.length s in
  ensure t n
  &&
  let rec eq i = i = n || (Bytes.get t.buf (t.pos + i) = s.[i] && eq (i + 1)) in
  eq 0

let is_ws = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let skip_ws t =
  while (not (at_eof t)) && is_ws (peek t) do
    advance t
  done

let position t = { line = t.line; col = abs t - t.bol + 1; offset = abs t }

(* --- tokens: transliterations of the [Parser] lexers --- *)

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let lex_name t =
  if at_eof t || not (is_name_start (peek t)) then fail t "expected a name";
  let buf = Buffer.create 12 in
  while (not (at_eof t)) && is_name_char (peek t) do
    Buffer.add_char buf (peek t);
    advance t
  done;
  Buffer.contents buf

(* Same encoder as [Parser.add_utf8]; duplicated because it is not part
   of the parser's public interface. *)
let add_utf8 buf code =
  if code < 0 || code > 0x10FFFF then invalid_arg "add_utf8"
  else if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let lex_reference t buf =
  if at_eof t then fail t "unterminated entity reference";
  if peek t = '#' then begin
    advance t;
    let hex = (not (at_eof t)) && (peek t = 'x' || peek t = 'X') in
    if hex then advance t;
    let digits = Buffer.create 8 in
    while (not (at_eof t)) && peek t <> ';' do
      Buffer.add_char digits (peek t);
      advance t
    done;
    let digits = Buffer.contents digits in
    expect t ';';
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> fail t "bad character reference &#%s;" digits
    in
    try add_utf8 buf code
    with Invalid_argument _ -> fail t "character reference out of range"
  end
  else begin
    let name = lex_name t in
    expect t ';';
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "apos" -> Buffer.add_char buf '\''
    | "quot" -> Buffer.add_char buf '"'
    | other -> fail t "unknown entity &%s;" other
  end

let lex_attr_value t =
  let quote = next_ch t in
  if quote <> '"' && quote <> '\'' then fail t "expected quoted attribute value";
  let buf = Buffer.create 16 in
  let rec go () =
    let c = next_ch t in
    if c = quote then ()
    else begin
      (match c with
      | '&' -> lex_reference t buf
      | '<' -> fail t "'<' in attribute value"
      | c -> Buffer.add_char buf c);
      go ()
    end
  in
  go ();
  Buffer.contents buf

(* Returns [None] when the run was whitespace-only and stripped.  The
   entity quirk is [Parser]'s: any reference marks the run non-blank
   even if it resolves to whitespace. *)
let lex_text t =
  let buf = Buffer.create 32 in
  let only_ws = ref true in
  let rec go () =
    if (not (at_eof t)) && peek t <> '<' then begin
      let c = next_ch t in
      (match c with
      | '&' ->
          only_ws := false;
          lex_reference t buf
      | c ->
          if not (is_ws c) then only_ws := false;
          Buffer.add_char buf c);
      go ()
    end
  in
  go ();
  if Buffer.length buf = 0 then None
  else if !only_ws && t.strip_ws then None
  else Some (Buffer.contents buf)

let lex_comment t =
  (* after "<!--" *)
  let buf = Buffer.create 16 in
  let rec go () =
    if looking_at t "-->" then skip_string t "-->"
    else begin
      if looking_at t "--" then fail t "'--' inside comment";
      Buffer.add_char buf (next_ch t);
      go ()
    end
  in
  go ();
  Buffer.contents buf

let lex_cdata t =
  (* after "<![CDATA[" *)
  let buf = Buffer.create 32 in
  let rec go () =
    if looking_at t "]]>" then skip_string t "]]>"
    else begin
      Buffer.add_char buf (next_ch t);
      go ()
    end
  in
  go ();
  Buffer.contents buf

let lex_pi t =
  (* after "<?" *)
  let target = lex_name t in
  skip_ws t;
  let buf = Buffer.create 16 in
  let rec go () =
    if looking_at t "?>" then skip_string t "?>"
    else begin
      Buffer.add_char buf (next_ch t);
      go ()
    end
  in
  go ();
  (target, Buffer.contents buf)

let skip_doctype t =
  (* after "<!DOCTYPE" *)
  let depth = ref 1 in
  while !depth > 0 do
    match next_ch t with
    | '<' -> incr depth
    | '>' -> decr depth
    | '[' ->
        let sub = ref 1 in
        while !sub > 0 do
          match next_ch t with
          | '[' -> incr sub
          | ']' -> decr sub
          | _ -> ()
        done
    | _ -> ()
  done

(* --- grammar steps --- *)

(* Attributes then ">" or "/>"; source order preserved. *)
let lex_attributes t =
  let rec go acc =
    skip_ws t;
    if at_eof t then fail t "unterminated start tag"
    else if peek t = '>' then begin
      advance t;
      (List.rev acc, false)
    end
    else if looking_at t "/>" then begin
      skip_string t "/>";
      (List.rev acc, true)
    end
    else begin
      let name = lex_name t in
      skip_ws t;
      expect t '=';
      skip_ws t;
      let value = lex_attr_value t in
      go ((name, value) :: acc)
    end
  in
  go []

(* '<' already consumed; [p] is its position. *)
let start_tag t p =
  let name = lex_name t in
  let attrs, self_closing = lex_attributes t in
  if self_closing then begin
    t.pending <- [ (End_element name, p) ];
    if t.depth = 0 then t.mode <- Epilog
  end
  else begin
    t.stack <- name :: t.stack;
    t.depth <- t.depth + 1;
    t.mode <- Content
  end;
  (Start_element { name; attrs }, p)

let rec step_prolog t =
  skip_ws t;
  if not t.xmldecl_checked then begin
    t.xmldecl_checked <- true;
    (* The XML declaration is consumed and dropped, exactly like
       [Parser.parse_prolog] — including its acceptance of any PI whose
       target merely starts with "xml". *)
    if looking_at t "<?xml" then begin
      skip_string t "<?";
      ignore (lex_pi t : string * string)
    end;
    skip_ws t
  end;
  let p = position t in
  if looking_at t "<!--" then begin
    skip_string t "<!--";
    Some (Comment (lex_comment t), p)
  end
  else if looking_at t "<!DOCTYPE" then begin
    skip_string t "<!DOCTYPE";
    skip_doctype t;
    step_prolog t
  end
  else if looking_at t "<?" then begin
    skip_string t "<?";
    let target, body = lex_pi t in
    Some (Pi { target; body }, p)
  end
  else begin
    if at_eof t || peek t <> '<' then fail t "expected root element";
    expect t '<';
    Some (start_tag t p)
  end

let rec step_content t =
  let p = position t in
  if at_eof t then fail t "unexpected end of input"
  else if peek t <> '<' then begin
    match lex_text t with
    | Some txt -> Some (Text txt, p)
    | None -> step_content t
  end
  else if looking_at t "</" then begin
    skip_string t "</";
    let close = lex_name t in
    (match t.stack with
    | open_tag :: rest ->
        if not (String.equal close open_tag) then
          fail t "mismatched end tag </%s> for <%s>" close open_tag;
        skip_ws t;
        expect t '>';
        t.stack <- rest;
        t.depth <- t.depth - 1;
        if t.depth = 0 then t.mode <- Epilog
    | [] ->
        (* [Content] mode implies a non-empty stack. *)
        assert false);
    Some (End_element close, p)
  end
  else if looking_at t "<!--" then begin
    skip_string t "<!--";
    Some (Comment (lex_comment t), p)
  end
  else if looking_at t "<![CDATA[" then begin
    skip_string t "<![CDATA[";
    let txt = lex_cdata t in
    if String.length txt > 0 then Some (Cdata txt, p) else step_content t
  end
  else if looking_at t "<?" then begin
    skip_string t "<?";
    let target, body = lex_pi t in
    Some (Pi { target; body }, p)
  end
  else begin
    expect t '<';
    Some (start_tag t p)
  end

let step_epilog t =
  skip_ws t;
  let p = position t in
  if at_eof t then None
  else if looking_at t "<!--" then begin
    skip_string t "<!--";
    Some (Comment (lex_comment t), p)
  end
  else if looking_at t "<?" then begin
    skip_string t "<?";
    let target, body = lex_pi t in
    Some (Pi { target; body }, p)
  end
  else fail t "content after the root element"

(* --- public interface --- *)

let make ?(strip_ws = true) source =
  {
    source;
    strip_ws;
    buf = Bytes.create 4096;
    len = 0;
    pos = 0;
    base = 0;
    src_eof = false;
    line = 1;
    bol = 0;
    stack = [];
    depth = 0;
    mode = Prolog;
    xmldecl_checked = false;
    pending = [];
    failed = None;
  }

let next t =
  match t.failed with
  | Some e -> Error e
  | None -> (
      match t.pending with
      | ev :: rest ->
          t.pending <- rest;
          Ok (Some ev)
      | [] -> (
          try
            match t.mode with
            | Prolog -> Ok (step_prolog t)
            | Content -> Ok (step_content t)
            | Epilog -> Ok (step_epilog t)
          with Fail e ->
            t.failed <- Some e;
            Error e))

let consumed t = abs t
let depth t = t.depth

let of_string s =
  let sent = ref false in
  fun () ->
    if !sent then None
    else begin
      sent := true;
      Some (Bytes.of_string s)
    end

let of_channel ?(chunk_size = 65536) ic =
  let chunk_size = max 1 chunk_size in
  let buf = Bytes.create chunk_size in
  fun () ->
    let n = input ic buf 0 chunk_size in
    if n = 0 then None
    else if n = chunk_size then Some buf
    else Some (Bytes.sub buf 0 n)

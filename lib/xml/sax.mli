(** Streaming pull parser: the [Parser] lexer re-hosted over an
    incremental byte source.

    [Sax] emits the document as a sequence of events instead of a
    materialized {!Store.t}, so a consumer (notably [Xvi_ingest]) can
    shred arbitrarily large inputs with a working set bounded by the
    element depth, not the document size.  The tokenizer deliberately
    reproduces [Parser]'s lexical rules bit for bit — entity
    resolution, whitespace stripping, CDATA handling, prolog and
    trailing-misc treatment — so that replaying the event stream
    through the same [Store] append calls yields a store
    marshal-identical to [Parser.parse] on the concatenated input.

    Chunk boundaries are invisible: the same bytes split any way at
    all produce the same event sequence. *)

type source = unit -> bytes option
(** A pull source: [Some chunk] of fresh bytes (the parser copies what
    it needs; the caller may reuse the buffer), or [None] at end of
    input.  Empty chunks are allowed and skipped. *)

type position = { line : int; col : int; offset : int }
(** 1-based line/column and 0-based absolute byte offset of the first
    byte of the event's token ('<' of a tag, first character of a text
    run). *)

type event =
  | Start_element of { name : string; attrs : (string * string) list }
      (** Attributes in source order, entity references resolved.  A
          self-closing tag emits [Start_element] immediately followed
          by [End_element]. *)
  | End_element of string  (** Tag name, matched against the start tag. *)
  | Text of string
      (** Character data with entities resolved.  Whitespace-only runs
          are dropped under [~strip_ws:true] with [Parser]'s exact
          rule: a run containing any entity reference is kept even if
          it resolves to whitespace. *)
  | Cdata of string
      (** A non-empty CDATA section.  Reported separately from [Text]
          (never merged with adjacent character data) but stored as a
          text node, exactly as [Parser] appends it. *)
  | Comment of string
  | Pi of { target : string; body : string }
      (** Processing instruction.  The leading XML declaration is
          consumed and not reported, as in [Parser].  Prolog and
          trailing-misc comments/PIs {e are} reported; the consumer
          decides their fate ([Parser] stores prolog misc under the
          document node and drops trailing misc). *)

type t

val make : ?strip_ws:bool -> source -> t
(** [make source] starts a parse over [source].  [strip_ws] defaults
    to [true], matching [Parser.parse]. *)

val next : t -> ((event * position) option, Parser.error) result
(** Pull the next event.  [Ok None] is clean end of document (emitted
    only after the root element closed and any trailing misc was
    consumed).  After an [Error] the parser is stuck: subsequent calls
    return the same error. *)

val consumed : t -> int
(** Absolute count of source bytes fully tokenized so far.  At every
    event boundary this is an exact cut point: feeding the first
    [consumed t] bytes followed by the rest of the input (through any
    chunking) reproduces the remaining event stream. *)

val depth : t -> int
(** Number of currently open elements. *)

val of_string : string -> source
(** The whole document as one chunk. *)

val of_channel : ?chunk_size:int -> in_channel -> source
(** Read [chunk_size] (default 64 KiB) bytes at a time. *)

module Bv = Xvi_util.Bigvec

type node = int

type kind =
  | Document
  | Element
  | Text
  | Attribute
  | Comment
  | Pi
  | Deleted

let kind_to_int = function
  | Document -> 0
  | Element -> 1
  | Text -> 2
  | Attribute -> 3
  | Comment -> 4
  | Pi -> 5
  | Deleted -> 6

let kind_of_int = function
  | 0 -> Document
  | 1 -> Element
  | 2 -> Text
  | 3 -> Attribute
  | 4 -> Comment
  | 5 -> Pi
  | 6 -> Deleted
  | k -> invalid_arg (Printf.sprintf "Store.kind_of_int: %d" k)

let nil = -1

(* All columns are off-heap ([Bigvec]); text content lives as
   (offset, length) slices into a shared append-only byte arena, so the
   GC scans nothing proportional to document size. [set_text] appends
   the replacement bytes and abandons the old slice — the arena only
   grows, and [compact] is the vacuum. *)
type t = {
  kinds : Bv.Int.t;
  names : Bv.Int.t; (* name-pool id; nil when unnamed *)
  parents : Bv.Int.t;
  first_childs : Bv.Int.t;
  last_childs : Bv.Int.t;
  next_sibs : Bv.Int.t;
  prev_sibs : Bv.Int.t;
  first_attrs : Bv.Int.t;
  text_offs : Bv.Int.t; (* byte offset into [arena]; 0 when empty *)
  text_lens : Bv.Int.t;
  arena : Bv.Byte.t; (* append-only text payload *)
  pool : Name_pool.t;
  mutable live : int;
  counts : int array; (* per kind_to_int, live nodes *)
  mutable live_text_bytes : int;
}

let document = 0

let get_text t n =
  let len = Bv.Int.get t.text_lens n in
  if len = 0 then "" else Bv.Byte.sub_string t.arena (Bv.Int.get t.text_offs n) len

let store_text t txt =
  if String.length txt = 0 then (0, 0)
  else (Bv.Byte.append_string t.arena txt, String.length txt)

let append_row t ~kind ~name ~parent ~text =
  let id = Bv.Int.length t.kinds in
  let off, len = store_text t text in
  Bv.Int.push t.kinds (kind_to_int kind);
  Bv.Int.push t.names name;
  Bv.Int.push t.parents parent;
  Bv.Int.push t.first_childs nil;
  Bv.Int.push t.last_childs nil;
  Bv.Int.push t.next_sibs nil;
  Bv.Int.push t.prev_sibs nil;
  Bv.Int.push t.first_attrs nil;
  Bv.Int.push t.text_offs off;
  Bv.Int.push t.text_lens len;
  t.live <- t.live + 1;
  t.counts.(kind_to_int kind) <- t.counts.(kind_to_int kind) + 1;
  t.live_text_bytes <- t.live_text_bytes + String.length text;
  id

let create () =
  let t =
    {
      kinds = Bv.Int.create ();
      names = Bv.Int.create ();
      parents = Bv.Int.create ();
      first_childs = Bv.Int.create ();
      last_childs = Bv.Int.create ();
      next_sibs = Bv.Int.create ();
      prev_sibs = Bv.Int.create ();
      first_attrs = Bv.Int.create ();
      text_offs = Bv.Int.create ();
      text_lens = Bv.Int.create ();
      arena = Bv.Byte.create ();
      pool = Name_pool.create ();
      live = 0;
      counts = Array.make 7 0;
      live_text_bytes = 0;
    }
  in
  let id = append_row t ~kind:Document ~name:nil ~parent:nil ~text:"" in
  assert (id = document);
  t

(* Share-don't-copy epoch publication: every column chunk is shared with
   the snapshot and cloned lazily on the next write to it. The name pool
   and scalar bookkeeping are copied eagerly (they are small). *)
let snapshot t =
  {
    kinds = Bv.Int.snapshot t.kinds;
    names = Bv.Int.snapshot t.names;
    parents = Bv.Int.snapshot t.parents;
    first_childs = Bv.Int.snapshot t.first_childs;
    last_childs = Bv.Int.snapshot t.last_childs;
    next_sibs = Bv.Int.snapshot t.next_sibs;
    prev_sibs = Bv.Int.snapshot t.prev_sibs;
    first_attrs = Bv.Int.snapshot t.first_attrs;
    text_offs = Bv.Int.snapshot t.text_offs;
    text_lens = Bv.Int.snapshot t.text_lens;
    arena = Bv.Byte.snapshot t.arena;
    pool = Name_pool.copy t.pool;
    live = t.live;
    counts = Array.copy t.counts;
    live_text_bytes = t.live_text_bytes;
  }

let kind t n = kind_of_int (Bv.Int.get t.kinds n)
let is_live t n = kind t n <> Deleted

let check_kind t n expected what =
  let k = kind t n in
  if not (List.mem k expected) then
    invalid_arg (Printf.sprintf "Store.%s: node %d has the wrong kind" what n)

let name_id t n = Bv.Int.get t.names n

let name t n =
  check_kind t n [ Element; Attribute; Pi ] "name";
  Name_pool.name t.pool (Bv.Int.get t.names n)

let names t = t.pool

let text t n =
  check_kind t n [ Text; Attribute; Comment; Pi ] "text";
  get_text t n

let opt v = if v = nil then None else Some v
let parent t n = opt (Bv.Int.get t.parents n)
let first_child t n = opt (Bv.Int.get t.first_childs n)
let next_sibling t n = opt (Bv.Int.get t.next_sibs n)
let prev_sibling t n = opt (Bv.Int.get t.prev_sibs n)
let last_child t n = opt (Bv.Int.get t.last_childs n)
let first_attribute t n = opt (Bv.Int.get t.first_attrs n)

let next_attribute t n =
  check_kind t n [ Attribute ] "next_attribute";
  opt (Bv.Int.get t.next_sibs n)

(* Link [child] as the last child of [parent]. Attributes use a separate
   chain headed by [first_attrs] but reuse next/prev columns. *)
let link_last_child t ~parent ~child =
  let last = Bv.Int.get t.last_childs parent in
  if last = nil then Bv.Int.set t.first_childs parent child
  else begin
    Bv.Int.set t.next_sibs last child;
    Bv.Int.set t.prev_sibs child last
  end;
  Bv.Int.set t.last_childs parent child

let link_attr t ~element ~attr =
  let rec last_in_chain n =
    match opt (Bv.Int.get t.next_sibs n) with
    | None -> n
    | Some next -> last_in_chain next
  in
  match opt (Bv.Int.get t.first_attrs element) with
  | None -> Bv.Int.set t.first_attrs element attr
  | Some first ->
      let last = last_in_chain first in
      Bv.Int.set t.next_sibs last attr;
      Bv.Int.set t.prev_sibs attr last

let append_element t ~parent name =
  check_kind t parent [ Document; Element ] "append_element";
  let id =
    append_row t ~kind:Element ~name:(Name_pool.intern t.pool name) ~parent
      ~text:""
  in
  link_last_child t ~parent ~child:id;
  id

let append_text t ~parent txt =
  check_kind t parent [ Document; Element ] "append_text";
  let id = append_row t ~kind:Text ~name:nil ~parent ~text:txt in
  link_last_child t ~parent ~child:id;
  id

let append_attribute t ~element ~name ~value =
  check_kind t element [ Element ] "append_attribute";
  let id =
    append_row t ~kind:Attribute
      ~name:(Name_pool.intern t.pool name)
      ~parent:element ~text:value
  in
  link_attr t ~element ~attr:id;
  id

let append_comment t ~parent txt =
  check_kind t parent [ Document; Element ] "append_comment";
  let id = append_row t ~kind:Comment ~name:nil ~parent ~text:txt in
  link_last_child t ~parent ~child:id;
  id

let append_pi t ~parent ~target txt =
  check_kind t parent [ Document; Element ] "append_pi";
  let id =
    append_row t ~kind:Pi ~name:(Name_pool.intern t.pool target) ~parent
      ~text:txt
  in
  link_last_child t ~parent ~child:id;
  id

let children t n =
  let rec go acc = function
    | None -> List.rev acc
    | Some c -> go (c :: acc) (next_sibling t c)
  in
  go [] (first_child t n)

let attributes t n =
  let rec go acc = function
    | None -> List.rev acc
    | Some a -> go (a :: acc) (opt (Bv.Int.get t.next_sibs a))
  in
  go [] (first_attribute t n)

let is_ancestor t ~ancestor n =
  let rec up cur =
    match parent t cur with
    | None -> false
    | Some p -> p = ancestor || up p
  in
  up n

let compare_order t a b =
  if a = b then 0
  else begin
    let rec path acc n =
      match parent t n with None -> n :: acc | Some p -> path (n :: acc) p
    in
    let pa = path [] a and pb = path [] b in
    (* walk the two root-paths together to the first divergence *)
    let rec walk pa pb =
      match (pa, pb) with
      | [], [] -> 0
      | [], _ -> -1 (* a is an ancestor of b *)
      | _, [] -> 1
      | x :: ra, y :: rb ->
          if x = y then walk ra rb
          else begin
            (* x and y are distinct attributes/children of one parent:
               scan attributes first (document order), then children *)
            let p = Bv.Int.get t.parents x in
            let rec scan cur =
              if cur = x then -1
              else if cur = y then 1
              else
                match opt (Bv.Int.get t.next_sibs cur) with
                | Some next -> scan next
                | None -> (
                    (* end of the attribute chain: continue with children *)
                    match
                      (kind t x = Attribute, opt (Bv.Int.get t.first_childs p))
                    with
                    | _, Some c when kind t cur = Attribute -> scan c
                    | _ -> invalid_arg "Store.compare_order: unlinked nodes")
            in
            let start =
              match opt (Bv.Int.get t.first_attrs p) with
              | Some a0 when kind t x = Attribute || kind t y = Attribute ->
                  a0
              | _ -> (
                  match opt (Bv.Int.get t.first_childs p) with
                  | Some c -> c
                  | None -> invalid_arg "Store.compare_order: unlinked nodes")
            in
            scan start
          end
    in
    walk pa pb
  end

let level t n =
  let rec up acc cur =
    match parent t cur with None -> acc | Some p -> up (acc + 1) p
  in
  up 0 n

let iter_pre ?(root = document) t f =
  let rec walk n =
    if is_live t n then begin
      f n;
      let rec attrs = function
        | None -> ()
        | Some a ->
            if is_live t a then f a;
            attrs (opt (Bv.Int.get t.next_sibs a))
      in
      attrs (first_attribute t n);
      let rec kids = function
        | None -> ()
        | Some c ->
            walk c;
            kids (next_sibling t c)
      in
      kids (first_child t n)
    end
  in
  walk root

let subtree_size t n =
  let count = ref 0 in
  iter_pre ~root:n t (fun _ -> incr count);
  !count

let text_nodes ?root t =
  let acc = ref [] in
  iter_pre ?root t (fun n -> if kind t n = Text then acc := n :: !acc);
  Array.of_list (List.rev !acc)

let node_range t = Bv.Int.length t.kinds
let live_count t = t.live
let count_of_kind t k = t.counts.(kind_to_int k)

let string_value t n =
  match kind t n with
  | Text | Attribute | Comment | Pi -> get_text t n
  | Deleted -> ""
  | Document | Element ->
      let buf = Buffer.create 64 in
      let rec walk c =
        match kind t c with
        | Text -> Buffer.add_string buf (get_text t c)
        | Element | Document ->
            let rec kids = function
              | None -> ()
              | Some k ->
                  walk k;
                  kids (next_sibling t k)
            in
            kids (first_child t c)
        | Attribute | Comment | Pi | Deleted -> ()
      in
      walk n;
      Buffer.contents buf

let set_text t n txt =
  check_kind t n [ Text; Attribute ] "set_text";
  t.live_text_bytes <-
    t.live_text_bytes - Bv.Int.get t.text_lens n + String.length txt;
  let off, len = store_text t txt in
  Bv.Int.set t.text_offs n off;
  Bv.Int.set t.text_lens n len

let unlink t n =
  let p = Bv.Int.get t.parents n in
  let prev = Bv.Int.get t.prev_sibs n in
  let next = Bv.Int.get t.next_sibs n in
  if prev <> nil then Bv.Int.set t.next_sibs prev next
  else if p <> nil then
    if kind t n = Attribute then Bv.Int.set t.first_attrs p next
    else Bv.Int.set t.first_childs p next;
  if next <> nil then Bv.Int.set t.prev_sibs next prev
  else if p <> nil && kind t n <> Attribute then Bv.Int.set t.last_childs p prev;
  Bv.Int.set t.prev_sibs n nil;
  Bv.Int.set t.next_sibs n nil

let tombstone t n =
  let k = kind t n in
  if k <> Deleted then begin
    t.counts.(kind_to_int k) <- t.counts.(kind_to_int k) - 1;
    t.counts.(kind_to_int Deleted) <- t.counts.(kind_to_int Deleted) + 1;
    t.live <- t.live - 1;
    t.live_text_bytes <- t.live_text_bytes - Bv.Int.get t.text_lens n;
    Bv.Int.set t.kinds n (kind_to_int Deleted)
  end

let delete_subtree t n =
  if n = document then invalid_arg "Store.delete_subtree: document node";
  if is_live t n then begin
    (* Tombstone everything below (attributes included), then unlink the
       root of the deleted region. *)
    let rec walk c =
      let rec attrs = function
        | None -> ()
        | Some a ->
            tombstone t a;
            attrs (opt (Bv.Int.get t.next_sibs a))
      in
      attrs (first_attribute t c);
      let rec kids = function
        | None -> ()
        | Some k ->
            let next = next_sibling t k in
            walk k;
            kids next
      in
      kids (first_child t c);
      tombstone t c
    in
    unlink t n;
    walk n
  end

let link_before t ~parent ~child ~before =
  match before with
  | None -> link_last_child t ~parent ~child
  | Some sib ->
      if Bv.Int.get t.parents sib <> parent then
        invalid_arg "Store.insert: before-node is not a child of parent";
      let prev = Bv.Int.get t.prev_sibs sib in
      Bv.Int.set t.next_sibs child sib;
      Bv.Int.set t.prev_sibs sib child;
      if prev = nil then Bv.Int.set t.first_childs parent child
      else begin
        Bv.Int.set t.next_sibs prev child;
        Bv.Int.set t.prev_sibs child prev
      end

let insert_element t ~parent ?before name =
  check_kind t parent [ Document; Element ] "insert_element";
  let id =
    append_row t ~kind:Element ~name:(Name_pool.intern t.pool name) ~parent
      ~text:""
  in
  link_before t ~parent ~child:id ~before;
  id

let insert_text t ~parent ?before txt =
  check_kind t parent [ Document; Element ] "insert_text";
  let id = append_row t ~kind:Text ~name:nil ~parent ~text:txt in
  link_before t ~parent ~child:id ~before;
  id

let text_bytes t = t.live_text_bytes

let offheap_bytes t =
  Bv.Int.memory_bytes t.kinds + Bv.Int.memory_bytes t.names
  + Bv.Int.memory_bytes t.parents
  + Bv.Int.memory_bytes t.first_childs
  + Bv.Int.memory_bytes t.last_childs
  + Bv.Int.memory_bytes t.next_sibs
  + Bv.Int.memory_bytes t.prev_sibs
  + Bv.Int.memory_bytes t.first_attrs
  + Bv.Int.memory_bytes t.text_offs
  + Bv.Int.memory_bytes t.text_lens
  + Bv.Byte.memory_bytes t.arena

let heap_bytes t = Name_pool.memory_bytes t.pool

let storage_bytes t = offheap_bytes t + heap_bytes t

let compact t =
  let fresh = create () in
  let mapping = Array.make (node_range t) (-1) in
  mapping.(document) <- document;
  let rec walk old_n new_parent =
    List.iter
      (fun a ->
        let id =
          append_attribute fresh ~element:new_parent ~name:(name t a)
            ~value:(text t a)
        in
        mapping.(a) <- id)
      (attributes t old_n);
    List.iter
      (fun c ->
        if is_live t c then begin
          let id =
            match kind t c with
            | Element -> append_element fresh ~parent:new_parent (name t c)
            | Text -> append_text fresh ~parent:new_parent (text t c)
            | Comment -> append_comment fresh ~parent:new_parent (text t c)
            | Pi -> append_pi fresh ~parent:new_parent ~target:(name t c) (text t c)
            | Document | Attribute | Deleted -> assert false
          in
          mapping.(c) <- id;
          if kind t c = Element then walk c id
        end)
      (children t old_n)
  in
  walk document document;
  let map n =
    if n < 0 || n >= Array.length mapping || mapping.(n) < 0 then None
    else Some mapping.(n)
  in
  (fresh, map)

let pre_size_level t =
  let info = Hashtbl.create (max 16 (live_count t)) in
  (* [compute n lvl] records (size, level) for [n]'s whole subtree and
     returns [n]'s size = number of live descendants (attributes count). *)
  let rec compute n lvl =
    let total = ref 0 in
    List.iter
      (fun a ->
        if is_live t a then begin
          Hashtbl.replace info a (0, lvl + 1);
          incr total
        end)
      (attributes t n);
    let rec kids = function
      | None -> ()
      | Some c ->
          if is_live t c then total := !total + 1 + compute c (lvl + 1);
          kids (next_sibling t c)
    in
    kids (first_child t n);
    Hashtbl.replace info n (!total, lvl);
    !total
  in
  ignore (compute document 0 : int);
  let out = ref [] in
  iter_pre t (fun n ->
      let size, lvl = Hashtbl.find info n in
      out := (n, size, lvl) :: !out);
  Array.of_list (List.rev !out)

module Codec = struct
  (* Raw columnar blob: fixed-width u64 LE fields and column contents,
     then the arena bytes. The snapshot layer digest-frames the blob, so
     the codec itself carries no checksums. Decoding rebuilds canonical
     fresh vectors (exact chunk tables, zero slack, all-owned flags) —
     a decoded store marshals identically to an organically built one
     with the same history. *)

  let add_u64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

  let encode t =
    let n = node_range t in
    let arena_len = Bv.Byte.length t.arena in
    let buf =
      Buffer.create ((10 * 8 * n) + arena_len + 4096)
    in
    add_u64 buf n;
    add_u64 buf arena_len;
    add_u64 buf t.live;
    add_u64 buf t.live_text_bytes;
    Array.iter (add_u64 buf) t.counts;
    add_u64 buf (Name_pool.count t.pool);
    for i = 0 to Name_pool.count t.pool - 1 do
      let s = Name_pool.name t.pool i in
      add_u64 buf (String.length s);
      Buffer.add_string buf s
    done;
    let column c =
      for i = 0 to n - 1 do
        add_u64 buf (Bv.Int.get c i)
      done
    in
    column t.kinds;
    column t.names;
    column t.parents;
    column t.first_childs;
    column t.last_childs;
    column t.next_sibs;
    column t.prev_sibs;
    column t.first_attrs;
    column t.text_offs;
    column t.text_lens;
    for i = 0 to arena_len - 1 do
      Buffer.add_char buf (Bv.Byte.get t.arena i)
    done;
    Buffer.contents buf

  let decode blob =
    let pos = ref 0 in
    let need k =
      if !pos + k > String.length blob then
        failwith "Store.Codec.decode: truncated blob"
    in
    let u64 () =
      need 8;
      let v = Int64.to_int (String.get_int64_le blob !pos) in
      pos := !pos + 8;
      v
    in
    let str len =
      need len;
      let s = String.sub blob !pos len in
      pos := !pos + len;
      s
    in
    let n = u64 () in
    let arena_len = u64 () in
    let live = u64 () in
    let live_text_bytes = u64 () in
    if n < 0 || arena_len < 0 then failwith "Store.Codec.decode: bad header";
    let counts = Array.init 7 (fun _ -> u64 ()) in
    let pool = Name_pool.create () in
    let pool_count = u64 () in
    for _ = 1 to pool_count do
      let len = u64 () in
      ignore (Name_pool.intern pool (str len) : int)
    done;
    let column () =
      let c = Bv.Int.create () in
      for _ = 1 to n do
        Bv.Int.push c (u64 ())
      done;
      c
    in
    let kinds = column () in
    let names = column () in
    let parents = column () in
    let first_childs = column () in
    let last_childs = column () in
    let next_sibs = column () in
    let prev_sibs = column () in
    let first_attrs = column () in
    let text_offs = column () in
    let text_lens = column () in
    let arena = Bv.Byte.create () in
    need arena_len;
    for i = 0 to arena_len - 1 do
      Bv.Byte.push arena (String.unsafe_get blob (!pos + i))
    done;
    pos := !pos + arena_len;
    if !pos <> String.length blob then
      failwith "Store.Codec.decode: trailing bytes";
    {
      kinds;
      names;
      parents;
      first_childs;
      last_childs;
      next_sibs;
      prev_sibs;
      first_attrs;
      text_offs;
      text_lens;
      arena;
      pool;
      live;
      counts;
      live_text_bytes;
    }
end

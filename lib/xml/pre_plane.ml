type node = Store.node

(* The plane is rebuilt wholesale per epoch and never mutated, so its
   arrays are plain exact-size off-heap Bigarrays (no copy-on-write
   machinery needed) — at XMark scale these four arrays dominate what
   the GC would otherwise scan on every major collection. *)
type iarr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  node_of_pre : iarr; (* pre -> node *)
  pre_of_node : iarr; (* node -> pre, -1 when unknown *)
  sizes : iarr; (* by pre *)
  levels : iarr; (* by pre *)
}

let imake n v =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill a v;
  a

let build store =
  let live = Store.live_count store in
  let node_of_pre = imake live (-1) in
  let pre_of_node = imake (Store.node_range store) (-1) in
  let sizes = imake live 0 in
  let levels = imake live 0 in
  let next = ref 0 in
  (* one recursive pass assigns pre ranks in iter_pre order (element,
     attributes, children) and computes subtree sizes on the way out *)
  let rec walk n lvl =
    let my_pre = !next in
    incr next;
    node_of_pre.{my_pre} <- n;
    pre_of_node.{n} <- my_pre;
    levels.{my_pre} <- lvl;
    List.iter
      (fun a ->
        let p = !next in
        incr next;
        node_of_pre.{p} <- a;
        pre_of_node.{a} <- p;
        levels.{p} <- lvl + 1;
        sizes.{p} <- 0)
      (Store.attributes store n);
    List.iter
      (fun c -> if Store.is_live store c then walk c (lvl + 1))
      (Store.children store n);
    sizes.{my_pre} <- !next - my_pre - 1
  in
  walk Store.document 0;
  assert (!next = live);
  { node_of_pre; pre_of_node; sizes; levels }

let live_nodes t = Bigarray.Array1.dim t.node_of_pre

let pre t n =
  if n < Bigarray.Array1.dim t.pre_of_node then t.pre_of_node.{n} else -1

let node_at t p =
  if p < 0 || p >= Bigarray.Array1.dim t.node_of_pre then
    invalid_arg (Printf.sprintf "Pre_plane.node_at: %d" p)
  else t.node_of_pre.{p}

let known t n what =
  let p = pre t n in
  if p < 0 then
    invalid_arg (Printf.sprintf "Pre_plane.%s: node %d not in this snapshot" what n)
  else p

let size t n = t.sizes.{known t n "size"}
let level t n = t.levels.{known t n "level"}

let compare_order t a b =
  Int.compare (known t a "compare_order") (known t b "compare_order")

let is_descendant t ~ancestor n =
  let pa = known t ancestor "is_descendant" and pn = known t n "is_descendant" in
  pa < pn && pn <= pa + t.sizes.{pa}

let descendants t n =
  let p = known t n "descendants" in
  List.init t.sizes.{p} (fun i -> t.node_of_pre.{p + 1 + i})

let in_subtree t ~scope n =
  let ps = pre t scope and pn = pre t n in
  ps >= 0 && pn >= 0 && ps <= pn && pn <= ps + t.sizes.{ps}

let subtree_cursor t scope =
  let ps = pre t scope in
  if ps < 0 then fun () -> None
  else
    let stop = ps + t.sizes.{ps} in
    let next = ref ps in
    fun () ->
      if !next > stop then None
      else begin
        let n = t.node_of_pre.{!next} in
        incr next;
        Some n
      end

let sort_doc_order t nodes =
  List.sort (compare_order t) nodes

(* ascending, deduplicated pre ranks of a node list *)
let pre_ranks t what nodes =
  let arr = Array.of_list (List.map (fun n -> known t n what) nodes) in
  Array.sort Int.compare arr;
  arr

let dedup_pre arr =
  let out = ref [] in
  Array.iteri
    (fun i p -> if i = 0 || arr.(i - 1) <> p then out := p :: !out)
    arr;
  List.rev !out

let join_descendant t ~context nodes =
  let ctx = pre_ranks t "join_descendant" context in
  let cand = pre_ranks t "join_descendant" nodes in
  (* sweep candidates in pre order; a candidate is covered iff the
     furthest interval end among contexts that started before it reaches
     it (tree ranges are nested or disjoint, so the max suffices) *)
  let out = ref [] in
  let ci = ref 0 in
  let cover_end = ref (-1) in
  List.iter
    (fun p ->
      while !ci < Array.length ctx && ctx.(!ci) < p do
        cover_end := max !cover_end (ctx.(!ci) + t.sizes.{ctx.(!ci)});
        incr ci
      done;
      if p <= !cover_end then out := t.node_of_pre.{p} :: !out)
    (dedup_pre cand);
  List.rev !out

let join_ancestor t ~context nodes =
  let ctx = pre_ranks t "join_ancestor" context in
  let cand = pre_ranks t "join_ancestor" nodes in
  (* candidate a is an ancestor of some context iff a context pre falls
     in (pre a, pre a + size a]: binary search per candidate *)
  let first_greater p =
    let lo = ref 0 and hi = ref (Array.length ctx) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ctx.(mid) <= p then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let out = ref [] in
  List.iter
    (fun p ->
      let i = first_greater p in
      if i < Array.length ctx && ctx.(i) <= p + t.sizes.{p} then
        out := t.node_of_pre.{p} :: !out)
    (dedup_pre cand);
  List.rev !out

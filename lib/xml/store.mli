(** Columnar XML node store.

    The reproduction's stand-in for MonetDB/XQuery's relational XML
    storage. Nodes live in parallel growable columns (struct-of-arrays);
    a node is identified by a dense, stable integer id — the row it was
    appended at. Ids never move, so the value indices can key on them
    across updates (the paper's update algorithms rely on this).

    Navigation is by [parent] / [first_child] / [next_sibling] links, all
    O(1), which provides the "efficient depth-first traversal" interface
    the paper's Section 5 assumes of the host system. Document order is
    defined by tree traversal (not by id order, since later insertions
    append rows).

    Deletion tombstones the subtree and unlinks it; tombstoned rows keep
    their id so indices can be repaired incrementally. *)

type t

type node = int
(** Dense node id; row number in the store. *)

type kind =
  | Document  (** The virtual root, always node 0. *)
  | Element
  | Text
  | Attribute
  | Comment
  | Pi
  | Deleted  (** Tombstone left by {!delete_subtree}. *)

val create : unit -> t
(** Empty store containing only the document node. *)

val snapshot : t -> t
(** O(chunks) copy-on-write snapshot: the result shares all column
    chunks with [t]; whichever side writes into a shared chunk first
    clones just that chunk. This is what epoch publication uses instead
    of deep-copying whole columns. *)

val document : node
(** The document node id (0). *)

(** {1 Construction}

    [append_*] add a node as the {e last} child (or attribute) of
    [parent]; this is the shredding path. *)

val append_element : t -> parent:node -> string -> node
val append_text : t -> parent:node -> string -> node
val append_attribute : t -> element:node -> name:string -> value:string -> node
val append_comment : t -> parent:node -> string -> node
val append_pi : t -> parent:node -> target:string -> string -> node

(** {1 Inspection} *)

val kind : t -> node -> kind
val is_live : t -> node -> bool

val name : t -> node -> string
(** Tag name of an element, name of an attribute, target of a PI.
    @raise Invalid_argument for other kinds. *)

val name_id : t -> node -> int
(** Interned variant of {!name}; [-1] when the kind has no name. *)

val names : t -> Name_pool.t

val text : t -> node -> string
(** Content of a text, attribute, comment or PI node.
    @raise Invalid_argument for elements and the document node. *)

val parent : t -> node -> node option
val first_child : t -> node -> node option
val next_sibling : t -> node -> node option
val prev_sibling : t -> node -> node option
val last_child : t -> node -> node option
val first_attribute : t -> node -> node option
val next_attribute : t -> node -> node option

val children : t -> node -> node list
(** Live child nodes in document order (attributes excluded). *)

val attributes : t -> node -> node list

val is_ancestor : t -> ancestor:node -> node -> bool
(** [is_ancestor t ~ancestor n] — strict: a node is not its own
    ancestor. Attributes count as below their owner element. *)

val compare_order : t -> node -> node -> int
(** Document-order comparison of two live nodes (ancestors precede
    descendants; attributes precede the element's children). O(depth +
    siblings) — lets small result sets be sorted without a full
    document traversal. *)

val level : t -> node -> int
(** Depth; the document node has level 0. *)

val subtree_size : t -> node -> int
(** Live nodes in the subtree rooted at [n], including [n] and
    attributes. *)

(** {1 Document-order iteration} *)

val iter_pre : ?root:node -> t -> (node -> unit) -> unit
(** Pre-order walk over live nodes. Attributes of an element are visited
    right after the element, before its children (the order MonetDB uses
    and the order the paper's Table 1 counts assume). *)

val text_nodes : ?root:node -> t -> node array
(** Live text nodes in document order. *)

val node_range : t -> int
(** One past the largest node id ever allocated (live or tombstoned) —
    the size index arrays must have. *)

val live_count : t -> int
val count_of_kind : t -> kind -> int

(** {1 XDM string value} *)

val string_value : t -> node -> string
(** Per the XQuery data model: for elements and the document node, the
    concatenation of all descendant text nodes in document order
    (comments, PIs and attributes do not contribute); for text,
    attribute, comment and PI nodes, their own content. *)

(** {1 Updates} *)

val set_text : t -> node -> string -> unit
(** Replace the content of a text or attribute node.
    @raise Invalid_argument for other kinds. *)

val delete_subtree : t -> node -> unit
(** Tombstone [n] and its whole subtree and unlink [n] from its parent.
    @raise Invalid_argument when [n] is the document node. *)

val insert_element : t -> parent:node -> ?before:node -> string -> node
(** New element under [parent], placed before sibling [before] (default:
    appended as last child). *)

val insert_text : t -> parent:node -> ?before:node -> string -> node

(** {1 Accounting} *)

val storage_bytes : t -> int
(** Footprint of all columns, text payloads, and the name pool; the
    "DB size" denominator of the Figure 9 storage experiment. *)

val offheap_bytes : t -> int
(** Bytes held in Bigarray chunks outside the OCaml heap (the ten node
    columns plus the text arena). *)

val heap_bytes : t -> int
(** GC-visible payload bytes — with off-heap columns, just the name
    pool. *)

val text_bytes : t -> int
(** Total bytes of live text/attribute content. *)

(** {1 Compaction} *)

val compact : t -> t * (node -> node option)
(** [compact t] is a fresh store holding only the live tree, with dense
    new node ids in document order (tombstones vacuumed), plus the
    mapping from old ids to new ones ([None] for tombstoned nodes).
    [t] is unchanged. Indices must be rebuilt over the new store — ids
    are not stable across compaction, which is why it is an explicit
    maintenance operation, as in any database. *)

(** {1 Columnar codec} *)

module Codec : sig
  val encode : t -> string
  (** Serialise the store as a raw columnar blob: fixed-width
      little-endian column contents plus the text arena and name pool.
      No internal checksums — the snapshot layer digest-frames it. *)

  val decode : string -> t
  (** Inverse of {!encode}. The result is canonical: it marshals
      identically to an organically built store with the same history.
      @raise Failure on a malformed blob. *)
end

(** {1 Pre/size/level snapshot} *)

val pre_size_level : t -> (node * int * int) array
(** The classic MonetDB encoding materialised from the current tree:
    element [i] of the result is [(node, size, level)] for pre number
    [i], where [size] counts live descendants (attributes included).
    Exists for tests and for exporting; the live store works off links. *)

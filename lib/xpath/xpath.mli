(** A small XPath subset with index-accelerated evaluation.

    Covers the query shapes the paper uses to motivate its indices:

    {[
      //person[.//age = 42]
      //person[first/text() = "Arthur"]
      //*[fn:data(name) = "ArthurDent"]
      //item[price >= 40 and price < 60]
      /site/people/person/@id
    ]}

    Grammar (abbreviated syntax only):

    - paths: [/step/step…], [//step…], steps separated by [/] or [//]
    - steps: name test ([person]), wildcard ([*]), [text()], [node()],
      attribute ([@id], [@*]), self ([.]), descendant-or-self via [//]
    - predicates: [\[path\]] (existence), [\[path op literal\]] with
      [op] one of [= != < <= > >=]; string literals in single or double
      quotes, numeric literals as doubles; [fn:data(path)] is the XDM
      string value of the path's nodes (general comparison: the
      predicate holds if {e some} node matches, per XQuery semantics);
      [contains(path, "lit")] substring containment (answered by the
      q-gram index when the {!Xvi_core.Db} was built with
      [~substring:true]); [and] / [or] combinations.

    Two evaluators are provided: a naive tree-walking one (the
    correctness baseline) and one that consults a {!Xvi_core.Db}'s value
    indices for comparison predicates — string equality via the hash
    index, numeric comparisons via the double index — mirroring how
    MonetDB/XQuery would use the paper's indices. Both return the same
    node sets; tests enforce it. *)

type t
(** A parsed expression. *)

type error = { pos : int; message : string }

val parse : string -> (t, error) result
val parse_exn : string -> t
val to_string : t -> string
(** Round-trippable rendering of the parsed expression. *)

val eval : Xvi_xml.Store.t -> t -> Xvi_xml.Store.node list
(** Naive evaluation against the whole document, in document order. *)

val eval_indexed : Xvi_core.Db.t -> t -> Xvi_xml.Store.node list
(** Index-accelerated evaluation; same result, in document order.
    Comparison predicates are compiled into the query layer's predicate
    IR ({!Xvi_core.Db.Ir}); the cheapest conjunct by planner estimate is
    executed as the candidate generator and its hits mapped back through
    ancestor checks instead of walking every subtree. *)

val compile_candidates :
  Xvi_core.Db.t -> t -> (string * Xvi_core.Db.Ir.t) list
(** The indexable top-level conjuncts of the expression's final-step
    predicate, compiled into predicate-IR terms and labeled with their
    source text. Empty when the ancestor-driven fast path does not apply
    (non-downward steps, predicates on interior steps, or no indexable
    conjunct). {!eval_indexed} runs the cheapest of these — by
    {!Xvi_core.Db.estimate} — as its candidate generator and verifies
    the remaining conjuncts per candidate; conjuncts are never
    intersected with each other, because distinct conjuncts may be
    satisfied by distinct operand nodes. [xvi query --explain] prints
    this table with the planner's plan for the chosen driver. *)

type plan = {
  used_string_index : int;
  used_double_index : int;
  used_name_index : int;
}
(** How many predicates the indexed evaluator answered from each index
    in the last {!eval_indexed} call — exposed for the examples and for
    tests that assert acceleration actually happened. *)

val last_plan : unit -> plan

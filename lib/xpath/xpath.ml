module Store = Xvi_xml.Store
module Db = Xvi_core.Db

(* --- AST --- *)

type axis = Child | Descendant | Attribute | Self

type test = Name of string | Wildcard | Text_node | Any_node

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type literal = Str of string | Num of float

type step = { axis : axis; test : test; preds : pred list }

and pred =
  | Exists of step list
  | Compare of operand * cmp * literal
  | Contains of operand * string
  | And of pred * pred
  | Or of pred * pred

and operand = { data : bool (* wrapped in fn:data(...) *); rel : step list }

type t = step list (* absolute path from the document node *)

type error = { pos : int; message : string }

(* --- Parser --- *)

exception Err of error

type lexer = { src : string; mutable pos : int }

let fail lx fmt =
  Printf.ksprintf (fun message -> raise (Err { pos = lx.pos; message })) fmt

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let skip_ws lx =
  while
    lx.pos < String.length lx.src
    && (match lx.src.[lx.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    lx.pos <- lx.pos + 1
  done

let looking_at lx s =
  let n = String.length s in
  lx.pos + n <= String.length lx.src && String.sub lx.src lx.pos n = s

let eat lx s =
  if looking_at lx s then begin
    lx.pos <- lx.pos + String.length s;
    true
  end
  else false

let expect lx s = if not (eat lx s) then fail lx "expected %S" s

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let parse_name lx =
  match peek_char lx with
  | Some c when is_name_start c ->
      let start = lx.pos in
      while
        lx.pos < String.length lx.src && is_name_char lx.src.[lx.pos]
      do
        lx.pos <- lx.pos + 1
      done;
      String.sub lx.src start (lx.pos - start)
  | _ -> fail lx "expected a name"

let parse_string_literal lx quote =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char lx with
    | None -> fail lx "unterminated string literal"
    | Some c when c = quote ->
        lx.pos <- lx.pos + 1;
        Buffer.contents buf
    | Some c ->
        Buffer.add_char buf c;
        lx.pos <- lx.pos + 1;
        go ()
  in
  lx.pos <- lx.pos + 1;
  go ()

let parse_number lx =
  let start = lx.pos in
  let digits () =
    while
      lx.pos < String.length lx.src
      && lx.src.[lx.pos] >= '0'
      && lx.src.[lx.pos] <= '9'
    do
      lx.pos <- lx.pos + 1
    done
  in
  if eat lx "-" then ();
  digits ();
  if eat lx "." then digits ();
  if eat lx "e" || eat lx "E" then begin
    ignore (eat lx "-" || eat lx "+" : bool);
    digits ()
  end;
  if lx.pos = start then fail lx "expected a number";
  match float_of_string_opt (String.sub lx.src start (lx.pos - start)) with
  | Some v -> v
  | None -> fail lx "malformed number"

(* Steps of a relative path. [initial_axis] is the axis implied by what
   preceded ("//" vs "/" vs nothing). *)
let rec parse_steps lx ~first_axis =
  let step = parse_step lx ~axis:first_axis in
  if eat lx "//" then step :: parse_steps lx ~first_axis:Descendant
  else if eat lx "/" then step :: parse_steps lx ~first_axis:Child
  else [ step ]

and parse_step lx ~axis =
  skip_ws lx;
  if eat lx "@" then
    let test = if eat lx "*" then Wildcard else Name (parse_name lx) in
    let preds = parse_predicates lx in
    { axis = Attribute; test; preds }
  else if eat lx "." then { axis = Self; test = Any_node; preds = parse_predicates lx }
  else if eat lx "*" then { axis; test = Wildcard; preds = parse_predicates lx }
  else begin
    let name = parse_name lx in
    let test =
      if eat lx "()" then
        match name with
        | "text" -> Text_node
        | "node" -> Any_node
        | other -> fail lx "unknown node test %s()" other
      else Name name
    in
    { axis; test; preds = parse_predicates lx }
  end

and parse_predicates lx =
  skip_ws lx;
  if eat lx "[" then begin
    let p = parse_or lx in
    skip_ws lx;
    expect lx "]";
    p :: parse_predicates lx
  end
  else []

and parse_or lx =
  let left = parse_and lx in
  skip_ws lx;
  if looking_at lx "or " || looking_at lx "or]" then begin
    ignore (eat lx "or" : bool);
    Or (left, parse_or lx)
  end
  else left

and parse_and lx =
  let left = parse_atom lx in
  skip_ws lx;
  if looking_at lx "and " then begin
    ignore (eat lx "and" : bool);
    And (left, parse_and lx)
  end
  else left

and parse_atom lx =
  skip_ws lx;
  if looking_at lx "contains(" || looking_at lx "fn:contains(" then begin
    ignore (eat lx "fn:contains(" || eat lx "contains(" : bool);
    let rel = parse_rel_path lx in
    skip_ws lx;
    expect lx ",";
    skip_ws lx;
    let pattern =
      match peek_char lx with
      | Some ('"' as q) | Some ('\'' as q) -> parse_string_literal lx q
      | _ -> fail lx "contains() expects a string literal"
    in
    skip_ws lx;
    expect lx ")";
    Contains ({ data = false; rel }, pattern)
  end
  else begin
  let operand = parse_operand lx in
  skip_ws lx;
  let cmp =
    if eat lx "!=" then Some Neq
    else if eat lx "<=" then Some Le
    else if eat lx ">=" then Some Ge
    else if eat lx "=" then Some Eq
    else if eat lx "<" then Some Lt
    else if eat lx ">" then Some Gt
    else None
  in
  match cmp with
  | None -> Exists operand.rel
  | Some cmp ->
      skip_ws lx;
      let lit =
        match peek_char lx with
        | Some ('"' as q) | Some ('\'' as q) -> Str (parse_string_literal lx q)
        | Some c when c = '-' || c = '.' || (c >= '0' && c <= '9') ->
            Num (parse_number lx)
        | _ -> fail lx "expected a literal"
      in
      Compare (operand, cmp, lit)
  end

and parse_operand lx =
  if looking_at lx "fn:data(" || looking_at lx "data(" then begin
    ignore (eat lx "fn:data(" || eat lx "data(" : bool);
    let rel = parse_rel_path lx in
    skip_ws lx;
    expect lx ")";
    { data = true; rel }
  end
  else { data = false; rel = parse_rel_path lx }

and parse_rel_path lx =
  skip_ws lx;
  if eat lx ".//" then parse_steps lx ~first_axis:Descendant
  else if eat lx "./" then parse_steps lx ~first_axis:Child
  else if looking_at lx "." then [ parse_step lx ~axis:Self ]
  else if eat lx "//" then parse_steps lx ~first_axis:Descendant
  else parse_steps lx ~first_axis:Child

let parse src =
  let lx = { src; pos = 0 } in
  try
    skip_ws lx;
    let steps =
      if eat lx "//" then parse_steps lx ~first_axis:Descendant
      else if eat lx "/" then parse_steps lx ~first_axis:Child
      else parse_steps lx ~first_axis:Descendant
      (* a bare relative path is evaluated from the root like "//" *)
    in
    skip_ws lx;
    if lx.pos <> String.length src then fail lx "trailing input";
    Ok steps
  with Err e -> Error e

let parse_exn src =
  match parse src with
  | Ok t -> t
  | Error e -> failwith (Printf.sprintf "XPath error at %d: %s" e.pos e.message)

(* --- Printing --- *)

let axis_prefix = function
  | Child -> "/"
  | Descendant -> "//"
  | Attribute -> "/@"
  | Self -> "/."

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec steps_to_buf buf steps =
  List.iter
    (fun s ->
      Buffer.add_string buf (axis_prefix s.axis);
      (match (s.axis, s.test) with
      | _, Name n -> Buffer.add_string buf n
      | Attribute, Wildcard -> Buffer.add_string buf "*"
      | _, Wildcard -> Buffer.add_string buf "*"
      | _, Text_node -> Buffer.add_string buf "text()"
      | Self, Any_node -> () (* already printed as "." *)
      | _, Any_node -> Buffer.add_string buf "node()");
      List.iter
        (fun p ->
          Buffer.add_char buf '[';
          pred_to_buf buf p;
          Buffer.add_char buf ']')
        s.preds)
    steps

and pred_to_buf buf = function
  | Contains (op, pattern) ->
      Buffer.add_string buf "contains(";
      rel_to_buf buf op.rel;
      Buffer.add_string buf (Printf.sprintf ", %S)" pattern)
  | Exists rel -> rel_to_buf buf rel
  | Compare (op, cmp, lit) ->
      if op.data then Buffer.add_string buf "fn:data(";
      rel_to_buf buf op.rel;
      if op.data then Buffer.add_char buf ')';
      Buffer.add_char buf ' ';
      Buffer.add_string buf (cmp_to_string cmp);
      Buffer.add_char buf ' ';
      (match lit with
      | Str s -> Buffer.add_string buf (Printf.sprintf "%S" s)
      | Num v -> Buffer.add_string buf (Printf.sprintf "%g" v))
  | And (a, b) ->
      pred_to_buf buf a;
      Buffer.add_string buf " and ";
      pred_to_buf buf b
  | Or (a, b) ->
      pred_to_buf buf a;
      Buffer.add_string buf " or ";
      pred_to_buf buf b

and rel_to_buf buf rel =
  Buffer.add_char buf '.';
  steps_to_buf buf rel

let to_string t =
  let buf = Buffer.create 64 in
  steps_to_buf buf t;
  Buffer.contents buf

(* --- Evaluation --- *)

type plan = {
  used_string_index : int;
  used_double_index : int;
  used_name_index : int;
}

let current_plan =
  ref { used_string_index = 0; used_double_index = 0; used_name_index = 0 }
let last_plan () = !current_plan

(* Predicate evaluation is parameterised by how a Compare predicate
   decides whether an operand node matches the literal: the naive
   evaluator computes string values and casts; the indexed evaluator
   supplies membership sets computed from the value indices. *)
type 'ctx matcher = {
  matches : Store.t -> Store.node -> cmp -> literal -> bool;
  contains_match : Store.t -> Store.node -> string -> bool;
}

let double_spec = lazy (Xvi_core.Lexical_types.double ())

let cast_double s =
  let spec = Lazy.force double_spec in
  let sct = spec.Xvi_core.Lexical_types.sct in
  if Xvi_core.Sct.is_accepting sct (Xvi_core.Sct.of_string sct s) then
    spec.Xvi_core.Lexical_types.parse s
  else None

let cmp_holds cmp (c : int) =
  match cmp with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let string_contains ~pattern s =
  let m = String.length pattern and n = String.length s in
  if m = 0 then true
  else begin
    let rec at i j = j = m || (s.[i + j] = pattern.[j] && at i (j + 1)) in
    let rec go i = i + m <= n && (at i 0 || go (i + 1)) in
    go 0
  end

let naive_matcher =
  {
    matches =
      (fun store n cmp lit ->
        let sv = Store.string_value store n in
        match lit with
        | Str s -> cmp_holds cmp (String.compare sv s)
        | Num v -> (
            match cast_double sv with
            | Some v' -> cmp_holds cmp (Float.compare v' v)
            | None -> false));
    contains_match =
      (fun store n pattern ->
        string_contains ~pattern (Store.string_value store n));
  }

let test_matches store n axis test =
  match (axis, test) with
  | Attribute, Name nm ->
      Store.kind store n = Store.Attribute && String.equal (Store.name store n) nm
  | Attribute, Wildcard -> Store.kind store n = Store.Attribute
  | _, Name nm ->
      Store.kind store n = Store.Element && String.equal (Store.name store n) nm
  | _, Wildcard -> Store.kind store n = Store.Element
  | _, Text_node -> Store.kind store n = Store.Text
  | _, Any_node -> (
      match Store.kind store n with
      | Store.Element | Store.Text | Store.Document -> true
      | _ -> false)

let axis_nodes store n axis =
  match axis with
  | Self -> [ n ]
  | Child -> Store.children store n
  | Attribute -> Store.attributes store n
  | Descendant ->
      let acc = ref [] in
      let rec walk c =
        List.iter
          (fun k ->
            acc := k :: !acc;
            walk k)
          (Store.children store c)
      in
      walk n;
      List.rev !acc

let rec eval_steps matcher store context steps =
  List.fold_left
    (fun ctx step ->
      let out = ref [] in
      let seen = Hashtbl.create 64 in
      List.iter
        (fun n ->
          List.iter
            (fun m ->
              if
                test_matches store m step.axis step.test
                && (not (Hashtbl.mem seen m))
                && List.for_all (eval_pred matcher store m) step.preds
              then begin
                Hashtbl.replace seen m ();
                out := m :: !out
              end)
            (axis_nodes store n step.axis))
        ctx;
      List.rev !out)
    context steps

and eval_pred matcher store n = function
  | Exists rel -> eval_steps matcher store [ n ] rel <> []
  | And (a, b) -> eval_pred matcher store n a && eval_pred matcher store n b
  | Or (a, b) -> eval_pred matcher store n a || eval_pred matcher store n b
  | Compare (op, cmp, lit) ->
      let operand_nodes = eval_steps matcher store [ n ] op.rel in
      List.exists (fun m -> matcher.matches store m cmp lit) operand_nodes
  | Contains (op, pattern) ->
      let operand_nodes = eval_steps matcher store [ n ] op.rel in
      List.exists (fun m -> matcher.contains_match store m pattern) operand_nodes

let doc_order store nodes =
  (* pairwise comparison for small sets; a single traversal otherwise *)
  if List.length nodes <= 512 then
    List.sort (Store.compare_order store) nodes
  else begin
    let wanted = Hashtbl.create (List.length nodes) in
    List.iter (fun n -> Hashtbl.replace wanted n ()) nodes;
    let out = ref [] in
    Store.iter_pre store (fun n ->
        if Hashtbl.mem wanted n then out := n :: !out);
    List.rev !out
  end

let eval store t =
  doc_order store (eval_steps naive_matcher store [ Store.document ] t)

(* Indexed evaluation: Compare predicates over (Str, Eq) are answered by
   the hash index; over (Num, any comparison) by the double B+tree.
   Membership sets replace per-node string-value computation and
   casting. *)
let indexed_matcher db counters =
  let store = Db.store db in
  let string_sets = Hashtbl.create 8 in
  let counted_nums = Hashtbl.create 8 in
  let string_set s =
    match Hashtbl.find_opt string_sets s with
    | Some set -> set
    | None ->
        counters := { !counters with used_string_index = !counters.used_string_index + 1 };
        let set = Hashtbl.create 64 in
        List.iter (fun n -> Hashtbl.replace set n ()) (Db.lookup_string db s);
        Hashtbl.add string_sets s set;
        set
  in
  let double_index =
    lazy
      (match Db.typed_index db "xs:double" with
      | Some ti -> ti
      | None -> invalid_arg "eval_indexed: no xs:double index")
  in
  let contains_sets = Hashtbl.create 4 in
  let contains_set pattern =
    match Hashtbl.find_opt contains_sets pattern with
    | Some set -> set
    | None ->
        let set = Hashtbl.create 64 in
        List.iter
          (fun n -> Hashtbl.replace set n ())
          (Db.lookup_contains db pattern);
        List.iter
          (fun n -> Hashtbl.replace set n ())
          (Db.lookup_element_contains db pattern);
        Hashtbl.add contains_sets pattern set;
        set
  in
  {
    matches =
      (fun _store n cmp lit ->
        match lit with
        | Str s when cmp = Eq -> Hashtbl.mem (string_set s) n
        | Str s -> naive_matcher.matches store n cmp (Str s)
        | Num v -> (
            (* the per-node typed value is already extracted: one O(1)
               probe replaces the naive string-value cast *)
            if not (Hashtbl.mem counted_nums (cmp, v)) then begin
              Hashtbl.replace counted_nums (cmp, v) ();
              counters :=
                { !counters with used_double_index = !counters.used_double_index + 1 }
            end;
            match Xvi_core.Typed_index.value_of (Lazy.force double_index) n with
            | Some v' -> cmp_holds cmp (Float.compare v' v)
            | None -> false));
    contains_match =
      (fun _store n pattern ->
        match Db.substring_index db with
        | None -> naive_matcher.contains_match store n pattern
        | Some _ -> Hashtbl.mem (contains_set pattern) n);
  }

(* --- ancestor-driven fast path ---

   For queries shaped like [//a/b//c[pred and ...]] — downward name/
   wildcard steps with predicates only on the last one, where at least
   one top-level conjunct is an indexable comparison — the evaluator can
   avoid touching the context steps entirely: it fetches the matching
   value nodes M from the index, walks {e up} from each member of M
   collecting ancestors that match the step chain, and verifies the
   remaining predicates only on those few candidates. This is how
   MonetDB/XQuery would consume the paper's indices: cost proportional
   to the number of value hits, not to the document. *)

(* Does [n]'s ancestor path match the (reversed) step chain? *)
let rec match_rev store n rev_steps =
  match rev_steps with
  | [] -> n = Store.document
  | step :: rest ->
      test_matches store n step.axis step.test
      && (match step.axis with
         | Child -> (
             match Store.parent store n with
             | Some p -> match_rev store p rest
             | None -> false)
         | Descendant ->
             let rec try_anc p =
               match_rev store p rest
               ||
               match Store.parent store p with
               | Some pp -> try_anc pp
               | None -> false
             in
             (match Store.parent store n with
             | Some p -> try_anc p
             | None -> false)
         | Attribute | Self -> false)

(* top-level conjuncts of a predicate list *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let indexable_compare db = function
  | Compare (_, Eq, Str _) -> true (* the string index is always built *)
  | Compare (_, (Eq | Lt | Le | Gt | Ge), Num _) ->
      Db.typed_index db "xs:double" <> None
  | Contains _ -> Db.substring_index db <> None
  | _ -> false

(* Eligibility: downward chain, name/wildcard tests, predicates only on
   the last step, whose conjunct list contains an indexable compare. *)
let fast_path_plan steps =
  let rec split acc = function
    | [] -> None
    | [ last ] -> Some (List.rev acc, last)
    | s :: rest ->
        if s.preds = [] then split (s :: acc) rest else None
  in
  match split [] steps with
  | None -> None
  | Some (prefix, last) ->
      let chain_ok s =
        (match s.axis with Child | Descendant -> true | _ -> false)
        && match s.test with Name _ | Wildcard -> true | _ -> false
      in
      if not (List.for_all chain_ok (prefix @ [ { last with preds = [] } ]))
      then None
      else begin
        let preds = List.concat_map conjuncts last.preds in
        Some (prefix @ [ last ], preds)
      end

(* Compile the indexable top-level conjuncts into predicate-IR terms,
   each labeled with its source text. Numeric comparisons over the same
   operand path merge into one bounded range ([x >= 100 and x < 120]
   becomes a single B+tree range). Each term over-approximates its
   conjunct — strictness ([<] vs [<=], [!=]) and the operand path are
   re-verified per candidate — which is sound for a generator: it may
   only widen the hit set, never lose an answer.

   Conjuncts must NOT be intersected with each other: different
   conjuncts of the same predicate may be satisfied by different operand
   nodes under the context node, so the node sets of two conjuncts need
   not overlap even when both hold. One conjunct drives; the rest are
   verified per candidate. *)
let pred_to_string p =
  let buf = Buffer.create 32 in
  pred_to_buf buf p;
  Buffer.contents buf

let candidate_irs db preds =
  let module Ir = Db.Ir in
  let strings =
    List.filter_map
      (function
        | Compare (_, Eq, Str s) as p -> Some (pred_to_string p, Ir.string_eq s)
        | _ -> None)
      preds
  in
  let contains_cands =
    if Db.substring_index db = None then []
    else
      List.filter_map
        (function
          | Contains (_, pattern) as p ->
              (* a hit may live in a text/attribute leaf or span element
                 boundaries: both faces of the index, unioned *)
              Some
                ( pred_to_string p,
                  Ir.disj [ Ir.contains pattern; Ir.element_contains pattern ] )
          | _ -> None)
        preds
  in
  let nums =
    if Db.typed_index db "xs:double" = None then []
    else begin
      (* group numeric bounds by operand path *)
      let groups : (operand * (float option * float option)) list ref = ref [] in
      List.iter
        (function
          | Compare (op, cmp, Num v) -> (
              let lo, hi =
                match cmp with
                | Eq -> (Some v, Some v)
                | Gt | Ge -> (Some v, None)
                | Lt | Le -> (None, Some v)
                | Neq -> (None, None)
              in
              let merge_lo a b =
                match (a, b) with
                | Some x, Some y -> Some (max x y)
                | x, None | None, x -> x
              in
              let merge_hi a b =
                match (a, b) with
                | Some x, Some y -> Some (min x y)
                | x, None | None, x -> x
              in
              match List.assoc_opt op !groups with
              | Some (glo, ghi) ->
                  groups :=
                    (op, (merge_lo glo lo, merge_hi ghi hi))
                    :: List.remove_assoc op !groups
              | None -> groups := (op, (lo, hi)) :: !groups)
          | _ -> ())
        preds;
      List.filter_map
        (fun (op, (lo, hi)) ->
          let range =
            match (lo, hi) with
            | Some lo, Some hi -> Some (Db.Range.between lo hi)
            | Some lo, None -> Some (Db.Range.at_least lo)
            | None, Some hi -> Some (Db.Range.at_most hi)
            | None, None -> None (* only != bounds: no usable range *)
          in
          Option.map
            (fun range ->
              let label =
                let b = Buffer.create 16 in
                rel_to_buf b op.rel;
                Printf.sprintf "fn:data(%s) in %s" (Buffer.contents b)
                  (Db.Range.to_string range)
              in
              (label, Ir.typed_range "xs:double" range))
            range)
        !groups
    end
  in
  strings @ contains_cands @ nums

let compile_candidates db t =
  match fast_path_plan t with
  | None -> []
  | Some (_, preds) -> candidate_irs db preds

(* The candidate generator: the cheapest compiled conjunct by planner
   estimate, executed to its value hits. Only the winner is
   materialized — the estimates come from index statistics (hash-bucket
   and B+tree range counts), not from running every candidate. *)
let generator_hits db preds =
  match candidate_irs db preds with
  | [] -> None
  | (_, ir0) :: rest ->
      let best, _ =
        List.fold_left
          (fun (bi, be) (_, ir) ->
            let e = Db.estimate db ir in
            if e < be then (ir, e) else (bi, be))
          (ir0, Db.estimate db ir0)
          rest
      in
      Some (Db.query_ids db best)

let eval_fast db matcher steps hits =
  let store = Db.store db in
  let rev_steps = List.rev steps in
  let last =
    match rev_steps with
    | s :: _ -> s
    | [] -> invalid_arg "Xpath.eval_fast: empty step list"
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun m ->
      (* candidates: ancestors-or-self of the hit that match the chain *)
      let rec up c =
        if
          (not (Hashtbl.mem seen c))
          && test_matches store c last.axis last.test
          && match_rev store c rev_steps
          && List.for_all (eval_pred matcher store c) last.preds
        then begin
          Hashtbl.replace seen c ();
          out := c :: !out
        end;
        match Store.parent store c with Some p -> up p | None -> ()
      in
      up m)
    hits;
  !out

let eval_indexed db t =
  let counters =
    ref { used_string_index = 0; used_double_index = 0; used_name_index = 0 }
  in
  let store = Db.store db in
  let matcher = indexed_matcher db counters in
  let doc_order_fast result =
    (* the Db caches a pre/size/level plane: O(1) rank comparisons *)
    Xvi_xml.Pre_plane.sort_doc_order (Db.plane db) result
  in
  let result =
    match fast_path_plan t with
    | Some (steps, preds) -> (
        (* Two possible seed sets: value-index hits (results are their
           ancestors-or-self, since every axis points downward) and the
           element-name extent of the last step. Pick the smaller — an
           unselective range can dwarf the name extent. *)
        let value_hits =
          if List.exists (fun p -> indexable_compare db p) preds then
            generator_hits db preds
          else None
        in
        let rev_steps = List.rev steps in
        let last =
          (* the fast-path planner only accepts non-empty chains *)
          match rev_steps with
          | s :: _ -> s
          | [] -> invalid_arg "Xpath.eval_indexed: empty step list"
        in
        let by_name () =
          match last.test with
          | Name nm ->
              counters :=
                { !counters with used_name_index = !counters.used_name_index + 1 };
              Some
                (List.filter
                   (fun c ->
                     match_rev store c rev_steps
                     && List.for_all (eval_pred matcher store c) last.preds)
                   (Db.elements_named db nm))
          | _ -> None
        in
        match value_hits with
        | Some hits -> (
            let name_count =
              match last.test with
              | Name nm -> Xvi_core.Name_index.count (Db.name_index db) store nm
              | _ -> max_int
            in
            if name_count < List.length hits then
              match by_name () with
              | Some r -> r
              | None -> eval_fast db matcher steps hits
            else eval_fast db matcher steps hits)
        | None -> (
            match by_name () with
            | Some r -> r
            | None -> eval_steps matcher store [ Store.document ] t))
    | None -> eval_steps matcher store [ Store.document ] t
  in
  current_plan := !counters;
  doc_order_fast result

module Prng = Xvi_util.Prng

type entry = { name : string; paper_mb : float; xml : string }

(* Small emitter DSL shared by the generators. *)
type ctx = { rng : Prng.t; tg : Text_gen.t; buf : Buffer.t }

let make_ctx seed =
  let rng = Prng.create seed in
  { rng; tg = Text_gen.create (Prng.split rng); buf = Buffer.create (1 lsl 20) }

let tag ctx name body =
  Buffer.add_char ctx.buf '<';
  Buffer.add_string ctx.buf name;
  Buffer.add_char ctx.buf '>';
  body ();
  Buffer.add_string ctx.buf "</";
  Buffer.add_string ctx.buf name;
  Buffer.add_char ctx.buf '>'

let text ctx name s =
  tag ctx name (fun () ->
      Buffer.add_string ctx.buf (Xvi_xml.Serializer.escape_text s))

let raw ctx s = Buffer.add_string ctx.buf s

(* Mixed-content prose: text runs interleaved with short inline
   elements. With [pieces] units the local text:element ratio tends to
   2:1, which is what pushes the generated documents toward the paper's
   56-66% text-node share. *)
let mixed_prose ?(numeric_pct = 0) ctx ~pieces ~inline =
  for i = 1 to pieces do
    if i > 1 then raw ctx " ";
    raw ctx (Xvi_xml.Serializer.escape_text
               (Text_gen.words ctx.tg (Prng.in_range ctx.rng 3 9)));
    raw ctx " ";
    (* a slice of the inline elements carry numeric measurements, which
       keeps each document's double-castable node density at its Table 1
       level *)
    if Prng.int ctx.rng 100 < numeric_pct then
      text ctx inline (Text_gen.int_string ctx.tg 1 99999)
    else text ctx inline (Text_gen.word ctx.tg)
  done;
  raw ctx " ";
  raw ctx (Xvi_xml.Serializer.escape_text
             (Text_gen.words ctx.tg (Prng.in_range ctx.rng 2 6)))

(* --- EPA geospatial --- *)

let epa_states =
  [| "AL"; "AK"; "AZ"; "CA"; "CO"; "FL"; "GA"; "NY"; "TX"; "WA" |]

let epageo ~seed ~factor () =
  let ctx = make_ctx seed in
  let n = max 2 (int_of_float (2420.0 *. factor)) in
  tag ctx "EnvirofactsGeospatial" (fun () ->
      for i = 0 to n - 1 do
        tag ctx "GeospatialRecord" (fun () ->
            text ctx "RegistryId" (Printf.sprintf "REG-110-%09d" i);
            text ctx "FacilityName"
              (String.uppercase_ascii (Text_gen.words ctx.tg 3));
            tag ctx "LocationAddress" (fun () ->
                text ctx "LocationAddressText"
                  (Text_gen.int_string ctx.tg 1 9999 ^ " "
                  ^ String.uppercase_ascii (Text_gen.word ctx.tg)
                  ^ " RD");
                text ctx "LocationCityName"
                  (String.uppercase_ascii (Text_gen.word ctx.tg));
                text ctx "LocationStateCode" (Prng.choose ctx.rng epa_states);
                text ctx "LocationZipCode"
                  (Text_gen.int_string ctx.tg 10000 99999 ^ "-"
                  ^ Text_gen.int_string ctx.tg 1000 9999));
            tag ctx "GeospatialData" (fun () ->
                text ctx "LatitudeMeasure"
                  (Printf.sprintf "%d.%06d" (Prng.in_range ctx.rng 24 49)
                     (Prng.int ctx.rng 1000000));
                text ctx "LongitudeMeasure"
                  (Printf.sprintf "-%d.%06d" (Prng.in_range ctx.rng 66 125)
                     (Prng.int ctx.rng 1000000));
                (if Prng.int ctx.rng 3 = 0 then
                   text ctx "AccuracyValueMeasure" (Text_gen.int_string ctx.tg 1 300));
                text ctx "HorizontalCollectionMethod"
                  "ADDRESS MATCHING-HOUSE NUMBER";
                text ctx "HorizontalReferenceDatum" "NORTH AMERICAN DATUM 1983";
                text ctx "SourceMapScale"
                  ("1:" ^ Text_gen.int_string ctx.tg 10000 100000));
            tag ctx "ProgramInformation" (fun () ->
                text ctx "ProgramSystemAcronym"
                  (Prng.choose ctx.rng [| "RCRAINFO"; "AIRS/AFS"; "PCS"; "TRIS" |]);
                text ctx "ProgramSystemId" (Printf.sprintf "%s%08d"
                  (Prng.choose ctx.rng epa_states) (Prng.int ctx.rng 100000000));
                text ctx "SupplementalLocation"
                  (String.uppercase_ascii (Text_gen.words ctx.tg (Prng.in_range ctx.rng 2 6))));
            tag ctx "CollectionNotes" (fun () ->
                mixed_prose ~numeric_pct:27 ctx ~pieces:(Prng.in_range ctx.rng 10 18) ~inline:"code"))
      done);
  Buffer.contents ctx.buf

(* --- DBLP --- *)

let journals =
  [|
    "VLDB J."; "SIGMOD Record"; "TODS"; "Inf. Syst."; "IEEE Data Eng. Bull.";
    "CACM"; "TKDE"; "Acta Inf.";
  |]

let dblp ~seed ~factor () =
  let ctx = make_ctx seed in
  let n = max 2 (int_of_float (23300.0 *. factor)) in
  (* Counter for mixed-content numeric volumes — the paper's Table 1
     finds 21 such "non-leaf" doubles in all of DBLP. *)
  let mixed_budget = ref (max 1 (int_of_float (21.0 *. factor))) in
  tag ctx "dblp" (fun () ->
      for i = 0 to n - 1 do
        let kind = if Prng.int ctx.rng 3 = 0 then "inproceedings" else "article" in
        raw ctx
          (Printf.sprintf "<%s key=\"%s/%s/%s%d\" mdate=\"%s\">" kind
             (if kind = "article" then "journals" else "conf")
             (String.lowercase_ascii (Text_gen.word ctx.tg))
             (Text_gen.last_name ctx.tg) i
             (Printf.sprintf "%04d-%02d-%02d" (Prng.in_range ctx.rng 2002 2008)
                (Prng.in_range ctx.rng 1 12) (Prng.in_range ctx.rng 1 28)));
        for _ = 1 to Prng.in_range ctx.rng 1 4 do
          text ctx "author" (Text_gen.full_name ctx.tg)
        done;
        tag ctx "title" (fun () ->
            mixed_prose ~numeric_pct:45 ctx ~pieces:(Prng.in_range ctx.rng 2 5) ~inline:"i";
            raw ctx ".");
        let lo = Prng.in_range ctx.rng 1 800 in
        text ctx "pages" (Printf.sprintf "%d-%d" lo (lo + Prng.in_range ctx.rng 5 30));
        text ctx "year" (Text_gen.int_string ctx.tg 1970 2008);
        if !mixed_budget > 0 && Prng.int ctx.rng (max 1 (n / 21)) = 0 then begin
          (* volume with markup: <volume>1<sub>2</sub></volume> — string
             value "12", a complete double on a non-leaf node *)
          decr mixed_budget;
          tag ctx "volume" (fun () ->
              raw ctx (Text_gen.int_string ctx.tg 1 9);
              text ctx "sub" (Text_gen.int_string ctx.tg 0 9))
        end
        else if kind = "article" then
          text ctx "volume" (Text_gen.int_string ctx.tg 1 60);
        if kind = "article" then text ctx "journal" (Prng.choose ctx.rng journals)
        else text ctx "booktitle" ("Proc. " ^ String.uppercase_ascii (Text_gen.word ctx.tg));
        if Prng.int ctx.rng 2 = 0 then
          text ctx "ee" ("http://dx.doi.org/10.1000/" ^ Text_gen.int_string ctx.tg 1000 99999);
        text ctx "url" ("db/" ^ Text_gen.word ctx.tg ^ "/" ^ Text_gen.word ctx.tg ^ ".html");
        raw ctx (Printf.sprintf "</%s>" kind)
      done);
  Buffer.contents ctx.buf

(* --- PSD (protein sequence database) --- *)

let psd ~seed ~factor () =
  let ctx = make_ctx seed in
  let n = max 2 (int_of_float (8950.0 *. factor)) in
  let mixed_budget = ref (max 1 (int_of_float (902.0 *. factor))) in
  tag ctx "ProteinDatabase" (fun () ->
      for i = 0 to n - 1 do
        tag ctx "ProteinEntry" (fun () ->
            tag ctx "header" (fun () ->
                text ctx "uid" (Printf.sprintf "PIR%07d" i);
                text ctx "accession" (Printf.sprintf "A%05d" (Prng.int ctx.rng 100000)));
            text ctx "protein"
              (String.capitalize_ascii (Text_gen.words ctx.tg 3));
            tag ctx "organism" (fun () ->
                text ctx "source" (Text_gen.word ctx.tg ^ " " ^ Text_gen.word ctx.tg);
                text ctx "common" (Text_gen.word ctx.tg));
            for _ = 1 to Prng.in_range ctx.rng 1 3 do
              tag ctx "reference" (fun () ->
                  tag ctx "refinfo" (fun () ->
                      for _ = 1 to Prng.in_range ctx.rng 1 5 do
                        text ctx "author" (Text_gen.full_name ctx.tg)
                      done;
                      text ctx "year" (Text_gen.int_string ctx.tg 1975 2005);
                      text ctx "citation"
                        (Text_gen.words ctx.tg 4 ^ " "
                        ^ Text_gen.int_string ctx.tg 1 300 ^ ":"
                        ^ Text_gen.int_string ctx.tg 1 2000)))
            done;
            if !mixed_budget > 0 && Prng.int ctx.rng (max 1 (n / 902)) = 0 then begin
              (* residue count split over markup: string value is a
                 complete double on a non-leaf node *)
              decr mixed_budget;
              tag ctx "length" (fun () ->
                  raw ctx (Text_gen.int_string ctx.tg 1 9);
                  text ctx "exp" (Text_gen.int_string ctx.tg 10 99))
            end
            else text ctx "length" (Text_gen.int_string ctx.tg 50 2000);
            tag ctx "summary" (fun () ->
                mixed_prose ~numeric_pct:6 ctx ~pieces:(Prng.in_range ctx.rng 9 16) ~inline:"gene");
            tag ctx "feature" (fun () ->
                text ctx "feature-type" "domain";
                text ctx "description" (Text_gen.words ctx.tg 3);
                text ctx "seq-spec" (Printf.sprintf "%d-%d"
                  (Prng.in_range ctx.rng 1 100) (Prng.in_range ctx.rng 101 500)));
            text ctx "sequence"
              (Text_gen.amino_sequence ctx.tg (Prng.in_range ctx.rng 120 600)))
      done);
  Buffer.contents ctx.buf

(* --- Wiki abstracts --- *)

let wiki ~seed ~factor () =
  let ctx = make_ctx seed in
  let n = max 2 (int_of_float (39250.0 *. factor)) in
  (* Pre-draw colliding URL clusters (2–9 distinct strings per hash). *)
  tag ctx "mediawiki" (fun () ->
      for _i = 0 to n - 1 do
        tag ctx "doc" (fun () ->
            text ctx "title"
              (String.capitalize_ascii (Text_gen.words ctx.tg (Prng.in_range ctx.rng 1 4)));
            text ctx "url" (Text_gen.url ctx.tg);
            text ctx "timestamp" (Text_gen.datetime_iso ctx.tg);
            tag ctx "contributor" (fun () ->
                text ctx "username" (Text_gen.first_name ctx.tg));
            text ctx "comment" (Text_gen.words ctx.tg (Prng.in_range ctx.rng 2 8));
            tag ctx "abstract" (fun () ->
                let sentences = Prng.in_range ctx.rng 4 14 in
                for j = 1 to sentences do
                  if j > 1 then raw ctx " ";
                  raw ctx
                    (Xvi_xml.Serializer.escape_text
                       (Text_gen.paragraph ctx.tg 1));
                  if Prng.int ctx.rng 4 <> 0 then begin
                    raw ctx " ";
                    text ctx "a"
                      (String.capitalize_ascii (Text_gen.words ctx.tg
                         (Prng.in_range ctx.rng 1 2)))
                  end
                done);
            (* occasional numeric leaf keeps the double density at the
               paper's ~0.1% *)
            if Prng.int ctx.rng 20 = 0 then
              text ctx "population" (Text_gen.int_string ctx.tg 100 5000000);
            tag ctx "links" (fun () ->
                let urls =
                  if Prng.int ctx.rng 8 = 0 then
                    Text_gen.colliding_urls ctx.tg (Prng.in_range ctx.rng 2 9)
                  else
                    List.init (Prng.in_range ctx.rng 1 4) (fun _ -> Text_gen.url ctx.tg)
                in
                List.iter
                  (fun u ->
                    tag ctx "sublink" (fun () ->
                        text ctx "anchor"
                          (String.capitalize_ascii (Text_gen.words ctx.tg 2));
                        text ctx "link" u))
                  urls))
      done);
  Buffer.contents ctx.buf

(* --- The eight-entry suite --- *)

let suite ?(seed = 42) ~scale () =
  (* Per-generator size calibration: [factor = 1.0] targets 1/40 of the
     paper's size, so a generator's factor is (paper_mb/40th) scaled. *)
  let xmark n paper_mb =
    {
      name = Printf.sprintf "XMark%d" n;
      paper_mb;
      xml = Xmark.generate ~seed:(seed + n) ~factor:(float_of_int n *. scale *. 40.0) ();
    }
  in
  [
    xmark 1 112.0;
    xmark 2 224.0;
    xmark 4 448.0;
    xmark 8 896.0;
    {
      name = "EPAGeo";
      paper_mb = 170.0;
      xml = epageo ~seed:(seed + 100) ~factor:(scale *. 40.0) ();
    };
    {
      name = "DBLP";
      paper_mb = 474.0;
      xml = dblp ~seed:(seed + 200) ~factor:(scale *. 40.0) ();
    };
    {
      name = "PSD";
      paper_mb = 685.0;
      xml = psd ~seed:(seed + 300) ~factor:(scale *. 40.0) ();
    };
    {
      name = "Wiki";
      paper_mb = 2024.0;
      xml = wiki ~seed:(seed + 400) ~factor:(scale *. 40.0) ();
    };
  ]

(** A database directory that survives crashes.

    Layout: [dir/snapshot.xvi] (a {!Xvi_core.Snapshot} stamped with the
    LSN it covers) plus [dir/wal.log] (a {!Wal} of everything committed
    since). The protocol:

    - {b commit}: the write set is appended to the log — and, depending
      on the {!Wal.sync_mode}, fsynced — {e before} the store or any
      index changes, via the {!Xvi_txn.Txn.durability} hook;
    - {b open}: load the snapshot, scan the log, truncate its torn or
      uncommitted tail at the last valid commit boundary, replay every
      committed transaction above the snapshot's LSN, and continue
      appending. Replay is idempotent — opening twice yields
      bit-identical databases — because the snapshot's LSN watermark
      filters already-covered commits;
    - {b checkpoint}: write a fresh snapshot stamped with the current
      LSN (atomic rename, file and directory fsynced), then truncate
      the log down to a single [Checkpoint] record. A crash between the
      two steps is safe in either order of observation: the new
      snapshot simply finds every surviving log record at or below its
      watermark. Checkpoints run on demand ({!checkpoint}, the CLI) or
      automatically once the log outgrows [auto_checkpoint_bytes]. *)

type t

val create :
  ?sync_mode:Wal.sync_mode -> ?auto_checkpoint_bytes:int -> ?force:bool ->
  dir:string -> Xvi_core.Db.t -> t
(** Initialise [dir] (created if missing) with a snapshot of [db] at
    LSN 0 and an empty log. [sync_mode] defaults to {!Wal.Always};
    [auto_checkpoint_bytes] defaults to never checkpointing
    automatically. When [dir] already holds a durable store
    ({!is_durable_dir}), raises [Invalid_argument] rather than silently
    destroying its committed data — pass [~force:true] to overwrite
    deliberately (the CLI maps [--force] onto this). *)

val open_ :
  ?config:Xvi_core.Db.Config.t ->
  ?sync_mode:Wal.sync_mode ->
  ?auto_checkpoint_bytes:int ->
  string ->
  (t, string) result
(** Recover: load, scan, truncate, replay (see above). [Error] when the
    snapshot is unreadable, the log's header is damaged, or replay
    contradicts the database. A missing log file (e.g. after copying
    only the snapshot) is tolerated — there is nothing to replay. *)

val open_exn :
  ?config:Xvi_core.Db.Config.t ->
  ?sync_mode:Wal.sync_mode ->
  ?auto_checkpoint_bytes:int ->
  string ->
  t
  [@@deprecated
    "raises through the public boundary; use Durable.open_ (or \
     Xvi_serve.Engine.open_) and handle the Error case"]

val is_durable_dir : string -> bool
(** A directory containing a snapshot — how the CLI tells a durable
    directory from a bare snapshot file. *)

val snapshot_path : string -> string
(** [dir/snapshot.xvi] — exposed for the replication layer, which reads
    and writes a follower directory's files itself. *)

val wal_path : string -> string
(** [dir/wal.log]. *)

val db : t -> Xvi_core.Db.t
val dir : t -> string

val last_replay : t -> Wal.replay_report option
(** What recovery did when this handle was opened with {!open_};
    [None] for {!create} or when there was no log to replay. *)

val last_lsn : t -> Wal.lsn
(** LSN of the most recently appended record — what a commit that just
    returned was assigned. Read this under the same serialisation that
    ordered the commit (the serve engine's writer lock): the writer is
    not thread-safe. *)

val sync_mode : t -> Wal.sync_mode

val manager : t -> Xvi_txn.Txn.manager
(** The transaction manager wired to the log: commits through it are
    write-ahead logged. One manager per handle (created lazily). *)

val update_texts :
  t -> (Xvi_xml.Store.node * string) list -> (unit, Xvi_txn.Txn.conflict) result
(** One durable transaction over the write set. The [Error] carries a
    serialisation conflict; callers must surface it. *)

val update_text :
  t -> Xvi_xml.Store.node -> string -> (unit, Xvi_txn.Txn.conflict) result

val insert_xml :
  t ->
  parent:Xvi_xml.Store.node ->
  string ->
  (Xvi_xml.Store.node list, Xvi_xml.Parser.error) result
(** Durably logged subtree insertion. Validated {e before} logging, so
    a record in the log is always applicable — at commit time and on
    every future replay: the fragment's syntax on a scratch store
    ([Error] on failure), and the target on the live store — raises
    [Invalid_argument] when [parent] is out of range, deleted, or not a
    node that can take children (element or document). *)

val delete_subtree : t -> Xvi_xml.Store.node -> unit
(** Durably logged subtree deletion. Raises [Invalid_argument] — before
    anything reaches the log — on the document root (like
    {!Xvi_core.Db.delete_subtree}), on an out-of-range node, and on an
    already-deleted node. *)

(** {1 Streaming bulk ingest}

    [bulk_ingest] shreds and indexes a document from a {!Xvi_xml.Sax}
    byte source in bounded memory ({!Xvi_ingest.Ingest}), committing
    every builder batch through the log as one
    [Begin]/[Ingest_chunk]/[Commit] transaction {e after} the event
    reader accepted its bytes. The directory holds a snapshot of the
    empty database at LSN 0 throughout; when the stream ends, the
    finished database is checkpointed and the chunk records truncated
    away.

    A crash mid-ingest therefore loses at most the open batch: {!open_}
    finds the pre-ingest snapshot plus the committed chunks — exactly
    the durable document prefix — reports them via {!pending_ingest},
    and {!resume_ingest} continues from there. Because the logged
    chunks replay byte-identically through a fresh builder, the final
    database is marshal-bit-identical to an uninterrupted ingest (and
    to the whole-document build) no matter where the crash cut. *)

val bulk_ingest :
  ?sync_mode:Wal.sync_mode ->
  ?auto_checkpoint_bytes:int ->
  ?force:bool ->
  ?config:Xvi_core.Db.Config.t ->
  ?batch_rows:int ->
  ?pool:Xvi_util.Pool.t ->
  ?progress:(Xvi_ingest.Ingest.progress -> unit) ->
  dir:string ->
  Xvi_xml.Sax.source ->
  (t, string) result
(** Initialise [dir] (like {!create}, including the [~force] guard
    against overwriting an existing durable store) and ingest [source]
    into it. [progress] fires at every committed batch edge. On a parse
    error the handle is closed and [Error] returned; the directory
    then reopens with the durable prefix pending (see above). *)

type pending_ingest = { chunks : int; chunk_bytes : int }

val pending_ingest : t -> pending_ingest option
(** Evidence of an interrupted bulk ingest found by {!open_}: how many
    committed chunks the log holds and their total byte count. While
    pending, {!db} is the pre-ingest (empty) database and every update
    entry point raises [Invalid_argument] — {!resume_ingest} or
    recreate the directory first. *)

val resume_ingest :
  ?batch_rows:int ->
  ?pool:Xvi_util.Pool.t ->
  ?progress:(Xvi_ingest.Ingest.progress -> unit) ->
  t ->
  Xvi_xml.Sax.source ->
  (t, string) result
(** Finish an interrupted ingest. [source] must yield the {e same
    document} the original ingest was fed: the logged chunks are
    replayed through a fresh builder, the first [chunk_bytes] bytes of
    [source] are skipped, and ingest continues (a shorter or divergent
    source surfaces as a parse error). Raises [Invalid_argument] when
    nothing is pending. On success the returned handle (the same [t])
    holds the finished, checkpointed database. *)

val checkpoint : t -> unit
(** Snapshot now, then truncate the log (see the protocol above).
    Raises [Invalid_argument] while an ingest is pending — it would
    discard the durable chunks. *)

val sync : t -> unit
(** Flush any group-commit window or [Never]-mode backlog to stable
    storage. Under [Group] an aged-out window is otherwise flushed by
    the next operation's first log record (or by {!close}); a store
    that goes quiescent right after a [`Deferred] commit keeps that
    window open until one of those happens, so latency-sensitive
    callers should [sync] before going idle. *)

type stats = {
  wal_bytes : int;  (** current log size, header included *)
  next_lsn : Wal.lsn;
  last_checkpoint_lsn : Wal.lsn;
  writer : Wal.Writer.stats;
}

val stats : t -> stats

val close : t -> unit
(** Final sync (unless [sync_mode = Never]) and release. Idempotent;
    any later operation raises [Invalid_argument]. *)

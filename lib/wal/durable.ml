module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Db = Xvi_core.Db
module Snapshot = Xvi_core.Snapshot
module Txn = Xvi_txn.Txn
module Ingest = Xvi_ingest.Ingest

let snapshot_path dir = Filename.concat dir "snapshot.xvi"
let wal_path dir = Filename.concat dir "wal.log"

let is_durable_dir dir =
  Sys.file_exists dir
  && Sys.is_directory dir
  && Sys.file_exists (snapshot_path dir)

type t = {
  dir : string;
  mutable db : Db.t;
      (** replaced exactly once, when a resumed bulk ingest finishes *)
  writer : Wal.Writer.t;
  auto_checkpoint : int option;
  mutable mgr : Txn.manager option;
  mutable next_txn : int;
  mutable last_checkpoint_lsn : Wal.lsn;
  mutable last_replay : Wal.replay_report option;
  mutable pending : (string list * int) option;
      (** committed ingest chunks (in log order, total bytes) awaiting
          {!resume_ingest}; [db] is the pre-ingest state while set *)
  mutable closed : bool;
}

let db t = t.db
let dir t = t.dir
let last_replay t = t.last_replay
let last_lsn t = Wal.Writer.last_lsn t.writer
let sync_mode t = Wal.Writer.sync_mode t.writer

let check_open t op =
  if t.closed then
    invalid_arg (Printf.sprintf "Durable.%s: store is closed" op)

let check_no_pending t op =
  match t.pending with
  | None -> ()
  | Some _ ->
      invalid_arg
        (Printf.sprintf
           "Durable.%s: a bulk ingest is pending recovery; resume_ingest it \
            (or recreate the directory) first"
           op)

let fresh_txn t =
  t.next_txn <- t.next_txn + 1;
  t.next_txn

(* --- checkpointing --- *)

let checkpoint t =
  check_open t "checkpoint";
  (* checkpointing a pending-ingest directory would snapshot the
     pre-ingest database at an LSN covering the chunk records — i.e.
     silently discard the ingested prefix *)
  check_no_pending t "checkpoint";
  let base = Wal.Writer.last_lsn t.writer in
  (* snapshot first — made durable by Snapshot.save's own fsync+rename
     protocol — then drop the log it supersedes. A crash between the two
     leaves a snapshot at LSN [base] plus a log of records <= base,
     which replay filters out: both orders of the crash are safe, only
     this order also keeps the log from lying about uncommitted data. *)
  Snapshot.save ~lsn:base t.db (snapshot_path t.dir);
  Wal.Writer.truncate_to_checkpoint t.writer ~base;
  t.last_checkpoint_lsn <- base

let maybe_auto_checkpoint t =
  match t.auto_checkpoint with
  | Some threshold when Wal.Writer.size t.writer > threshold -> checkpoint t
  | _ -> ()

(* --- the durability hook wiring --- *)

let log_update_batch t writes =
  check_open t "commit";
  let txn = fresh_txn t in
  ignore (Wal.Writer.append t.writer (Wal.Begin { txn }) : Wal.lsn);
  List.iter
    (fun (node, value) ->
      ignore
        (Wal.Writer.append t.writer (Wal.Update_text { txn; node; value })
          : Wal.lsn))
    writes;
  snd (Wal.Writer.log_commit t.writer ~txn)

let make_manager t =
  Txn.manager
    ~durability:
      {
        Txn.log_commit = (fun writes -> log_update_batch t writes);
        committed = (fun () -> maybe_auto_checkpoint t);
      }
    t.db

let manager t =
  check_no_pending t "manager";
  match t.mgr with
  | Some mgr -> mgr
  | None ->
      let mgr = make_manager t in
      t.mgr <- Some mgr;
      mgr

(* Separate committed bulk-ingest transactions (Begin, Ingest_chunk*,
   Commit) from the regular update stream. Ingest chunks replay through
   a fresh event stream, not through [Wal.apply], so [open_] must route
   them before replaying anything. A transaction mixing chunk records
   with update records contradicts the only writer that emits chunks
   and is reported as corruption; stray records without a Begin are
   forwarded so [Wal.apply] produces its usual diagnostics. *)
let split_ingest frames =
  let buf : (int, string list * Wal.framed list * bool) Hashtbl.t =
    Hashtbl.create 8
  in
  let chunks = ref [] (* reverse log order *) in
  let others = ref [] (* reverse log order *) in
  let error = ref None in
  let forward fr = others := fr :: !others in
  List.iter
    (fun fr ->
      if Option.is_none !error then
        match fr.Wal.record with
        | Wal.Begin { txn } -> Hashtbl.replace buf txn ([], [ fr ], false)
        | Wal.Ingest_chunk { txn; bytes } -> (
            match Hashtbl.find_opt buf txn with
            | Some (cs, frs, other) ->
                Hashtbl.replace buf txn (bytes :: cs, fr :: frs, other)
            | None -> forward fr)
        | Wal.Update_text { txn; _ }
        | Wal.Insert { txn; _ }
        | Wal.Delete { txn; _ } -> (
            match Hashtbl.find_opt buf txn with
            | Some (cs, frs, _) -> Hashtbl.replace buf txn (cs, fr :: frs, true)
            | None -> forward fr)
        | Wal.Commit { txn } | Wal.Abort { txn } -> (
            match Hashtbl.find_opt buf txn with
            | None -> forward fr
            | Some (cs, frs, other) -> (
                Hashtbl.remove buf txn;
                let committed =
                  match fr.Wal.record with Wal.Commit _ -> true | _ -> false
                in
                match cs with
                | [] -> List.iter forward (List.rev (fr :: frs))
                | _ :: _ ->
                    if other then
                      error :=
                        Some
                          (Printf.sprintf
                             "transaction %d mixes ingest chunks with update \
                              records"
                             txn)
                    else if committed then
                      (* [cs] is newest-first; prepending keeps the
                         global accumulator in reverse log order *)
                      chunks := cs @ !chunks))
        | Wal.Checkpoint _ -> forward fr)
    frames;
  match !error with
  | Some m -> Error m
  | None -> Ok (List.rev !chunks, List.rev !others)

(* --- opening --- *)

let make ?auto_checkpoint_bytes ~dir ~db ~writer ~last_checkpoint_lsn
    ~last_replay () =
  {
    dir;
    db;
    writer;
    auto_checkpoint = auto_checkpoint_bytes;
    mgr = None;
    next_txn = 0;
    last_checkpoint_lsn;
    last_replay;
    pending = None;
    closed = false;
  }

let create ?(sync_mode = Wal.Always) ?auto_checkpoint_bytes ?(force = false)
    ~dir db =
  (match Sys.is_directory dir with
  | true -> ()
  | false -> invalid_arg (Printf.sprintf "Durable.create: %s is a file" dir)
  | exception Sys_error _ -> Unix.mkdir dir 0o755);
  if (not force) && is_durable_dir dir then
    invalid_arg
      (Printf.sprintf
         "Durable.create: %s already holds a durable store (snapshot + WAL); \
          pass ~force:true to overwrite it"
         dir);
  Snapshot.save ~lsn:0 db (snapshot_path dir);
  let writer = Wal.Writer.create ~sync_mode (wal_path dir) in
  make ?auto_checkpoint_bytes ~dir ~db ~writer ~last_checkpoint_lsn:0
    ~last_replay:None ()

let open_ ?config ?(sync_mode = Wal.Always) ?auto_checkpoint_bytes dir =
  match Snapshot.load_with_lsn ?config (snapshot_path dir) with
  | Error e ->
      Error
        (Printf.sprintf "%s: %s" (snapshot_path dir)
           (Snapshot.error_to_string e))
  | Ok (db, snap_lsn) -> (
      let wpath = wal_path dir in
      if not (Sys.file_exists wpath) then begin
        (* a snapshot without its log: nothing to replay; start a fresh
           one, but keep LSNs monotonic across the gap *)
        let writer = Wal.Writer.create ~sync_mode wpath in
        Wal.Writer.close writer;
        let writer =
          Wal.Writer.attach ~sync_mode
            ~size:(String.length Wal.magic)
            ~next_lsn:(snap_lsn + 1) wpath
        in
        Ok
          (make ?auto_checkpoint_bytes ~dir ~db ~writer
             ~last_checkpoint_lsn:snap_lsn ~last_replay:None ())
      end
      else
        match Wal.scan_file wpath with
        | Error m -> Error (Printf.sprintf "%s: %s" wpath m)
        | Ok scan -> (
            match split_ingest scan.Wal.frames with
            | Error m -> Error (Printf.sprintf "%s: %s" wpath m)
            | Ok (chunks, update_frames) -> (
                let attach_writer () =
                  (* drop the dead tail before appending anything new;
                     Writer.attach below fsyncs the file, making the
                     shrunken length durable before any fresh frame can
                     land where stale bytes used to be *)
                  if scan.Wal.committed_end < scan.Wal.file_size then
                    Unix.truncate wpath scan.Wal.committed_end;
                  Wal.Writer.attach ~sync_mode ~size:scan.Wal.committed_end
                    ~next_lsn:(max (scan.Wal.last_lsn + 1) (snap_lsn + 1))
                    wpath
                in
                match (chunks, update_frames) with
                | _ :: _, _ :: _ ->
                    (* a bulk ingest writes into a directory it
                       initialised; its log never also carries update
                       transactions *)
                    Error
                      (Printf.sprintf
                         "%s: log mixes ingest chunks with committed updates"
                         wpath)
                | _ :: _, [] ->
                    (* crash mid-ingest: the snapshot is the pre-ingest
                       (empty) database, the chunks are the durable
                       document prefix; hold them for resume_ingest *)
                    let chunk_bytes =
                      List.fold_left
                        (fun acc c -> acc + String.length c)
                        0 chunks
                    in
                    let writer = attach_writer () in
                    let t =
                      make ?auto_checkpoint_bytes ~dir ~db ~writer
                        ~last_checkpoint_lsn:snap_lsn ~last_replay:None ()
                    in
                    t.pending <- Some (chunks, chunk_bytes);
                    Ok t
                | [], _ -> (
                    match Wal.apply ~from_lsn:snap_lsn db update_frames with
                    | Error m -> Error (Printf.sprintf "%s: replay: %s" wpath m)
                    | Ok stats ->
                        let report =
                          {
                            Wal.stats;
                            first_lsn =
                              (match scan.Wal.frames with
                              | [] -> 0
                              | fr :: _ -> fr.Wal.lsn);
                            last_lsn = scan.Wal.last_lsn;
                            truncated_bytes =
                              scan.Wal.file_size - scan.Wal.committed_end;
                            dropped_records = scan.Wal.dropped_records;
                            damage = scan.Wal.damage;
                          }
                        in
                        let last_checkpoint_lsn =
                          List.fold_left
                            (fun acc fr ->
                              match fr.Wal.record with
                              | Wal.Checkpoint { base } -> max acc base
                              | _ -> acc)
                            snap_lsn scan.Wal.frames
                        in
                        let writer = attach_writer () in
                        Ok
                          (make ?auto_checkpoint_bytes ~dir ~db ~writer
                             ~last_checkpoint_lsn ~last_replay:(Some report) ())
                    ))))

let open_exn ?config ?sync_mode ?auto_checkpoint_bytes dir =
  match open_ ?config ?sync_mode ?auto_checkpoint_bytes dir with
  | Ok t -> t
  | Error m -> failwith ("Durable.open_: " ^ m)

(* --- durable update operations --- *)

let update_texts t writes =
  check_open t "update_texts";
  let tx = Txn.begin_ (manager t) in
  List.iter
    (fun (n, v) ->
      match Txn.update_text tx n v with
      | Ok () -> ()
      | Error `Not_text ->
          Txn.abort tx;
          invalid_arg
            (Printf.sprintf "Durable.update_texts: node %d is not a text node"
               n)
      | Error `Finished -> assert false)
    writes;
  Txn.commit tx

let update_text t n v = update_texts t [ (n, v) ]

(* Structural operations are logged as single-op transactions. Both the
   fragment (syntax, on a scratch store) and the target node (range,
   liveness, kind, on the live store) are validated first: once the
   record is in the log, applying it must not fail — neither now nor on
   replay. A record that fails to apply after its Commit was fsynced
   would make every future [open_] of the directory return [Error]. *)
let insert_xml t ~parent fragment =
  check_open t "insert_xml";
  check_no_pending t "insert_xml";
  let store = Db.store t.db in
  if parent < 0 || parent >= Store.node_range store then
    invalid_arg
      (Printf.sprintf "Durable.insert_xml: parent %d out of range" parent);
  (match Store.kind store parent with
  | Store.Document | Store.Element -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Durable.insert_xml: parent %d cannot take children (not a live \
            element or the document)"
           parent));
  match Parser.parse_fragment (Store.create ()) ~parent:Store.document fragment with
  | Error _ as e -> e
  | Ok _ -> (
      let txn = fresh_txn t in
      ignore (Wal.Writer.append t.writer (Wal.Begin { txn }) : Wal.lsn);
      ignore
        (Wal.Writer.append t.writer (Wal.Insert { txn; parent; fragment })
          : Wal.lsn);
      ignore
        (Wal.Writer.log_commit t.writer ~txn
          : Wal.lsn * [ `Synced | `Deferred ]);
      match Db.insert_xml t.db ~parent fragment with
      | Ok roots ->
          maybe_auto_checkpoint t;
          Ok roots
      | Error e ->
          (* unreachable after validation; if it ever happens the log
             and the database disagree and limping on would persist the
             disagreement *)
          failwith
            ("Durable.insert_xml: validated fragment rejected on apply: "
            ^ Parser.error_to_string e))

let delete_subtree t node =
  check_open t "delete_subtree";
  check_no_pending t "delete_subtree";
  let store = Db.store t.db in
  if node < 0 || node >= Store.node_range store then
    invalid_arg
      (Printf.sprintf "Durable.delete_subtree: node %d out of range" node);
  if not (Store.is_live store node) then
    invalid_arg
      (Printf.sprintf "Durable.delete_subtree: node %d is already deleted" node);
  (match Store.parent store node with
  | Some _ -> ()
  | None -> invalid_arg "Durable.delete_subtree: node has no parent");
  let txn = fresh_txn t in
  ignore (Wal.Writer.append t.writer (Wal.Begin { txn }) : Wal.lsn);
  ignore (Wal.Writer.append t.writer (Wal.Delete { txn; node }) : Wal.lsn);
  ignore
    (Wal.Writer.log_commit t.writer ~txn : Wal.lsn * [ `Synced | `Deferred ]);
  Db.delete_subtree t.db node;
  maybe_auto_checkpoint t

let sync t =
  check_open t "sync";
  Wal.Writer.sync t.writer

(* --- streaming bulk ingest ---

   Protocol: the directory starts as a snapshot of the empty database
   at LSN 0 plus a fresh log. Every batch the builder cuts, the raw
   source bytes tokenized since the previous cut are committed as one
   Begin / Ingest_chunk / Commit transaction — logged only after the
   event reader accepted them, so a chunk in the log is always
   replayable. When the stream ends, the finished database is
   checkpointed (snapshot + log truncation), leaving an ordinary
   durable directory.

   A crash at any point therefore recovers to a consistent state: the
   pre-ingest snapshot plus the committed chunks, i.e. exactly the
   document prefix whose batches were durable. [open_] surfaces that as
   {!pending_ingest}; {!resume_ingest} refeeds the logged chunks
   through a fresh builder (byte-identical to the original stream, so
   the final database is bit-identical no matter where the crash cut),
   skips that prefix of the caller's source, and continues. *)

type pending_ingest = { chunks : int; chunk_bytes : int }

let pending_ingest t =
  match t.pending with
  | None -> None
  | Some (cs, chunk_bytes) ->
      Some { chunks = List.length cs; chunk_bytes }

let log_chunk t bytes =
  let txn = fresh_txn t in
  ignore (Wal.Writer.append t.writer (Wal.Begin { txn }) : Wal.lsn);
  ignore
    (Wal.Writer.append t.writer (Wal.Ingest_chunk { txn; bytes }) : Wal.lsn);
  ignore
    (Wal.Writer.log_commit t.writer ~txn : Wal.lsn * [ `Synced | `Deferred ])

(* Drive [source] through the streaming builder, committing a chunk at
   every batch edge. [prelogged] chunks are already durable: they are
   replayed into the builder first and the same number of bytes is
   skipped off [source] (which must be the same document). *)
let drive_ingest t ~batch_rows ?pool ~progress source ~prelogged =
  let config = Db.config t.db in
  let base =
    List.fold_left (fun acc c -> acc + String.length c) 0 prelogged
  in
  let pre = ref prelogged in
  let skipped = ref 0 in
  (* fresh source bytes not yet committed as a chunk, starting at
     absolute offset [buf_base] *)
  let tee = Buffer.create 65536 in
  let buf_base = ref base in
  let durable_upto = ref base in
  let rec pull () =
    match !pre with
    | c :: rest ->
        pre := rest;
        if String.length c = 0 then pull () else Some (Bytes.of_string c)
    | [] -> (
        match source () with
        | None -> None
        | Some b ->
            let n = Bytes.length b in
            if !skipped + n <= base then begin
              skipped := !skipped + n;
              pull ()
            end
            else begin
              let from = max 0 (base - !skipped) in
              skipped := base;
              let fresh = Bytes.sub b from (n - from) in
              Buffer.add_bytes tee fresh;
              Some fresh
            end)
  in
  let on_progress (p : Ingest.progress) =
    (* [p.consumed] bytes are fully tokenized and their rows shredded;
       commit the span the log does not yet hold *)
    if p.consumed > !durable_upto then begin
      let lo = !durable_upto - !buf_base in
      let len = p.consumed - !durable_upto in
      log_chunk t (Buffer.sub tee lo len);
      durable_upto := p.consumed;
      let keep = Buffer.sub tee (lo + len) (Buffer.length tee - lo - len) in
      Buffer.clear tee;
      Buffer.add_string tee keep;
      buf_base := p.consumed
    end;
    progress p
  in
  match Ingest.load ~config ~batch_rows ?pool ~progress:on_progress pull with
  | Error e ->
      (* the committed chunks stay in the log: reopening the directory
         surfaces them as pending_ingest ([close] is defined below) *)
      t.closed <- true;
      Wal.Writer.close t.writer;
      Error (Printf.sprintf "ingest: %s" (Parser.error_to_string e))
  | Ok db ->
      t.db <- db;
      t.pending <- None;
      checkpoint t;
      Ok t

let bulk_ingest ?(sync_mode = Wal.Always) ?auto_checkpoint_bytes
    ?(force = false) ?(config = Db.Config.default)
    ?(batch_rows = Ingest.default_batch_rows) ?pool
    ?(progress = fun (_ : Ingest.progress) -> ()) ~dir source =
  (match Sys.is_directory dir with
  | true -> ()
  | false ->
      invalid_arg (Printf.sprintf "Durable.bulk_ingest: %s is a file" dir)
  | exception Sys_error _ -> Unix.mkdir dir 0o755);
  if (not force) && is_durable_dir dir then
    invalid_arg
      (Printf.sprintf
         "Durable.bulk_ingest: %s already holds a durable store (snapshot + \
          WAL); pass ~force:true to overwrite it"
         dir);
  let db0 = Db.of_store ~config (Store.create ()) in
  Snapshot.save ~lsn:0 db0 (snapshot_path dir);
  let writer = Wal.Writer.create ~sync_mode (wal_path dir) in
  let t =
    make ?auto_checkpoint_bytes ~dir ~db:db0 ~writer ~last_checkpoint_lsn:0
      ~last_replay:None ()
  in
  drive_ingest t ~batch_rows:(max 1 batch_rows) ?pool ~progress source
    ~prelogged:[]

let resume_ingest ?(batch_rows = Ingest.default_batch_rows) ?pool
    ?(progress = fun (_ : Ingest.progress) -> ()) t source =
  check_open t "resume_ingest";
  match t.pending with
  | None -> invalid_arg "Durable.resume_ingest: no ingest awaiting recovery"
  | Some (chunks, _) ->
      t.pending <- None;
      drive_ingest t ~batch_rows:(max 1 batch_rows) ?pool ~progress source
        ~prelogged:chunks

(* --- accounting --- *)

type stats = {
  wal_bytes : int;
  next_lsn : Wal.lsn;
  last_checkpoint_lsn : Wal.lsn;
  writer : Wal.Writer.stats;
}

let stats (t : t) =
  {
    wal_bytes = Wal.Writer.size t.writer;
    next_lsn = Wal.Writer.next_lsn t.writer;
    last_checkpoint_lsn = t.last_checkpoint_lsn;
    writer = Wal.Writer.stats t.writer;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    Wal.Writer.close t.writer
  end

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Db = Xvi_core.Db
module Snapshot = Xvi_core.Snapshot
module Txn = Xvi_txn.Txn

let snapshot_path dir = Filename.concat dir "snapshot.xvi"
let wal_path dir = Filename.concat dir "wal.log"

let is_durable_dir dir =
  Sys.file_exists dir
  && Sys.is_directory dir
  && Sys.file_exists (snapshot_path dir)

type t = {
  dir : string;
  db : Db.t;
  writer : Wal.Writer.t;
  auto_checkpoint : int option;
  mutable mgr : Txn.manager option;
  mutable next_txn : int;
  mutable last_checkpoint_lsn : Wal.lsn;
  mutable last_replay : Wal.replay_report option;
  mutable closed : bool;
}

let db t = t.db
let dir t = t.dir
let last_replay t = t.last_replay
let last_lsn t = Wal.Writer.last_lsn t.writer
let sync_mode t = Wal.Writer.sync_mode t.writer

let check_open t op =
  if t.closed then
    invalid_arg (Printf.sprintf "Durable.%s: store is closed" op)

let fresh_txn t =
  t.next_txn <- t.next_txn + 1;
  t.next_txn

(* --- checkpointing --- *)

let checkpoint t =
  check_open t "checkpoint";
  let base = Wal.Writer.last_lsn t.writer in
  (* snapshot first — made durable by Snapshot.save's own fsync+rename
     protocol — then drop the log it supersedes. A crash between the two
     leaves a snapshot at LSN [base] plus a log of records <= base,
     which replay filters out: both orders of the crash are safe, only
     this order also keeps the log from lying about uncommitted data. *)
  Snapshot.save ~lsn:base t.db (snapshot_path t.dir);
  Wal.Writer.truncate_to_checkpoint t.writer ~base;
  t.last_checkpoint_lsn <- base

let maybe_auto_checkpoint t =
  match t.auto_checkpoint with
  | Some threshold when Wal.Writer.size t.writer > threshold -> checkpoint t
  | _ -> ()

(* --- the durability hook wiring --- *)

let log_update_batch t writes =
  check_open t "commit";
  let txn = fresh_txn t in
  ignore (Wal.Writer.append t.writer (Wal.Begin { txn }) : Wal.lsn);
  List.iter
    (fun (node, value) ->
      ignore
        (Wal.Writer.append t.writer (Wal.Update_text { txn; node; value })
          : Wal.lsn))
    writes;
  snd (Wal.Writer.log_commit t.writer ~txn)

let make_manager t =
  Txn.manager
    ~durability:
      {
        Txn.log_commit = (fun writes -> log_update_batch t writes);
        committed = (fun () -> maybe_auto_checkpoint t);
      }
    t.db

let manager t =
  match t.mgr with
  | Some mgr -> mgr
  | None ->
      let mgr = make_manager t in
      t.mgr <- Some mgr;
      mgr

(* --- opening --- *)

let make ?auto_checkpoint_bytes ~dir ~db ~writer ~last_checkpoint_lsn
    ~last_replay () =
  {
    dir;
    db;
    writer;
    auto_checkpoint = auto_checkpoint_bytes;
    mgr = None;
    next_txn = 0;
    last_checkpoint_lsn;
    last_replay;
    closed = false;
  }

let create ?(sync_mode = Wal.Always) ?auto_checkpoint_bytes ?(force = false)
    ~dir db =
  (match Sys.is_directory dir with
  | true -> ()
  | false -> invalid_arg (Printf.sprintf "Durable.create: %s is a file" dir)
  | exception Sys_error _ -> Unix.mkdir dir 0o755);
  if (not force) && is_durable_dir dir then
    invalid_arg
      (Printf.sprintf
         "Durable.create: %s already holds a durable store (snapshot + WAL); \
          pass ~force:true to overwrite it"
         dir);
  Snapshot.save ~lsn:0 db (snapshot_path dir);
  let writer = Wal.Writer.create ~sync_mode (wal_path dir) in
  make ?auto_checkpoint_bytes ~dir ~db ~writer ~last_checkpoint_lsn:0
    ~last_replay:None ()

let open_ ?config ?(sync_mode = Wal.Always) ?auto_checkpoint_bytes dir =
  match Snapshot.load_with_lsn ?config (snapshot_path dir) with
  | Error e ->
      Error
        (Printf.sprintf "%s: %s" (snapshot_path dir)
           (Snapshot.error_to_string e))
  | Ok (db, snap_lsn) -> (
      let wpath = wal_path dir in
      if not (Sys.file_exists wpath) then begin
        (* a snapshot without its log: nothing to replay; start a fresh
           one, but keep LSNs monotonic across the gap *)
        let writer = Wal.Writer.create ~sync_mode wpath in
        Wal.Writer.close writer;
        let writer =
          Wal.Writer.attach ~sync_mode
            ~size:(String.length Wal.magic)
            ~next_lsn:(snap_lsn + 1) wpath
        in
        Ok
          (make ?auto_checkpoint_bytes ~dir ~db ~writer
             ~last_checkpoint_lsn:snap_lsn ~last_replay:None ())
      end
      else
        match Wal.scan_file wpath with
        | Error m -> Error (Printf.sprintf "%s: %s" wpath m)
        | Ok scan -> (
            match Wal.apply ~from_lsn:snap_lsn db scan.Wal.frames with
            | Error m -> Error (Printf.sprintf "%s: replay: %s" wpath m)
            | Ok stats ->
                (* drop the dead tail before appending anything new;
                   Writer.attach below fsyncs the file, making the
                   shrunken length durable before any fresh frame can
                   land where stale bytes used to be *)
                if scan.Wal.committed_end < scan.Wal.file_size then
                  Unix.truncate wpath scan.Wal.committed_end;
                let report =
                  {
                    Wal.stats;
                    first_lsn =
                      (match scan.Wal.frames with
                      | [] -> 0
                      | fr :: _ -> fr.Wal.lsn);
                    last_lsn = scan.Wal.last_lsn;
                    truncated_bytes =
                      scan.Wal.file_size - scan.Wal.committed_end;
                    dropped_records = scan.Wal.dropped_records;
                    damage = scan.Wal.damage;
                  }
                in
                let last_checkpoint_lsn =
                  List.fold_left
                    (fun acc fr ->
                      match fr.Wal.record with
                      | Wal.Checkpoint { base } -> max acc base
                      | _ -> acc)
                    snap_lsn scan.Wal.frames
                in
                let writer =
                  Wal.Writer.attach ~sync_mode ~size:scan.Wal.committed_end
                    ~next_lsn:(max (scan.Wal.last_lsn + 1) (snap_lsn + 1))
                    wpath
                in
                Ok
                  (make ?auto_checkpoint_bytes ~dir ~db ~writer
                     ~last_checkpoint_lsn ~last_replay:(Some report) ())))

let open_exn ?config ?sync_mode ?auto_checkpoint_bytes dir =
  match open_ ?config ?sync_mode ?auto_checkpoint_bytes dir with
  | Ok t -> t
  | Error m -> failwith ("Durable.open_: " ^ m)

(* --- durable update operations --- *)

let update_texts t writes =
  check_open t "update_texts";
  let tx = Txn.begin_ (manager t) in
  List.iter
    (fun (n, v) ->
      match Txn.update_text tx n v with
      | Ok () -> ()
      | Error `Not_text ->
          Txn.abort tx;
          invalid_arg
            (Printf.sprintf "Durable.update_texts: node %d is not a text node"
               n)
      | Error `Finished -> assert false)
    writes;
  Txn.commit tx

let update_text t n v = update_texts t [ (n, v) ]

(* Structural operations are logged as single-op transactions. Both the
   fragment (syntax, on a scratch store) and the target node (range,
   liveness, kind, on the live store) are validated first: once the
   record is in the log, applying it must not fail — neither now nor on
   replay. A record that fails to apply after its Commit was fsynced
   would make every future [open_] of the directory return [Error]. *)
let insert_xml t ~parent fragment =
  check_open t "insert_xml";
  let store = Db.store t.db in
  if parent < 0 || parent >= Store.node_range store then
    invalid_arg
      (Printf.sprintf "Durable.insert_xml: parent %d out of range" parent);
  (match Store.kind store parent with
  | Store.Document | Store.Element -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Durable.insert_xml: parent %d cannot take children (not a live \
            element or the document)"
           parent));
  match Parser.parse_fragment (Store.create ()) ~parent:Store.document fragment with
  | Error _ as e -> e
  | Ok _ -> (
      let txn = fresh_txn t in
      ignore (Wal.Writer.append t.writer (Wal.Begin { txn }) : Wal.lsn);
      ignore
        (Wal.Writer.append t.writer (Wal.Insert { txn; parent; fragment })
          : Wal.lsn);
      ignore
        (Wal.Writer.log_commit t.writer ~txn
          : Wal.lsn * [ `Synced | `Deferred ]);
      match Db.insert_xml t.db ~parent fragment with
      | Ok roots ->
          maybe_auto_checkpoint t;
          Ok roots
      | Error e ->
          (* unreachable after validation; if it ever happens the log
             and the database disagree and limping on would persist the
             disagreement *)
          failwith
            ("Durable.insert_xml: validated fragment rejected on apply: "
            ^ Parser.error_to_string e))

let delete_subtree t node =
  check_open t "delete_subtree";
  let store = Db.store t.db in
  if node < 0 || node >= Store.node_range store then
    invalid_arg
      (Printf.sprintf "Durable.delete_subtree: node %d out of range" node);
  if not (Store.is_live store node) then
    invalid_arg
      (Printf.sprintf "Durable.delete_subtree: node %d is already deleted" node);
  (match Store.parent store node with
  | Some _ -> ()
  | None -> invalid_arg "Durable.delete_subtree: node has no parent");
  let txn = fresh_txn t in
  ignore (Wal.Writer.append t.writer (Wal.Begin { txn }) : Wal.lsn);
  ignore (Wal.Writer.append t.writer (Wal.Delete { txn; node }) : Wal.lsn);
  ignore
    (Wal.Writer.log_commit t.writer ~txn : Wal.lsn * [ `Synced | `Deferred ]);
  Db.delete_subtree t.db node;
  maybe_auto_checkpoint t

let sync t =
  check_open t "sync";
  Wal.Writer.sync t.writer

(* --- accounting --- *)

type stats = {
  wal_bytes : int;
  next_lsn : Wal.lsn;
  last_checkpoint_lsn : Wal.lsn;
  writer : Wal.Writer.stats;
}

let stats (t : t) =
  {
    wal_bytes = Wal.Writer.size t.writer;
    next_lsn = Wal.Writer.next_lsn t.writer;
    last_checkpoint_lsn = t.last_checkpoint_lsn;
    writer = Wal.Writer.stats t.writer;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    Wal.Writer.close t.writer
  end

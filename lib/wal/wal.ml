module Store = Xvi_xml.Store
module Db = Xvi_core.Db

let magic = "XVI-WAL-1\n"

type lsn = int

type record =
  | Begin of { txn : int }
  | Update_text of { txn : int; node : Store.node; value : string }
  | Insert of { txn : int; parent : Store.node; fragment : string }
  | Delete of { txn : int; node : Store.node }
  | Commit of { txn : int }
  | Abort of { txn : int }
  | Checkpoint of { base : lsn }
  | Ingest_chunk of { txn : int; bytes : string }

type framed = { lsn : lsn; record : record }

let record_to_string = function
  | Begin { txn } -> Printf.sprintf "Begin(t%d)" txn
  | Update_text { txn; node; value } ->
      Printf.sprintf "Update_text(t%d, n%d, %S)" txn node value
  | Insert { txn; parent; fragment } ->
      Printf.sprintf "Insert(t%d, n%d, %S)" txn parent fragment
  | Delete { txn; node } -> Printf.sprintf "Delete(t%d, n%d)" txn node
  | Commit { txn } -> Printf.sprintf "Commit(t%d)" txn
  | Abort { txn } -> Printf.sprintf "Abort(t%d)" txn
  | Checkpoint { base } -> Printf.sprintf "Checkpoint(lsn %d)" base
  | Ingest_chunk { txn; bytes } ->
      Printf.sprintf "Ingest_chunk(t%d, %d bytes)" txn (String.length bytes)

(* --- codec ---

   One frame per record, reusing the Snapshot-v2 idea of length+digest
   framing, in binary:

     u32le  payload length
     16B    MD5 of the payload
     bytes  payload

   payload:

     u64le  LSN
     u8     tag
     ...    tag-specific fields (u64le ints, u32le-length-prefixed
            strings)

   A torn write leaves either a short header, a frame extending past
   end-of-file, or a digest mismatch — all detected before any field is
   parsed, so recovery can truncate the tail instead of reading
   garbage. *)

let frame_overhead = 4 + 16

let add_u64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let add_str buf s =
  Buffer.add_int32_le buf (Int32.of_int (String.length s));
  Buffer.add_string buf s

let encode ~lsn record =
  let p = Buffer.create 64 in
  add_u64 p lsn;
  (match record with
  | Begin { txn } ->
      Buffer.add_uint8 p 1;
      add_u64 p txn
  | Update_text { txn; node; value } ->
      Buffer.add_uint8 p 2;
      add_u64 p txn;
      add_u64 p node;
      add_str p value
  | Insert { txn; parent; fragment } ->
      Buffer.add_uint8 p 3;
      add_u64 p txn;
      add_u64 p parent;
      add_str p fragment
  | Delete { txn; node } ->
      Buffer.add_uint8 p 4;
      add_u64 p txn;
      add_u64 p node
  | Commit { txn } ->
      Buffer.add_uint8 p 5;
      add_u64 p txn
  | Abort { txn } ->
      Buffer.add_uint8 p 6;
      add_u64 p txn
  | Checkpoint { base } ->
      Buffer.add_uint8 p 7;
      add_u64 p base
  | Ingest_chunk { txn; bytes } ->
      Buffer.add_uint8 p 8;
      add_u64 p txn;
      add_str p bytes);
  let payload = Buffer.contents p in
  let f = Buffer.create (String.length payload + frame_overhead) in
  Buffer.add_int32_le f (Int32.of_int (String.length payload));
  Buffer.add_string f (Digest.string payload);
  Buffer.add_string f payload;
  Buffer.contents f

exception Bad_payload of string

let parse_payload payload =
  let pos = ref 0 in
  let len = String.length payload in
  let need n what =
    if !pos + n > len then
      raise (Bad_payload (Printf.sprintf "payload ends inside %s" what))
  in
  let u64 what =
    need 8 what;
    let v = Int64.to_int (String.get_int64_le payload !pos) in
    pos := !pos + 8;
    if v < 0 then raise (Bad_payload (Printf.sprintf "negative %s" what));
    v
  in
  let str what =
    need 4 what;
    let n = Int32.to_int (String.get_int32_le payload !pos) in
    pos := !pos + 4;
    if n < 0 then raise (Bad_payload (Printf.sprintf "negative %s length" what));
    need n what;
    let s = String.sub payload !pos n in
    pos := !pos + n;
    s
  in
  let lsn = u64 "lsn" in
  need 1 "tag";
  let tag = String.get_uint8 payload !pos in
  incr pos;
  let record =
    match tag with
    | 1 -> Begin { txn = u64 "txn" }
    | 2 ->
        let txn = u64 "txn" in
        let node = u64 "node" in
        let value = str "value" in
        Update_text { txn; node; value }
    | 3 ->
        let txn = u64 "txn" in
        let parent = u64 "parent" in
        let fragment = str "fragment" in
        Insert { txn; parent; fragment }
    | 4 ->
        let txn = u64 "txn" in
        let node = u64 "node" in
        Delete { txn; node }
    | 5 -> Commit { txn = u64 "txn" }
    | 6 -> Abort { txn = u64 "txn" }
    | 7 -> Checkpoint { base = u64 "base lsn" }
    | 8 ->
        let txn = u64 "txn" in
        let bytes = str "chunk" in
        Ingest_chunk { txn; bytes }
    | t -> raise (Bad_payload (Printf.sprintf "unknown record tag %d" t))
  in
  if !pos <> len then raise (Bad_payload "trailing bytes after record");
  { lsn; record }

type decoded =
  | Frame of framed * int  (** the record and the offset just past it *)
  | End
  | Torn of string
      (** incomplete or corrupt from this offset on; recovery truncates *)

let min_payload = 8 + 1 + 8 (* lsn + tag + one u64 field *)

let decode s pos =
  let len = String.length s in
  if pos >= len then End
  else if pos + frame_overhead > len then Torn "incomplete frame header"
  else
    let plen = Int32.to_int (String.get_int32_le s pos) in
    if plen < min_payload then
      Torn (Printf.sprintf "implausible payload length %d" plen)
    else if pos + frame_overhead + plen > len then
      Torn "frame extends past end of log"
    else
      let digest = String.sub s (pos + 4) 16 in
      let payload = String.sub s (pos + frame_overhead) plen in
      if not (String.equal digest (Digest.string payload)) then
        Torn "payload digest mismatch"
      else
        match parse_payload payload with
        | fr -> Frame (fr, pos + frame_overhead + plen)
        | exception Bad_payload m -> Torn m

(* --- scanning a log file ---

   The valid prefix ends at the last frame boundary; the *committed*
   prefix ends at the last Commit/Abort/Checkpoint boundary. Everything
   past the committed prefix — valid records of an unfinished
   transaction as well as a torn or corrupt tail — is dead: replay
   ignores it and the writer truncates it before appending. *)

type scan = {
  frames : framed list;  (** the committed prefix, in log order *)
  last_lsn : lsn;  (** highest LSN in [frames]; [0] when none *)
  committed_end : int;  (** byte offset after the last commit boundary *)
  file_size : int;
  dropped_records : int;
      (** valid records past the last commit boundary (an unfinished
          transaction's tail) *)
  damage : string option;
      (** why scanning stopped before end-of-file, when it did *)
}

let scan_string s =
  let n = String.length s in
  let mlen = String.length magic in
  if n < mlen || not (String.equal (String.sub s 0 mlen) magic) then
    Error "not an xvi write-ahead log (bad magic)"
  else begin
    let frames = ref [] and tail = ref [] in
    let committed_end = ref mlen and last_lsn = ref 0 in
    let prev_lsn = ref 0 in
    let damage = ref None in
    let rec go pos =
      match decode s pos with
      | End -> ()
      | Torn m -> if pos < n then damage := Some m
      | Frame (fr, next) ->
          if fr.lsn <= !prev_lsn then
            damage :=
              Some
                (Printf.sprintf "non-monotonic LSN %d after %d" fr.lsn !prev_lsn)
          else begin
            prev_lsn := fr.lsn;
            tail := fr :: !tail;
            (match fr.record with
            | Commit _ | Abort _ | Checkpoint _ ->
                frames := !tail @ !frames;
                tail := [];
                committed_end := next;
                last_lsn := fr.lsn
            | Begin _ | Update_text _ | Insert _ | Delete _ | Ingest_chunk _ ->
                ());
            go next
          end
    in
    go mlen;
    Ok
      {
        frames = List.rev !frames;
        last_lsn = !last_lsn;
        committed_end = !committed_end;
        file_size = n;
        dropped_records = List.length !tail;
        damage = !damage;
      }
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file path =
  match read_file path with
  | s -> scan_string s
  | exception Sys_error m -> Error m

(* --- replay --- *)

type op =
  | Op_update of Store.node * string
  | Op_insert of Store.node * string
  | Op_delete of Store.node

type apply_stats = {
  applied_txns : int;
  applied_ops : int;
  skipped_txns : int;  (** committed at or below [from_lsn] *)
  aborted_txns : int;
}

exception Replay_failed of string

let replay_failf fmt = Printf.ksprintf (fun m -> raise (Replay_failed m)) fmt

(* One committed transaction re-applied. Bit-identity with the original
   commit demands the exact same calls in the exact same order: a pure
   text-update transaction was applied as ONE [Db.update_texts] batch in
   the order the log records it (the order the winning commit used), so
   replay batches identically; structural operations were single-op
   transactions through the Db update API. Node kinds are validated
   first — the log never contradicts the database it was written
   against, so a mismatch is a caller error (wrong snapshot, wrong
   directory) and must surface as [Error], not an exception from the
   index layers. *)
let apply_committed db ops =
  let store = Db.store db in
  let updatable n =
    match Store.kind store n with
    | Store.Text | Store.Attribute -> true
    | _ -> false
    | exception Invalid_argument _ ->
        (* node id outside the store's range *)
        false
  in
  let apply_updates updates =
    List.iter
      (fun (n, _) ->
        if not (updatable n) then
          replay_failf "logged update targets non-text node %d" n)
      updates;
    Db.update_texts db updates
  in
  let all_updates =
    ops <> [] && List.for_all (function Op_update _ -> true | _ -> false) ops
  in
  if all_updates then
    apply_updates
      (List.map (function Op_update (n, v) -> (n, v) | _ -> assert false) ops)
  else
    List.iter
      (function
        | Op_update (n, v) -> apply_updates [ (n, v) ]
        | Op_insert (parent, fragment) -> (
            match Db.insert_xml db ~parent fragment with
            | Ok _ -> ()
            | Error e ->
                replay_failf "logged fragment rejected on replay: %s"
                  (Xvi_xml.Parser.error_to_string e)
            | exception Invalid_argument m ->
                replay_failf "logged insert invalid: %s" m)
        | Op_delete n -> (
            match Db.delete_subtree db n with
            | () -> ()
            | exception Invalid_argument m ->
                replay_failf "logged delete invalid: %s" m))
      ops

let apply ?(from_lsn = 0) db frames =
  let open_txns : (int, op list) Hashtbl.t = Hashtbl.create 8 in
  let applied_txns = ref 0
  and applied_ops = ref 0
  and skipped_txns = ref 0
  and aborted_txns = ref 0 in
  let buffer txn what op =
    match Hashtbl.find_opt open_txns txn with
    | Some ops -> Hashtbl.replace open_txns txn (op :: ops)
    | None -> replay_failf "%s record for transaction %d without Begin" what txn
  in
  let close txn what =
    match Hashtbl.find_opt open_txns txn with
    | Some ops ->
        Hashtbl.remove open_txns txn;
        List.rev ops
    | None -> replay_failf "%s record for transaction %d without Begin" what txn
  in
  try
    List.iter
      (fun fr ->
        match fr.record with
        | Begin { txn } ->
            if Hashtbl.mem open_txns txn then
              replay_failf "transaction %d begun twice" txn;
            Hashtbl.replace open_txns txn []
        | Update_text { txn; node; value } ->
            buffer txn "Update_text" (Op_update (node, value))
        | Insert { txn; parent; fragment } ->
            buffer txn "Insert" (Op_insert (parent, fragment))
        | Delete { txn; node } -> buffer txn "Delete" (Op_delete node)
        | Ingest_chunk { txn; _ } ->
            (* bulk-ingest transactions replay through a fresh event
               stream, not through the update path; Durable.open_
               separates them out before calling here *)
            replay_failf
              "ingest chunk for transaction %d outside ingest recovery" txn
        | Commit { txn } ->
            let ops = close txn "Commit" in
            if fr.lsn <= from_lsn then incr skipped_txns
            else begin
              apply_committed db ops;
              incr applied_txns;
              applied_ops := !applied_ops + List.length ops
            end
        | Abort { txn } ->
            ignore (close txn "Abort" : op list);
            incr aborted_txns
        | Checkpoint _ -> ())
      frames;
    if Hashtbl.length open_txns > 0 then
      (* scan already cut the list at the last commit boundary, so an
         open transaction here is a caller handing us a raw frame list *)
      replay_failf "%d transaction(s) never committed or aborted"
        (Hashtbl.length open_txns);
    Ok
      {
        applied_txns = !applied_txns;
        applied_ops = !applied_ops;
        skipped_txns = !skipped_txns;
        aborted_txns = !aborted_txns;
      }
  with Replay_failed m -> Error m

type replay_report = {
  stats : apply_stats;
  first_lsn : lsn;  (** lowest LSN replayed over; [0] when log empty *)
  last_lsn : lsn;
  truncated_bytes : int;
      (** bytes past the last commit boundary (torn tail + unfinished
          transactions), ignored by replay *)
  dropped_records : int;
  damage : string option;
}

let replay ?from_lsn db path =
  match scan_file path with
  | Error m -> Error m
  | Ok scan -> (
      match apply ?from_lsn db scan.frames with
      | Error m -> Error m
      | Ok stats ->
          Ok
            {
              stats;
              first_lsn =
                (match scan.frames with [] -> 0 | fr :: _ -> fr.lsn);
              last_lsn = scan.last_lsn;
              truncated_bytes = scan.file_size - scan.committed_end;
              dropped_records = scan.dropped_records;
              damage = scan.damage;
            })

(* --- tailing ---

   A follower consumes the log as a stream of complete committed
   transaction groups. Delivery is by LSN, not byte offset: every poll
   rescans from the header and skips groups at or below the last
   delivered boundary. That makes truncation-under-the-tailer
   detectable by pure arithmetic — the writer assigns contiguous LSNs,
   so the first fresh frame must sit at [last + 1]; anything further
   out means records the tailer never saw were checkpointed away, and
   only a snapshot can re-seed it. *)

let encode_frames frames =
  String.concat "" (List.map (fun f -> encode ~lsn:f.lsn f.record) frames)

let frame_digest f = Digest.string (encode ~lsn:f.lsn f.record)

module Tail = struct
  type event =
    | Frames of { frames : framed list; bytes : string }
    | Await
    | Snapshot_needed of { base : lsn }

  type t = { path : string; mutable last : lsn }

  let create ?(from_lsn = 0) path = { path; last = from_lsn }
  let last_lsn t = t.last

  (* Committed groups of the log body, in order: each group is the
     frames up to and including one Commit/Abort/Checkpoint boundary.
     Stops at a torn tail or an LSN discontinuity — both look like "no
     more complete groups yet" to a live tailer. *)
  let groups_of s =
    let groups = ref [] and cur = ref [] in
    let rec go pos prev =
      match decode s pos with
      | End | Torn _ -> ()
      | Frame (fr, next) ->
          if prev > 0 && fr.lsn <> prev + 1 then ()
          else begin
            cur := fr :: !cur;
            (match fr.record with
            | Commit _ | Abort _ | Checkpoint _ ->
                groups := List.rev !cur :: !groups;
                cur := []
            | Begin _ | Update_text _ | Insert _ | Delete _ | Ingest_chunk _ ->
                ());
            go next fr.lsn
          end
    in
    go (String.length magic) 0;
    List.rev !groups

  let boundary_lsn group =
    List.fold_left (fun acc f -> max acc f.lsn) 0 group

  let poll ?upto_lsn ?max_bytes t =
    match read_file t.path with
    | exception Sys_error m -> Error m
    | s ->
        let mlen = String.length magic in
        if
          String.length s < mlen || not (String.equal (String.sub s 0 mlen) magic)
        then Error "not an xvi write-ahead log (bad magic)"
        else begin
          let fresh =
            List.filter (fun g -> boundary_lsn g > t.last) (groups_of s)
          in
          let fresh =
            match upto_lsn with
            | None -> fresh
            | Some cap -> List.filter (fun g -> boundary_lsn g <= cap) fresh
          in
          match fresh with
          | [] -> Ok Await
          | first :: _ -> (
              match first with
              | [] -> Ok Await
              | head :: _ when head.lsn > t.last + 1 ->
                  (* records between [t.last] and this frame were
                     truncated away by a checkpoint *)
                  let base =
                    match head.record with
                    | Checkpoint { base } -> base
                    | _ -> head.lsn - 1
                  in
                  Ok (Snapshot_needed { base })
              | _ ->
                  let take =
                    match max_bytes with
                    | None -> fresh
                    | Some cap ->
                        let rec go budget = function
                          | [] -> []
                          | g :: rest ->
                              let sz = String.length (encode_frames g) in
                              if budget - sz < 0 then []
                              else g :: go (budget - sz) rest
                        in
                        (* always deliver at least one group, or a
                           too-small cap livelocks the stream *)
                        (match go cap fresh with
                        | [] -> [ first ]
                        | gs -> gs)
                  in
                  let frames = List.concat take in
                  t.last <- boundary_lsn frames;
                  Ok (Frames { frames; bytes = encode_frames frames }))
        end
end

(* --- sync modes --- *)

type sync_mode = Always | Group of float | Never

let sync_mode_to_string = function
  | Always -> "always"
  | Group w -> Printf.sprintf "group:%gms" (w *. 1000.)
  | Never -> "never"

let sync_mode_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Some Always
  | "never" -> Some Never
  | "group" -> Some (Group 0.002)
  | s ->
      let prefix = "group:" in
      let n = String.length prefix in
      if String.length s > n && String.sub s 0 n = prefix then
        match float_of_string_opt (String.sub s n (String.length s - n)) with
        | Some ms when ms >= 0. -> Some (Group (ms /. 1000.))
        | _ -> None
      else None

(* --- writer --- *)

module Writer = struct
  type stats = {
    appended : int;
    commits : int;
    syncs : int;
    synced_commits : int;
    deferred_commits : int;
  }

  type t = {
    path : string;
    fd : Unix.file_descr;
    mode : sync_mode;
    mutable next : lsn;
    mutable size : int;
    mutable dirty : bool;
    mutable window_start : float;  (** 0. = no group window open *)
    mutable s_appended : int;
    mutable s_commits : int;
    mutable s_syncs : int;
    mutable s_synced : int;
    mutable s_deferred : int;
  }

  let write_all fd s =
    let n = String.length s in
    let rec go off =
      if off < n then go (off + Unix.write_substring fd s off (n - off))
    in
    go 0

  let fsync_dir dir =
    match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()

  let make ~path ~fd ~mode ~next ~size =
    {
      path;
      fd;
      mode;
      next;
      size;
      dirty = false;
      window_start = 0.;
      s_appended = 0;
      s_commits = 0;
      s_syncs = 0;
      s_synced = 0;
      s_deferred = 0;
    }

  let create ?(sync_mode = Always) path =
    let fd =
      (Unix.openfile path
         [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND ]
         0o644)
      [@xvi.lint.allow
        "R4: the fd escapes into the writer record and outlives this \
         function; Writer.close is the paired close"]
    in
    write_all fd magic;
    (* the header is forced immediately: every crash the recovery sweep
       considers happens after it, so a log file is never torn inside
       its own magic *)
    Unix.fsync fd;
    fsync_dir (Filename.dirname path);
    make ~path ~fd ~mode:sync_mode ~next:1 ~size:(String.length magic)

  let attach ?(sync_mode = Always) ~size ~next_lsn path =
    let fd =
      (Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644)
      [@xvi.lint.allow
        "R4: the fd escapes into the writer record and outlives this \
         function; Writer.close is the paired close"]
    in
    (* recovery may have just truncated the dead tail; force the new
       length before appending so a crash cannot resurrect stale
       pre-truncation bytes behind freshly written frames *)
    Unix.fsync fd;
    make ~path ~fd ~mode:sync_mode ~next:(max 1 next_lsn) ~size

  let path t = t.path
  let size t = t.size
  let next_lsn t = t.next
  let last_lsn t = t.next - 1
  let sync_mode t = t.mode

  let sync t =
    if t.dirty then begin
      Unix.fsync t.fd;
      t.dirty <- false;
      t.window_start <- 0.;
      t.s_syncs <- t.s_syncs + 1
    end

  (* A group window that has aged past its width holds commits already
     acknowledged as [`Deferred]; flush them before the next record of
     any *new* transaction goes in. Commit records are excluded — the
     window policy for them lives in [log_commit], which syncs the
     batch *including* the closing commit. Under total quiescence no
     append arrives to trigger this, so an open window persists until
     an explicit [sync] or [close] — documented in the interface. *)
  let flush_expired_window t =
    match t.mode with
    | Group width
      when t.window_start > 0.
           && Unix.gettimeofday () -. t.window_start >= width ->
        sync t
    | _ -> ()

  let append t record =
    (match record with
    | Commit _ -> ()
    | _ -> flush_expired_window t);
    let lsn = t.next in
    t.next <- lsn + 1;
    let s = encode ~lsn record in
    write_all t.fd s;
    t.size <- t.size + String.length s;
    t.dirty <- true;
    t.s_appended <- t.s_appended + 1;
    lsn

  (* Group commit: the first unsynced commit opens a window; commits
     landing inside it are batched behind the one fsync issued when the
     window has aged past the configured width. *)
  let log_commit t ~txn =
    let lsn = append t (Commit { txn }) in
    t.s_commits <- t.s_commits + 1;
    let outcome =
      match t.mode with
      | Always ->
          sync t;
          `Synced
      | Never -> `Deferred
      | Group width ->
          let now = Unix.gettimeofday () in
          if t.window_start = 0. then t.window_start <- now;
          if now -. t.window_start >= width then begin
            sync t;
            `Synced
          end
          else `Deferred
    in
    (match outcome with
    | `Synced -> t.s_synced <- t.s_synced + 1
    | `Deferred -> t.s_deferred <- t.s_deferred + 1);
    (lsn, outcome)

  (* Checkpoint truncation: the caller has just made a snapshot at
     [base] durable, so every record at or below it is dead weight. The
     log restarts from its header plus one Checkpoint record — LSNs keep
     counting, they never restart. *)
  let truncate_to_checkpoint t ~base =
    Unix.ftruncate t.fd (String.length magic);
    t.size <- String.length magic;
    t.dirty <- true;
    ignore (append t (Checkpoint { base }) : lsn);
    sync t

  let stats t =
    {
      appended = t.s_appended;
      commits = t.s_commits;
      syncs = t.s_syncs;
      synced_commits = t.s_synced;
      deferred_commits = t.s_deferred;
    }

  let close t =
    (match t.mode with Never -> () | Always | Group _ -> sync t);
    Unix.close t.fd
end

(** Append-only, digest-framed write-ahead log for the index family.

    The paper's indices are {e updatable} — maintained incrementally
    under text updates (Figure 8) instead of rebuilt — but incremental
    maintenance is only worth its price if the commits it makes cheap
    also {e survive}. This module supplies the missing half: every
    committing transaction appends its write set here {e before} any
    store or index byte changes, so after a crash the committed suffix
    since the last {!Xvi_core.Snapshot} checkpoint can be replayed
    instead of being lost.

    {2 Record format}

    The log is a magic line followed by frames. Each frame reuses the
    snapshot's length+digest idea in binary form — a [u32le] payload
    length, the payload's MD5, then the payload ([u64le] LSN, a tag
    byte, and tag-specific fields). A torn write therefore surfaces as a
    short header, a frame extending past end-of-file, or a digest
    mismatch — all detected before a single field is parsed — and
    recovery truncates the log at the {e last valid commit boundary}
    rather than trusting a damaged tail. LSNs increase strictly
    monotonically across the life of a log (checkpoint truncation does
    not restart them); a non-monotonic LSN is treated as corruption.

    {2 Transactions on the log}

    Records group into transactions: [Begin], any number of
    [Update_text] / [Insert] / [Delete] operations, then [Commit] or
    [Abort]. {!replay} re-applies committed transactions in log order —
    a pure text-update transaction as one {!Xvi_core.Db.update_texts}
    batch in the recorded order (the exact call the winning commit
    made, so replay is bit-identical), structural single-op
    transactions through {!Xvi_core.Db} — and skips aborted and
    unfinished ones, as well as anything at or below the snapshot's
    LSN. Because application is deterministic and filtered by that
    watermark, recovery is idempotent: opening the same directory twice
    yields bit-identical databases.

    The higher-level open/checkpoint protocol lives in {!Durable}. *)

type lsn = int
(** Log sequence number; strictly increasing, starting at 1. [0] means
    "before every record" (a fresh snapshot's watermark). *)

type record =
  | Begin of { txn : int }
  | Update_text of { txn : int; node : Xvi_xml.Store.node; value : string }
  | Insert of { txn : int; parent : Xvi_xml.Store.node; fragment : string }
  | Delete of { txn : int; node : Xvi_xml.Store.node }
  | Commit of { txn : int }
  | Abort of { txn : int }
  | Checkpoint of { base : lsn }
      (** all records with LSN [<= base] are covered by the snapshot *)
  | Ingest_chunk of { txn : int; bytes : string }
      (** one batch of raw source bytes accepted by a streaming bulk
          ingest ({!Durable.bulk_ingest}): the document prefix they
          extend is fully tokenized and shredded. These transactions
          replay through a fresh event stream, not through {!apply} —
          {!Durable.open_} separates them out; {!apply} treats a stray
          one as log corruption. *)

type framed = { lsn : lsn; record : record }

val record_to_string : record -> string

val magic : string
(** The log file header line. *)

(** {1 Codec} *)

val encode : lsn:lsn -> record -> string
(** One framed record, ready to append. *)

type decoded =
  | Frame of framed * int  (** the record and the offset just past it *)
  | End  (** clean end of input *)
  | Torn of string
      (** incomplete or corrupt from this offset on; recovery truncates
          here *)

val decode : string -> int -> decoded
(** [decode s pos] reads one frame at byte offset [pos]. Total: any
    byte damage or truncation yields [Torn], never an exception. *)

(** {1 Scanning} *)

type scan = {
  frames : framed list;  (** the committed prefix, in log order *)
  last_lsn : lsn;  (** highest LSN in [frames]; [0] when none *)
  committed_end : int;
      (** byte offset after the last Commit/Abort/Checkpoint frame — the
          truncation point for reopening the log *)
  file_size : int;
  dropped_records : int;
      (** valid records past the last commit boundary (an unfinished
          transaction's tail) *)
  damage : string option;
      (** why scanning stopped before end-of-file, when it did *)
}

val scan_string : string -> (scan, string) result
(** [Error] only on a bad or missing magic header; any damage {e after}
    the header is reported in [damage] with the valid prefix intact. *)

val scan_file : string -> (scan, string) result

(** {1 Replay} *)

type op =
  | Op_update of Xvi_xml.Store.node * string
  | Op_insert of Xvi_xml.Store.node * string
  | Op_delete of Xvi_xml.Store.node

type apply_stats = {
  applied_txns : int;
  applied_ops : int;
  skipped_txns : int;  (** committed at or below [from_lsn] *)
  aborted_txns : int;
}

val apply :
  ?from_lsn:lsn -> Xvi_core.Db.t -> framed list -> (apply_stats, string) result
(** Re-apply the committed transactions in [frames] (as returned by
    {!scan_string} / {!scan_file}) whose commit LSN exceeds [from_lsn]
    (default [0]). [Error] when the log contradicts the database — a
    logged update targeting a non-text node, a fragment that no longer
    parses, a record stream with unbalanced Begin/Commit. *)

type replay_report = {
  stats : apply_stats;
  first_lsn : lsn;  (** lowest LSN replayed over; [0] when log empty *)
  last_lsn : lsn;
  truncated_bytes : int;
      (** bytes past the last commit boundary (torn tail + unfinished
          transactions), ignored by replay *)
  dropped_records : int;
  damage : string option;
}

val replay :
  ?from_lsn:lsn -> Xvi_core.Db.t -> string -> (replay_report, string) result
(** [replay ~from_lsn db path] = {!scan_file} + {!apply}, with a
    recovery report. Idempotent given the same [from_lsn] watermark
    discipline: {!Durable.open_} twice yields bit-identical databases. *)

(** {1 Tailing}

    A replication follower consumes the log as a stream: complete
    committed transaction groups, in log order, delimited exactly as
    recovery would delimit them. The tailer never advances past a torn
    tail (an append in flight looks identical to one) — it reports
    {!Tail.Await} and the caller retries. A checkpoint that truncates
    the log underneath a live tailer surfaces as a typed
    {!Tail.Snapshot_needed}: the records the tailer still needed are
    gone and only a fresh snapshot can re-seed it. *)

val encode_frames : framed list -> string
(** Re-encode frames back to their on-disk bytes. [encode] is a pure
    function of [(lsn, record)], so this reproduces the original log
    bytes bit for bit — the property log shipping rests on. *)

val frame_digest : framed -> string
(** MD5 of the frame's encoded bytes; leader and follower compute it
    independently to locate their last common LSN after a failover. *)

module Tail : sig
  type t
  (** A position in a growing log: the boundary LSN of the last
      transaction group delivered. Polling is stateless with respect to
      byte offsets — every poll rescans from the header — so a
      checkpoint truncation between polls is detected by LSN
      continuity, never by guessing at file offsets. *)

  type event =
    | Frames of { frames : framed list; bytes : string }
        (** newly committed transaction groups, in log order; [bytes]
            is their exact on-disk encoding ({!encode_frames}) *)
    | Await
        (** nothing new past the last delivered boundary — the tail may
            be torn by an append in flight; retry later *)
    | Snapshot_needed of { base : lsn }
        (** the log no longer contains the records after this tail's
            position (checkpoint truncation); records [<= base] are only
            available via a snapshot *)

  val create : ?from_lsn:lsn -> string -> t
  (** Tail the log at [path], starting just past [from_lsn]
      (default [0] = from the beginning). *)

  val poll : ?upto_lsn:lsn -> ?max_bytes:int -> t -> (event, string) result
  (** Deliver the next committed groups. [upto_lsn] withholds groups
      whose boundary LSN exceeds it (a leader ships only durable
      frames); [max_bytes] caps the batch, always delivering at least
      one group. [Error] only on an unreadable file or bad magic. *)

  val last_lsn : t -> lsn
  (** Boundary LSN of the last group delivered (or the [from_lsn] this
      tail was created at). *)
end

(** {1 Writing} *)

type sync_mode =
  | Always  (** one [fsync] per commit; every [Ok] is durable *)
  | Group of float
      (** group commit: commits within a window of this many seconds
          share one [fsync]. The window is closed by the commit that
          finds it aged past its width, by the first record of the next
          transaction after it expires, by an explicit {!Writer.sync},
          or by {!Writer.close} — so a crash loses at most the commits
          of the still-open window; under total quiescence that window
          stays open (and its commits volatile) until the next append,
          sync or close. *)
  | Never
      (** no [fsync] except on close/checkpoint; durability is whatever
          the OS page cache grants *)

val sync_mode_to_string : sync_mode -> string

val sync_mode_of_string : string -> sync_mode option
(** ["always"], ["never"], ["group"] (2 ms) or ["group:<ms>"]. *)

module Writer : sig
  type t

  val create : ?sync_mode:sync_mode -> string -> t
  (** Fresh log at the path (truncating any existing file); the header
      is fsynced before returning, so no later crash can tear it. *)

  val attach : ?sync_mode:sync_mode -> size:int -> next_lsn:lsn -> string -> t
  (** Append to an existing log the caller has already scanned (and
      truncated to [size], its last commit boundary). The file is
      fsynced on attach so that truncation is durable before any new
      frame is appended past it. *)

  val append : t -> record -> lsn
  (** Buffered in the OS at return; durable per the sync mode's next
      fsync. A non-[Commit] record first flushes any group window that
      has aged past its width (see {!sync_mode}). *)

  val log_commit : t -> txn:int -> lsn * [ `Synced | `Deferred ]
  (** Append the [Commit] record and run the sync policy: [Always]
      fsyncs now, [Group w] fsyncs once the open batching window is
      older than [w], [Never] leaves it to the OS. *)

  val sync : t -> unit
  (** Force everything appended so far to stable storage. *)

  val truncate_to_checkpoint : t -> base:lsn -> unit
  (** Drop every record (the caller's snapshot at [base] covers them),
      leaving the header plus one fsynced [Checkpoint] record. LSNs
      continue — they never restart. *)

  val path : t -> string
  val size : t -> int
  val next_lsn : t -> lsn
  val last_lsn : t -> lsn
  val sync_mode : t -> sync_mode

  type stats = {
    appended : int;  (** records written *)
    commits : int;
    syncs : int;  (** fsyncs issued *)
    synced_commits : int;  (** commits that returned [`Synced] *)
    deferred_commits : int;  (** commits batched behind a later fsync *)
  }

  val stats : t -> stats

  val close : t -> unit
  (** Final sync (except under [Never]) and close. *)
end

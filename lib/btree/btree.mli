(** In-memory B+tree.

    This is the index substrate of the reproduction: the paper builds its
    value indices as (clustered) B-trees inside MonetDB/XQuery. Keys live
    in the leaves, which are chained for range scans; internal nodes hold
    separator keys. Duplicate logical keys are supported by composing the
    key with a discriminator (e.g. [(hash, node_id)]), which is how the
    string index stores its posting lists.

    The implementation favours clarity and testability: every structural
    invariant is checkable with {!S.check_invariants}, and the test suite
    model-checks the tree against [Stdlib.Map] under random workloads. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int

  val to_string : t -> string
  (** For diagnostics and invariant-violation messages only. *)

  val size_bytes : t -> int
  (** Bytes charged for this key by {!S.memory_bytes}. Per-key (not a
      flat constant) so variable-width keys — encoded byte strings —
      report their actual length. *)
end

module type S = sig
  type key
  type 'a t

  val create : ?order:int -> unit -> 'a t
  (** [create ~order ()] makes an empty tree. [order] is the maximum
      number of keys per node (default 32, minimum 4). *)

  val of_sorted_array : ?order:int -> (key * 'a) array -> 'a t
  (** Bulk load from a strictly ascending array — how index creation
      populates the tree after the single document pass (orders of
      magnitude cheaper than repeated {!insert}).
      @raise Invalid_argument if keys are not strictly ascending. *)

  val of_sorted_seq : ?order:int -> len:int -> (unit -> key * 'a) -> 'a t
  (** Bulk load from a generator of exactly [len] strictly ascending
      pairs, without materializing them: the streaming ingest path
      feeds a merge cursor straight into the leaf level. Produces a
      tree identical to {!of_sorted_array} on the same sequence.
      @raise Invalid_argument as soon as ascent is violated (the
      generator may have been consumed partway). *)

  val length : 'a t -> int
  (** Number of bindings, O(1). *)

  val is_empty : 'a t -> bool

  val find : 'a t -> key -> 'a option
  (** Point lookup. *)

  val mem : 'a t -> key -> bool

  val insert : 'a t -> key -> 'a -> unit
  (** [insert t k v] binds [k] to [v], replacing any previous binding. *)

  val remove : 'a t -> key -> bool
  (** [remove t k] deletes the binding for [k]; returns whether a binding
      existed. The tree rebalances by borrowing or merging. *)

  val iter : (key -> 'a -> unit) -> 'a t -> unit
  (** In ascending key order. *)

  val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
  (** In ascending key order. *)

  val iter_range : ?lo:key -> ?hi:key -> (key -> 'a -> unit) -> 'a t -> unit
  (** [iter_range ~lo ~hi f t] applies [f] to bindings with
      [lo <= k <= hi] (bounds inclusive; omitted bound = unbounded), in
      ascending order, walking the leaf chain. *)

  val iter_raw : ?lo:key -> ?hi:key -> (key array -> int -> int -> unit) -> 'a t -> unit
  (** [iter_raw f t] walks the same range as {!iter_range} but hands
      [f] each run of in-range key slots [(keys, off, len)] directly
      from the leaf storage — one call per leaf on full leaves, no
      per-key closure dispatch, no value access. Hot scans use it to
      decode byte keys inline. The array is live tree storage: [f]
      must neither mutate it nor retain it past the call. *)

  val range : ?lo:key -> ?hi:key -> 'a t -> (key * 'a) list
  (** [iter_range] collected into a list. *)

  val to_seq_range : ?lo:key -> ?hi:key -> 'a t -> (key * 'a) Seq.t
  (** [iter_range] as an on-demand sequence over the leaf chain — the
      substrate of the index posting cursors: consumers pull one binding
      at a time instead of materializing the range. The sequence reads
      the live tree; do not mutate the tree while consuming it. *)

  val count_range : ?lo:key -> ?hi:key -> 'a t -> int
  (** Number of bindings in the (inclusive) range, without building a
      list — the planner's cardinality estimator. O(log n + k). *)

  val min_binding : 'a t -> (key * 'a) option
  val max_binding : 'a t -> (key * 'a) option

  val height : 'a t -> int
  (** Leaf depth; 0 for the empty tree. *)

  val node_count : 'a t -> int
  (** Total number of tree nodes (for storage accounting). *)

  val memory_bytes : value_bytes:int -> 'a t -> int
  (** Approximate heap footprint assuming [value_bytes] per stored value
      and {!ORDERED.size_bytes} per occupied key, plus one word per slot
      of fill-factor slack (as a disk-resident index would charge).
      Used by the Figure 9 storage experiment. *)

  val check_invariants : 'a t -> (unit, string) result
  (** Verifies: key ordering within and across nodes, separator
      correctness, occupancy bounds, uniform leaf depth, leaf-chain
      completeness, and the cached length. *)
end

module Make (K : ORDERED) : S with type key = K.t

(** Ready-made key modules for the indices. *)

module Int_key : ORDERED with type t = int

module Int_pair_key : ORDERED with type t = int * int
(** Lexicographic; used for [(hash, node_id)] composite keys. *)

module Float_pair_key : ORDERED with type t = float * int
(** Lexicographic; used for [(double value, node_id)] composite keys.
    Total order with NaN sorted after all numbers. *)

module String_key : ORDERED with type t = string

module Bytes_key : ORDERED with type t = string
(** Order-preserving encoded byte strings (see {!Encoding}): comparison
    is plain [String.compare], i.e. flat memcmp, and [size_bytes] is the
    actual encoded length. *)

module Bytes : S with type key = string
(** The byte-key B+tree: [Make (Bytes_key)]. Callers build keys with
    {!Encoding} so that byte order equals logical order. *)

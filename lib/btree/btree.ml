module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val to_string : t -> string

  val size_bytes : t -> int
  (* Per-key storage charge. Taking the key lets variable-width keys
     (encoded byte strings) report their actual length instead of a flat
     estimate. *)
end

module type S = sig
  type key
  type 'a t

  val create : ?order:int -> unit -> 'a t
  val of_sorted_array : ?order:int -> (key * 'a) array -> 'a t

  val of_sorted_seq : ?order:int -> len:int -> (unit -> key * 'a) -> 'a t
  (* Bulk load from a generator of exactly [len] strictly-ascending
     pairs, without materializing them: the streaming ingest path feeds
     a merge cursor straight into the leaf level. The resulting tree is
     identical to [of_sorted_array] on the same sequence. *)
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val find : 'a t -> key -> 'a option
  val mem : 'a t -> key -> bool
  val insert : 'a t -> key -> 'a -> unit
  val remove : 'a t -> key -> bool
  val iter : (key -> 'a -> unit) -> 'a t -> unit
  val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
  val iter_range : ?lo:key -> ?hi:key -> (key -> 'a -> unit) -> 'a t -> unit

  val iter_raw : ?lo:key -> ?hi:key -> (key array -> int -> int -> unit) -> 'a t -> unit
  (* [iter_raw f t] walks the leaf chain calling [f keys off len] on
     each run of in-range key slots — no per-key closure dispatch, no
     key copying, so a scan can decode keys inline. The array is the
     live leaf storage: the callback must not mutate it or retain it
     past the call. *)
  val range : ?lo:key -> ?hi:key -> 'a t -> (key * 'a) list
  val to_seq_range : ?lo:key -> ?hi:key -> 'a t -> (key * 'a) Seq.t
  val count_range : ?lo:key -> ?hi:key -> 'a t -> int
  val min_binding : 'a t -> (key * 'a) option
  val max_binding : 'a t -> (key * 'a) option
  val height : 'a t -> int
  val node_count : 'a t -> int
  val memory_bytes : value_bytes:int -> 'a t -> int
  val check_invariants : 'a t -> (unit, string) result
end

module Make (K : ORDERED) = struct
  type key = K.t

  (* Node layout. A leaf holds up to [order] keys; an internal node holds
     up to [order] separators and [order + 1] children. Arrays are
     allocated with one slot of slack so a node can temporarily overflow
     during insertion and be split immediately afterwards.

     Separator convention: child [i] of an internal node contains exactly
     the keys [k] with [ikeys.(i-1) <= k < ikeys.(i)] (missing bounds are
     infinite). Equal keys therefore descend to the right of their
     separator. *)

  type 'a leaf = {
    mutable lkeys : key array;
    mutable lvals : 'a array;
    mutable ln : int;
    mutable next : 'a leaf option;
  }

  type 'a node = Leaf of 'a leaf | Internal of 'a internal

  and 'a internal = {
    mutable ikeys : key array;
    mutable kids : 'a node array;
    mutable kn : int; (* number of children; separators in use = kn - 1 *)
  }

  type 'a t = { mutable root : 'a node option; mutable count : int; order : int }

  let create ?(order = 32) () =
    if order < 4 then invalid_arg "Btree.create: order must be >= 4";
    { root = None; count = 0; order }

  let length t = t.count
  let is_empty t = t.count = 0
  let min_leaf_keys t = t.order / 2
  let min_internal_keys t = (t.order - 1) / 2

  (* Smallest index [i] in [keys.(0 .. n-1)] with [key < keys.(i)];
     [n] if none. Used to route searches through internal nodes. *)
  let upper_bound keys n key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare key keys.(mid) < 0 then hi := mid else lo := mid + 1
    done;
    !lo

  (* Smallest index [i] with [keys.(i) >= key]; [n] if none. *)
  let lower_bound keys n key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare keys.(mid) key < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  let rec find_node node key =
    match node with
    | Leaf l ->
        let i = lower_bound l.lkeys l.ln key in
        if i < l.ln && K.compare l.lkeys.(i) key = 0 then Some l.lvals.(i)
        else None
    | Internal nd ->
        let i = upper_bound nd.ikeys (nd.kn - 1) key in
        find_node nd.kids.(i) key

  let find t key = match t.root with None -> None | Some n -> find_node n key
  let mem t key = find t key <> None

  (* --- Insertion --- *)

  let shift_right arr from upto =
    (* open slot at [from], moving arr.(from .. upto-1) one step right *)
    Array.blit arr from arr (from + 1) (upto - from)

  let shift_left arr from upto =
    (* close slot at [from], moving arr.(from+1 .. upto-1) one step left *)
    Array.blit arr (from + 1) arr from (upto - from - 1)

  let new_leaf t ~fill_key ~fill_val =
    {
      lkeys = Array.make (t.order + 1) fill_key;
      lvals = Array.make (t.order + 1) fill_val;
      ln = 0;
      next = None;
    }

  let new_internal t ~fill_key ~fill_kid =
    {
      ikeys = Array.make (t.order + 1) fill_key;
      kids = Array.make (t.order + 2) fill_kid;
      kn = 0;
    }

  (* Split an over-full leaf in two; returns the separator (first key of the
     right half) and the right half. *)
  let split_leaf t l =
    let mid = l.ln / 2 in
    let right = new_leaf t ~fill_key:l.lkeys.(0) ~fill_val:l.lvals.(0) in
    Array.blit l.lkeys mid right.lkeys 0 (l.ln - mid);
    Array.blit l.lvals mid right.lvals 0 (l.ln - mid);
    right.ln <- l.ln - mid;
    l.ln <- mid;
    right.next <- l.next;
    l.next <- Some right;
    (right.lkeys.(0), Leaf right)

  let split_internal t nd =
    let mid = nd.kn / 2 in
    (* children 0..mid-1 stay; separator ikeys.(mid-1) moves up; children
       mid..kn-1 go right with separators mid..kn-2. *)
    let right = new_internal t ~fill_key:nd.ikeys.(0) ~fill_kid:nd.kids.(0) in
    let sep = nd.ikeys.(mid - 1) in
    Array.blit nd.kids mid right.kids 0 (nd.kn - mid);
    Array.blit nd.ikeys mid right.ikeys 0 (nd.kn - 1 - mid);
    right.kn <- nd.kn - mid;
    nd.kn <- mid;
    (sep, Internal right)

  (* Returns [Some (sep, right)] if the node split, plus whether a new
     binding was added (vs. replaced). *)
  let rec insert_node t node key v =
    match node with
    | Leaf l ->
        let i = lower_bound l.lkeys l.ln key in
        if i < l.ln && K.compare l.lkeys.(i) key = 0 then begin
          l.lvals.(i) <- v;
          (None, false)
        end
        else begin
          shift_right l.lkeys i l.ln;
          shift_right l.lvals i l.ln;
          l.lkeys.(i) <- key;
          l.lvals.(i) <- v;
          l.ln <- l.ln + 1;
          if l.ln > t.order then (Some (split_leaf t l), true) else (None, true)
        end
    | Internal nd ->
        let i = upper_bound nd.ikeys (nd.kn - 1) key in
        let split, added = insert_node t nd.kids.(i) key v in
        (match split with
        | None -> (None, added)
        | Some (sep, right) ->
            shift_right nd.ikeys i (nd.kn - 1);
            shift_right nd.kids (i + 1) nd.kn;
            nd.ikeys.(i) <- sep;
            nd.kids.(i + 1) <- right;
            nd.kn <- nd.kn + 1;
            if nd.kn > t.order + 1 then (Some (split_internal t nd), added)
            else (None, added))

  let insert t key v =
    match t.root with
    | None ->
        let l = new_leaf t ~fill_key:key ~fill_val:v in
        l.lkeys.(0) <- key;
        l.lvals.(0) <- v;
        l.ln <- 1;
        t.root <- Some (Leaf l);
        t.count <- 1
    | Some root ->
        let split, added = insert_node t root key v in
        (match split with
        | None -> ()
        | Some (sep, right) ->
            let nd = new_internal t ~fill_key:sep ~fill_kid:root in
            nd.ikeys.(0) <- sep;
            nd.kids.(0) <- root;
            nd.kids.(1) <- right;
            nd.kn <- 2;
            t.root <- Some (Internal nd));
        if added then t.count <- t.count + 1

  (* --- Bulk loading --- *)

  (* Split [n] items into chunks of at most [cap], each at least [minv]
     (callers guarantee cap >= 2 * minv); a short tail steals from its
     predecessor. Returns chunk sizes. *)
  let chunk_sizes n ~cap ~minv =
    if n <= cap then [ n ]
    else begin
      let full = n / cap and rest = n mod cap in
      let sizes = List.init full (fun _ -> cap) in
      if rest = 0 then sizes
      else if rest >= minv then sizes @ [ rest ]
      else
        (* steal from the last full chunk *)
        match List.rev sizes with
        | last :: prefix ->
            List.rev prefix @ [ last - (minv - rest); minv ]
        | [] -> assert false
    end

  let of_sorted_seq ?(order = 32) ~len next =
    let t = create ~order () in
    if len < 0 then invalid_arg "Btree.of_sorted_seq: negative length";
    let n = len in
    if n > 0 then begin
      (* Validate ascent as pairs stream by; the first pair doubles as
         the fill value for every node's slack slots, exactly as
         [of_sorted_array] used [arr.(0)]. *)
      let prev = ref None in
      let pull () =
        let (k, _) as pair = next () in
        (match !prev with
        | Some pk when K.compare pk k >= 0 ->
            invalid_arg "Btree.of_sorted_seq: keys not strictly ascending"
        | _ -> ());
        prev := Some k;
        pair
      in
      let first = pull () in
      let fill_key = fst first and fill_val = snd first in
      let first_used = ref false in
      let take () =
        if !first_used then pull ()
        else begin
          first_used := true;
          first
        end
      in
      (* leaf level *)
      let sizes = chunk_sizes n ~cap:order ~minv:(min_leaf_keys t) in
      let leaves =
        List.map
          (fun size ->
            let l = new_leaf t ~fill_key ~fill_val in
            for i = 0 to size - 1 do
              let k, v = take () in
              l.lkeys.(i) <- k;
              l.lvals.(i) <- v
            done;
            l.ln <- size;
            (l.lkeys.(0), Leaf l))
          sizes
      in
      (* chain the leaves *)
      let rec chain = function
        | (_, Leaf a) :: ((_, Leaf b) :: _ as rest) ->
            a.next <- Some b;
            chain rest
        | _ -> ()
      in
      chain leaves;
      (* build internal levels bottom-up; each entry carries the lowest
         key of its subtree for use as a separator *)
      let rec build level =
        match level with
        | [ (_, node) ] -> node
        | _ ->
            let cap = t.order + 1 and minv = min_internal_keys t + 1 in
            let sizes = chunk_sizes (List.length level) ~cap ~minv in
            let remaining = ref level in
            let parents =
              List.map
                (fun size ->
                  let fill_kid =
                    (* chunk_sizes partitions the level exactly, so a
                       chunk never starts past the end of it *)
                    match !remaining with
                    | (_, kid) :: _ -> kid
                    | [] ->
                        invalid_arg
                          "Btree.of_sorted_seq: internal level exhausted \
                           before its chunks"
                  in
                  let nd = new_internal t ~fill_key ~fill_kid in
                  let low = ref fill_key in
                  for i = 0 to size - 1 do
                    match !remaining with
                    | (lk, child) :: rest ->
                        if i = 0 then low := lk else nd.ikeys.(i - 1) <- lk;
                        nd.kids.(i) <- child;
                        remaining := rest
                    | [] -> assert false
                  done;
                  nd.kn <- size;
                  (!low, Internal nd))
                sizes
            in
            build parents
      in
      t.root <- Some (build leaves);
      t.count <- n
    end;
    t

  let of_sorted_array ?order arr =
    let n = Array.length arr in
    (* Whole-array pre-validation (kept from the original bulk loader:
       an invalid array raises before any allocation); the streaming
       loader then re-checks incrementally as it consumes. *)
    for i = 1 to n - 1 do
      if K.compare (fst arr.(i - 1)) (fst arr.(i)) >= 0 then
        invalid_arg "Btree.of_sorted_array: keys not strictly ascending"
    done;
    let pos = ref 0 in
    of_sorted_seq ?order ~len:n (fun () ->
        let pair = arr.(!pos) in
        incr pos;
        pair)

  (* --- Deletion --- *)

  let leaf_size = function Leaf l -> l.ln | Internal nd -> nd.kn - 1

  let underfull t node =
    match node with
    | Leaf l -> l.ln < min_leaf_keys t
    | Internal nd -> nd.kn - 1 < min_internal_keys t

  (* Rebalance child [i] of [nd], which has just underflowed. *)
  let fix_child t nd i =
    let child = nd.kids.(i) in
    let borrow_from_left li =
      match (nd.kids.(li), child) with
      | Leaf left, Leaf c ->
          shift_right c.lkeys 0 c.ln;
          shift_right c.lvals 0 c.ln;
          c.lkeys.(0) <- left.lkeys.(left.ln - 1);
          c.lvals.(0) <- left.lvals.(left.ln - 1);
          c.ln <- c.ln + 1;
          left.ln <- left.ln - 1;
          nd.ikeys.(li) <- c.lkeys.(0)
      | Internal left, Internal c ->
          shift_right c.ikeys 0 (c.kn - 1);
          shift_right c.kids 0 c.kn;
          c.ikeys.(0) <- nd.ikeys.(li);
          c.kids.(0) <- left.kids.(left.kn - 1);
          c.kn <- c.kn + 1;
          nd.ikeys.(li) <- left.ikeys.(left.kn - 2);
          left.kn <- left.kn - 1
      | _ -> assert false
    in
    let borrow_from_right ri =
      match (child, nd.kids.(ri)) with
      | Leaf c, Leaf right ->
          c.lkeys.(c.ln) <- right.lkeys.(0);
          c.lvals.(c.ln) <- right.lvals.(0);
          c.ln <- c.ln + 1;
          shift_left right.lkeys 0 right.ln;
          shift_left right.lvals 0 right.ln;
          right.ln <- right.ln - 1;
          nd.ikeys.(i) <- right.lkeys.(0)
      | Internal c, Internal right ->
          c.ikeys.(c.kn - 1) <- nd.ikeys.(i);
          c.kids.(c.kn) <- right.kids.(0);
          c.kn <- c.kn + 1;
          nd.ikeys.(i) <- right.ikeys.(0);
          shift_left right.ikeys 0 (right.kn - 1);
          shift_left right.kids 0 right.kn;
          right.kn <- right.kn - 1
      | _ -> assert false
    in
    (* Merge children [li] and [li+1] into [li], dropping separator [li]. *)
    let merge li =
      (match (nd.kids.(li), nd.kids.(li + 1)) with
      | Leaf left, Leaf right ->
          Array.blit right.lkeys 0 left.lkeys left.ln right.ln;
          Array.blit right.lvals 0 left.lvals left.ln right.ln;
          left.ln <- left.ln + right.ln;
          left.next <- right.next
      | Internal left, Internal right ->
          left.ikeys.(left.kn - 1) <- nd.ikeys.(li);
          Array.blit right.ikeys 0 left.ikeys left.kn (right.kn - 1);
          Array.blit right.kids 0 left.kids left.kn right.kn;
          left.kn <- left.kn + right.kn
      | _ -> assert false);
      shift_left nd.ikeys li (nd.kn - 1);
      shift_left nd.kids (li + 1) nd.kn;
      nd.kn <- nd.kn - 1
    in
    let min_size =
      match child with
      | Leaf _ -> min_leaf_keys t
      | Internal _ -> min_internal_keys t
    in
    if i > 0 && leaf_size nd.kids.(i - 1) > min_size then borrow_from_left (i - 1)
    else if i < nd.kn - 1 && leaf_size nd.kids.(i + 1) > min_size then
      borrow_from_right (i + 1)
    else if i > 0 then merge (i - 1)
    else merge i

  let rec remove_node t node key =
    match node with
    | Leaf l ->
        let i = lower_bound l.lkeys l.ln key in
        if i < l.ln && K.compare l.lkeys.(i) key = 0 then begin
          shift_left l.lkeys i l.ln;
          shift_left l.lvals i l.ln;
          l.ln <- l.ln - 1;
          true
        end
        else false
    | Internal nd ->
        let i = upper_bound nd.ikeys (nd.kn - 1) key in
        let removed = remove_node t nd.kids.(i) key in
        if removed && underfull t nd.kids.(i) then fix_child t nd i;
        removed

  let remove t key =
    match t.root with
    | None -> false
    | Some root ->
        let removed = remove_node t root key in
        if removed then begin
          t.count <- t.count - 1;
          (* Shrink the root when it degenerates. *)
          match t.root with
          | Some (Internal nd) when nd.kn = 1 -> t.root <- Some nd.kids.(0)
          | Some (Leaf l) when l.ln = 0 -> t.root <- None
          | _ -> ()
        end;
        removed

  (* --- Traversal --- *)

  let rec leftmost_leaf = function
    | Leaf l -> l
    | Internal nd -> leftmost_leaf nd.kids.(0)

  let rec rightmost_leaf = function
    | Leaf l -> l
    | Internal nd -> rightmost_leaf nd.kids.(nd.kn - 1)

  let iter f t =
    match t.root with
    | None -> ()
    | Some root ->
        let rec walk l =
          for i = 0 to l.ln - 1 do
            f l.lkeys.(i) l.lvals.(i)
          done;
          match l.next with None -> () | Some next -> walk next
        in
        walk (leftmost_leaf root)

  let fold f t init =
    let acc = ref init in
    iter (fun k v -> acc := f k v !acc) t;
    !acc

  (* Leaf that may contain [key], by separator routing. *)
  let rec seek_leaf node key =
    match node with
    | Leaf l -> l
    | Internal nd ->
        let i = upper_bound nd.ikeys (nd.kn - 1) key in
        seek_leaf nd.kids.(i) key

  let iter_range ?lo ?hi f t =
    match t.root with
    | None -> ()
    | Some root ->
        let start =
          match lo with None -> leftmost_leaf root | Some k -> seek_leaf root k
        in
        (* Binary-search the start slot once instead of filtering every
           leading key through an [above_lo] test. *)
        let i0 =
          match lo with
          | None -> 0
          | Some k -> lower_bound start.lkeys start.ln k
        in
        let below_hi k =
          match hi with None -> true | Some b -> K.compare k b <= 0
        in
        (* The leaf chain is ascending, so one compare against a leaf's
           last key decides the whole leaf: emit it compare-free and move
           on, or finish inside it with per-key checks. Range scans thus
           cost two descents plus one compare per *leaf*, not two
           compares per *key*. *)
        let rec walk l i =
          if i >= l.ln then
            match l.next with None -> () | Some next -> walk next 0
          else if below_hi l.lkeys.(l.ln - 1) then begin
            for j = i to l.ln - 1 do
              f l.lkeys.(j) l.lvals.(j)
            done;
            match l.next with None -> () | Some next -> walk next 0
          end
          else begin
            let j = ref i in
            while !j < l.ln && below_hi l.lkeys.(!j) do
              f l.lkeys.(!j) l.lvals.(!j);
              incr j
            done
          end
        in
        walk start i0

  (* Same leaf walk as [iter_range], but the callback receives each
     in-range slot run [(lkeys, off, len)] directly: a full-leaf scan
     makes one call per leaf with zero per-key dispatch, which lets hot
     scans decode byte keys inline (the typed-tree scan bench). *)
  let iter_raw ?lo ?hi f t =
    match t.root with
    | None -> ()
    | Some root ->
        let start =
          match lo with None -> leftmost_leaf root | Some k -> seek_leaf root k
        in
        let i0 =
          match lo with
          | None -> 0
          | Some k -> lower_bound start.lkeys start.ln k
        in
        let below_hi k =
          match hi with None -> true | Some b -> K.compare k b <= 0
        in
        let rec walk l i =
          if i >= l.ln then
            match l.next with None -> () | Some next -> walk next 0
          else if below_hi l.lkeys.(l.ln - 1) then begin
            f l.lkeys i (l.ln - i);
            match l.next with None -> () | Some next -> walk next 0
          end
          else begin
            let j = ref i in
            while !j < l.ln && below_hi l.lkeys.(!j) do
              incr j
            done;
            if !j > i then f l.lkeys i (!j - i)
          end
        in
        walk start i0

  let range ?lo ?hi t =
    let acc = ref [] in
    iter_range ?lo ?hi (fun k v -> acc := (k, v) :: !acc) t;
    List.rev !acc

  let to_seq_range ?lo ?hi t =
    match t.root with
    | None -> Seq.empty
    | Some root ->
        let start =
          match lo with None -> leftmost_leaf root | Some k -> seek_leaf root k
        in
        let above_lo k =
          match lo with None -> true | Some b -> K.compare k b >= 0
        in
        let below_hi k =
          match hi with None -> true | Some b -> K.compare k b <= 0
        in
        (* Position = (leaf, slot). Skip leading keys below [lo] once;
           after that the chain is ascending so only the [hi] check
           remains on each pull. *)
        let rec pull skipping l i () =
          if i >= l.ln then
            match l.next with
            | None -> Seq.Nil
            | Some next -> pull skipping next 0 ()
          else
            let k = l.lkeys.(i) in
            if skipping && not (above_lo k) then pull skipping l (i + 1) ()
            else if below_hi k then
              Seq.Cons ((k, l.lvals.(i)), pull false l (i + 1))
            else Seq.Nil
        in
        pull true start 0

  let count_range ?lo ?hi t =
    match (lo, hi, t.root) with
    | None, None, _ -> t.count
    | _, _, None -> 0
    | _, _, Some root ->
        (* Whole leaves inside the range are counted by their fill, so
           the cost is one compare per leaf plus two binary searches —
           O(log n + leaves), not O(keys in range). *)
        let start =
          match lo with None -> leftmost_leaf root | Some k -> seek_leaf root k
        in
        let i0 =
          match lo with
          | None -> 0
          | Some k -> lower_bound start.lkeys start.ln k
        in
        let rec walk l i acc =
          if i >= l.ln then
            match l.next with None -> acc | Some next -> walk next 0 acc
          else
            let whole =
              match hi with
              | None -> true
              | Some b -> K.compare l.lkeys.(l.ln - 1) b <= 0
            in
            if whole then
              let acc = acc + (l.ln - i) in
              match l.next with None -> acc | Some next -> walk next 0 acc
            else
              let stop =
                match hi with
                | None -> l.ln
                | Some b -> upper_bound l.lkeys l.ln b
              in
              acc + max 0 (stop - i)
        in
        walk start i0 0

  let min_binding t =
    match t.root with
    | None -> None
    | Some root ->
        let l = leftmost_leaf root in
        if l.ln = 0 then None else Some (l.lkeys.(0), l.lvals.(0))

  let max_binding t =
    match t.root with
    | None -> None
    | Some root ->
        let l = rightmost_leaf root in
        if l.ln = 0 then None else Some (l.lkeys.(l.ln - 1), l.lvals.(l.ln - 1))

  let height t =
    let rec depth = function
      | Leaf _ -> 1
      | Internal nd -> 1 + depth nd.kids.(0)
    in
    match t.root with None -> 0 | Some root -> depth root

  let node_count t =
    let rec count = function
      | Leaf _ -> 1
      | Internal nd ->
          let total = ref 1 in
          for i = 0 to nd.kn - 1 do
            total := !total + count nd.kids.(i)
          done;
          !total
    in
    match t.root with None -> 0 | Some root -> count root

  let memory_bytes ~value_bytes t =
    let header = 40 in
    (* Occupied slots are charged their actual key size; unoccupied
       slots still hold a word-sized pointer each. *)
    let key_bytes keys n =
      let total = ref 0 in
      for i = 0 to n - 1 do
        total := !total + K.size_bytes keys.(i)
      done;
      !total + ((Array.length keys - n) * 8)
    in
    let rec bytes = function
      | Leaf l ->
          header + key_bytes l.lkeys l.ln + (Array.length l.lvals * value_bytes)
      | Internal nd ->
          let total =
            ref
              (header
              + key_bytes nd.ikeys (nd.kn - 1)
              + (Array.length nd.kids * 8))
          in
          for i = 0 to nd.kn - 1 do
            total := !total + bytes nd.kids.(i)
          done;
          !total
    in
    match t.root with None -> header | Some root -> header + bytes root

  (* --- Invariant checking --- *)

  let check_invariants t =
    let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
    let exception Bad of string in
    let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
    let seen = ref 0 in
    let leaves_in_order = ref [] in
    (* Checks a subtree given exclusive parent bounds; returns depth. *)
    let rec check node ~is_root ~lo ~hi =
      let in_bounds k =
        (match lo with None -> true | Some b -> K.compare b k <= 0)
        && match hi with None -> true | Some b -> K.compare k b < 0
      in
      match node with
      | Leaf l ->
          if (not is_root) && l.ln < min_leaf_keys t then
            bad "leaf underfull: %d < %d" l.ln (min_leaf_keys t);
          if l.ln > t.order then bad "leaf overfull: %d" l.ln;
          for i = 0 to l.ln - 1 do
            if i > 0 && K.compare l.lkeys.(i - 1) l.lkeys.(i) >= 0 then
              bad "leaf keys out of order at %d (%s >= %s)" i
                (K.to_string l.lkeys.(i - 1))
                (K.to_string l.lkeys.(i));
            if not (in_bounds l.lkeys.(i)) then
              bad "leaf key %s violates parent bounds" (K.to_string l.lkeys.(i))
          done;
          seen := !seen + l.ln;
          leaves_in_order := l :: !leaves_in_order;
          1
      | Internal nd ->
          if nd.kn < 2 && not is_root then bad "internal node with %d kids" nd.kn;
          if is_root && nd.kn < 2 then bad "internal root with %d kids" nd.kn;
          if (not is_root) && nd.kn - 1 < min_internal_keys t then
            bad "internal underfull: %d keys" (nd.kn - 1);
          if nd.kn > t.order + 1 then bad "internal overfull: %d kids" nd.kn;
          for i = 0 to nd.kn - 2 do
            if i > 0 && K.compare nd.ikeys.(i - 1) nd.ikeys.(i) >= 0 then
              bad "separators out of order at %d" i;
            if not (in_bounds nd.ikeys.(i)) then
              bad "separator %s violates parent bounds"
                (K.to_string nd.ikeys.(i))
          done;
          let depth = ref 0 in
          for i = 0 to nd.kn - 1 do
            let child_lo = if i = 0 then lo else Some nd.ikeys.(i - 1) in
            let child_hi = if i = nd.kn - 1 then hi else Some nd.ikeys.(i) in
            let d = check nd.kids.(i) ~is_root:false ~lo:child_lo ~hi:child_hi in
            if i = 0 then depth := d
            else if d <> !depth then bad "non-uniform leaf depth"
          done;
          1 + !depth
    in
    match t.root with
    | None -> if t.count = 0 then Ok () else fail "empty tree with count %d" t.count
    | Some root -> (
        try
          let _ = check root ~is_root:true ~lo:None ~hi:None in
          if !seen <> t.count then bad "count mismatch: %d vs %d" !seen t.count;
          (* The leaf chain must enumerate exactly the in-order leaves. *)
          let in_order = List.rev !leaves_in_order in
          let rec chain l acc =
            match l.next with None -> List.rev (l :: acc) | Some n -> chain n (l :: acc)
          in
          let chained = chain (leftmost_leaf root) [] in
          if List.length chained <> List.length in_order then
            bad "leaf chain length %d <> leaf count %d" (List.length chained)
              (List.length in_order);
          List.iter2
            (fun a b -> if a != b then bad "leaf chain order mismatch")
            chained in_order;
          Ok ()
        with Bad msg -> Error msg)
end

module Int_key = struct
  type t = int

  let compare = Int.compare
  let to_string = string_of_int
  let size_bytes _ = 8
end

module Int_pair_key = struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Int.compare b1 b2

  let to_string (a, b) = Printf.sprintf "(%d,%d)" a b
  let size_bytes _ = 16
end

module Float_pair_key = struct
  type t = float * int

  (* NaN sorts after every number so that range scans over real values
     never trip over it. *)
  let compare_float a b =
    match (Float.is_nan a, Float.is_nan b) with
    | true, true -> 0
    | true, false -> 1
    | false, true -> -1
    | false, false -> Float.compare a b

  let compare (a1, b1) (a2, b2) =
    let c = compare_float a1 a2 in
    if c <> 0 then c else Int.compare b1 b2

  let to_string (a, b) = Printf.sprintf "(%g,%d)" a b
  let size_bytes _ = 16
end

module String_key = struct
  type t = string

  let compare = String.compare
  let to_string s = s
  let size_bytes s = 24 + String.length s (* header + payload *)
end

module Bytes_key = struct
  type t = string

  (* Order-preserving encoded byte strings ([Encoding]); the key order
     IS the byte order, so comparisons are flat memcmp. *)
  let compare = String.compare
  let to_string = String.escaped
  let size_bytes s = String.length s
end

module Bytes = Make (Bytes_key)

(* Order-preserving byte encodings (see the .mli for the scheme). All
   multi-byte fields are big-endian so String.compare sees the most
   significant byte first. *)

let int_key v =
  let b = Bytes.create 8 in
  (* bias: flipping the sign bit maps min_int..max_int onto an unsigned
     range in order *)
  Bytes.set_int64_be b 0 (Int64.of_int (v lxor min_int));
  Bytes.unsafe_to_string b

let decode_int s off =
  Int64.to_int (String.get_int64_be s off) lxor min_int

(* NaN sorts after every number (the convention Float_pair_key already
   uses). The sentinel cannot collide with a real float: a negative
   input has its sign bit set, so its complement never has all bits set,
   and a non-negative input would need the NaN bit pattern
   0x7FF..FF to reach all-ones — excluded by the is_nan test. *)
let nan_sentinel = 0xFFFF_FFFF_FFFF_FFFFL

let float_key v =
  let b = Bytes.create 8 in
  let bits =
    if Float.is_nan v then nan_sentinel
    else
      (* +. 0. collapses -0. into 0. and is the identity elsewhere *)
      let bits = Int64.bits_of_float (v +. 0.) in
      if Int64.compare bits 0L < 0 then Int64.lognot bits
      else Int64.logor bits Int64.min_int
  in
  Bytes.set_int64_be b 0 bits;
  Bytes.unsafe_to_string b

let decode_float s off =
  let enc = String.get_int64_be s off in
  if Int64.equal enc nan_sentinel then Float.nan
  else if Int64.compare enc 0L < 0 then
    Int64.float_of_bits (Int64.logxor enc Int64.min_int)
  else Int64.float_of_bits (Int64.lognot enc)

let string_key s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      Buffer.add_char buf c;
      if c = '\x00' then Buffer.add_char buf '\xFF')
    s;
  Buffer.add_string buf "\x00\x00";
  Buffer.contents buf

let float_int_key v n =
  let b = Bytes.create 16 in
  Bytes.blit_string (float_key v) 0 b 0 8;
  Bytes.blit_string (int_key n) 0 b 8 8;
  Bytes.unsafe_to_string b

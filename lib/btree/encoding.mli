(** Order-preserving byte encodings for B+tree keys.

    Each encoder maps a value to a byte string such that
    [String.compare (enc a) (enc b)] equals the logical comparison of
    [a] and [b] — so the byte-key tree ({!Btree.Bytes}) can compare any
    key with flat memcmp, and a composite key is just concatenation of
    fixed-width encoded fields.

    Encodings (all big-endian so the most significant byte compares
    first):

    - ints: biased uint64 — [x lxor min_int] flips the sign bit, mapping
      [min_int..max_int] onto [0..2^63-1] in order;
    - floats: sign-flipped IEEE 754 — negative values have all bits
      complemented, non-negative values get the sign bit set; [-0.] is
      normalised to [0.] and NaN encodes as a sentinel that sorts after
      [+infinity];
    - strings: NUL-escaped ([\x00] becomes [\x00\xFF]) and terminated
      with [\x00\x00], so a prefix sorts before its extensions and
      embedded NULs cannot collide with the terminator. *)

val int_key : int -> string
(** 8 bytes. *)

val decode_int : string -> int -> int
(** [decode_int s off] reads the int encoded at offset [off]. *)

val float_key : float -> string
(** 8 bytes. [-0.] and [0.] encode identically; NaN (any payload)
    encodes as the sentinel [0xFF x 8], after every number. *)

val decode_float : string -> int -> float
(** Inverse of {!float_key}; any NaN decodes as [Float.nan]. *)

val string_key : string -> string
(** Variable width: escaped content plus a 2-byte terminator. *)

val float_int_key : float -> int -> string
(** Composite [(value, node)] key: [float_key v ^ int_key n], 16
    bytes. *)

(* Driver: [xvi_lint [--rules] path...] lints every .ml/.mli under the
   given files/directories (default: lib bin).  Exit 0 when clean, 1 on
   findings, 2 on parse errors or bad usage. *)

module Lint = Xvi_lint_lib.Lint

let usage = "usage: xvi_lint [--rules] [path ...]"

let print_rules () =
  List.iter
    (fun r -> Printf.printf "%s  %s\n" (Lint.rule_id r) (Lint.rule_doc r))
    Lint.all_rules

let rec collect path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || entry = ".git" then acc
        else collect (Filename.concat path entry) acc)
      acc
      (Sys.readdir path)
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

(* Library-only rules apply to files living under a [lib] directory. *)
let in_lib path =
  List.mem "lib" (String.split_on_char '/' path)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    if List.mem "--rules" args then begin
      print_rules ();
      match List.filter (fun a -> a <> "--rules") args with
      | [] -> exit 0 (* a pure catalogue query: don't fall through to lint *)
      | rest -> rest
    end
    else args
  in
  (match List.find_opt (fun a -> String.length a > 0 && a.[0] = '-') args with
  | Some flag ->
      Printf.eprintf "xvi_lint: unknown flag %s\n%s\n" flag usage;
      exit 2
  | None -> ());
  let roots = if args = [] then [ "lib"; "bin" ] else args in
  (match List.find_opt (fun r -> not (Sys.file_exists r)) roots with
  | Some missing ->
      Printf.eprintf "xvi_lint: no such file or directory: %s\n" missing;
      exit 2
  | None -> ());
  let files =
    List.sort String.compare (List.fold_right collect roots [])
  in
  let findings = ref [] in
  let parse_errors = ref 0 in
  List.iter
    (fun path ->
      match Lint.lint_file ~in_lib:(in_lib path) path with
      | Ok fs -> findings := List.rev_append fs !findings
      | Error msg ->
          incr parse_errors;
          Printf.eprintf "%s: parse error:\n%s\n" path msg)
    files;
  let findings = List.sort Lint.compare_finding !findings in
  List.iter (fun f -> print_endline (Lint.to_string f)) findings;
  if !parse_errors > 0 then exit 2;
  match findings with
  | [] ->
      Printf.eprintf "xvi_lint: %d file(s) clean\n" (List.length files)
  | fs ->
      Printf.eprintf "xvi_lint: %d finding(s) in %d file(s)\n" (List.length fs)
        (List.length files);
      exit 1

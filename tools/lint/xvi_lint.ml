(* Driver: [xvi_lint [--rules] [--format text|json] [--deep DIR]
   [--deep-src FILE] path...] runs the Parsetree stage over every
   .ml/.mli under the given files/directories (default: lib bin tools
   bench) and the Typedtree deep stage over every .cmt under the
   [--deep] directories (plus any [--deep-src] fixture sources,
   typechecked in-process).  Exit 0 when clean, 1 on findings, 2 on
   parse/analysis errors or bad usage. *)

module Lint = Xvi_lint_lib.Lint
module Deep = Xvi_lint_deep.Deep

let usage =
  "usage: xvi_lint [--rules] [--format text|json] [--deep dir] \
   [--deep-src file.ml] [path ...]"

let print_rules () =
  List.iter
    (fun r -> Printf.printf "%s  %s\n" (Lint.rule_id r) (Lint.rule_doc r))
    Lint.all_rules

let rec collect ~suffixes path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = ".git" then acc
        else collect ~suffixes (Filename.concat path entry) acc)
      acc
      (Sys.readdir path)
  else if List.exists (fun s -> Filename.check_suffix path s) suffixes then
    path :: acc
  else acc

(* Library-only rules apply to files living under a [lib] directory. *)
let in_lib path = List.mem "lib" (String.split_on_char '/' path)

(* The source tree walk must not descend into _build (the cmt walk,
   [--deep], usually points inside it). *)
let collect_sources path acc =
  let rec go path acc =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry ->
          if entry = "_build" || entry = ".git" then acc
          else go (Filename.concat path entry) acc)
        acc
        (Sys.readdir path)
    else if
      Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then path :: acc
    else acc
  in
  go path acc

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_to_json (f : Lint.finding) =
  let witness =
    f.witness
    |> List.map (fun (fn, file, line) ->
           Printf.sprintf "{\"fn\":\"%s\",\"file\":\"%s\",\"line\":%d}"
             (json_escape fn) (json_escape file) line)
    |> String.concat ","
  in
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\",\"witness\":[%s]}"
    (Lint.rule_id f.rule) (json_escape f.file) f.line f.col
    (json_escape f.message) witness

let print_findings ~format findings =
  match format with
  | `Text -> List.iter (fun f -> print_endline (Lint.to_string f)) findings
  | `Json ->
      print_endline
        ("[" ^ String.concat ",\n " (List.map finding_to_json findings) ^ "]")

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let format = ref `Text in
  let deep_dirs = ref [] in
  let deep_srcs = ref [] in
  let roots = ref [] in
  let bad u =
    Printf.eprintf "xvi_lint: %s\n%s\n" u usage;
    exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--rules" :: rest ->
        print_rules ();
        if rest = [] && !roots = [] && !deep_dirs = [] && !deep_srcs = []
        then exit 0 (* a pure catalogue query: don't fall through to lint *)
        else parse_args rest
    | "--format" :: fmt :: rest ->
        (match fmt with
        | "text" -> format := `Text
        | "json" -> format := `Json
        | other -> bad (Printf.sprintf "unknown format %S" other));
        parse_args rest
    | "--deep" :: dir :: rest ->
        deep_dirs := dir :: !deep_dirs;
        parse_args rest
    | "--deep-src" :: file :: rest ->
        deep_srcs := file :: !deep_srcs;
        parse_args rest
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
        bad (Printf.sprintf "unknown flag %s" flag)
    | path :: rest ->
        roots := path :: !roots;
        parse_args rest
  in
  parse_args args;
  let roots =
    if !roots = [] && !deep_dirs = [] && !deep_srcs = [] then
      [ "lib"; "bin"; "tools"; "bench" ]
    else List.rev !roots
  in
  (match
     List.find_opt
       (fun r -> not (Sys.file_exists r))
       (roots @ !deep_dirs @ !deep_srcs)
   with
  | Some missing ->
      Printf.eprintf "xvi_lint: no such file or directory: %s\n" missing;
      exit 2
  | None -> ());
  let files =
    List.sort String.compare (List.fold_right collect_sources roots [])
  in
  let findings = ref [] in
  let errors = ref 0 in
  List.iter
    (fun path ->
      match Lint.lint_file ~in_lib:(in_lib path) path with
      | Ok fs -> findings := List.rev_append fs !findings
      | Error msg ->
          incr errors;
          Printf.eprintf "%s: parse error:\n%s\n" path msg)
    files;
  (* deep stage: every .cmt under the --deep directories, as one
     program, so the call graph crosses library boundaries *)
  let cmts =
    List.sort String.compare
      (List.fold_right (collect ~suffixes:[ ".cmt" ]) !deep_dirs [])
  in
  if cmts <> [] then begin
    match Deep.analyze_cmts cmts with
    | Ok fs -> findings := List.rev_append fs !findings
    | Error msg ->
        incr errors;
        Printf.eprintf "xvi_lint: deep stage failed:\n%s\n" msg
  end;
  if !deep_srcs <> [] then begin
    match Deep.analyze_sources (List.rev !deep_srcs) with
    | Ok fs -> findings := List.rev_append fs !findings
    | Error msg ->
        incr errors;
        Printf.eprintf "xvi_lint: deep stage failed:\n%s\n" msg
  end;
  (* both stages walk the same attributes: dedupe A0 (and any
     same-position duplicates) across stages *)
  let findings = List.sort_uniq Lint.compare_finding !findings in
  print_findings ~format:!format findings;
  if !errors > 0 then exit 2;
  match findings with
  | [] ->
      Printf.eprintf "xvi_lint: %d file(s), %d cmt(s) clean\n"
        (List.length files) (List.length cmts)
  | fs ->
      Printf.eprintf "xvi_lint: %d finding(s) in %d file(s), %d cmt(s)\n"
        (List.length fs) (List.length files) (List.length cmts);
      exit 1

(** Project-invariant linter: parses OCaml sources with compiler-libs
    and enforces the xvi rule catalogue over the Parsetree (R1–R6); the
    deep Typedtree stage ({!module:Deep} in [tools/lint/deep]) reuses
    the rule/finding/allow vocabulary declared here for D1–D4.
    See DESIGN.md "Static analysis" for the catalogue and the
    historical bug each rule is derived from. *)

type rule =
  | R1  (** catch-all exception handler discarding the exception *)
  | R2  (** partial stdlib calls (List.hd / List.nth / Option.get) *)
  | R3  (** polymorphic compare / Hashtbl.hash without a comparator *)
  | R4  (** open without Fun.protect or a lexically-paired close *)
  | R5  (** ignore without a type annotation *)
  | R6  (** stdout printing from library code *)
  | D1  (** store mutation / epoch publication outside the writer lock *)
  | D2  (** COW escape: mutation after publication or of a pinned value *)
  | D3  (** WAL/repl ordering: validate→append→fsync→ack; fsync'd rename *)
  | D4  (** encoder/decoder tag sets out of sync *)
  | A0  (** malformed [\@xvi.lint.allow] attribute *)

val rule_id : rule -> string
val rule_of_id : string -> rule option
val rule_doc : rule -> string

val all_rules : rule list
(** R1–R6 then D1–D4, in order; excludes the meta-rule A0. *)

type finding = {
  rule : rule;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as compilers print them *)
  message : string;
  witness : (string * string * int) list;
      (** deep-stage call chain, outermost entry point first:
          [(function, file, line)].  Empty for Parsetree findings. *)
}

val to_string : finding -> string
(** [file:line:col: [Rn] message], followed by the witness chain when
    there is one. *)

val compare_finding : finding -> finding -> int
(** Order by file, line, column, rule id. *)

val allow_attr_name : string
(** ["xvi.lint.allow"] *)

val parse_allow_text : string -> (rule * string, string) result
(** ["R2: reason"] → [Ok (R2, reason)]; anything else → [Error why]. *)

val parse_allow_attr :
  Parsetree.attribute ->
  ((rule * string, string) result * Location.t) option
(** [None] when the attribute is not an allow at all; [Some (Error _, _)]
    when it is an allow but malformed (an A0 finding at the returned
    location). *)

type file_result = (finding list, string) result
(** [Error] is a parse failure, reported verbatim. *)

val lint_file : in_lib:bool -> string -> file_result
(** Lint one [.ml] (or parse-check one [.mli]).  [in_lib] enables the
    library-only rules R2 and R6; R1/R3/R4/R5 apply everywhere.
    Findings are sorted by position. *)

val lint_structure :
  in_lib:bool -> file:string -> Parsetree.structure -> finding list
(** The pass itself, for callers that already hold a Parsetree. *)

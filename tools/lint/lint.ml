(* xvi-lint: project-invariant linter for the xvi index/WAL codebase.

   Parses every [.ml]/[.mli] with compiler-libs and walks the Parsetree
   with {!Ast_iterator}, enforcing a catalogue of rules distilled from
   bugs the differential/fault harness (PRs 2 and 4) caught after they
   shipped.  Each rule carries the historical failure it is derived
   from; see DESIGN.md "Static analysis" for the full catalogue.

   Findings are suppressible only via an explicit, reasoned attribute:

   {[ (List.hd xs [@xvi.lint.allow "R2: xs is a literal cons above"]) ]}

   A reasonless or malformed allow is itself a finding (A0) and
   suppresses nothing, so every exception in the tree is justified
   in-source. *)

type rule =
  | R1  (* catch-all exception handler discarding the exception *)
  | R2  (* partial stdlib calls (List.hd / List.nth / Option.get) *)
  | R3  (* polymorphic compare / Hashtbl.hash without a declared comparator *)
  | R4  (* open without Fun.protect or a lexically-paired close *)
  | R5  (* ignore without a type annotation *)
  | R6  (* stdout printing from library code *)
  | D1  (* store mutation / epoch publication outside the writer lock *)
  | D2  (* COW escape: mutation after publication, or of a pinned value *)
  | D3  (* WAL/replication ordering: append -> fsync -> ack; fsync'd rename *)
  | D4  (* encoder/decoder tag sets out of sync *)
  | A0  (* malformed [@xvi.lint.allow] *)

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | A0 -> "A0"

let rule_of_id = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "D4" -> Some D4
  | _ -> None

(* One line of why each rule exists; printed by [--rules]. *)
let rule_doc = function
  | R1 ->
      "no catch-all 'with _ ->' / 'with e ->' that discards the exception: \
       it swallows Out_of_memory/Stack_overflow and has hidden parse \
       failures before (lexical_types.ml)"
  | R2 ->
      "no partial stdlib calls (List.hd, List.nth, Option.get) in lib/: an \
       'unreachable' empty case becomes an unnamed Failure at a distance"
  | R3 ->
      "no polymorphic Stdlib.compare/Hashtbl.hash outside modules declaring \
       an explicit comparator: the PR-2 NaN/Range bug is exactly this class"
  | R4 ->
      "every Unix.openfile/open_out must be under Fun.protect or a \
       lexically-paired close: the WAL fsync discipline depends on it"
  | R5 ->
      "ignore must carry a type annotation so partial applications cannot \
       be silently discarded"
  | R6 -> "no print_endline/Printf.printf in lib/: libraries do not own stdout"
  | D1 ->
      "deep: every path to a store/Bigvec mutation or epoch publication must \
       be dominated by the writer lock; reader-side entry points must not \
       reach one (the PR 6 single-writer MVCC contract)"
  | D2 ->
      "deep: no Bigvec.set-family effect after an epoch publication in the \
       same critical section, and no mutation of a value pinned via \
       Engine.pin (the PR 8 shared-chunk COW invariant)"
  | D3 ->
      "deep: in wal/txn/repl, ack must be dominated by fsync, fsync by \
       append, validation must precede the append, and a snapshot rename \
       needs file+dir fsync (the PR 4/PR 7 durability ordering)"
  | D4 ->
      "deep: encoder and decoder of the same codec must match the same \
       tag/verb set, so a new constructor is a build failure, not a replay \
       surprise"
  | A0 ->
      "a [@xvi.lint.allow] must be \"R<n>: reason\": an unjustified \
       suppression is itself a finding"

let all_rules = [ R1; R2; R3; R4; R5; R6; D1; D2; D3; D4 ]

type finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
  witness : (string * string * int) list;
      (* call chain, outermost first: (function, file, line) *)
}

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare (rule_id a.rule) (rule_id b.rule)
          | c -> c)
      | c -> c)
  | c -> c

let to_string f =
  let head =
    Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col (rule_id f.rule)
      f.message
  in
  match f.witness with
  | [] -> head
  | w ->
      let step (fn, file, line) = Printf.sprintf "%s (%s:%d)" fn file line in
      head ^ "\n  witness: " ^ String.concat "\n        -> " (List.map step w)

(* --- Longident classification ------------------------------------- *)

(* Strip an explicit [Stdlib.] qualifier so [Stdlib.List.hd] and
   [List.hd] classify identically. *)
let path_of lid =
  match Longident.flatten lid with "Stdlib" :: rest -> rest | p -> p

let is_partial_stdlib lid =
  match path_of lid with
  | [ "List"; "hd" ] | [ "List"; "nth" ] | [ "Option"; "get" ] -> true
  | _ -> false

let is_poly_compare lid =
  match path_of lid with [ "compare" ] -> true | _ -> false

let is_poly_hash lid =
  match path_of lid with
  | [ "Hashtbl"; "hash" ] | [ "Hashtbl"; "seeded_hash" ] -> true
  | _ -> false

let is_open_fn lid =
  match path_of lid with
  | [ "open_in" ] | [ "open_in_bin" ] | [ "open_in_gen" ]
  | [ "open_out" ] | [ "open_out_bin" ] | [ "open_out_gen" ]
  | [ "In_channel"; "open_bin" ] | [ "In_channel"; "open_text" ]
  | [ "In_channel"; "open_gen" ]
  | [ "Out_channel"; "open_bin" ] | [ "Out_channel"; "open_text" ]
  | [ "Out_channel"; "open_gen" ]
  | [ "Unix"; "openfile" ] | [ "UnixLabels"; "openfile" ] -> true
  | _ -> false

let is_close_or_protect lid =
  match path_of lid with
  | [ "close_in" ] | [ "close_in_noerr" ]
  | [ "close_out" ] | [ "close_out_noerr" ]
  | [ "In_channel"; "close" ] | [ "In_channel"; "close_noerr" ]
  | [ "Out_channel"; "close" ] | [ "Out_channel"; "close_noerr" ]
  | [ "Unix"; "close" ] | [ "UnixLabels"; "close" ]
  | [ "Fun"; "protect" ] -> true
  | _ -> false

let is_stdout_print lid =
  match path_of lid with
  | [ "print_endline" ] | [ "print_string" ] | [ "print_newline" ]
  | [ "print_char" ] | [ "print_int" ] | [ "print_float" ]
  | [ "Printf"; "printf" ] | [ "Format"; "printf" ]
  | [ "Format"; "print_string" ] -> true
  | _ -> false

let is_ignore lid = match path_of lid with [ "ignore" ] -> true | _ -> false

(* --- generic Parsetree queries ------------------------------------ *)

exception Found

(* Does [e] mention an identifier satisfying [pred], at any depth? *)
let expr_mentions pred e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } when pred txt -> raise Found
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  match it.expr it e with () -> false | exception Found -> true

let mentions_var name e =
  expr_mentions (function Longident.Lident n -> n = name | _ -> false) e

(* Source locations of every open-function identifier inside [e]. *)
let open_locs e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; loc } when is_open_fn txt ->
              acc := loc :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !acc

(* A catch-all handler pattern: [_], a variable, or an or-pattern with a
   catch-all branch.  Returns the variable name when there is one, so
   the caller can check whether the handler actually uses it. *)
let rec catch_all p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any -> Some None
  | Parsetree.Ppat_var { txt; _ } -> Some (Some txt)
  | Parsetree.Ppat_alias (inner, { txt; _ }) -> (
      match catch_all inner with Some _ -> Some (Some txt) | None -> None)
  | Parsetree.Ppat_or (a, b) -> (
      match catch_all a with Some r -> Some r | None -> catch_all b)
  | Parsetree.Ppat_constraint (inner, _) -> catch_all inner
  | _ -> None

let vb_binds_compare vb =
  match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt = "compare"; _ } -> true
  | _ -> false

let item_declares_compare item =
  match item.Parsetree.pstr_desc with
  | Parsetree.Pstr_value (_, vbs) -> List.exists vb_binds_compare vbs
  | Parsetree.Pstr_primitive { pval_name = { txt = "compare"; _ }; _ } -> true
  | _ -> false

(* --- the allow attribute ------------------------------------------ *)

let allow_attr_name = "xvi.lint.allow"

(* "R2: reason" -> Ok (R2, reason); anything else -> Error why. *)
let parse_allow_text s =
  match String.index_opt s ':' with
  | None ->
      Error
        (Printf.sprintf
           "allow %S lacks a reason: expected \"R<n>: why this is safe\"" s)
  | Some i -> (
      let id = String.trim (String.sub s 0 i) in
      let reason = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      match rule_of_id id with
      | None -> Error (Printf.sprintf "allow %S names unknown rule %S" s id)
      | Some _ when String.length reason = 0 ->
          Error (Printf.sprintf "allow %S carries an empty reason" s)
      | Some r -> Ok (r, reason))

let parse_allow_attr (attr : Parsetree.attribute) =
  if attr.attr_name.txt <> allow_attr_name then None
  else
    match attr.attr_payload with
    | Parsetree.PStr
        [
          {
            pstr_desc =
              Parsetree.Pstr_eval
                ( {
                    pexp_desc =
                      Parsetree.Pexp_constant
                        (Parsetree.Pconst_string (s, _, _));
                    _;
                  },
                  _ );
            _;
          };
        ] ->
        Some (parse_allow_text s, attr.attr_loc)
    | _ ->
        Some
          ( Error "allow payload must be a single string literal",
            attr.attr_loc )

(* --- the linting pass --------------------------------------------- *)

type state = {
  file : string;
  in_lib : bool;
  mutable findings : finding list;
  mutable allows : (rule * string) list; (* active, innermost first *)
  mutable compare_scope : int; (* > 0 inside a module declaring compare *)
  sanctioned : (Location.t, unit) Hashtbl.t; (* paired/protected opens *)
}

let pos_of (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let report st rule (loc : Location.t) message =
  let suppressed =
    rule <> A0 && List.exists (fun (r, _) -> r = rule) st.allows
  in
  if not suppressed then begin
    let line, col = pos_of loc in
    st.findings <-
      { rule; file = st.file; line; col; message; witness = [] } :: st.findings
  end

(* Push every well-formed allow on [attrs]; malformed ones become A0
   findings and suppress nothing.  Returns how many were pushed so the
   caller can pop when leaving the node's scope. *)
let push_allows st attrs =
  List.fold_left
    (fun pushed attr ->
      match parse_allow_attr attr with
      | None -> pushed
      | Some (Ok (rule, reason), _loc) ->
          st.allows <- (rule, reason) :: st.allows;
          pushed + 1
      | Some (Error why, loc) ->
          report st A0 loc why;
          pushed)
    0 attrs

let pop_allows st n =
  for _ = 1 to n do
    match st.allows with [] -> () | _ :: rest -> st.allows <- rest
  done

let check_handler_case st (c : Parsetree.case) =
  let flag loc what =
    report st R1 loc
      (Printf.sprintf
         "catch-all handler %s discards the exception (swallows \
          Out_of_memory/Stack_overflow); match the specific exceptions the \
          guarded code raises"
         what)
  in
  match catch_all c.pc_lhs with
  | None -> ()
  | Some None -> flag c.pc_lhs.ppat_loc "'_'"
  | Some (Some name) ->
      let used =
        name.[0] <> '_'
        && (mentions_var name c.pc_rhs
           || match c.pc_guard with Some g -> mentions_var name g | None -> false)
      in
      if not used then flag c.pc_lhs.ppat_loc (Printf.sprintf "'%s'" name)

let check_match_exception_case st (c : Parsetree.case) =
  match c.pc_lhs.ppat_desc with
  | Parsetree.Ppat_exception p -> (
      match catch_all p with
      | Some _ -> check_handler_case st { c with pc_lhs = p }
      | None -> ())
  | _ -> ()

(* [let x = open_* ... in body]: the open is sanctioned when the body
   reaches a close function or Fun.protect.  Purely lexical — it cannot
   prove the close runs on every path, but it catches the class of
   "opened, then forgot" bugs, and the WAL/snapshot code is written in
   exactly this paired style. *)
let sanction_paired_opens st bound_exprs continuations =
  let opens = List.concat_map open_locs bound_exprs in
  if opens <> [] && List.exists (expr_mentions is_close_or_protect) continuations
  then List.iter (fun loc -> Hashtbl.replace st.sanctioned loc ()) opens

let check_expr st (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_try (_, cases) -> List.iter (check_handler_case st) cases
  | Pexp_match (_, cases) -> List.iter (check_match_exception_case st) cases
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when is_ignore txt -> (
      match args with
      | (Asttypes.Nolabel, arg) :: _ -> (
          match arg.Parsetree.pexp_desc with
          | Parsetree.Pexp_constraint _ -> ()
          | _ ->
              report st R5 e.pexp_loc
                "ignore without a type annotation; write 'ignore (e : t)' so \
                 a partial application cannot be silently discarded")
      | _ -> ())
  | Pexp_ident { txt; loc } ->
      if st.in_lib && is_partial_stdlib txt then
        report st R2 loc
          (Printf.sprintf
             "partial stdlib call %s; use a total pattern match that raises \
              a named invariant error"
             (String.concat "." (Longident.flatten txt)));
      if st.compare_scope = 0 && (is_poly_compare txt || is_poly_hash txt)
      then
        report st R3 loc
          (Printf.sprintf
             "polymorphic %s outside a module declaring an explicit \
              comparator; use a monomorphic comparison (Int.compare, \
              Float.compare, ...)"
             (String.concat "." (Longident.flatten txt)));
      if is_open_fn txt && not (Hashtbl.mem st.sanctioned loc) then
        report st R4 loc
          (Printf.sprintf
             "%s without Fun.protect or a lexically-paired close in scope"
             (String.concat "." (Longident.flatten txt)));
      if st.in_lib && is_stdout_print txt then
        report st R6 loc
          (Printf.sprintf
             "%s in library code; return data or take a ~log callback"
             (String.concat "." (Longident.flatten txt)))
  | _ -> ()

let make_iterator st =
  let default = Ast_iterator.default_iterator in
  let expr it e =
    let pushed = push_allows st e.Parsetree.pexp_attributes in
    check_expr st e;
    (match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
        sanction_paired_opens st
          (List.map (fun vb -> vb.Parsetree.pvb_expr) vbs)
          [ body ];
        (* a local [let compare = ...] shadows the polymorphic one *)
        let scoped = List.exists vb_binds_compare vbs in
        if scoped then st.compare_scope <- st.compare_scope + 1;
        default.expr it e;
        if scoped then st.compare_scope <- st.compare_scope - 1
    | Pexp_match (scrut, cases) ->
        sanction_paired_opens st [ scrut ]
          (List.map (fun c -> c.Parsetree.pc_rhs) cases);
        default.expr it e
    | _ -> default.expr it e);
    pop_allows st pushed
  in
  let value_binding it vb =
    let pushed = push_allows st vb.Parsetree.pvb_attributes in
    default.value_binding it vb;
    pop_allows st pushed
  in
  let structure it items =
    (* A structure declaring its own [compare] (or [external compare])
       is an explicit-comparator module: bare [compare] inside it is
       that binding, not the polymorphic one. *)
    let scoped = List.exists item_declares_compare items in
    if scoped then st.compare_scope <- st.compare_scope + 1;
    (* floating [@@@xvi.lint.allow "..."] covers the rest of the file *)
    let pushed =
      List.fold_left
        (fun pushed item ->
          let pushed =
            match item.Parsetree.pstr_desc with
            | Parsetree.Pstr_attribute attr -> pushed + push_allows st [ attr ]
            | _ -> pushed
          in
          it.Ast_iterator.structure_item it item;
          pushed)
        0 items
    in
    pop_allows st pushed;
    if scoped then st.compare_scope <- st.compare_scope - 1
  in
  { default with expr; value_binding; structure }

(* --- entry points ------------------------------------------------- *)

type file_result = (finding list, string) result

let lint_structure ~in_lib ~file str =
  let st =
    {
      file;
      in_lib;
      findings = [];
      allows = [];
      compare_scope = 0;
      sanctioned = Hashtbl.create 16;
    }
  in
  let it = make_iterator st in
  it.structure it str;
  List.sort compare_finding st.findings

let parse_with path parse =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      parse lexbuf)

let lint_file ~in_lib path : file_result =
  let describe_parse_error e =
    match Location.error_of_exn e with
    | Some (`Ok err) ->
        Format.asprintf "%a" Location.print_report err
    | Some `Already_displayed | None -> Printexc.to_string e
  in
  if Filename.check_suffix path ".mli" then
    (* interfaces carry no handler/expression code; parsing them still
       guards the lint pass against bit-rotted syntax *)
    match parse_with path Parse.interface with
    | (_ : Parsetree.signature) -> Ok []
    | exception e -> Error (describe_parse_error e)
  else
    match parse_with path Parse.implementation with
    | str -> Ok (lint_structure ~in_lib ~file:path str)
    | exception e -> Error (describe_parse_error e)
